// evvo_lint: project-specific static analysis for the evvo tree.
//
// The analyzer itself lives in tools/lint/ (tokenizer, scope tracker, symbol
// tables, rules, driver) so the test suite can link it directly; this file
// is only the executable entry point. See tools/lint/rules.hpp for the rule
// catalogue and DESIGN.md section 13 for how the lock-order rule pairs with
// the EVVO_DEADLOCK_CHECK runtime validator.
//
// Suppression: append `// evvo-lint: allow(<rule>)` to the offending line or
// place it on the line directly above (a blank line in between breaks the
// association). `--baseline <file>` grandfathers recorded violations and
// forbids growth; `--self-test` proves every rule fires and suppresses.

#include "lint/driver.hpp"

int main(int argc, char** argv) { return evvo::lint::run(argc, argv); }
