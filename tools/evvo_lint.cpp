// evvo_lint: project-specific static checks for the evvo tree.
//
// A dependency-free linter for the handful of conventions the compiler
// cannot enforce by itself (or can only enforce on clang). It is fast
// enough to run on every ctest invocation and in CI as a gate:
//
//   naked-unit-param   boundary headers must not declare `double` parameters
//                      whose names read as speeds/times/flows — those are the
//                      exact parameters the strong types in common/units.hpp
//                      exist for (MetersPerSecond, Seconds, VehiclesPerSecond).
//   banned-random      std::rand/srand/time(0) seeds are forbidden; the
//                      library ships its own deterministic PRNG (common/random).
//   nodiscard-result   solver/planner result structs (`...Solution`, `...Result`,
//                      `...Report`, `...Stats`, `...Response`) must be declared
//                      [[nodiscard]] — silently dropping a plan or a check
//                      report is always a bug.
//   raw-sync           std::mutex / std::condition_variable outside
//                      common/mutex.hpp are forbidden: the annotated wrappers
//                      keep clang -Wthread-safety able to see every lock.
//   guarded-mutex      a file declaring a common::Mutex member must contain at
//                      least one EVVO_GUARDED_BY/EVVO_REQUIRES annotation —
//                      an unannotated mutex protects nothing the analyzer
//                      can check.
//   include-hygiene    headers carry #pragma once, no `#include "../"`
//                      parent-relative includes, no `using namespace` at
//                      header scope.
//   raw-intrinsics     <immintrin.h>/<arm_neon.h> includes and _mm_*/vld1q*
//                      intrinsic identifiers are forbidden outside
//                      common/simd.hpp — every vector kernel goes through the
//                      portable wrappers so the scalar fallback and the
//                      bit-identity contract stay in one place.
//
// Suppression: append `// evvo-lint: allow(<rule>)` to the offending line or
// place it alone on the line above. Each suppression names one rule; the
// comment documents the exception at the site it is made.
//
// Output is gcc-style `file:line: warning: [rule] message` (machine-parsable
// by editors and CI annotators); `--json` switches to one JSON object per
// line. Exit code 1 when any violation survives suppression.
//
// `--self-test` runs every rule against embedded snippets with seeded
// violations and asserts each rule both fires and honors its suppression.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct FileUnderLint {
  std::string path;              // as reported in diagnostics
  std::vector<std::string> lines;
  bool is_header = false;
  bool is_boundary_header = false;  // public API headers with typed boundaries
  bool is_mutex_wrapper = false;    // common/mutex.hpp itself
};

/// Strips // and /* */ comments plus string literals, so rules only match
/// code. Block-comment state carries across lines via `in_block`.
std::string strip_noncode(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (line[i] == '"') {
      out.push_back('"');
      for (++i; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\') ++i;
      }
      continue;
    }
    out.push_back(line[i]);
  }
  return out;
}

bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Whole-word search: `needle` not embedded in a longer identifier.
bool contains_word(std::string_view haystack, std::string_view needle) {
  for (std::size_t pos = haystack.find(needle); pos != std::string_view::npos;
       pos = haystack.find(needle, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(haystack[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= haystack.size() || !is_ident_char(haystack[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

/// Is line `idx` (0-based) suppressed for `rule`? Same line or the line above.
bool suppressed(const FileUnderLint& file, std::size_t idx, std::string_view rule) {
  const std::string needle = std::string("evvo-lint: allow(") + std::string(rule) + ")";
  if (file.lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && file.lines[idx - 1].find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Parameter names that read as dimensioned quantities. A `double` parameter
/// with one of these names in a boundary header is exactly the mixup the
/// strong types exist to reject.
bool name_reads_as_unit(std::string_view name) {
  static constexpr std::string_view kExact[] = {
      "speed", "time", "flow", "velocity", "depart", "arrival", "dt", "tau",
  };
  for (const auto n : kExact) {
    if (name == n) return true;
  }
  static constexpr std::string_view kSuffixes[] = {
      "_s", "_ms", "_m", "_ms2", "_veh_h", "_veh_s", "_kmh", "_mph", "_ah", "_mah",
  };
  for (const auto suffix : kSuffixes) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  }
  static constexpr std::string_view kStems[] = {"speed", "time", "flow"};
  for (const auto stem : kStems) {
    if (name.find(stem) != std::string_view::npos) return true;
  }
  return false;
}

/// Extracts `double <name>` parameter declarations inside parentheses.
void check_naked_unit_param(const FileUnderLint& file, const std::string& code,
                            std::size_t idx, std::vector<Violation>& out) {
  if (!file.is_boundary_header) return;
  // Member/global declarations (`double x_ = ...;` at class scope) are spec
  // struct fields; only flag parameters, i.e. `double name` with a preceding
  // '(' or ',' on the same line and no '=' default making it a member.
  for (std::size_t pos = code.find("double"); pos != std::string::npos;
       pos = code.find("double", pos + 6)) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    if (!left_ok || is_ident_char(code[pos + 6])) continue;
    // Walk back over whitespace/const to the separator.
    std::size_t back = pos;
    while (back > 0 && (std::isspace(static_cast<unsigned char>(code[back - 1])))) --back;
    if (back >= 5 && code.compare(back - 5, 5, "const") == 0) {
      back -= 5;
      while (back > 0 && std::isspace(static_cast<unsigned char>(code[back - 1]))) --back;
    }
    if (back == 0 || (code[back - 1] != '(' && code[back - 1] != ',')) continue;
    // Parse the identifier after `double`.
    std::size_t p = pos + 6;
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    std::size_t name_end = p;
    while (name_end < code.size() && is_ident_char(code[name_end])) ++name_end;
    if (name_end == p) continue;
    const std::string_view name(code.data() + p, name_end - p);
    if (name_reads_as_unit(name)) {
      out.push_back({file.path, idx + 1, "naked-unit-param",
                     "parameter 'double " + std::string(name) +
                         "' in a boundary header: use the dimension-checked type from "
                         "common/units.hpp (Seconds, MetersPerSecond, VehiclesPerSecond, ...)"});
    }
  }
}

void check_banned_random(const FileUnderLint& file, const std::string& code,
                         std::size_t idx, std::vector<Violation>& out) {
  static constexpr std::string_view kBanned[] = {"std::rand", "srand", "std::srand"};
  for (const auto b : kBanned) {
    if (contains_word(code, b)) {
      out.push_back({file.path, idx + 1, "banned-random",
                     std::string(b) + " is banned: use common/random.hpp (deterministic, "
                                      "seedable, reproducible failures)"});
      return;
    }
  }
  // time(0) / time(NULL) / time(nullptr): the classic nondeterministic seed.
  for (std::size_t pos = code.find("time"); pos != std::string::npos;
       pos = code.find("time", pos + 4)) {
    if (pos > 0 && (is_ident_char(code[pos - 1]) || code[pos - 1] == '_')) continue;
    std::size_t p = pos + 4;
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (p >= code.size() || code[p] != '(') continue;
    ++p;
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (code.compare(p, 1, "0") == 0 || code.compare(p, 4, "NULL") == 0 ||
        code.compare(p, 7, "nullptr") == 0) {
      out.push_back({file.path, idx + 1, "banned-random",
                     "wall-clock seed time(...) is banned: use common/random.hpp"});
      return;
    }
  }
}

void check_nodiscard_result(const FileUnderLint& file, const std::string& code,
                            std::size_t idx, std::vector<Violation>& out) {
  if (!file.is_header) return;
  static constexpr std::string_view kSuffixes[] = {"Solution", "Result", "Report", "Response",
                                                   "Stats"};
  for (const auto kw : {std::string_view("struct"), std::string_view("class")}) {
    for (std::size_t pos = code.find(kw); pos != std::string::npos;
         pos = code.find(kw, pos + kw.size())) {
      const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      if (!left_ok || is_ident_char(code[pos + kw.size()])) continue;
      std::size_t p = pos + kw.size();
      while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
      std::size_t name_end = p;
      while (name_end < code.size() && is_ident_char(code[name_end])) ++name_end;
      if (name_end == p) continue;
      const std::string_view name(code.data() + p, name_end - p);
      // Forward declarations (`struct X;`) and uses (`struct X x;`) aside:
      // only definitions introduce the attribute, so require a '{' or ':'
      // (base clause) after the name on this line.
      std::size_t after = name_end;
      while (after < code.size() && std::isspace(static_cast<unsigned char>(code[after]))) ++after;
      if (after >= code.size() || (code[after] != '{' && code[after] != ':')) continue;
      const bool result_like = std::any_of(
          std::begin(kSuffixes), std::end(kSuffixes), [&](std::string_view s) {
            return name.size() > s.size() &&
                   name.compare(name.size() - s.size(), s.size(), s) == 0;
          });
      if (!result_like) continue;
      const bool annotated =
          code.find("[[nodiscard]]") != std::string::npos ||
          (idx > 0 && file.lines[idx - 1].find("[[nodiscard]]") != std::string::npos);
      if (!annotated) {
        out.push_back({file.path, idx + 1, "nodiscard-result",
                       std::string(name) + " is a result type: declare it [[nodiscard]] so "
                                           "dropped solver/planner output is a compile error"});
      }
    }
  }
}

void check_raw_sync(const FileUnderLint& file, const std::string& code, std::size_t idx,
                    std::vector<Violation>& out) {
  if (file.is_mutex_wrapper) return;
  for (const auto banned : {std::string_view("std::mutex"), std::string_view("std::condition_variable"),
                            std::string_view("std::lock_guard"), std::string_view("std::scoped_lock"),
                            std::string_view("std::unique_lock")}) {
    if (contains_word(code, banned)) {
      out.push_back({file.path, idx + 1, "raw-sync",
                     std::string(banned) + " outside common/mutex.hpp: use common::Mutex / "
                                           "common::MutexLock / common::CondVar so clang "
                                           "-Wthread-safety sees the lock"});
      return;
    }
  }
}

/// Raw SIMD intrinsics outside the portable wrapper layer. Fires on both the
/// intrinsic headers and the identifier prefixes, so neither a stray include
/// nor a copy-pasted kernel slips past; common/simd.hpp itself is the one
/// legitimate home for them.
void check_raw_intrinsics(const FileUnderLint& file, const std::string& code,
                          std::size_t idx, std::vector<Violation>& out) {
  if (file.path.ends_with("common/simd.hpp")) return;
  // Include paths live in the raw line (strip_noncode blanks string literals
  // and <...> survives, but match the raw text like include-hygiene does).
  const std::string& raw = file.lines[idx];
  if (raw.find("#include") != std::string::npos) {
    static constexpr std::string_view kHeaders[] = {"immintrin.h", "x86intrin.h",
                                                    "emmintrin.h", "arm_neon.h"};
    for (const auto h : kHeaders) {
      if (raw.find(h) != std::string::npos) {
        out.push_back({file.path, idx + 1, "raw-intrinsics",
                       std::string("#include <") + std::string(h) +
                           "> outside common/simd.hpp: all vector code goes through the "
                           "portable wrappers (scalar fallback + bit-identity live there)"});
        return;
      }
    }
  }
  static constexpr std::string_view kPrefixes[] = {"_mm_", "_mm256_", "_mm512_", "vld1q",
                                                   "vst1q"};
  for (const auto p : kPrefixes) {
    if (code.find(p) != std::string::npos) {
      out.push_back({file.path, idx + 1, "raw-intrinsics",
                     "raw SIMD intrinsic '" + std::string(p) +
                         "...' outside common/simd.hpp: use the evvo::common::simd wrappers"});
      return;
    }
  }
}

/// File-scope rule: a common::Mutex member without any EVVO_GUARDED_BY /
/// EVVO_REQUIRES in the same file is a mutex the analyzer cannot check.
void check_guarded_mutex(const FileUnderLint& file, const std::vector<std::string>& code_lines,
                         std::vector<Violation>& out) {
  if (file.is_mutex_wrapper) return;
  bool has_annotation = false;
  for (const auto& code : code_lines) {
    if (code.find("EVVO_GUARDED_BY") != std::string::npos ||
        code.find("EVVO_REQUIRES") != std::string::npos ||
        code.find("EVVO_PT_GUARDED_BY") != std::string::npos) {
      has_annotation = true;
      break;
    }
  }
  if (has_annotation) return;
  for (std::size_t idx = 0; idx < code_lines.size(); ++idx) {
    const std::string& code = code_lines[idx];
    if (!contains_word(code, "common::Mutex") && !contains_word(code, "Mutex")) continue;
    // Member declaration: `common::Mutex name;` or `Mutex name;` (inside
    // namespace common) — not a reference parameter or alias.
    const std::size_t pos = code.find("Mutex");
    std::size_t p = pos + 5;
    if (p < code.size() && (code[p] == '&' || code[p] == '*')) continue;  // param/ptr
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    std::size_t name_end = p;
    while (name_end < code.size() && is_ident_char(code[name_end])) ++name_end;
    if (name_end == p) continue;
    std::size_t q = name_end;
    while (q < code.size() && std::isspace(static_cast<unsigned char>(code[q]))) ++q;
    if (q < code.size() && code[q] == ';') {
      if (!suppressed(file, idx, "guarded-mutex")) {
        out.push_back({file.path, idx + 1, "guarded-mutex",
                       "file declares a Mutex member but contains no EVVO_GUARDED_BY/"
                       "EVVO_REQUIRES annotation: the analyzer cannot check an unannotated lock"});
      }
      return;  // one report per file is enough
    }
  }
}

void check_include_hygiene(const FileUnderLint& file, const std::vector<std::string>& code_lines,
                           std::vector<Violation>& out) {
  if (file.is_header) {
    bool has_pragma_once = false;
    for (const auto& raw : file.lines) {
      if (raw.find("#pragma once") != std::string::npos) {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      out.push_back({file.path, 1, "include-hygiene", "header is missing #pragma once"});
    }
  }
  for (std::size_t idx = 0; idx < code_lines.size(); ++idx) {
    // Include paths live inside string literals, which strip_noncode blanks;
    // #include lines cannot contain comments that matter, so scan them raw.
    const std::string& code =
        file.lines[idx].find("#include") != std::string::npos ? file.lines[idx] : code_lines[idx];
    if (code.find("#include \"../") != std::string::npos) {
      if (!suppressed(file, idx, "include-hygiene"))
        out.push_back({file.path, idx + 1, "include-hygiene",
                       "parent-relative include: include project headers by their src/-rooted "
                       "path"});
    }
    if (file.is_header && code.find("using namespace") != std::string::npos) {
      if (!suppressed(file, idx, "include-hygiene"))
        out.push_back({file.path, idx + 1, "include-hygiene",
                       "`using namespace` at header scope leaks into every includer"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Headers whose function signatures form the library's typed API boundary.
bool boundary_header(const std::string& path) {
  static constexpr std::string_view kBoundaries[] = {
      "core/planner.hpp",    "core/dp_solver.hpp",       "core/glosa.hpp",
      "traffic/queue_model.hpp", "traffic/queue_predictor.hpp", "ev/energy_model.hpp",
      "cloud/plan_service.hpp",
  };
  return std::any_of(std::begin(kBoundaries), std::end(kBoundaries),
                     [&](std::string_view b) { return path.ends_with(b); });
}

std::vector<Violation> lint_file(const FileUnderLint& file) {
  std::vector<Violation> out;
  std::vector<std::string> code_lines;
  code_lines.reserve(file.lines.size());
  bool in_block = false;
  for (const auto& raw : file.lines) code_lines.push_back(strip_noncode(raw, in_block));

  for (std::size_t idx = 0; idx < code_lines.size(); ++idx) {
    const std::string& code = code_lines[idx];
    std::vector<Violation> line_hits;
    check_naked_unit_param(file, code, idx, line_hits);
    check_banned_random(file, code, idx, line_hits);
    check_nodiscard_result(file, code, idx, line_hits);
    check_raw_sync(file, code, idx, line_hits);
    check_raw_intrinsics(file, code, idx, line_hits);
    for (auto& v : line_hits) {
      if (!suppressed(file, idx, v.rule)) out.push_back(std::move(v));
    }
  }
  check_guarded_mutex(file, code_lines, out);
  check_include_hygiene(file, code_lines, out);
  return out;
}

FileUnderLint load_file(const fs::path& path, const std::string& display) {
  FileUnderLint file;
  file.path = display;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) file.lines.push_back(line);
  file.is_header = display.ends_with(".hpp") || display.ends_with(".h");
  file.is_boundary_header = boundary_header(display);
  file.is_mutex_wrapper = display.ends_with("common/mutex.hpp") ||
                          display.ends_with("common/thread_annotations.hpp");
  return file;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void report(const std::vector<Violation>& violations, bool json) {
  for (const auto& v : violations) {
    if (json) {
      std::cout << "{\"file\":\"" << json_escape(v.file) << "\",\"line\":" << v.line
                << ",\"rule\":\"" << v.rule << "\",\"message\":\"" << json_escape(v.message)
                << "\"}\n";
    } else {
      std::cout << v.file << ":" << v.line << ": warning: [" << v.rule << "] " << v.message
                << "\n";
    }
  }
}

// ---------------------------------------------------------------------------
// Self-test: every rule must fire on a seeded violation and stay quiet when
// the violation is suppressed or the code is clean.
// ---------------------------------------------------------------------------

FileUnderLint snippet(const std::string& display, const std::string& text) {
  FileUnderLint file;
  file.path = display;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) file.lines.push_back(line);
  file.is_header = display.ends_with(".hpp");
  file.is_boundary_header = boundary_header(display);
  file.is_mutex_wrapper = display.ends_with("common/mutex.hpp");
  return file;
}

int self_test() {
  int failures = 0;
  const auto expect = [&](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "self-test FAILED: " << what << "\n";
      ++failures;
    }
  };
  const auto fires = [](const FileUnderLint& f, std::string_view rule) {
    const auto vs = lint_file(f);
    return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) { return v.rule == rule; });
  };

  // naked-unit-param: fires in a boundary header, not in an internal header,
  // not when suppressed, not on a typed parameter.
  expect(fires(snippet("src/core/planner.hpp",
                       "#pragma once\nvoid plan(double depart_time_s);\n"),
               "naked-unit-param"),
         "naked-unit-param fires on `double depart_time_s` in a boundary header");
  expect(fires(snippet("src/core/planner.hpp", "#pragma once\nvoid go(double speed);\n"),
               "naked-unit-param"),
         "naked-unit-param fires on `double speed`");
  expect(!fires(snippet("src/core/internal_detail.hpp",
                        "#pragma once\nvoid plan(double depart_time_s);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent outside boundary headers");
  expect(!fires(snippet("src/core/planner.hpp",
                        "#pragma once\nvoid plan(Seconds depart_time);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent on a strong-typed parameter");
  expect(!fires(snippet("src/core/planner.hpp",
                        "#pragma once\nvoid plan(double depart_time_s);  // evvo-lint: allow(naked-unit-param)\n"),
                "naked-unit-param"),
         "naked-unit-param honors suppression");
  expect(!fires(snippet("src/core/planner.hpp",
                        "#pragma once\nvoid turn(double grade_rad);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent on non-unit parameter names");

  // banned-random
  expect(fires(snippet("src/core/a.cpp", "int x = std::rand();\n"), "banned-random"),
         "banned-random fires on std::rand");
  expect(fires(snippet("src/core/a.cpp", "srand(time(0));\n"), "banned-random"),
         "banned-random fires on srand/time(0)");
  expect(!fires(snippet("src/core/a.cpp", "double run_time(Run r);\n"), "banned-random"),
         "banned-random is silent on identifiers containing 'time'/'rand'");
  expect(!fires(snippet("src/core/a.cpp", "// std::rand() would be wrong here\n"),
                "banned-random"),
         "banned-random ignores comments");

  // nodiscard-result
  expect(fires(snippet("src/core/b.hpp", "#pragma once\nstruct DpSolution {\n};\n"),
               "nodiscard-result"),
         "nodiscard-result fires on an unannotated Solution struct");
  expect(!fires(snippet("src/core/b.hpp",
                        "#pragma once\nstruct [[nodiscard]] DpSolution {\n};\n"),
                "nodiscard-result"),
         "nodiscard-result is silent when annotated");
  expect(!fires(snippet("src/core/b.hpp", "#pragma once\nstruct DpSolution;\n"),
                "nodiscard-result"),
         "nodiscard-result is silent on forward declarations");

  // raw-sync
  expect(fires(snippet("src/core/c.hpp", "#pragma once\nstd::mutex m_;\n"), "raw-sync"),
         "raw-sync fires on std::mutex outside the wrapper");
  expect(!fires(snippet("src/common/mutex.hpp", "#pragma once\nstd::mutex inner_;\n"),
                "raw-sync"),
         "raw-sync is silent inside common/mutex.hpp");

  // raw-intrinsics
  expect(fires(snippet("src/core/k.cpp", "#include <immintrin.h>\n"), "raw-intrinsics"),
         "raw-intrinsics fires on an intrinsic header include");
  expect(fires(snippet("src/core/k.cpp", "auto v = _mm_add_ps(a, b);\n"), "raw-intrinsics"),
         "raw-intrinsics fires on an _mm_ identifier");
  expect(fires(snippet("src/core/k.cpp", "auto v = vld1q_f32(p);\n"), "raw-intrinsics"),
         "raw-intrinsics fires on a NEON vld1q identifier");
  expect(!fires(snippet("src/common/simd.hpp",
                        "#pragma once\n#include <immintrin.h>\nauto v = _mm_add_ps(a, b);\n"),
                "raw-intrinsics"),
         "raw-intrinsics is silent inside common/simd.hpp");
  expect(!fires(snippet("src/core/k.cpp",
                        "#include <immintrin.h>  // evvo-lint: allow(raw-intrinsics)\n"),
                "raw-intrinsics"),
         "raw-intrinsics honors suppression");
  expect(!fires(snippet("src/core/k.cpp", "// _mm_add_ps would be wrong here\n"),
                "raw-intrinsics"),
         "raw-intrinsics ignores comments");

  // guarded-mutex
  expect(fires(snippet("src/core/d.hpp",
                       "#pragma once\nclass A {\n common::Mutex mutex_;\n};\n"),
               "guarded-mutex"),
         "guarded-mutex fires on a Mutex member with no annotations in file");
  expect(!fires(snippet("src/core/d.hpp",
                        "#pragma once\nclass A {\n common::Mutex mutex_;\n int x EVVO_GUARDED_BY(mutex_);\n};\n"),
                "guarded-mutex"),
         "guarded-mutex is silent when the file has annotations");

  // include-hygiene
  expect(fires(snippet("src/core/e.hpp", "int x;\n"), "include-hygiene"),
         "include-hygiene fires on a header without #pragma once");
  expect(fires(snippet("src/core/f.hpp", "#pragma once\n#include \"../road/route.hpp\"\n"),
               "include-hygiene"),
         "include-hygiene fires on parent-relative includes");
  expect(fires(snippet("src/core/g.hpp", "#pragma once\nusing namespace std;\n"),
               "include-hygiene"),
         "include-hygiene fires on using namespace in a header");
  expect(!fires(snippet("src/core/h.cpp", "using namespace std::chrono_literals;\n"),
                "include-hygiene"),
         "include-hygiene allows using namespace in a .cpp");

  if (failures == 0) std::cout << "evvo_lint self-test: all rules fire and suppress correctly\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string root;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: evvo_lint [--json] [--root <dir>] [files...]\n"
                   "       evvo_lint --self-test\n";
      return 0;
    } else {
      files.emplace_back(arg);
    }
  }

  std::vector<Violation> all;
  std::size_t file_count = 0;
  const auto lint_path = [&](const fs::path& p, const std::string& display) {
    const auto vs = lint_file(load_file(p, display));
    all.insert(all.end(), vs.begin(), vs.end());
    ++file_count;
  };

  if (!root.empty()) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) lint_path(p, p.generic_string());
  }
  for (const auto& f : files) lint_path(f, f);

  if (file_count == 0) {
    std::cerr << "evvo_lint: no input files (use --root <dir> or pass files)\n";
    return 2;
  }
  report(all, json);
  if (!json) {
    std::cout << "evvo_lint: " << all.size() << " violation(s) across " << file_count
              << " file(s)\n";
  }
  return all.empty() ? 0 : 1;
}
