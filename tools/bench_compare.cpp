// Benchmark-regression gate over Google-Benchmark JSON reports.
//
// Compares a candidate run against a committed baseline (BENCH_dp.json) and
// exits nonzero when any benchmark present in both regresses by more than
// --max-regress (default 10%). Used by the CI bench-gate job:
//
//   bench_perf --benchmark_format=json --benchmark_out=cand.json ...
//   bench_compare --baseline BENCH_dp.json --candidate cand.json --max-regress 0.10
//
// Exit codes: 0 = within budget, 1 = regression, 2 = usage/parse/config error.
//
// Debug numbers must never be compared (that is how the original baseline
// went bad): files whose evvo_build context tag - written by bench_perf's
// custom main - says "debug" are refused unless --allow-debug. The
// library_build_type tag is NOT consulted: it describes the google-benchmark
// library's own build, not ours.
//
// Entries carry a unit class: the four time units normalize to ns, and
// "count" (histogram-sourced telemetry metrics, e.g. batch group sizes from
// evvo_load) is its own class. An unknown unit is a parse error and a
// baseline/candidate class mismatch a config error - malformed telemetry
// JSON must fail loudly, never gate as if it were nanoseconds.
//
// Dependency-free by design (like evvo_lint): a minimal JSON parser below
// covers the subset google-benchmark emits, so the gate builds everywhere.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON ---------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return Json{};
    }
    return number();
  }

  std::optional<Json> object() {
    if (!consume('{')) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kObject;
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      std::optional<Json> key = string_value();
      if (!key || !consume(':')) return std::nullopt;
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      out.fields.emplace(std::move(key->str), std::move(*val));
      if (consume(',')) continue;
      if (consume('}')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> array() {
    if (!consume('[')) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kArray;
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      out.items.push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Json out;
    out.kind = Json::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.str += '"'; break;
          case '\\': out.str += '\\'; break;
          case '/': out.str += '/'; break;
          case 'b': out.str += '\b'; break;
          case 'f': out.str += '\f'; break;
          case 'n': out.str += '\n'; break;
          case 'r': out.str += '\r'; break;
          case 't': out.str += '\t'; break;
          case 'u':
            // Benchmark names are ASCII; non-BMP fidelity is not needed here.
            if (pos_ + 4 > text_.size()) return std::nullopt;
            pos_ += 4;
            out.str += '?';
            break;
          default: return std::nullopt;
        }
      } else {
        out.str += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> boolean() {
    Json out;
    out.kind = Json::Kind::kBool;
    if (literal("true")) {
      out.boolean = true;
      return out;
    }
    if (literal("false")) return out;
    return std::nullopt;
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kNumber;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return std::nullopt;
    }
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- benchmark report model -----------------------------------------------

struct BenchEntry {
  double time_ns = 0.0;  ///< normalized within its unit class (ns, or raw count)
  bool from_mean_aggregate = false;
  bool is_count = false;  ///< unit class: "count" vs time
};

struct BenchReport {
  std::string build_tag;  ///< context.evvo_build ("" when absent)
  std::map<std::string, BenchEntry> entries;  ///< base name -> preferred timing
};

/// Unit class and in-class scale. Time units normalize to ns; "count" is its
/// own class. Anything else is malformed input.
struct UnitInfo {
  double scale = 1.0;
  bool is_count = false;
};

std::optional<UnitInfo> parse_unit(const std::string& unit) {
  if (unit == "ns") return UnitInfo{1.0, false};
  if (unit == "us") return UnitInfo{1e3, false};
  if (unit == "ms") return UnitInfo{1e6, false};
  if (unit == "s") return UnitInfo{1e9, false};
  if (unit == "count") return UnitInfo{1.0, true};
  return std::nullopt;
}

std::string strip_suffix(const std::string& name, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  if (name.size() >= len && name.compare(name.size() - len, len, suffix) == 0) {
    return name.substr(0, name.size() - len);
  }
  return name;
}

/// Extracts per-benchmark timings from a parsed report. Mean aggregates win
/// over raw iteration entries of the same benchmark (repetition runs emit
/// both); other aggregates (median/stddev/cv) are ignored.
std::optional<BenchReport> extract_report(const Json& root, const std::string& metric) {
  BenchReport out;
  if (const Json* context = root.find("context")) {
    if (const Json* tag = context->find("evvo_build")) out.build_tag = tag->str;
  }
  const Json* benchmarks = root.find("benchmarks");
  if (!benchmarks || benchmarks->kind != Json::Kind::kArray) return std::nullopt;
  for (const Json& b : benchmarks->items) {
    const Json* name = b.find("name");
    const Json* time = b.find(metric);
    const Json* unit = b.find("time_unit");
    if (!name || !time || time->kind != Json::Kind::kNumber) continue;
    const Json* agg = b.find("aggregate_name");
    const bool is_aggregate = agg && agg->kind == Json::Kind::kString;
    if (is_aggregate && agg->str != "mean") continue;  // median/stddev/cv/...
    const std::string base =
        is_aggregate ? strip_suffix(name->str, "_mean") : name->str;
    UnitInfo ui;  // a missing time_unit means ns, benchmark's default
    if (unit) {
      const std::optional<UnitInfo> parsed = parse_unit(unit->str);
      if (!parsed) {
        std::fprintf(stderr, "bench_compare: %s has unrecognized time_unit \"%s\"\n",
                     name->str.c_str(), unit->str.c_str());
        return std::nullopt;
      }
      ui = *parsed;
    }
    BenchEntry& slot = out.entries[base];
    if (slot.from_mean_aggregate && !is_aggregate) continue;  // keep the mean
    slot.time_ns = time->number * ui.scale;
    slot.from_mean_aggregate = is_aggregate;
    slot.is_count = ui.is_count;
  }
  return out;
}

std::optional<BenchReport> load_report(const std::string& path, const std::string& metric) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::optional<Json> root = JsonParser(text).parse();
  if (!root) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n", path.c_str());
    return std::nullopt;
  }
  std::optional<BenchReport> report = extract_report(*root, metric);
  if (!report) {
    std::fprintf(stderr, "bench_compare: %s has no benchmarks array\n", path.c_str());
  }
  return report;
}

// --- comparison ------------------------------------------------------------

struct CompareOptions {
  double max_regress = 0.10;
  std::string filter;  ///< substring; empty = all
  bool allow_debug = false;
};

int check_build_tag(const BenchReport& report, const char* which, bool allow_debug) {
  if (report.build_tag == "debug" && !allow_debug) {
    std::fprintf(stderr,
                 "bench_compare: %s was recorded from a debug build (evvo_build=debug); "
                 "refusing to compare. Pass --allow-debug to override.\n",
                 which);
    return 2;
  }
  return 0;
}

int run_compare(const BenchReport& baseline, const BenchReport& candidate,
                const CompareOptions& opt) {
  if (const int rc = check_build_tag(baseline, "baseline", opt.allow_debug)) return rc;
  if (const int rc = check_build_tag(candidate, "candidate", opt.allow_debug)) return rc;

  std::size_t compared = 0;
  std::size_t regressions = 0;
  for (const auto& [name, base] : baseline.entries) {
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) continue;
    const auto it = candidate.entries.find(name);
    if (it == candidate.entries.end()) continue;  // candidate ran a subset
    if (base.is_count != it->second.is_count) {
      std::fprintf(stderr,
                   "bench_compare: %s is unit class \"%s\" in the baseline but \"%s\" in the "
                   "candidate - refusing to compare\n",
                   name.c_str(), base.is_count ? "count" : "ns",
                   it->second.is_count ? "count" : "ns");
      return 2;
    }
    ++compared;
    const double ratio = base.time_ns > 0.0 ? it->second.time_ns / base.time_ns : 1.0;
    const double delta_pct = (ratio - 1.0) * 100.0;
    const bool regressed = ratio > 1.0 + opt.max_regress;
    if (regressed) ++regressions;
    std::printf("%-48s %12.1f -> %12.1f %-5s %+7.1f%%%s\n", name.c_str(), base.time_ns,
                it->second.time_ns, base.is_count ? "count" : "ns", delta_pct,
                regressed ? "  REGRESSION" : "");
  }
  // Candidate benchmarks with no baseline entry are new (a benchmark added in
  // the same change that will record its baseline): reported for visibility,
  // never gated - there is no number to regress against.
  std::size_t fresh = 0;
  for (const auto& [name, cand] : candidate.entries) {
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) continue;
    if (baseline.entries.find(name) != baseline.entries.end()) continue;
    ++fresh;
    std::printf("%-48s %12s -> %12.1f %-5s NEW (no baseline)\n", name.c_str(), "-",
                cand.time_ns, cand.is_count ? "count" : "ns");
  }
  if (compared == 0 && fresh == 0) {
    std::fprintf(stderr,
                 "bench_compare: no benchmark appears in either report%s%s - nothing gated\n",
                 opt.filter.empty() ? "" : " under filter ",
                 opt.filter.c_str());
    return 2;
  }
  std::printf("%zu benchmark(s) compared, %zu new, %zu regression(s) beyond %.0f%%\n", compared,
              fresh, regressions, opt.max_regress * 100.0);
  return regressions == 0 ? 0 : 1;
}

// --- self-test --------------------------------------------------------------

std::string report_json(const char* build, const char* name, double time, const char* unit) {
  std::ostringstream out;
  out << R"({"context": {"evvo_build": ")" << build << R"("}, "benchmarks": [)"
      << R"({"name": ")" << name << R"(", "run_type": "iteration", "cpu_time": )" << time
      << R"(, "real_time": )" << time << R"(, "time_unit": ")" << unit << R"("}]})";
  return out.str();
}

int self_test() {
  int failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
    } else {
      std::printf("self-test ok: %s\n", what);
    }
  };
  const auto parse = [](const std::string& text, const char* metric) {
    std::optional<Json> root = JsonParser(text).parse();
    return extract_report(*root, metric);
  };
  CompareOptions opt;

  // Equal timings pass the gate.
  const auto base = parse(report_json("release", "BM_X/10", 100.0, "ns"), "cpu_time");
  const auto same = parse(report_json("release", "BM_X/10", 100.0, "ns"), "cpu_time");
  expect(run_compare(*base, *same, opt) == 0, "identical reports pass");

  // A 15% injected regression trips the 10% gate.
  const auto slow = parse(report_json("release", "BM_X/10", 115.0, "ns"), "cpu_time");
  expect(run_compare(*base, *slow, opt) == 1, "injected 15% regression fails");

  // 8% stays under the default threshold.
  const auto mild = parse(report_json("release", "BM_X/10", 108.0, "ns"), "cpu_time");
  expect(run_compare(*base, *mild, opt) == 0, "8% drift passes the 10% gate");

  // Debug-tagged reports are refused (and admitted with --allow-debug).
  const auto dbg = parse(report_json("debug", "BM_X/10", 100.0, "ns"), "cpu_time");
  expect(run_compare(*base, *dbg, opt) == 2, "debug candidate refused");
  CompareOptions permissive = opt;
  permissive.allow_debug = true;
  expect(run_compare(*base, *dbg, permissive) == 0, "--allow-debug admits debug numbers");

  // Units are normalized before comparing: 0.0001 ms == 100 ns.
  const auto ms = parse(report_json("release", "BM_X/10", 0.0001, "ms"), "cpu_time");
  expect(run_compare(*base, *ms, opt) == 0, "ms vs ns reports normalize");

  // Count-class entries (histogram-sourced telemetry metrics, e.g. batch
  // group sizes) gate like any other, within their own unit class.
  const auto cbase = parse(report_json("release", "BM_Load/batch", 32.0, "count"), "cpu_time");
  const auto csame = parse(report_json("release", "BM_Load/batch", 32.0, "count"), "cpu_time");
  expect(run_compare(*cbase, *csame, opt) == 0, "count-unit entries pass");
  const auto cgrow = parse(report_json("release", "BM_Load/batch", 40.0, "count"), "cpu_time");
  expect(run_compare(*cbase, *cgrow, opt) == 1, "count regression trips the gate");

  // A ns-vs-count class mismatch is a config error, not a silent ratio.
  const auto mismatched = parse(report_json("release", "BM_X/10", 100.0, "count"), "cpu_time");
  expect(run_compare(*base, *mismatched, opt) == 2, "unit-class mismatch refused");

  // An unknown unit is a parse error: malformed telemetry JSON fails loudly.
  const auto bogus = parse(report_json("release", "BM_X/10", 100.0, "furlongs"), "cpu_time");
  expect(!bogus.has_value(), "unknown unit rejected at parse");

  // Mean aggregates beat raw iteration entries of the same benchmark.
  const std::string agg = R"({"context": {"evvo_build": "release"}, "benchmarks": [
    {"name": "BM_X/10", "run_type": "iteration", "cpu_time": 500.0, "time_unit": "ns"},
    {"name": "BM_X/10_mean", "run_type": "aggregate", "aggregate_name": "mean",
     "cpu_time": 100.0, "time_unit": "ns"},
    {"name": "BM_X/10_stddev", "run_type": "aggregate", "aggregate_name": "stddev",
     "cpu_time": 3.0, "time_unit": "ns"}]})";
  const auto agg_report = parse(agg, "cpu_time");
  expect(agg_report->entries.size() == 1 &&
             agg_report->entries.at("BM_X/10").time_ns == 100.0,
         "mean aggregate preferred over iteration entry");

  // A candidate-only benchmark is "new": reported, never gated, and it does
  // not mask a real regression elsewhere in the same report.
  const std::string grown = R"({"context": {"evvo_build": "release"}, "benchmarks": [
    {"name": "BM_X/10", "run_type": "iteration", "cpu_time": 100.0, "time_unit": "ns"},
    {"name": "BM_New/1", "run_type": "iteration", "cpu_time": 42.0, "time_unit": "ns"}]})";
  const auto grown_report = parse(grown, "cpu_time");
  expect(run_compare(*base, *grown_report, opt) == 0, "new benchmark passes alongside baseline");
  const std::string grown_slow = R"({"context": {"evvo_build": "release"}, "benchmarks": [
    {"name": "BM_X/10", "run_type": "iteration", "cpu_time": 130.0, "time_unit": "ns"},
    {"name": "BM_New/1", "run_type": "iteration", "cpu_time": 42.0, "time_unit": "ns"}]})";
  const auto grown_slow_report = parse(grown_slow, "cpu_time");
  expect(run_compare(*base, *grown_slow_report, opt) == 1,
         "new benchmark does not mask a regression");

  // An all-new candidate (first run after adding benchmarks to the filter)
  // passes with the additions reported; nothing exists to gate yet.
  const auto other = parse(report_json("release", "BM_Y/1", 100.0, "ns"), "cpu_time");
  expect(run_compare(*base, *other, opt) == 0, "all-new candidate passes, reported as new");

  // Two reports with nothing in them at all still flag a config error.
  const std::string empty_report =
      R"({"context": {"evvo_build": "release"}, "benchmarks": []})";
  const auto none = parse(empty_report, "cpu_time");
  expect(run_compare(*none, *none, opt) == 2, "empty reports are an error");

  if (failures == 0) std::printf("bench_compare self-test: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare --baseline FILE --candidate FILE\n"
               "         [--max-regress FRACTION]   regression budget (default 0.10)\n"
               "         [--metric cpu_time|real_time]  (default cpu_time)\n"
               "         [--filter SUBSTRING]       gate only matching benchmarks\n"
               "         [--allow-debug]            admit evvo_build=debug reports\n"
               "       bench_compare --self-test\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string metric = "cpu_time";
  CompareOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--self-test") return self_test();
    if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--candidate") {
      const char* v = next();
      if (!v) return usage();
      candidate_path = v;
    } else if (arg == "--max-regress") {
      const char* v = next();
      if (!v) return usage();
      opt.max_regress = std::strtod(v, nullptr);
      if (opt.max_regress <= 0.0) {
        std::fprintf(stderr, "bench_compare: --max-regress must be positive\n");
        return 2;
      }
    } else if (arg == "--metric") {
      const char* v = next();
      if (!v || (std::strcmp(v, "cpu_time") != 0 && std::strcmp(v, "real_time") != 0)) {
        return usage();
      }
      metric = v;
    } else if (arg == "--filter") {
      const char* v = next();
      if (!v) return usage();
      opt.filter = v;
    } else if (arg == "--allow-debug") {
      opt.allow_debug = true;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return usage();

  const std::optional<BenchReport> baseline = load_report(baseline_path, metric);
  if (!baseline) return 2;
  const std::optional<BenchReport> candidate = load_report(candidate_path, metric);
  if (!candidate) return 2;
  return run_compare(*baseline, *candidate, opt);
}
