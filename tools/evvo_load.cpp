// evvo_load - seeded synthetic fleet-traffic harness for cloud::PlanService.
//
// Generates a deterministic fleet workload (Poisson arrivals, Zipf hot-slot
// skew, mixed cold-plan/replan traffic) over a small signalized corridor and
// drives the planning service from M threads, reporting p50/p99 serving
// latency and plans/sec. Three modes:
//
//   --mode legacy    per-request PlanResponse serving on a 1-shard service -
//                    the original single-mutex layout and its materializing
//                    hit path (every hit copies the node vector).
//   --mode sharded   per-tick batched PlanTicket serving on an N-shard
//                    service - the fleet path this tool exists to size.
//   --mode compare   both, on the byte-identical workload; prints the
//                    plans/sec speedup and fails (exit 1) when it is below
//                    --min-speedup. This is the CI load-smoke gate.
//
// --out writes the numbers as Google-Benchmark-style JSON
// (BM_LoadPlanService/<mode>_{per_plan,p50,p99}) tagged with evvo_build, so
// tools/bench_compare gates them against BENCH_dp.json like any solver
// benchmark. Latency percentiles are histogram-derived (telemetry.hpp
// log-linear layout, 6.25% bucket width) - no per-run sample sort.
//
// --telemetry-dump FILE writes the full telemetry registry snapshot (shard
// counters, solver spans, load latency histograms) as JSON after the run;
// tools/evvo_stat pretty-prints and diffs the format.
//
// --check replays a small workload single-threaded through the batched
// ticket path and asserts every materialized response byte-equals the
// differential oracle: a cold VelocityPlanner solve of the key's canonical
// state at its first-occurrence time, time-shifted to the request (exact
// double equality, no tolerance). --tamper perturbs one served node and must
// make the check fail - the WILL_FAIL ctest twin proves the comparator can
// see a corrupted cache entry.
//
// Exit codes: 0 ok, 1 check/speedup failure, 2 usage error.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cloud/plan_service.hpp"
#include "cloud/shard.hpp"
#include "common/clock.hpp"
#include "common/random.hpp"
#include "common/telemetry.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"

namespace {

using namespace evvo;

struct Options {
  std::uint64_t seed = 1;
  std::size_t requests = 10000;
  unsigned threads = 1;
  unsigned shards = 8;
  double replan_frac = 0.3;
  double zipf_s = 1.1;
  /// Fraction of requests redirected to never-warmed replan keys (cold
  /// solver misses). Misses share one canonical mid-route layer so the
  /// batched solver can pack them into SoA lanes.
  double miss_rate = 0.0;
  std::size_t batch = 256;
  std::string mode = "compare";  // legacy | sharded | compare
  double min_speedup = 0.0;
  std::string out_path;
  std::string telemetry_dump_path;
  bool check = false;
  bool tamper = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: evvo_load [--seed N] [--requests N] [--threads M] [--shards N]\n"
      "                 [--replan-frac F] [--zipf-s F] [--miss-rate F] [--batch N]\n"
      "                 [--mode legacy|sharded|compare] [--min-speedup F]\n"
      "                 [--out FILE] [--telemetry-dump FILE] [--check] [--tamper]\n"
      "  --check replays the workload against the cold-solve oracle "
      "(single-threaded);\n"
      "  --tamper corrupts one served node so the check must fail.\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "evvo_load: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--requests") {
      const char* v = next("--requests");
      if (!v) return false;
      opt.requests = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      opt.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--shards") {
      const char* v = next("--shards");
      if (!v) return false;
      opt.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--replan-frac") {
      const char* v = next("--replan-frac");
      if (!v) return false;
      opt.replan_frac = std::strtod(v, nullptr);
    } else if (arg == "--zipf-s") {
      const char* v = next("--zipf-s");
      if (!v) return false;
      opt.zipf_s = std::strtod(v, nullptr);
    } else if (arg == "--miss-rate") {
      const char* v = next("--miss-rate");
      if (!v) return false;
      opt.miss_rate = std::strtod(v, nullptr);
    } else if (arg == "--batch") {
      const char* v = next("--batch");
      if (!v) return false;
      opt.batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mode") {
      const char* v = next("--mode");
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--min-speedup") {
      const char* v = next("--min-speedup");
      if (!v) return false;
      opt.min_speedup = std::strtod(v, nullptr);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      opt.out_path = v;
    } else if (arg == "--telemetry-dump") {
      const char* v = next("--telemetry-dump");
      if (!v) return false;
      opt.telemetry_dump_path = v;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--tamper") {
      opt.tamper = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "evvo_load: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  if (opt.requests == 0 || opt.threads == 0 || opt.shards == 0 || opt.batch == 0) {
    std::fprintf(stderr, "evvo_load: counts must be positive\n");
    return false;
  }
  if (opt.miss_rate < 0.0 || opt.miss_rate > 1.0) {
    std::fprintf(stderr, "evvo_load: --miss-rate must be in [0, 1]\n");
    return false;
  }
  if (opt.mode != "legacy" && opt.mode != "sharded" && opt.mode != "compare") {
    std::fprintf(stderr, "evvo_load: unknown --mode %s\n", opt.mode.c_str());
    return false;
  }
  return true;
}

// --- Workload ------------------------------------------------------------

/// The serving corridor: a fleet-scale 3 km urban arterial with three
/// coordinated lights. Every cycle is 60 s, so the hyperperiod stays 60 s
/// and phase slots are easy to lay out; profiles run ~300 nodes, the size
/// regime where per-request copies actually cost something.
core::VelocityPlanner make_planner() {
  road::Corridor corridor{road::Route({{0.0, 1200.0, 14.0, 0.0, 0.0},
                                       {1200.0, 2100.0, 12.0, 0.0, 0.01},
                                       {2100.0, 3000.0, 14.0, 0.0, 0.0}}),
                          {road::TrafficLight(400.0, 27.0, 33.0),
                           road::TrafficLight(1400.0, 25.0, 35.0, 18.0),
                           road::TrafficLight(2400.0, 27.0, 33.0, 41.0)},
                          {}};
  core::PlannerConfig cfg;
  cfg.policy = core::SignalPolicy::kGreenWindow;
  cfg.resolution.horizon_s = 420.0;
  return core::VelocityPlanner(std::move(corridor), ev::EnergyModel{}, cfg);
}

std::shared_ptr<traffic::ConstantArrivalRate> demand() {
  return std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(500.0));
}

/// One reusable request identity. Plan slots are departure phases; replan
/// slots are quantizer-exact mid-route states (position on the 10 m solver
/// grid, speed on the 0.5 m/s level grid) so the canonical state the service
/// solves is the state the oracle solves.
struct Slot {
  bool replan = false;
  double phase_s = 0.0;
  double position_m = 0.0;
  double speed_ms = 0.0;
};

std::vector<Slot> plan_slots() {
  std::vector<Slot> slots;
  for (int p = 0; p < 12; ++p) slots.push_back(Slot{false, 2.0 + 5.0 * p, 0.0, 0.0});
  return slots;
}

/// Cold-miss key space: one canonical mid-route layer (position 1230 m, on
/// the 10 m solver grid, inside the 12 m/s segment) crossed with every
/// (phase bin, velocity level) pair the grid admits. Misses drawn from here
/// were never warmed, and sharing the layer means a tick's misses present
/// the batched solver with SoA-compatible lanes. The space holds
/// 60 phases x 23 levels = 1380 distinct keys; a workload drawing more
/// wraps around (later draws become hits), which keeps long runs bounded.
constexpr double kMissPositionM = 1230.0;
constexpr std::size_t kMissPhases = 60;
constexpr std::size_t kMissVlevels = 23;  // 0.5 .. 11.5 m/s on the 0.5 grid

Slot miss_slot(std::size_t idx) {
  const std::size_t combo = idx % (kMissPhases * kMissVlevels);
  const auto phase = static_cast<double>(combo % kMissPhases);
  const double speed = 0.5 + 0.5 * static_cast<double>(combo / kMissPhases);
  return Slot{true, phase + 0.5, kMissPositionM, speed};
}

std::vector<Slot> replan_slots() {
  std::vector<Slot> slots;
  int j = 0;
  for (double position : {500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    for (double speed : {8.0, 10.0}) {
      slots.push_back(Slot{true, 1.0 + 6.0 * j, position, speed});
      ++j;
    }
  }
  return slots;
}

/// Zipf CDF over ranks 0..n-1 with exponent s: rank r has weight 1/(r+1)^s.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t sample_cdf(const std::vector<double>& cdf, evvo::Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

struct Request {
  bool replan = false;
  int vehicle = 0;
  double time_s = 0.0;
  double position_m = 0.0;
  double speed_ms = 0.0;
};

/// Deterministic synthetic fleet stream: Poisson arrivals advance a clock
/// (mean gap 50 ms -> ~20 req/s of simulated fleet time), a Bernoulli coin
/// picks plan-vs-replan traffic, and a Zipf draw over the class's slots
/// skews load onto hot slots. Request times land inside the slot's phase bin
/// (phase + jitter within the 1 s quantum) at the arrival's hyperperiod
/// epoch, so hot slots repeat as phase-congruent cache traffic - the fleet
/// structure the service exists to exploit.
std::vector<Request> make_workload(const Options& opt, std::size_t count,
                                   std::uint64_t stream) {
  evvo::Rng rng(opt.seed * 1000003ull + stream);
  const std::vector<Slot> plans = plan_slots();
  const std::vector<Slot> replans = replan_slots();
  const std::vector<double> plan_cdf = zipf_cdf(plans.size(), opt.zipf_s);
  const std::vector<double> replan_cdf = zipf_cdf(replans.size(), opt.zipf_s);

  std::vector<Request> requests;
  requests.reserve(count);
  double clock = 120.0;
  std::size_t misses = 0;
  for (std::size_t i = 0; i < count; ++i) {
    clock += rng.exponential(20.0);  // Poisson arrivals, mean gap 0.05 s
    const double epoch = std::floor(clock / 60.0);
    if (rng.bernoulli(opt.miss_rate)) {
      // Cold traffic: walk the miss key space in stream-striped order so
      // concurrent driver threads never draw the same key.
      const Slot slot = miss_slot(misses++ * std::max(1u, opt.threads) + stream);
      const double time = 60.0 * epoch + slot.phase_s;
      requests.push_back(
          Request{true, static_cast<int>(i), time, slot.position_m, slot.speed_ms});
      continue;
    }
    const bool replan = rng.bernoulli(opt.replan_frac);
    const Slot& slot =
        replan ? replans[sample_cdf(replan_cdf, rng)] : plans[sample_cdf(plan_cdf, rng)];
    const double time = 60.0 * epoch + slot.phase_s + rng.uniform(-0.4, 0.4);
    requests.push_back(Request{slot.replan, static_cast<int>(i), time, slot.position_m,
                               slot.speed_ms});
  }
  return requests;
}

/// Solves every slot once (epoch 0 of each phase) so the measured stream is
/// the steady-state hit regime in both modes.
void warm_service(cloud::PlanService& service) {
  for (const Slot& slot : plan_slots()) (void)service.request_plan({-1, slot.phase_s});
  for (const Slot& slot : replan_slots())
    (void)service.request_replan({-1, slot.position_m, slot.speed_ms, slot.phase_s});
}

// --- Load measurement ----------------------------------------------------

struct LoadResult {
  double wall_s = 0.0;
  const telemetry::Histogram* latency_hist = nullptr;  // one sample per request
  long served = 0;
  /// Batch-path group sizes (sharded mode only): same-key groups per tick,
  /// from the service's batch_group_size histogram.
  std::uint64_t groups = 0;
  double group_p50 = 0.0;
  double group_p99 = 0.0;

  double per_plan_ns() const { return wall_s * 1e9 / std::max(1L, served); }
  double plans_per_sec() const { return served / std::max(1e-12, wall_s); }
  /// Histogram-derived percentile: the sample's bucket lower bound, within
  /// one bucket width (6.25%) of the value a full sample sort would give.
  /// Threads record straight into the shared lock-free histogram, so there
  /// is no per-thread sample vector and no O(n log n) post-pass.
  double percentile(double p) const {
    return latency_hist ? static_cast<double>(latency_hist->percentile(p)) : 0.0;
  }
};

/// Legacy serving: one materializing PlanResponse call per request - what
/// every caller of the pre-shard service did.
void drive_legacy(cloud::PlanService& service, const std::vector<Request>& requests,
                  telemetry::Histogram& lat_hist, std::size_t& sink) {
  for (const Request& r : requests) {
    const std::uint64_t start = common::now_ns();
    const cloud::PlanResponse response =
        r.replan ? service.request_replan({r.vehicle, r.position_m, r.speed_ms, r.time_s})
                 : service.request_plan({r.vehicle, r.time_s});
    lat_hist.record(common::now_ns() - start);
    sink += response.profile.nodes().size();
  }
}

/// Sharded serving: per-tick batched ticket dispatch (one cache transaction
/// per distinct key per tick, no node-vector copies). Each request's latency
/// is its whole tick's serve time - the conservative attribution.
void drive_sharded(cloud::PlanService& service, const std::vector<Request>& requests,
                   std::size_t batch, telemetry::Histogram& lat_hist, std::size_t& sink) {
  std::vector<cloud::PlanRequest> plans;
  std::vector<cloud::ReplanRequest> replans;
  for (std::size_t begin = 0; begin < requests.size(); begin += batch) {
    const std::size_t end = std::min(requests.size(), begin + batch);
    plans.clear();
    replans.clear();
    for (std::size_t i = begin; i < end; ++i) {
      const Request& r = requests[i];
      if (r.replan) {
        replans.push_back({r.vehicle, r.position_m, r.speed_ms, r.time_s});
      } else {
        plans.push_back({r.vehicle, r.time_s});
      }
    }
    const std::uint64_t start = common::now_ns();
    const std::vector<cloud::PlanTicket> plan_tickets = service.request_plan_tickets(plans);
    const std::vector<cloud::PlanTicket> replan_tickets =
        service.request_replan_tickets(replans);
    const std::uint64_t tick_ns = common::now_ns() - start;
    for (const cloud::PlanTicket& t : plan_tickets) sink += t.reference->nodes().size();
    for (const cloud::PlanTicket& t : replan_tickets) sink += t.reference->nodes().size();
    for (std::size_t i = begin; i < end; ++i) lat_hist.record(tick_ns);
  }
}

LoadResult run_load(const Options& opt, bool sharded) {
  cloud::CacheConfig cache;
  cache.shards = sharded ? opt.shards : 1;
  cache.batch_threads = 1;  // drivers are the concurrency; no inner pool
  cloud::PlanService service(make_planner(), demand(), cache);
  warm_service(service);

  // Per-mode latency histogram; reset so compare mode's second run starts
  // clean (the registry is process-global).
  telemetry::Histogram& lat_hist = telemetry::histogram(
      std::string("load.") + (sharded ? "sharded" : "legacy") + ".latency_ns");
  lat_hist.reset();

  // Per-thread deterministic streams: thread t serves its own workload
  // slice, so the byte content of the traffic does not depend on --threads
  // interleaving.
  const std::size_t per_thread = (opt.requests + opt.threads - 1) / opt.threads;
  std::vector<std::vector<Request>> streams;
  std::size_t remaining = opt.requests;
  for (unsigned t = 0; t < opt.threads && remaining > 0; ++t) {
    const std::size_t n = std::min(per_thread, remaining);
    streams.push_back(make_workload(opt, n, t));
    remaining -= n;
  }

  std::vector<std::size_t> sinks(streams.size(), 0);
  const std::uint64_t start = common::now_ns();
  if (streams.size() == 1) {
    if (sharded) {
      drive_sharded(service, streams[0], opt.batch, lat_hist, sinks[0]);
    } else {
      drive_legacy(service, streams[0], lat_hist, sinks[0]);
    }
  } else {
    std::vector<std::thread> drivers;
    for (std::size_t t = 0; t < streams.size(); ++t) {
      drivers.emplace_back([&, t] {
        if (sharded) {
          drive_sharded(service, streams[t], opt.batch, lat_hist, sinks[t]);
        } else {
          drive_legacy(service, streams[t], lat_hist, sinks[t]);
        }
      });
    }
    for (auto& d : drivers) d.join();
  }
  const std::uint64_t end = common::now_ns();

  LoadResult result;
  result.wall_s = common::seconds_between_ns(start, end);
  result.latency_hist = &lat_hist;
  result.served = static_cast<long>(lat_hist.count());

  const cloud::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "  [%s] served %ld requests in %.3f s: %.0f plans/s, per-plan %.0f ns, "
               "p50 %.0f ns, p99 %.0f ns (hits %ld, solves %ld, shards %zu)\n",
               sharded ? "sharded" : "legacy", result.served, result.wall_s,
               result.plans_per_sec(), result.per_plan_ns(), result.percentile(0.50),
               result.percentile(0.99), stats.cache_hits, stats.solver_runs,
               service.shard_count());
  if (sharded) {
    const telemetry::Histogram& groups = service.batch_group_sizes();
    result.groups = groups.count();
    if (result.groups > 0) {
      result.group_p50 = static_cast<double>(groups.percentile(0.50));
      result.group_p99 = static_cast<double>(groups.percentile(0.99));
      std::fprintf(stderr,
                   "  [%s] batch groups: %llu over the run, size p50 %.0f, p99 %.0f\n",
                   "sharded", static_cast<unsigned long long>(result.groups),
                   result.group_p50, result.group_p99);
    }
  }
  return result;
}

// --- Bench JSON ----------------------------------------------------------

struct JsonEntry {
  std::string name;
  double value = 0.0;
  const char* unit = "ns";  ///< "ns" (time) or "count" (histogram metrics)
};

void write_bench_json(const std::string& path, const Options& opt,
                      const std::vector<JsonEntry>& entries) {
#if defined(NDEBUG)
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  std::ofstream out(path);
  out << "{\n  \"context\": {\n"
      << "    \"evvo_build\": \"" << build << "\",\n"
      << "    \"evvo_load_seed\": \"" << opt.seed << "\",\n"
      << "    \"evvo_load_requests\": \"" << opt.requests << "\",\n"
      << "    \"evvo_load_threads\": \"" << opt.threads << "\"\n"
      << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].name
        << "\", \"run_type\": \"iteration\", \"iterations\": 1, \"real_time\": "
        << entries[i].value << ", \"cpu_time\": " << entries[i].value
        << ", \"time_unit\": \"" << entries[i].unit << "\"}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void append_entries(std::vector<JsonEntry>& entries, const std::string& tag,
                    const LoadResult& result) {
  entries.push_back({"BM_LoadPlanService/" + tag + "_per_plan", result.per_plan_ns()});
  entries.push_back({"BM_LoadPlanService/" + tag + "_p50", result.percentile(0.50)});
  entries.push_back({"BM_LoadPlanService/" + tag + "_p99", result.percentile(0.99)});
  if (result.groups > 0) {
    entries.push_back(
        {"BM_LoadPlanService/" + tag + "_batch_group_p50", result.group_p50, "count"});
    entries.push_back(
        {"BM_LoadPlanService/" + tag + "_batch_group_p99", result.group_p99, "count"});
  }
}

// --- Differential check --------------------------------------------------

bool nodes_equal(const std::vector<core::PlanNode>& a, const std::vector<core::PlanNode>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].position_m != b[i].position_m || a[i].speed_ms != b[i].speed_ms ||
        a[i].time_s != b[i].time_s || a[i].energy_mah != b[i].energy_mah) {
      return false;
    }
  }
  return true;
}

/// Replays the workload through the batched ticket path and compares every
/// materialized response, byte for byte, against the cold-solve oracle: an
/// independent VelocityPlanner solving the key's canonical state at its
/// first-occurrence time, shifted to the request time. cache_hit flags are
/// checked against first-occurrence order as well.
int run_check(const Options& opt) {
  cloud::CacheConfig cache;
  cache.shards = opt.shards;
  cache.batch_threads = 1;
  cloud::PlanService service(make_planner(), demand(), cache);
  core::VelocityPlanner oracle = make_planner();
  const auto arrivals = demand();

  const std::vector<Request> requests = make_workload(opt, opt.requests, 0);
  const std::size_t tamper_at = opt.requests / 2;

  using OracleKey = std::tuple<long, long, long, long>;
  struct OracleEntry {
    double first_time;
    core::PlannedProfile profile;
  };
  std::map<OracleKey, OracleEntry> seen;
  long failures = 0;
  long checked = 0;

  constexpr std::size_t kTick = 8;
  for (std::size_t begin = 0; begin < requests.size(); begin += kTick) {
    const std::size_t end = std::min(requests.size(), begin + kTick);
    std::vector<cloud::PlanRequest> plans;
    std::vector<cloud::ReplanRequest> replans;
    std::vector<std::size_t> plan_idx;
    std::vector<std::size_t> replan_idx;
    for (std::size_t i = begin; i < end; ++i) {
      const Request& r = requests[i];
      if (r.replan) {
        replans.push_back({r.vehicle, r.position_m, r.speed_ms, r.time_s});
        replan_idx.push_back(i);
      } else {
        plans.push_back({r.vehicle, r.time_s});
        plan_idx.push_back(i);
      }
    }
    const std::vector<cloud::PlanTicket> plan_tickets = service.request_plan_tickets(plans);
    const std::vector<cloud::PlanTicket> replan_tickets =
        service.request_replan_tickets(replans);

    // Within a tick the service serves plan groups before replan groups, so
    // feed the oracle in the same order: first-occurrence bookkeeping must
    // match the leader the service actually elected.
    const auto check_one = [&](const Request& r, const cloud::PlanTicket& ticket) {
      const cloud::PlanService::RequestSlot slot =
          r.replan ? service.slot_for_replan(Meters(r.position_m),
                                             MetersPerSecond(r.speed_ms), Seconds(r.time_s))
                   : service.slot_for_plan(Seconds(r.time_s));
      const OracleKey key{slot.key.phase_bin, slot.key.demand_bin, slot.key.layer,
                          slot.key.vlevel};
      const auto it = seen.find(key);
      const bool first = it == seen.end();
      const core::PlannedProfile expected =
          first ? (r.replan ? oracle.replan(Meters(r.position_m), MetersPerSecond(r.speed_ms),
                                            Seconds(r.time_s), arrivals)
                            : oracle.plan(Seconds(r.time_s), arrivals))
                : it->second.profile.time_shifted(r.time_s - it->second.first_time);
      if (first) seen.emplace(key, OracleEntry{r.time_s, expected});

      std::vector<core::PlanNode> served = ticket.materialize().nodes();
      if (opt.tamper && static_cast<std::size_t>(r.vehicle) == tamper_at && !served.empty()) {
        served[served.size() / 2].speed_ms += 1e-9;  // simulated cache corruption
      }
      ++checked;
      if (ticket.cache_hit == first) {
        ++failures;
        std::fprintf(stderr,
                     "evvo_load: request %d cache_hit=%d but key %s seen before\n",
                     r.vehicle, ticket.cache_hit ? 1 : 0, first ? "never" : "was");
      }
      if (!nodes_equal(served, expected.nodes())) {
        ++failures;
        std::fprintf(stderr,
                     "evvo_load: request %d (t=%.3f, %s) diverges from the cold-solve "
                     "oracle (%zu vs %zu nodes)\n",
                     r.vehicle, r.time_s, r.replan ? "replan" : "plan", served.size(),
                     expected.nodes().size());
      }
    };
    for (std::size_t k = 0; k < plan_idx.size(); ++k)
      check_one(requests[plan_idx[k]], plan_tickets[k]);
    for (std::size_t k = 0; k < replan_idx.size(); ++k)
      check_one(requests[replan_idx[k]], replan_tickets[k]);
  }

  const cloud::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "evvo_load --check: %ld responses vs oracle, %ld mismatches "
               "(%zu distinct keys, %ld solver runs, %ld hits)\n",
               checked, failures, seen.size(), stats.solver_runs, stats.cache_hits);
  if (stats.requests != stats.cache_hits + stats.solver_runs + stats.rejections) {
    std::fprintf(stderr, "evvo_load: stats identity violated\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

/// Writes the full registry snapshot as JSON (the evvo_stat input format).
bool dump_telemetry(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "evvo_load: cannot write %s\n", path.c_str());
    return false;
  }
  out << telemetry::to_json(telemetry::snapshot()) << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (opt.tamper && !opt.check) {
    std::fprintf(stderr, "evvo_load: --tamper requires --check\n");
    return 2;
  }
  if (opt.check) {
    const int rc = run_check(opt);
    if (!opt.telemetry_dump_path.empty() && !dump_telemetry(opt.telemetry_dump_path)) return 2;
    return rc;
  }

  std::vector<JsonEntry> entries;
  double speedup = 0.0;
  const std::string sharded_tag = "sharded" + std::to_string(opt.shards);
  if (opt.mode == "legacy" || opt.mode == "compare") {
    const LoadResult legacy = run_load(opt, /*sharded=*/false);
    append_entries(entries, "legacy1", legacy);
    if (opt.mode == "compare") {
      const LoadResult sharded = run_load(opt, /*sharded=*/true);
      append_entries(entries, sharded_tag, sharded);
      speedup = sharded.plans_per_sec() / std::max(1e-12, legacy.plans_per_sec());
      std::fprintf(stderr, "evvo_load: %u-shard batched serving sustains %.2fx the "
                           "plans/sec of the single-mutex service\n",
                   opt.shards, speedup);
    }
  } else {
    append_entries(entries, sharded_tag, run_load(opt, /*sharded=*/true));
  }
  if (!opt.out_path.empty()) write_bench_json(opt.out_path, opt, entries);
  if (!opt.telemetry_dump_path.empty() && !dump_telemetry(opt.telemetry_dump_path)) return 2;
  if (opt.mode == "compare" && opt.min_speedup > 0.0 && speedup < opt.min_speedup) {
    std::fprintf(stderr, "evvo_load: speedup %.2fx below required %.2fx\n", speedup,
                 opt.min_speedup);
    return 1;
  }
  return 0;
}
