// evvo_stat - pretty-printer and differ for telemetry snapshot JSON.
//
// Reads the format telemetry::to_json() emits (evvo_load --telemetry-dump
// writes it) and renders it for humans:
//
//   evvo_stat dump.json               # one snapshot, tabulated
//   evvo_stat --diff before.json after.json
//
// Diff mode subtracts counters and histogram buckets (the fixed log-linear
// layout makes bucket-wise subtraction exact) and recomputes p50/p90/p99
// from the difference distribution - the percentiles of exactly the samples
// recorded between the two snapshots, something the pre-aggregated
// percentile fields alone cannot give. Gauges are levels, not totals, so the
// diff shows old -> new instead of a delta.
//
// Exit codes: 0 ok, 2 usage/parse error. Parsing is strict: a histogram
// entry with a missing or unknown unit, or malformed buckets, is an error -
// telemetry files are machine-written, so damage means a bug upstream.
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry.hpp"

namespace {

using evvo::telemetry::Histogram;

// --- minimal JSON (the subset to_json emits) ------------------------------

struct Json {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<Json> parse() {
    std::optional<Json> v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    return number();
  }

  std::optional<Json> object() {
    if (!consume('{')) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kObject;
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      std::optional<Json> key = string_value();
      if (!key || !consume(':')) return std::nullopt;
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      out.fields.emplace(std::move(key->str), std::move(*val));
      if (consume(',')) continue;
      if (consume('}')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> array() {
    if (!consume('[')) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kArray;
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      std::optional<Json> val = value();
      if (!val) return std::nullopt;
      out.items.push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Json out;
    out.kind = Json::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        out.str += text_[pos_++];  // metric names never need fancier escapes
      } else {
        out.str += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) return std::nullopt;
    Json out;
    out.kind = Json::Kind::kNumber;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return std::nullopt;
    }
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- snapshot model --------------------------------------------------------

struct HistData {
  std::string unit;  ///< "ns" or "count"
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::map<int, std::int64_t> buckets;  ///< bucket index -> sample count
};

struct StatFile {
  std::map<std::string, long> counters;
  std::map<std::string, long> gauges;
  std::map<std::string, HistData> histograms;
};

/// Percentile of a (possibly diffed) bucket distribution, matching
/// Histogram::percentile's rank convention: the lower bound of the bucket
/// holding the rank-llround(p*(n-1))+1 sample.
std::uint64_t bucket_percentile(const std::map<int, std::int64_t>& buckets, double p) {
  std::int64_t total = 0;
  for (const auto& [idx, n] : buckets) total += n;
  if (total <= 0) return 0;
  const std::int64_t rank = std::llround(p * static_cast<double>(total - 1)) + 1;
  std::int64_t seen = 0;
  for (const auto& [idx, n] : buckets) {
    seen += n;
    if (seen >= rank) return Histogram::bucket_lower(idx);
  }
  return Histogram::bucket_lower(buckets.rbegin()->first);
}

std::optional<StatFile> load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "evvo_stat: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::optional<Json> root = JsonParser(text).parse();
  if (!root || root->kind != Json::Kind::kObject) {
    std::fprintf(stderr, "evvo_stat: %s is not valid JSON\n", path.c_str());
    return std::nullopt;
  }

  StatFile out;
  const auto load_longs = [&root](const char* section, std::map<std::string, long>& dst) {
    const Json* obj = (*root).find(section);
    if (!obj) return true;
    for (const auto& [name, v] : obj->fields) {
      if (v.kind != Json::Kind::kNumber) return false;
      dst[name] = std::lround(v.number);
    }
    return true;
  };
  if (!load_longs("counters", out.counters) || !load_longs("gauges", out.gauges)) {
    std::fprintf(stderr, "evvo_stat: %s: counters/gauges must map names to numbers\n",
                 path.c_str());
    return std::nullopt;
  }

  if (const Json* hists = root->find("histograms")) {
    for (const auto& [name, h] : hists->fields) {
      HistData data;
      const Json* unit = h.find("unit");
      if (!unit || (unit->str != "ns" && unit->str != "count")) {
        std::fprintf(stderr, "evvo_stat: %s: histogram %s has a missing or unknown unit\n",
                     path.c_str(), name.c_str());
        return std::nullopt;
      }
      data.unit = unit->str;
      const auto u64 = [&h](const char* key) -> std::optional<std::uint64_t> {
        const Json* v = h.find(key);
        if (!v || v->kind != Json::Kind::kNumber || v->number < 0) return std::nullopt;
        return static_cast<std::uint64_t>(v->number);
      };
      const auto count = u64("count");
      const auto sum = u64("sum");
      const auto max = u64("max");
      const Json* buckets = h.find("buckets");
      if (!count || !sum || !max || !buckets || buckets->kind != Json::Kind::kArray) {
        std::fprintf(stderr, "evvo_stat: %s: histogram %s is malformed\n", path.c_str(),
                     name.c_str());
        return std::nullopt;
      }
      data.count = *count;
      data.sum = *sum;
      data.max = *max;
      for (const Json& pair : buckets->items) {
        if (pair.kind != Json::Kind::kArray || pair.items.size() != 2 ||
            pair.items[0].kind != Json::Kind::kNumber ||
            pair.items[1].kind != Json::Kind::kNumber) {
          std::fprintf(stderr, "evvo_stat: %s: histogram %s has malformed buckets\n",
                       path.c_str(), name.c_str());
          return std::nullopt;
        }
        const int idx = static_cast<int>(pair.items[0].number);
        if (idx < 0 || idx >= Histogram::kBucketCount) {
          std::fprintf(stderr, "evvo_stat: %s: histogram %s bucket index %d out of range\n",
                       path.c_str(), name.c_str(), idx);
          return std::nullopt;
        }
        data.buckets[idx] = static_cast<std::int64_t>(pair.items[1].number);
      }
      out.histograms.emplace(name, std::move(data));
    }
  }
  return out;
}

// --- rendering -------------------------------------------------------------

void print_snapshot(const StatFile& snap) {
  if (!snap.counters.empty()) {
    std::printf("counters:\n");
    for (const auto& [name, v] : snap.counters) std::printf("  %-52s %14ld\n", name.c_str(), v);
  }
  if (!snap.gauges.empty()) {
    std::printf("gauges:\n");
    for (const auto& [name, v] : snap.gauges) std::printf("  %-52s %14ld\n", name.c_str(), v);
  }
  if (!snap.histograms.empty()) {
    std::printf("histograms:%*s count          mean           p50           p90           p99           max\n",
                44, "");
    for (const auto& [name, h] : snap.histograms) {
      const double mean =
          h.count ? static_cast<double>(h.sum) / static_cast<double>(h.count) : 0.0;
      std::printf("  %-44s [%5s] %8llu %13.0f %13llu %13llu %13llu %13llu\n", name.c_str(),
                  h.unit.c_str(), static_cast<unsigned long long>(h.count), mean,
                  static_cast<unsigned long long>(bucket_percentile(h.buckets, 0.50)),
                  static_cast<unsigned long long>(bucket_percentile(h.buckets, 0.90)),
                  static_cast<unsigned long long>(bucket_percentile(h.buckets, 0.99)),
                  static_cast<unsigned long long>(h.max));
    }
  }
}

int print_diff(const StatFile& before, const StatFile& after) {
  std::printf("counters (delta):\n");
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const long delta = v - (it == before.counters.end() ? 0 : it->second);
    if (delta != 0) std::printf("  %-52s %+14ld\n", name.c_str(), delta);
  }
  std::printf("gauges (old -> new):\n");
  for (const auto& [name, v] : after.gauges) {
    const auto it = before.gauges.find(name);
    const long old = it == before.gauges.end() ? 0 : it->second;
    if (old != v) std::printf("  %-52s %10ld -> %ld\n", name.c_str(), old, v);
  }
  std::printf("histograms (delta distribution):%*s count          mean           p50           p90           p99\n",
              23, "");
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    HistData delta = h;
    if (it != before.histograms.end()) {
      if (it->second.unit != h.unit) {
        std::fprintf(stderr, "evvo_stat: histogram %s changed unit (%s -> %s) between files\n",
                     name.c_str(), it->second.unit.c_str(), h.unit.c_str());
        return 2;
      }
      for (const auto& [idx, n] : it->second.buckets) delta.buckets[idx] -= n;
      if (delta.count < it->second.count || delta.sum < it->second.sum) {
        std::fprintf(stderr,
                     "evvo_stat: histogram %s shrank between files (was the registry reset?)\n",
                     name.c_str());
        return 2;
      }
      delta.count -= it->second.count;
      delta.sum -= it->second.sum;
    }
    if (delta.count == 0) continue;
    const double mean = static_cast<double>(delta.sum) / static_cast<double>(delta.count);
    std::printf("  %-44s [%5s] %8llu %13.0f %13llu %13llu %13llu\n", name.c_str(),
                delta.unit.c_str(), static_cast<unsigned long long>(delta.count), mean,
                static_cast<unsigned long long>(bucket_percentile(delta.buckets, 0.50)),
                static_cast<unsigned long long>(bucket_percentile(delta.buckets, 0.90)),
                static_cast<unsigned long long>(bucket_percentile(delta.buckets, 0.99)));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: evvo_stat FILE                  pretty-print one telemetry snapshot\n"
               "       evvo_stat --diff BEFORE AFTER   subtract snapshots; histogram\n"
               "                                       percentiles are recomputed from the\n"
               "                                       bucket difference\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--help") != 0 && std::strcmp(argv[1], "-h") != 0) {
    const std::optional<StatFile> snap = load_file(argv[1]);
    if (!snap) return 2;
    print_snapshot(*snap);
    return 0;
  }
  if (argc == 4 && std::strcmp(argv[1], "--diff") == 0) {
    const std::optional<StatFile> before = load_file(argv[2]);
    if (!before) return 2;
    const std::optional<StatFile> after = load_file(argv[3]);
    if (!after) return 2;
    return print_diff(*before, *after);
  }
  return usage();
}
