// Scenario-fuzz driver for the correctness harness (src/check).
//
// Generates seed-reproducible scenarios, runs the full invariant battery on
// each (differential oracle, thread/pruning identity, feasibility, window
// compliance, energy accounting, microsim replay), shrinks any failure to a
// minimal spec, and prints a one-line replay command. Exits nonzero when any
// scenario violates an invariant.
//
//   evvo_fuzz --count 200               # fuzz 200 seeded scenarios
//   evvo_fuzz --seed 41                 # re-run exactly one scenario
//   evvo_fuzz --inject window-shift     # prove the harness catches a fault
//   evvo_fuzz --replay-spec bad.spec    # re-check a shrunk spec file
//   evvo_fuzz --simd-only --count 100   # cheap vector-vs-scalar identity sweep
//   evvo_fuzz --replan --count 100      # warm-vs-cold replan identity chains
//   evvo_fuzz --batch --count 100       # batched-vs-standalone solve identity
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "check/batch_identity.hpp"
#include "check/invariants.hpp"
#include "check/replan_chain.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "common/clock.hpp"
#include "common/thread_pool.hpp"

namespace {

struct Options {
  std::size_t count = 50;
  std::uint64_t seed_start = 1;
  std::optional<std::uint64_t> single_seed;
  unsigned jobs = 0;  // 0 = hardware concurrency
  bool shrink = true;
  bool replay = true;
  bool reference = true;
  bool simd_only = false;  ///< strip everything but the simd-vs-scalar oracle
  bool replan = false;     ///< run perturbation-chain warm-vs-cold identity instead
  bool batch = false;      ///< run batched-vs-standalone solve identity instead
  std::size_t replan_steps = 8;
  std::string inject = "none";
  std::string replay_spec;  // path: check this spec instead of generating
  std::string spec_out;     // path: write the (shrunk) failing spec here
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--count N] [--seed N] [--seed-start N] [--jobs N]\n"
               "          [--inject none|window-shift|accel-tamper|energy-tamper|cost-tamper]\n"
               "          [--replay-spec FILE] [--spec-out FILE] [--no-shrink] [--no-replay]\n"
               "          [--no-reference] [--simd-only] [--replan] [--replan-steps N] [--batch]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--count") {
      const char* v = next();
      if (!v) return false;
      opt.count = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opt.single_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-start") {
      const char* v = next();
      if (!v) return false;
      opt.seed_start = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      opt.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--inject") {
      const char* v = next();
      if (!v) return false;
      opt.inject = v;
    } else if (arg == "--replay-spec") {
      const char* v = next();
      if (!v) return false;
      opt.replay_spec = v;
    } else if (arg == "--spec-out") {
      const char* v = next();
      if (!v) return false;
      opt.spec_out = v;
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--no-replay") {
      opt.replay = false;
    } else if (arg == "--no-reference") {
      opt.reference = false;
    } else if (arg == "--simd-only") {
      opt.simd_only = true;
    } else if (arg == "--replan") {
      opt.replan = true;
    } else if (arg == "--batch") {
      opt.batch = true;
    } else if (arg == "--replan-steps") {
      const char* v = next();
      if (!v) return false;
      opt.replan_steps = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  evvo::check::CheckOptions check;
  try {
    check.inject = evvo::check::fault_from_name(opt.inject);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage(argv[0]);
  }
  // --replan: warm-vs-cold identity over perturbation chains, the incremental
  // solver's oracle (src/check/replan_chain.hpp) instead of the scenario
  // battery. Any --inject value maps to the chain's tamper self-test.
  if (opt.replan) {
    evvo::check::ReplanChainOptions chain;
    chain.steps = opt.replan_steps;
    chain.tamper = check.inject != evvo::check::Fault::kNone;
    if (opt.single_seed) {
      const evvo::check::ReplanChainReport report =
          evvo::check::check_replan_chain(*opt.single_seed, chain);
      std::printf("%s", evvo::check::replan_report_to_string(report).c_str());
      return report.ok() ? 0 : 1;
    }
    const unsigned chain_jobs =
        std::max(1u, opt.jobs ? opt.jobs : evvo::common::ThreadPool::resolve_threads(0) / 2);
    evvo::common::ThreadPool chain_pool(chain_jobs);
    std::atomic<std::size_t> chain_failures{0};
    std::atomic<std::size_t> spliced{0}, striped{0}, cold{0}, relaxed{0}, total{0};
    std::mutex chain_io;
    const std::uint64_t t0 = evvo::common::now_ns();
    chain_pool.parallel_for(opt.count, [&](std::size_t index) {
      const std::uint64_t seed = opt.seed_start + index;
      const evvo::check::ReplanChainReport report = evvo::check::check_replan_chain(seed, chain);
      spliced.fetch_add(report.spliced_steps, std::memory_order_relaxed);
      striped.fetch_add(report.striped_steps, std::memory_order_relaxed);
      cold.fetch_add(report.cold_steps, std::memory_order_relaxed);
      relaxed.fetch_add(report.relaxed_layers, std::memory_order_relaxed);
      total.fetch_add(report.total_layers, std::memory_order_relaxed);
      if (report.ok()) return;
      chain_failures.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(chain_io);
      std::fprintf(stderr, "%s", evvo::check::replan_report_to_string(report).c_str());
      std::fprintf(stderr, "replay: evvo_fuzz --replan --seed %llu\n",
                   static_cast<unsigned long long>(seed));
    });
    const double chain_s = evvo::common::seconds_between_ns(t0, evvo::common::now_ns());
    std::printf(
        "%zu replan chain(s) checked in %.1f s (%zu spliced / %zu striped / %zu cold steps; "
        "warm relaxed %zu/%zu layers), %zu violation(s)\n",
        opt.count, chain_s, spliced.load(), striped.load(), cold.load(), relaxed.load(),
        total.load(), chain_failures.load());
    return chain_failures.load() == 0 ? 0 : 1;
  }

  // --batch: batched-vs-standalone solve identity, the SoA multi-scenario
  // kernel's oracle (src/check/batch_identity.hpp). Any --inject value maps
  // to the check's tamper self-test.
  if (opt.batch) {
    evvo::check::BatchIdentityOptions batch_opt;
    batch_opt.tamper = check.inject != evvo::check::Fault::kNone;
    if (opt.single_seed) {
      const evvo::check::BatchIdentityReport report =
          evvo::check::check_batch_identity(*opt.single_seed, batch_opt);
      std::printf("%s", evvo::check::batch_report_to_string(report).c_str());
      return report.ok() ? 0 : 1;
    }
    const unsigned batch_jobs =
        std::max(1u, opt.jobs ? opt.jobs : evvo::common::ThreadPool::resolve_threads(0) / 2);
    evvo::common::ThreadPool batch_pool(batch_jobs);
    std::atomic<std::size_t> batch_failures{0};
    std::atomic<std::size_t> lanes{0}, batched{0}, fallback{0}, infeasible_lanes{0};
    std::mutex batch_io;
    const std::uint64_t t0 = evvo::common::now_ns();
    batch_pool.parallel_for(opt.count, [&](std::size_t index) {
      const std::uint64_t seed = opt.seed_start + index;
      const evvo::check::BatchIdentityReport report =
          evvo::check::check_batch_identity(seed, batch_opt);
      lanes.fetch_add(report.lanes, std::memory_order_relaxed);
      batched.fetch_add(report.batched_lanes, std::memory_order_relaxed);
      fallback.fetch_add(report.fallback_lanes, std::memory_order_relaxed);
      infeasible_lanes.fetch_add(report.infeasible_lanes, std::memory_order_relaxed);
      if (report.ok()) return;
      batch_failures.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(batch_io);
      std::fprintf(stderr, "%s", evvo::check::batch_report_to_string(report).c_str());
      std::fprintf(stderr, "replay: evvo_fuzz --batch --seed %llu\n",
                   static_cast<unsigned long long>(seed));
    });
    const double batch_s = evvo::common::seconds_between_ns(t0, evvo::common::now_ns());
    std::printf(
        "%zu batch(es) checked in %.1f s (%zu lanes: %zu batched / %zu fallback / "
        "%zu infeasible), %zu violation(s)\n",
        opt.count, batch_s, lanes.load(), batched.load(), fallback.load(),
        infeasible_lanes.load(), batch_failures.load());
    return batch_failures.load() == 0 ? 0 : 1;
  }

  check.run_replay = opt.replay;
  check.run_reference = opt.reference;
  if (opt.simd_only) {
    // Vector-vs-scalar identity sweep: skip the expensive oracles and the
    // threaded solves so many scenarios fit in a CI timeslot. The pruned,
    // feasibility, compliance, and energy invariants still run - they are
    // byproducts of the solves the identity check needs anyway.
    check.run_reference = false;
    check.run_replay = false;
    check.thread_counts.clear();
  }

  // One pool shared by every scenario's threaded-identity solves; sized for
  // the largest requested thread count (solve width is capped per problem).
  unsigned max_tc = 1;
  for (const unsigned tc : check.thread_counts) max_tc = std::max(max_tc, tc);
  evvo::common::ThreadPool solver_pool(max_tc);
  check.pool = &solver_pool;

  const auto handle_failure = [&](const evvo::check::ScenarioSpec& spec,
                                  const evvo::check::CheckReport& report) {
    std::fprintf(stderr, "%s", evvo::check::report_to_string(report).c_str());
    evvo::check::ScenarioSpec final_spec = spec;
    if (opt.shrink) {
      const evvo::check::ShrinkResult shrunk = evvo::check::shrink_failure(spec, check);
      if (shrunk.changed) {
        std::fprintf(stderr, "shrunk (%zu checks, invariant %s):\n%s", shrunk.checks_run,
                     shrunk.invariant.c_str(), evvo::check::spec_to_text(shrunk.spec).c_str());
        final_spec = shrunk.spec;
      }
    }
    if (!opt.spec_out.empty()) {
      evvo::check::save_spec(opt.spec_out, final_spec);
      std::fprintf(stderr, "spec written to %s\n", opt.spec_out.c_str());
    }
    if (spec.seed != 0) {
      std::fprintf(stderr, "replay: evvo_fuzz --seed %llu%s%s\n",
                   static_cast<unsigned long long>(spec.seed),
                   check.inject == evvo::check::Fault::kNone ? "" : " --inject ",
                   check.inject == evvo::check::Fault::kNone
                       ? ""
                       : evvo::check::fault_name(check.inject));
    } else if (!opt.spec_out.empty()) {
      std::fprintf(stderr, "replay: evvo_fuzz --replay-spec %s\n", opt.spec_out.c_str());
    }
  };

  const std::uint64_t t_begin = evvo::common::now_ns();

  // --replay-spec / --seed: single scenario, verbose.
  if (!opt.replay_spec.empty() || opt.single_seed) {
    evvo::check::ScenarioSpec spec;
    try {
      spec = !opt.replay_spec.empty() ? evvo::check::load_spec(opt.replay_spec)
                                      : evvo::check::generate_scenario(*opt.single_seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load scenario: %s\n", e.what());
      return 2;
    }
    const evvo::check::CheckReport report = evvo::check::check_scenario(spec, check);
    if (!report.ok()) {
      handle_failure(spec, report);
      return 1;
    }
    std::printf("%s", evvo::check::report_to_string(report).c_str());
    return 0;
  }

  // Fuzz run: outer parallelism over scenarios. Each worker runs whole
  // scenarios; the shared solver pool parallelizes the threaded-identity
  // solves inside them (parallel_for is caller-participating, so nesting is
  // deadlock-free).
  const unsigned jobs =
      std::max(1u, opt.jobs ? opt.jobs : evvo::common::ThreadPool::resolve_threads(0) / 2);
  evvo::common::ThreadPool outer(jobs);

  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> infeasible{0};
  std::mutex io_mutex;
  outer.parallel_for(opt.count, [&](std::size_t index) {
    const std::uint64_t seed = opt.seed_start + index;
    const evvo::check::ScenarioSpec spec = evvo::check::generate_scenario(seed);
    const evvo::check::CheckReport report = evvo::check::check_scenario(spec, check);
    if (!report.feasible) infeasible.fetch_add(1, std::memory_order_relaxed);
    if (report.ok()) return;
    failures.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(io_mutex);
    handle_failure(spec, report);
  });

  const double elapsed_s = evvo::common::seconds_between_ns(t_begin, evvo::common::now_ns());
  std::printf("%zu scenario(s) checked in %.1f s (%zu infeasible), %zu violation(s)\n", opt.count,
              elapsed_s, infeasible.load(), failures.load());
  return failures.load() == 0 ? 0 : 1;
}
