#include "lint/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace evvo::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool contains_word(std::string_view haystack, std::string_view needle) {
  for (std::size_t pos = haystack.find(needle); pos != std::string_view::npos;
       pos = haystack.find(needle, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(haystack[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= haystack.size() || !is_ident_char(haystack[end]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::string Tokenizer::strip(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_ = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_ = true;
      ++i;
      continue;
    }
    if (line[i] == '"') {
      out.push_back('"');
      for (++i; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\') ++i;
      }
      continue;
    }
    if (line[i] == '\'') {
      // A quote directly after an identifier character is a digit separator
      // (1'000'000), not a char literal — pass it through unchanged.
      if (!out.empty() && is_ident_char(out.back())) {
        out.push_back('\'');
        continue;
      }
      out.push_back('\'');
      for (++i; i < line.size() && line[i] != '\''; ++i) {
        if (line[i] == '\\') ++i;
      }
      continue;
    }
    out.push_back(line[i]);
  }
  return out;
}

std::string_view ident_ending_at(std::string_view s, std::size_t pos) {
  if (pos == 0 || pos > s.size()) return {};
  std::size_t begin = pos;
  while (begin > 0 && is_ident_char(s[begin - 1])) --begin;
  return s.substr(begin, pos - begin);
}

std::string_view ident_starting_at(std::string_view s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  std::size_t end = pos;
  while (end < s.size() && is_ident_char(s[end])) ++end;
  if (end == pos) return {};
  return s.substr(pos, end - pos);
}

std::string_view trailing_ident(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         (std::isspace(static_cast<unsigned char>(expr[end - 1])) || expr[end - 1] == ')')) {
    --end;
  }
  return ident_ending_at(expr, end);
}

std::set<std::string> allowed_rules(const std::string& raw_line) {
  std::set<std::string> out;
  const std::string_view marker = "evvo-lint:";
  const std::size_t anchor = raw_line.find(marker);
  if (anchor == std::string::npos) return out;
  std::string_view rest(raw_line);
  rest.remove_prefix(anchor + marker.size());
  for (std::size_t pos = rest.find("allow("); pos != std::string_view::npos;
       pos = rest.find("allow(", pos + 1)) {
    const std::size_t close = rest.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string inner(rest.substr(pos + 6, close - pos - 6));
    std::istringstream items(inner);
    std::string item;
    while (std::getline(items, item, ',')) {
      const auto first = item.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const auto last = item.find_last_not_of(" \t");
      out.insert(item.substr(first, last - first + 1));
    }
    pos = close;
  }
  return out;
}

namespace {

bool blank_line(const std::string& raw) {
  return std::all_of(raw.begin(), raw.end(),
                     [](char c) { return std::isspace(static_cast<unsigned char>(c)); });
}

}  // namespace

bool suppressed(const SourceFile& file, std::size_t idx, std::string_view rule) {
  if (idx >= file.raw.size()) return false;
  if (allowed_rules(file.raw[idx]).count(std::string(rule))) return true;
  // The line directly above also counts, but a blank line in between breaks
  // the association so suppressions cannot drift away from their site.
  if (idx > 0 && !blank_line(file.raw[idx - 1]) &&
      allowed_rules(file.raw[idx - 1]).count(std::string(rule))) {
    return true;
  }
  return false;
}

SourceFile make_source(std::string path, const std::string& text) {
  SourceFile file;
  file.path = std::move(path);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) file.raw.push_back(line);
  Tokenizer tok;
  file.code.reserve(file.raw.size());
  for (const auto& raw : file.raw) file.code.push_back(tok.strip(raw));
  file.is_header = file.path.ends_with(".hpp") || file.path.ends_with(".h");
  static constexpr std::string_view kBoundaries[] = {
      "core/planner.hpp",        "core/dp_solver.hpp",
      "core/glosa.hpp",          "traffic/queue_model.hpp",
      "traffic/queue_predictor.hpp", "ev/energy_model.hpp",
      "cloud/plan_service.hpp",
  };
  file.is_boundary_header =
      std::any_of(std::begin(kBoundaries), std::end(kBoundaries),
                  [&](std::string_view b) { return file.path.ends_with(b); });
  file.is_mutex_wrapper = file.path.ends_with("common/mutex.hpp") ||
                          file.path.ends_with("common/thread_annotations.hpp") ||
                          file.path.ends_with("common/lock_ranks.hpp") ||
                          file.path.ends_with("common/deadlock.cpp");
  file.is_simd_wrapper = file.path.ends_with("common/simd.hpp");
  file.is_clock_seam = file.path.ends_with("common/clock.hpp") ||
                       file.path.ends_with("common/telemetry.cpp");
  return file;
}

}  // namespace evvo::lint
