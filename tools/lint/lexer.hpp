// Lexical layer of the evvo_lint analyzer library.
//
// Everything downstream (scope tracking, symbol tables, rules) operates on
// *code lines*: the raw source with comments and string/char literal
// contents stripped, so a rule can match tokens without tripping over
// prose. The Tokenizer carries block-comment state across lines; the
// identifier helpers implement the whole-word and expression-tail matching
// every rule shares; allowed_rules/suppressed implement the
// `// evvo-lint: allow(rule-a, rule-b)` suppression grammar (same line or
// the line directly above — a blank line in between breaks the association
// on purpose, so a stale suppression cannot drift away from its site).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace evvo::lint {

/// One file under analysis: raw lines for suppression comments and
/// #include scanning, stripped code lines for every token rule.
struct SourceFile {
  std::string path;                 // as reported in diagnostics
  std::vector<std::string> raw;     // original text
  std::vector<std::string> code;    // comment/string-stripped text
  bool is_header = false;
  bool is_boundary_header = false;  // public API headers with typed boundaries
  bool is_mutex_wrapper = false;    // common/mutex.hpp + thread_annotations.hpp
  bool is_simd_wrapper = false;     // common/simd.hpp
  bool is_clock_seam = false;       // common/clock.hpp + common/telemetry.cpp
};

bool is_ident_char(char c);

/// Whole-word search: `needle` not embedded in a longer identifier.
bool contains_word(std::string_view haystack, std::string_view needle);

/// Strips // and /* */ comments plus string/char literal contents so rules
/// only match code. A `"` / `'` marker survives where a literal was; digit
/// separators (1'000'000) pass through untouched. Block-comment state
/// carries across lines.
class Tokenizer {
 public:
  std::string strip(const std::string& line);
  bool in_block_comment() const { return in_block_; }

 private:
  bool in_block_ = false;
};

/// The identifier ending at `pos` (exclusive), or "" if the character
/// before `pos` is not an identifier character.
std::string_view ident_ending_at(std::string_view s, std::size_t pos);

/// The identifier starting at the first non-space character at/after `pos`,
/// or "" if none starts there.
std::string_view ident_starting_at(std::string_view s, std::size_t pos);

/// Trailing identifier of a member/scope chain: "shard.shard_mutex" ->
/// "shard_mutex", "flight->flight_mutex" -> "flight_mutex",
/// "ns::g_mutex" -> "g_mutex". Trailing ')' / whitespace is ignored.
std::string_view trailing_ident(std::string_view expr);

/// Every rule named by `evvo-lint: allow(...)` comments on this raw line.
/// Multiple allow() groups and comma-separated lists both work:
///   // evvo-lint: allow(rule-a) allow(rule-b)
///   // evvo-lint: allow(rule-a, rule-b)
std::set<std::string> allowed_rules(const std::string& raw_line);

/// Is (rule, line idx) suppressed? Same line, or the line directly above
/// (which must not be blank — a blank separator breaks the association).
bool suppressed(const SourceFile& file, std::size_t idx, std::string_view rule);

/// Builds a SourceFile from in-memory text (self-test, unit tests).
SourceFile make_source(std::string path, const std::string& text);

}  // namespace evvo::lint
