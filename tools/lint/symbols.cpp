#include "lint/symbols.hpp"

#include <cctype>

namespace evvo::lint {

namespace {

std::size_t skip_space(std::string_view s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  return pos;
}

/// Finds whole-word occurrences of `word` in `s` starting at `from`.
std::size_t find_word(std::string_view s, std::string_view word, std::size_t from = 0) {
  for (std::size_t pos = s.find(word, from); pos != std::string_view::npos;
       pos = s.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

/// Parses the enumerators of an `enum class LockRank` block starting at
/// `first_line`; stops at the closing '}'. Only the body between the braces
/// is scanned, so the `enum class LockRank : int` introducer never reads as
/// enumerators.
void parse_rank_enum(const SourceFile& file, std::size_t first_line, FileSymbols& out) {
  int implicit = 0;
  bool in_body = false;
  for (std::size_t idx = first_line; idx < file.code.size(); ++idx) {
    const std::string& code = file.code[idx];
    std::size_t pos = 0;
    if (!in_body) {
      pos = code.find('{');
      if (pos == std::string::npos) continue;
      in_body = true;
      ++pos;
    }
    while (pos < code.size()) {
      pos = skip_space(code, pos);
      if (pos >= code.size()) break;
      if (code[pos] == '}') return;
      if (!is_ident_char(code[pos]) || std::isdigit(static_cast<unsigned char>(code[pos]))) {
        ++pos;
        continue;
      }
      const std::string_view name = ident_starting_at(code, pos);
      pos += name.size();
      std::size_t p = skip_space(code, pos);
      int value = implicit;
      if (p < code.size() && code[p] == '=') {
        p = skip_space(code, p + 1);
        value = 0;
        bool any = false;
        while (p < code.size() && std::isdigit(static_cast<unsigned char>(code[p]))) {
          value = value * 10 + (code[p] - '0');
          ++p;
          any = true;
        }
        if (!any) value = implicit;
      }
      out.ranks.emplace(std::string(name), value);
      implicit = value + 1;
      while (p < code.size() && code[p] != ',' && code[p] != '}') ++p;
      if (p < code.size() && code[p] == '}') return;
      pos = p < code.size() ? p + 1 : p;
    }
  }
}

void collect_mutexes(const SourceFile& file, FileSymbols& out) {
  for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
    const std::string& code = file.code[idx];
    for (std::size_t pos = find_word(code, "Mutex"); pos != std::string_view::npos;
         pos = find_word(code, "Mutex", pos + 1)) {
      std::size_t p = pos + 5;
      if (p < code.size() && (code[p] == '&' || code[p] == '*' || code[p] == '(' ||
                              code[p] == ':' || code[p] == '{' || code[p] == ';')) {
        continue;  // reference/pointer param, ctor, class definition, fwd decl
      }
      const std::string_view name = ident_starting_at(code, p);
      if (name.empty()) continue;
      p = skip_space(code, p);
      p += name.size();
      const std::size_t after = skip_space(code, p);
      MutexDecl decl;
      decl.name = std::string(name);
      decl.file = file.path;
      decl.line = idx;
      if (after < code.size() && (code[after] == '{' || code[after] == '(')) {
        // Brace/paren initializer: a rank if `LockRank::` appears in it.
        const std::size_t rank_pos = code.find("LockRank::", after);
        if (rank_pos != std::string::npos) {
          decl.rank_name = std::string(ident_starting_at(code, rank_pos + 10));
          decl.ranked = !decl.rank_name.empty();
        }
        out.mutexes.push_back(std::move(decl));
      } else if (after < code.size() && code[after] == ';') {
        out.mutexes.push_back(std::move(decl));  // default-constructed: unranked
      }
      // Anything else (e.g. `Mutex name EVVO_...`) — still a decl, unranked.
      else if (after < code.size() && is_ident_char(code[after])) {
        out.mutexes.push_back(std::move(decl));
      }
    }
  }
}

void collect_atomics(const SourceFile& file, FileSymbols& out) {
  for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
    const std::string& code = file.code[idx];
    for (std::size_t pos = code.find("std::atomic<"); pos != std::string::npos;
         pos = code.find("std::atomic<", pos + 1)) {
      // Balance the template angle brackets (std::atomic<std::size_t> etc.).
      std::size_t p = pos + 11;
      int depth = 0;
      for (; p < code.size(); ++p) {
        if (code[p] == '<') ++depth;
        if (code[p] == '>' && --depth == 0) {
          ++p;
          break;
        }
      }
      if (depth != 0) break;  // spans lines: member decls in this tree do not
      if (p < code.size() && (code[p] == '&' || code[p] == '*' || code[p] == '(')) continue;
      const std::string_view name = ident_starting_at(code, p);
      if (name.empty()) continue;
      out.atomics.push_back({std::string(name), file.path, idx});
    }
  }
}

void collect_condvars(const SourceFile& file, FileSymbols& out) {
  for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
    const std::string& code = file.code[idx];
    for (std::size_t pos = find_word(code, "CondVar"); pos != std::string_view::npos;
         pos = find_word(code, "CondVar", pos + 1)) {
      std::size_t p = pos + 7;
      if (p < code.size() && (code[p] == '&' || code[p] == '*' || code[p] == '(' ||
                              code[p] == ':' || code[p] == '{' || code[p] == ';')) {
        continue;
      }
      const std::string_view name = ident_starting_at(code, p);
      if (name.empty()) continue;
      out.condvars.push_back({std::string(name), file.path, idx});
    }
  }
}

}  // namespace

FileSymbols collect_symbols(const SourceFile& file) {
  FileSymbols out;
  for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
    if (file.code[idx].find("enum class LockRank") != std::string::npos) {
      parse_rank_enum(file, idx, out);
      break;
    }
  }
  // The wrapper headers define Mutex/CondVar themselves; their internal
  // members are not lockable symbols of the codebase under analysis.
  if (!file.is_mutex_wrapper) {
    collect_mutexes(file, out);
    collect_atomics(file, out);
    collect_condvars(file, out);
  }
  return out;
}

void SymbolTable::absorb(const FileSymbols& symbols) {
  for (const auto& m : symbols.mutexes) {
    auto [it, inserted] = mutexes_.emplace(m.name, m);
    if (!inserted && (it->second.ranked != m.ranked || it->second.rank_name != m.rank_name)) {
      conflicts_.push_back(m);
    }
  }
  for (const auto& a : symbols.atomics) atomics_.emplace(a.name, a);
  for (const auto& c : symbols.condvars) condvars_.emplace(c.name, c);
  for (const auto& [name, value] : symbols.ranks) ranks_.emplace(name, value);
}

const MutexDecl* SymbolTable::find_mutex(std::string_view name) const {
  const auto it = mutexes_.find(name);
  return it == mutexes_.end() ? nullptr : &it->second;
}

bool SymbolTable::is_atomic(std::string_view name) const {
  return atomics_.find(name) != atomics_.end();
}

bool SymbolTable::is_condvar(std::string_view name) const {
  return condvars_.find(name) != condvars_.end();
}

bool SymbolTable::rank_value(std::string_view rank_name, int* out) const {
  const auto it = ranks_.find(rank_name);
  if (it == ranks_.end()) return false;
  *out = it->second;
  return true;
}

SymbolTable build_symbol_table(const std::vector<SourceFile>& files) {
  SymbolTable table;
  for (const auto& file : files) table.absorb(collect_symbols(file));
  return table;
}

}  // namespace evvo::lint
