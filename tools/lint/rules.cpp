#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>

#include "lint/scope.hpp"

namespace evvo::lint {

namespace {

// ---------------------------------------------------------------------------
// Single-line rules (carried over from evvo_lint v1)
// ---------------------------------------------------------------------------

/// Parameter names that read as dimensioned quantities. A `double` parameter
/// with one of these names in a boundary header is exactly the mixup the
/// strong types exist to reject.
bool name_reads_as_unit(std::string_view name) {
  static constexpr std::string_view kExact[] = {
      "speed", "time", "flow", "velocity", "depart", "arrival", "dt", "tau",
  };
  for (const auto n : kExact) {
    if (name == n) return true;
  }
  static constexpr std::string_view kSuffixes[] = {
      "_s", "_ms", "_m", "_ms2", "_veh_h", "_veh_s", "_kmh", "_mph", "_ah", "_mah",
  };
  for (const auto suffix : kSuffixes) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  }
  static constexpr std::string_view kStems[] = {"speed", "time", "flow"};
  for (const auto stem : kStems) {
    if (name.find(stem) != std::string_view::npos) return true;
  }
  return false;
}

void check_naked_unit_param(const SourceFile& file, const std::string& code,
                            std::size_t idx, std::vector<Violation>& out) {
  if (!file.is_boundary_header) return;
  for (std::size_t pos = code.find("double"); pos != std::string::npos;
       pos = code.find("double", pos + 6)) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    if (!left_ok || (pos + 6 < code.size() && is_ident_char(code[pos + 6]))) continue;
    // Walk back over whitespace/const to the separator: only parameters (a
    // preceding '(' or ',') count, not member declarations.
    std::size_t back = pos;
    while (back > 0 && std::isspace(static_cast<unsigned char>(code[back - 1]))) --back;
    if (back >= 5 && code.compare(back - 5, 5, "const") == 0) {
      back -= 5;
      while (back > 0 && std::isspace(static_cast<unsigned char>(code[back - 1]))) --back;
    }
    if (back == 0 || (code[back - 1] != '(' && code[back - 1] != ',')) continue;
    const std::string_view name = ident_starting_at(code, pos + 6);
    if (name.empty()) continue;
    if (name_reads_as_unit(name)) {
      out.push_back({file.path, idx + 1, "naked-unit-param",
                     "parameter 'double " + std::string(name) +
                         "' in a boundary header: use the dimension-checked type from "
                         "common/units.hpp (Seconds, MetersPerSecond, VehiclesPerSecond, ...)"});
    }
  }
}

void check_banned_random(const SourceFile& file, const std::string& code,
                         std::size_t idx, std::vector<Violation>& out) {
  static constexpr std::string_view kBanned[] = {"std::rand", "srand", "std::srand"};
  for (const auto b : kBanned) {
    if (contains_word(code, b)) {
      out.push_back({file.path, idx + 1, "banned-random",
                     std::string(b) + " is banned: use common/random.hpp (deterministic, "
                                      "seedable, reproducible failures)"});
      return;
    }
  }
  // time(0) / time(NULL) / time(nullptr): the classic nondeterministic seed.
  for (std::size_t pos = code.find("time"); pos != std::string::npos;
       pos = code.find("time", pos + 4)) {
    if (pos > 0 && is_ident_char(code[pos - 1])) continue;
    std::size_t p = pos + 4;
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (p >= code.size() || code[p] != '(') continue;
    ++p;
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (code.compare(p, 1, "0") == 0 || code.compare(p, 4, "NULL") == 0 ||
        code.compare(p, 7, "nullptr") == 0) {
      out.push_back({file.path, idx + 1, "banned-random",
                     "wall-clock seed time(...) is banned: use common/random.hpp"});
      return;
    }
  }
}

void check_nodiscard_result(const SourceFile& file, const std::string& code,
                            std::size_t idx, std::vector<Violation>& out) {
  if (!file.is_header) return;
  static constexpr std::string_view kSuffixes[] = {"Solution", "Result", "Report", "Response",
                                                   "Stats"};
  for (const auto kw : {std::string_view("struct"), std::string_view("class")}) {
    for (std::size_t pos = code.find(kw); pos != std::string::npos;
         pos = code.find(kw, pos + kw.size())) {
      const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      if (!left_ok || (pos + kw.size() < code.size() && is_ident_char(code[pos + kw.size()])))
        continue;
      const std::string_view name = ident_starting_at(code, pos + kw.size());
      if (name.empty()) continue;
      // Only definitions introduce the attribute: require '{' or ':' (base
      // clause) after the name, skipping forward declarations and uses.
      std::size_t after = code.find(name, pos) + name.size();
      while (after < code.size() && std::isspace(static_cast<unsigned char>(code[after]))) ++after;
      if (after >= code.size() || (code[after] != '{' && code[after] != ':')) continue;
      const bool result_like = std::any_of(
          std::begin(kSuffixes), std::end(kSuffixes), [&](std::string_view s) {
            return name.size() > s.size() &&
                   name.compare(name.size() - s.size(), s.size(), s) == 0;
          });
      if (!result_like) continue;
      const bool annotated =
          code.find("[[nodiscard]]") != std::string::npos ||
          (idx > 0 && file.raw[idx - 1].find("[[nodiscard]]") != std::string::npos);
      if (!annotated) {
        out.push_back({file.path, idx + 1, "nodiscard-result",
                       std::string(name) + " is a result type: declare it [[nodiscard]] so "
                                           "dropped solver/planner output is a compile error"});
      }
    }
  }
}

void check_raw_sync(const SourceFile& file, const std::string& code, std::size_t idx,
                    std::vector<Violation>& out) {
  if (file.is_mutex_wrapper) return;
  for (const auto banned :
       {std::string_view("std::mutex"), std::string_view("std::condition_variable"),
        std::string_view("std::lock_guard"), std::string_view("std::scoped_lock"),
        std::string_view("std::unique_lock")}) {
    if (contains_word(code, banned)) {
      out.push_back({file.path, idx + 1, "raw-sync",
                     std::string(banned) + " outside common/mutex.hpp: use common::Mutex / "
                                           "common::MutexLock / common::CondVar so clang "
                                           "-Wthread-safety sees the lock"});
      return;
    }
  }
}

void check_raw_clock(const SourceFile& file, const std::string& code, std::size_t idx,
                     std::vector<Violation>& out) {
  if (file.is_clock_seam) return;
  // Any mention of a std::chrono clock type is flagged, not just ::now():
  // `using Clock = std::chrono::steady_clock;` is exactly how a call site
  // slips out of the common::now_ns() funnel (and away from ScopedFakeClock).
  for (const auto banned :
       {std::string_view("steady_clock"), std::string_view("system_clock"),
        std::string_view("high_resolution_clock")}) {
    if (contains_word(code, banned)) {
      out.push_back({file.path, idx + 1, "raw-clock",
                     std::string("std::chrono::") + std::string(banned) +
                         " outside common/clock.hpp: read time through common::now_ns() "
                         "so tests can fake the clock and spans stay on one source"});
      return;
    }
  }
}

void check_raw_intrinsics(const SourceFile& file, const std::string& code,
                          std::size_t idx, std::vector<Violation>& out) {
  if (file.is_simd_wrapper) return;
  const std::string& raw = file.raw[idx];
  if (raw.find("#include") != std::string::npos) {
    static constexpr std::string_view kHeaders[] = {"immintrin.h", "x86intrin.h",
                                                    "emmintrin.h", "arm_neon.h"};
    for (const auto h : kHeaders) {
      if (raw.find(h) != std::string::npos) {
        out.push_back({file.path, idx + 1, "raw-intrinsics",
                       std::string("#include <") + std::string(h) +
                           "> outside common/simd.hpp: all vector code goes through the "
                           "portable wrappers (scalar fallback + bit-identity live there)"});
        return;
      }
    }
  }
  static constexpr std::string_view kPrefixes[] = {"_mm_", "_mm256_", "_mm512_", "vld1q",
                                                   "vst1q"};
  for (const auto p : kPrefixes) {
    if (code.find(p) != std::string::npos) {
      out.push_back({file.path, idx + 1, "raw-intrinsics",
                     "raw SIMD intrinsic '" + std::string(p) +
                         "...' outside common/simd.hpp: use the evvo::common::simd wrappers"});
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// File-scope rules
// ---------------------------------------------------------------------------

/// A Mutex declaration in a file with no EVVO_GUARDED_BY/EVVO_REQUIRES is a
/// lock the thread-safety analyzer cannot check. Driven by the symbol pass,
/// so brace-initialized (ranked) declarations count too.
void check_guarded_mutex(const SourceFile& file, const FileSymbols& symbols,
                         std::vector<Violation>& out) {
  if (file.is_mutex_wrapper || symbols.mutexes.empty()) return;
  for (const auto& code : file.code) {
    if (code.find("EVVO_GUARDED_BY") != std::string::npos ||
        code.find("EVVO_REQUIRES") != std::string::npos ||
        code.find("EVVO_PT_GUARDED_BY") != std::string::npos) {
      return;
    }
  }
  const MutexDecl& first = symbols.mutexes.front();
  if (!suppressed(file, first.line, "guarded-mutex")) {
    out.push_back({file.path, first.line + 1, "guarded-mutex",
                   "file declares Mutex '" + first.name +
                       "' but contains no EVVO_GUARDED_BY/EVVO_REQUIRES annotation: the "
                       "analyzer cannot check an unannotated lock"});
  }
}

void check_include_hygiene(const SourceFile& file, std::vector<Violation>& out) {
  if (file.is_header) {
    const bool has_pragma_once =
        std::any_of(file.raw.begin(), file.raw.end(), [](const std::string& raw) {
          return raw.find("#pragma once") != std::string::npos;
        });
    if (!has_pragma_once) {
      out.push_back({file.path, 1, "include-hygiene", "header is missing #pragma once"});
    }
  }
  for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
    // Include paths live inside string literals, which the tokenizer blanks;
    // #include lines cannot contain comments that matter, so scan them raw.
    const std::string& code =
        file.raw[idx].find("#include") != std::string::npos ? file.raw[idx] : file.code[idx];
    if (code.find("#include \"../") != std::string::npos) {
      if (!suppressed(file, idx, "include-hygiene"))
        out.push_back({file.path, idx + 1, "include-hygiene",
                       "parent-relative include: include project headers by their src/-rooted "
                       "path"});
    }
    if (file.is_header && code.find("using namespace") != std::string::npos) {
      if (!suppressed(file, idx, "include-hygiene"))
        out.push_back({file.path, idx + 1, "include-hygiene",
                       "`using namespace` at header scope leaks into every includer"});
    }
  }
}

// ---------------------------------------------------------------------------
// fp-determinism: the bit-identity contract in lintable form
// ---------------------------------------------------------------------------

void check_fp_determinism(const SourceFile& file, const std::string& code,
                          std::size_t idx, std::vector<Violation>& out) {
  const bool deterministic_zone = file.path.find("src/core/") != std::string::npos ||
                                  file.path.find("src/learn/") != std::string::npos;
  if (deterministic_zone) {
    static constexpr std::string_view kReductions[] = {
        "std::accumulate", "std::reduce", "std::inner_product", "std::transform_reduce"};
    for (const auto r : kReductions) {
      if (contains_word(code, r)) {
        out.push_back({file.path, idx + 1, "fp-determinism",
                       std::string(r) + " in a deterministic zone: reduction order is part of "
                                        "the bit-identity contract — use the fixed-op-order "
                                        "helpers in common/simd.hpp"});
      }
    }
  }
  if (code.find("#pragma") != std::string::npos) {
    if (code.find("fast-math") != std::string::npos ||
        code.find("float_control") != std::string::npos ||
        code.find("FP_CONTRACT") != std::string::npos ||
        code.find("clang fp") != std::string::npos) {
      out.push_back({file.path, idx + 1, "fp-determinism",
                     "floating-point model pragma: the tree builds with -ffp-contract=off and "
                     "results must be bit-identical across builds"});
    }
    if (code.find("#pragma omp") != std::string::npos) {
      out.push_back({file.path, idx + 1, "fp-determinism",
                     "OpenMP pragma: use common::ThreadPool — its decomposition is "
                     "deterministic and its reductions keep a fixed op order"});
    }
  } else if (code.find("ffast-math") != std::string::npos) {
    out.push_back({file.path, idx + 1, "fp-determinism",
                   "-ffast-math reference: fast-math is banned tree-wide (bit-identity)"});
  }
  if (!file.is_simd_wrapper) {
    for (const auto f : {std::string_view("std::fma"), std::string_view("fmaf"),
                         std::string_view("fmal")}) {
      if (contains_word(code, f)) {
        out.push_back({file.path, idx + 1, "fp-determinism",
                       std::string(f) + " outside common/simd.hpp: explicit fusion changes "
                                        "results vs the scalar path and breaks SIMD-vs-scalar "
                                        "bit-identity"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// atomics-misuse: line checks (order spelled out, consumed relaxed RMW,
// seq_cst) — the check-then-act part lives in the scope walker below.
// ---------------------------------------------------------------------------

constexpr std::string_view kAtomicOps[] = {
    "load",        "store",    "exchange",                "fetch_add",
    "fetch_sub",   "fetch_and", "fetch_or",               "fetch_xor",
    "compare_exchange_weak",    "compare_exchange_strong",
};

constexpr std::string_view kAtomicRmwOps[] = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
};

/// Receiver of a member call whose member name starts at `op_pos`:
/// "batch->next.fetch_add" with op_pos at "fetch_add" yields "next".
std::string_view receiver_of(std::string_view code, std::size_t op_pos) {
  if (op_pos < 1) return {};
  std::size_t dot = op_pos;
  if (code[dot - 1] == '.') {
    return ident_ending_at(code, dot - 1);
  }
  if (dot >= 2 && code[dot - 2] == '-' && code[dot - 1] == '>') {
    return ident_ending_at(code, dot - 2);
  }
  return {};
}

void check_atomics_lines(const SourceFile& file, const SymbolTable& table,
                         const std::string& code, std::size_t idx,
                         std::vector<Violation>& out) {
  if (contains_word(code, "memory_order_seq_cst")) {
    out.push_back({file.path, idx + 1, "atomics-misuse",
                   "memory_order_seq_cst: state the intended order explicitly (relaxed for "
                   "stats counters, acquire/release/acq_rel for synchronization)"});
  }
  for (const auto op : kAtomicOps) {
    for (std::size_t pos = code.find(op); pos != std::string::npos;
         pos = code.find(op, pos + 1)) {
      const bool left_ok = pos > 0 && (code[pos - 1] == '.' || code[pos - 1] == '>');
      const std::size_t end = pos + op.size();
      if (!left_ok || end >= code.size() || code[end] != '(' ||
          (pos > 0 && is_ident_char(code[pos - 1]))) {
        continue;
      }
      const std::string_view receiver = receiver_of(code, pos);
      if (receiver.empty() || !table.is_atomic(receiver)) continue;
      // Argument list up to the matching ')' on this line. A call whose
      // arguments span lines is out of scope (lenient, never false-positive).
      std::size_t p = end;
      int depth = 0;
      for (; p < code.size(); ++p) {
        if (code[p] == '(') ++depth;
        if (code[p] == ')' && --depth == 0) break;
      }
      if (depth != 0) continue;
      const std::string_view args = std::string_view(code).substr(end, p - end);
      if (args.find("memory_order") == std::string_view::npos) {
        out.push_back({file.path, idx + 1, "atomics-misuse",
                       "atomic " + std::string(op) + " on '" + std::string(receiver) +
                           "' without an explicit std::memory_order: the default is seq_cst "
                           "and hides the intended protocol"});
        continue;
      }
      // Consumed relaxed RMW: a relaxed fetch_*/exchange whose value feeds an
      // expression is (almost always) a synchronization edge wearing the
      // wrong order. Discarded results (pure counters) are the legit use.
      const bool is_rmw = std::any_of(std::begin(kAtomicRmwOps), std::end(kAtomicRmwOps),
                                      [&](std::string_view r) { return r == op; });
      if (is_rmw && args.find("memory_order_relaxed") != std::string_view::npos) {
        // Start of the receiver chain: walk back over idents, ., ->, ::,
        // this, and balanced subscripts (cells[i].v.fetch_add is still a
        // statement-position chain).
        std::size_t chain = pos;
        while (chain > 0) {
          const char c = code[chain - 1];
          if (is_ident_char(c) || c == '.' || c == ':') {
            --chain;
          } else if (chain >= 2 && c == '>' && code[chain - 2] == '-') {
            chain -= 2;
          } else if (c == ']') {
            int brackets = 0;
            std::size_t scan = chain;
            while (scan > 0) {
              const char b = code[--scan];
              if (b == ']') ++brackets;
              if (b == '[' && --brackets == 0) break;
            }
            if (brackets != 0) break;  // subscript spans lines: stop walking
            chain = scan;
          } else {
            break;
          }
        }
        std::string_view prefix = std::string_view(code).substr(0, chain);
        while (!prefix.empty() &&
               std::isspace(static_cast<unsigned char>(prefix.back()))) {
          prefix.remove_suffix(1);
        }
        // Statement-position call (value discarded): nothing before the
        // chain, a statement boundary, or the ')' of a guarding condition
        // (`if (cond) counter.fetch_add(...)`). `else`/`do` keywords also
        // leave the call in statement position.
        bool discarded = prefix.empty() || prefix.back() == ';' || prefix.back() == '{' ||
                         prefix.back() == '}' || prefix.back() == ')';
        if (!discarded) {
          const std::string_view last = ident_ending_at(prefix, prefix.size());
          if (last == "else" || last == "do") discarded = true;
        }
        if (!discarded) {
          out.push_back({file.path, idx + 1, "atomics-misuse",
                         "consumed relaxed " + std::string(op) + " on '" +
                             std::string(receiver) +
                             "': a read-modify-write whose value is used orders other memory "
                             "— use acq_rel (or suppress with a justification if it only "
                             "selects work)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scope-walking rules: lock-order, wait-predicate, atomic check-then-act
// ---------------------------------------------------------------------------

/// Tracks nested MutexLock acquisitions through one file and checks each new
/// acquisition's rank against the innermost held rank — the static mirror of
/// deadlock.cpp's runtime validator.
class LockOrderSink : public ScopeSink {
 public:
  LockOrderSink(const SourceFile& file, const SymbolTable& table,
                std::vector<Violation>& out)
      : file_(file), table_(table), out_(out) {}

  void on_identifier(std::size_t line, std::size_t col, std::string_view ident,
                     const WalkState& st) override {
    if (ident != "MutexLock") return;
    const std::string& code = file_.code[line];
    const std::string_view var = ident_starting_at(code, col + ident.size());
    if (var.empty()) return;  // a cast or mention, not a declaration
    std::size_t p = code.find(var, col + ident.size()) + var.size();
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (p >= code.size() || (code[p] != '(' && code[p] != '{')) return;
    const char open = code[p];
    const char close = open == '(' ? ')' : '}';
    std::size_t q = p + 1;
    int depth = 1;
    for (; q < code.size() && depth > 0; ++q) {
      if (code[q] == open) ++depth;
      if (code[q] == close) --depth;
    }
    if (depth != 0) return;  // expression spans lines: out of scope for v2
    const std::string_view expr = std::string_view(code).substr(p + 1, q - p - 2);
    const std::string_view mutex_name = trailing_ident(expr);
    if (mutex_name.empty()) return;
    const MutexDecl* decl = table_.find_mutex(mutex_name);
    if (decl == nullptr) return;  // local/parameter mutex: not resolvable
    if (suppressed(file_, line, "lock-order")) {
      // Suppressed acquisitions still hold the lock for nesting purposes.
      push_if_ranked(*decl, line, st);
      return;
    }
    if (!decl->ranked) {
      out_.push_back({file_.path, line + 1, "lock-order",
                      "'" + decl->name + "' (declared at " + decl->file + ":" +
                          std::to_string(decl->line + 1) +
                          ") is locked but has no LockRank: rank every lockable mutex so "
                          "acquisition order is checkable"});
      return;
    }
    int rank = 0;
    if (!table_.rank_value(decl->rank_name, &rank)) {
      out_.push_back({file_.path, line + 1, "lock-order",
                      "'" + decl->name + "' uses unknown rank '" + decl->rank_name +
                          "': not an enumerator of common/lock_ranks.hpp"});
      return;
    }
    if (!held_.empty() && held_.back().rank >= rank) {
      const Held& h = held_.back();
      out_.push_back(
          {file_.path, line + 1, "lock-order",
           "lock order inversion: acquiring '" + std::string(mutex_name) + "' (" +
               decl->rank_name + " = " + std::to_string(rank) + ") while holding '" + h.name +
               "' (" + h.rank_name + " = " + std::to_string(h.rank) + ", locked at line " +
               std::to_string(h.line + 1) +
               "): nested acquisitions must be strictly rank-increasing"});
    }
    held_.push_back({std::string(mutex_name), decl->rank_name, rank, line, st.depth});
  }

  void on_scope_close(const ScopeInfo& closing, std::size_t, const WalkState&) override {
    while (!held_.empty() && held_.back().depth >= closing.depth) held_.pop_back();
  }

 private:
  struct Held {
    std::string name;
    std::string rank_name;
    int rank = 0;
    std::size_t line = 0;
    int depth = 0;
  };

  void push_if_ranked(const MutexDecl& decl, std::size_t line, const WalkState& st) {
    int rank = 0;
    if (decl.ranked && table_.rank_value(decl.rank_name, &rank)) {
      held_.push_back({decl.name, decl.rank_name, rank, line, st.depth});
    }
  }

  const SourceFile& file_;
  const SymbolTable& table_;
  std::vector<Violation>& out_;
  std::vector<Held> held_;
};

/// CondVar::wait outside a loop drops spurious wakeups; the wait must be the
/// body of `while (!pred) cv.wait(m);` (or sit inside a braced loop).
class WaitPredicateSink : public ScopeSink {
 public:
  WaitPredicateSink(const SourceFile& file, const SymbolTable& table,
                    std::vector<Violation>& out)
      : file_(file), table_(table), out_(out) {}

  void on_identifier(std::size_t line, std::size_t col, std::string_view ident,
                     const WalkState& st) override {
    if (ident != "wait") return;
    const std::string& code = file_.code[line];
    const std::string_view receiver = receiver_of(code, col);
    if (receiver.empty() || !table_.is_condvar(receiver)) return;
    const std::size_t after = col + ident.size();
    if (after >= code.size() || code[after] != '(') return;
    if (st.statement_has_loop || st.in_loop_scope()) return;
    if (suppressed(file_, line, "wait-predicate")) return;
    out_.push_back({file_.path, line + 1, "wait-predicate",
                    "CondVar '" + std::string(receiver) +
                        "' waited on outside a predicate loop: spurious wakeups make a bare "
                        "or if-guarded wait incorrect — write `while (!pred) " +
                        std::string(receiver) + ".wait(m);`"});
  }

 private:
  const SourceFile& file_;
  const SymbolTable& table_;
  std::vector<Violation>& out_;
};

/// Atomic check-then-act: an atomic load in a branch condition followed by a
/// store/RMW of the same atomic inside the guarded region is a lost-update
/// race; compare_exchange is the closing-the-gap primitive.
class CheckThenActSink : public ScopeSink {
 public:
  CheckThenActSink(const SourceFile& file, const SymbolTable& table,
                   std::vector<Violation>& out)
      : file_(file), table_(table), out_(out) {}

  void on_identifier(std::size_t line, std::size_t col, std::string_view ident,
                     const WalkState& st) override {
    const std::string& code = file_.code[line];
    if (ident == "load" && st.statement_has_branch) {
      const std::string_view receiver = receiver_of(code, col);
      if (!receiver.empty() && table_.is_atomic(receiver)) {
        watches_.push_back({std::string(receiver), line, /*scope_depth=*/-1});
      }
      return;
    }
    const bool is_write =
        ident == "store" || ident == "exchange" || ident.starts_with("fetch_");
    if (!is_write || watches_.empty()) return;
    const std::string_view receiver = receiver_of(code, col);
    if (receiver.empty()) return;
    for (const auto& w : watches_) {
      if (w.atomic != receiver) continue;
      if (suppressed(file_, line, "atomics-misuse")) continue;
      out_.push_back({file_.path, line + 1, "atomics-misuse",
                      "check-then-act on atomic '" + w.atomic + "': loaded in a branch at line " +
                          std::to_string(w.load_line + 1) + " then written at line " +
                          std::to_string(line + 1) +
                          " — another thread can interleave; use compare_exchange"});
      break;
    }
  }

  void on_scope_open(const ScopeInfo& scope, const WalkState&) override {
    // The branch body adopts any watch armed by its condition.
    for (auto& w : watches_) {
      if (w.scope_depth < 0) w.scope_depth = scope.depth;
    }
  }

  void on_scope_close(const ScopeInfo& closing, std::size_t, const WalkState&) override {
    std::erase_if(watches_, [&](const Watch& w) { return w.scope_depth >= closing.depth; });
  }

  void on_statement_end(std::size_t, const WalkState&) override {
    // A watch never adopted by a scope was a single-statement branch body; it
    // dies with the statement.
    std::erase_if(watches_, [](const Watch& w) { return w.scope_depth < 0; });
  }

 private:
  struct Watch {
    std::string atomic;
    std::size_t load_line = 0;
    int scope_depth = -1;  // -1 until a scope adopts it
  };

  const SourceFile& file_;
  const SymbolTable& table_;
  std::vector<Violation>& out_;
  std::vector<Watch> watches_;
};

}  // namespace

std::vector<Violation> analyze(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;

  // Symbol pass: per-file symbols feed guarded-mutex; the merged table feeds
  // the cross-file rules.
  std::vector<FileSymbols> per_file;
  per_file.reserve(files.size());
  SymbolTable table;
  for (const auto& file : files) {
    per_file.push_back(collect_symbols(file));
    table.absorb(per_file.back());
  }
  for (const auto& dup : table.conflicts()) {
    out.push_back({dup.file, dup.line + 1, "lock-order",
                   "Mutex name '" + dup.name +
                       "' is declared elsewhere with a different rank: mutex member names "
                       "must be globally unique so cross-file rank resolution is unambiguous"});
  }

  for (std::size_t f = 0; f < files.size(); ++f) {
    const SourceFile& file = files[f];

    for (std::size_t idx = 0; idx < file.code.size(); ++idx) {
      const std::string& code = file.code[idx];
      std::vector<Violation> line_hits;
      check_naked_unit_param(file, code, idx, line_hits);
      check_banned_random(file, code, idx, line_hits);
      check_nodiscard_result(file, code, idx, line_hits);
      check_raw_sync(file, code, idx, line_hits);
      check_raw_clock(file, code, idx, line_hits);
      check_raw_intrinsics(file, code, idx, line_hits);
      check_fp_determinism(file, code, idx, line_hits);
      check_atomics_lines(file, table, code, idx, line_hits);
      for (auto& v : line_hits) {
        if (!suppressed(file, idx, v.rule)) out.push_back(std::move(v));
      }
    }

    check_guarded_mutex(file, per_file[f], out);
    check_include_hygiene(file, out);

    LockOrderSink lock_order(file, table, out);
    walk_scopes(file.code, lock_order);
    WaitPredicateSink wait_predicate(file, table, out);
    walk_scopes(file.code, wait_predicate);
    CheckThenActSink check_then_act(file, table, out);
    walk_scopes(file.code, check_then_act);
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace evvo::lint
