#include "lint/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace evvo::lint {

namespace fs = std::filesystem;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

SourceFile load_source(const std::string& path, const std::string& display) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return make_source(display, text.str());
}

bool parse_baseline(std::istream& in, Baseline* out, std::ostream& err) {
  std::string line;
  std::size_t lineno = 0;
  bool ok = true;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::size_t count = 0;
    std::string rule, file;
    if (!(fields >> count >> rule >> file) || count == 0) {
      err << "baseline:" << lineno << ": malformed line (want `<count> <rule> <file>`): "
          << line << "\n";
      ok = false;
      continue;
    }
    (*out)[{file, rule}] += count;
  }
  return ok;
}

std::vector<Violation> apply_baseline(const std::vector<Violation>& violations,
                                      const Baseline& baseline,
                                      std::vector<std::string>* notes) {
  std::map<std::pair<std::string, std::string>, std::vector<Violation>> groups;
  for (const auto& v : violations) groups[{v.file, v.rule}].push_back(v);

  std::vector<Violation> surviving;
  for (const auto& [key, group] : groups) {
    const auto it = baseline.find(key);
    const std::size_t allowance = it == baseline.end() ? 0 : it->second;
    if (group.size() <= allowance) {
      if (group.size() < allowance && notes != nullptr) {
        notes->push_back("baseline for [" + key.second + "] " + key.first + " allows " +
                         std::to_string(allowance) + " but only " +
                         std::to_string(group.size()) +
                         " remain: tighten it with --write-baseline");
      }
      continue;  // grandfathered
    }
    surviving.insert(surviving.end(), group.begin(), group.end());
  }
  if (notes != nullptr) {
    for (const auto& [key, allowance] : baseline) {
      if (groups.find(key) == groups.end() && allowance > 0) {
        notes->push_back("baseline entry [" + key.second + "] " + key.first + " (" +
                         std::to_string(allowance) +
                         ") matches nothing: remove it with --write-baseline");
      }
    }
  }
  return surviving;
}

std::string format_baseline(const std::vector<Violation>& violations) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const auto& v : violations) ++counts[{v.file, v.rule}];
  std::ostringstream out;
  out << "# evvo_lint baseline: grandfathered violations, `<count> <rule> <file>`.\n"
         "# Counts may only shrink; regenerate with `evvo_lint --write-baseline <this file>`.\n";
  for (const auto& [key, count] : counts) {
    out << count << " " << key.second << " " << key.first << "\n";
  }
  return out.str();
}

void report(const std::vector<Violation>& violations, bool json, std::ostream& out) {
  for (const auto& v : violations) {
    if (json) {
      out << "{\"file\":\"" << json_escape(v.file) << "\",\"line\":" << v.line
          << ",\"rule\":\"" << json_escape(v.rule) << "\",\"message\":\""
          << json_escape(v.message) << "\"}\n";
    } else {
      out << v.file << ":" << v.line << ": warning: [" << v.rule << "] " << v.message << "\n";
    }
  }
}

int run(int argc, char** argv) {
  bool json = false;
  std::string root;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") return selftest::run() == 0 ? 0 : 1;
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: evvo_lint [--json] [--root <dir>] [--baseline <file>]\n"
                   "                 [--write-baseline <file>] [files...]\n"
                   "       evvo_lint --self-test\n";
      return 0;
    } else if (arg.starts_with("--")) {
      std::cerr << "evvo_lint: unknown option " << arg << " (see --help)\n";
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  std::vector<SourceFile> sources;
  if (!root.empty()) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
        paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) sources.push_back(load_source(p.string(), p.generic_string()));
  }
  for (const auto& f : files) sources.push_back(load_source(f, f));

  if (sources.empty()) {
    std::cerr << "evvo_lint: no input files (use --root <dir> or pass files)\n";
    return 2;
  }

  std::vector<Violation> all = analyze(sources);

  std::vector<std::string> notes;
  if (!baseline_path.empty()) {
    Baseline baseline;
    std::ifstream in(baseline_path);
    if (in) {
      if (!parse_baseline(in, &baseline, std::cerr)) return 2;
    }
    // An absent baseline file is an empty baseline: the tree must be clean.
    all = apply_baseline(all, baseline, &notes);
  }
  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    out << format_baseline(all);
    if (!out) {
      std::cerr << "evvo_lint: cannot write baseline " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "evvo_lint: wrote baseline for " << all.size() << " violation(s) to "
              << write_baseline_path << "\n";
    return 0;
  }

  report(all, json, std::cout);
  if (!json) {
    for (const auto& note : notes) std::cout << "note: " << note << "\n";
    std::cout << "evvo_lint: " << all.size() << " violation(s) across " << sources.size()
              << " file(s)\n";
  }
  return all.empty() ? 0 : 1;
}

}  // namespace evvo::lint
