// Brace/scope tracking over stripped code lines.
//
// walk_scopes() performs a character walk across a whole file, maintaining a
// stack of open braces plus enough per-statement state (did the current
// statement start with `while`/`for`/`if`...?) that rules can answer
// questions like "is this CondVar::wait inside a loop?" or "is this
// MutexLock still in scope?" without a real parser. Rules implement
// ScopeSink and get callbacks for scope opens/closes, identifiers, and
// statement boundaries.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace evvo::lint {

/// One open `{ ... }` region on the walk stack.
struct ScopeInfo {
  int depth = 0;              // 1 = outermost braces of the file
  std::string keyword;        // control/decl keyword that owns the brace
                              // ("while", "if", "class", ... or "" for bare)
  std::size_t open_line = 0;  // 0-based line of the '{'
};

/// Live state exposed to sinks during the walk.
struct WalkState {
  const std::vector<ScopeInfo>* scopes = nullptr;  // innermost last
  int depth = 0;
  bool statement_has_loop = false;    // current statement started while/for/do
  bool statement_has_branch = false;  // current statement started if/while

  /// Is any enclosing scope a loop body?
  bool in_loop_scope() const {
    for (const auto& s : *scopes) {
      if (s.keyword == "while" || s.keyword == "for" || s.keyword == "do") return true;
    }
    return false;
  }
};

/// Callbacks a rule registers with walk_scopes. All line numbers 0-based.
class ScopeSink {
 public:
  virtual ~ScopeSink() = default;
  virtual void on_scope_open(const ScopeInfo&, const WalkState&) {}
  virtual void on_scope_close(const ScopeInfo&, std::size_t /*line*/, const WalkState&) {}
  virtual void on_identifier(std::size_t /*line*/, std::size_t /*col*/,
                             std::string_view /*ident*/, const WalkState&) {}
  virtual void on_statement_end(std::size_t /*line*/, const WalkState&) {}
};

/// Walks the stripped code lines of one file, driving the sink.
void walk_scopes(const std::vector<std::string>& code_lines, ScopeSink& sink);

}  // namespace evvo::lint
