// Rule set of the evvo_lint analyzer.
//
// analyze() runs two passes over the file set: a symbol pass (lint/symbols)
// that learns every Mutex/atomic/CondVar declaration and the LockRank
// enumerator values, then a rule pass combining single-line checks with
// scope-walking checks (lint/scope). The rules:
//
//   naked-unit-param   boundary headers must not declare `double` parameters
//                      whose names read as speeds/times/flows — those are the
//                      exact parameters the strong types in common/units.hpp
//                      exist for.
//   banned-random      std::rand/srand/time(0) seeds are forbidden; the
//                      library ships its own deterministic PRNG.
//   nodiscard-result   solver/planner result structs (`...Solution`,
//                      `...Result`, `...Report`, `...Stats`, `...Response`)
//                      must be [[nodiscard]].
//   raw-sync           std::mutex / std::condition_variable outside
//                      common/mutex.hpp are forbidden.
//   raw-clock          std::chrono clock types (steady/system/high_resolution,
//                      aliases included) outside common/clock.hpp and
//                      common/telemetry.cpp — every duration measurement goes
//                      through the common::now_ns() seam so tests can fake it.
//   guarded-mutex      a file declaring a Mutex must contain at least one
//                      EVVO_GUARDED_BY/EVVO_REQUIRES annotation.
//   include-hygiene    #pragma once, no parent-relative includes, no
//                      `using namespace` at header scope.
//   raw-intrinsics     intrinsic headers/identifiers only in common/simd.hpp.
//   lock-order         every locked Mutex carries a LockRank; nested MutexLock
//                      acquisitions in one function must be rank-increasing.
//                      Static mirror of the EVVO_DEADLOCK_CHECK runtime
//                      validator (same-function nesting caught here, cross-
//                      function nesting at runtime).
//   atomics-misuse     atomic ops on declared std::atomic members need an
//                      explicit memory order; a *consumed* relaxed RMW is a
//                      synchronization bug; seq_cst is banned (state intent);
//                      atomic load-check-then-store is a racy check-then-act.
//   fp-determinism     std::accumulate/std::reduce family in src/core +
//                      src/learn, fast-math/contract pragmas, explicit
//                      std::fma outside simd.hpp, and OpenMP pragmas all
//                      break the bit-identity contract.
//   wait-predicate     CondVar::wait must sit inside a predicate loop
//                      (`while (!pred) cv.wait(m);`) — a bare or if-guarded
//                      wait drops spurious wakeups.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/symbols.hpp"

namespace evvo::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Runs every rule over the file set; suppressions already applied.
std::vector<Violation> analyze(const std::vector<SourceFile>& files);

}  // namespace evvo::lint
