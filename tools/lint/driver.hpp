// CLI driver for evvo_lint: file loading, reporting (gcc-style or JSON),
// and the baseline ratchet.
//
// The baseline file (LINT_BASELINE at the repo root) records grandfathered
// violations as `<count> <rule> <file>` lines. A lint run with `--baseline`
// drops any (file, rule) group whose violation count is at or below its
// allowance and reports everything else; counts can only shrink — when a
// group under-runs its allowance the run prints a note asking for the
// baseline to be re-tightened with `--write-baseline`. An empty (or absent)
// baseline means the tree must be clean.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace evvo::lint {

/// JSON string-escape covering the full control range: `"` `\` `\b` `\f`
/// `\n` `\r` `\t` plus \u00XX for every other control character, so rule
/// messages and file paths always round-trip through a JSON parser.
std::string json_escape(const std::string& s);

/// Reads a file from disk into a SourceFile (strips, classifies).
SourceFile load_source(const std::string& path, const std::string& display);

/// Baseline allowances keyed by (file, rule).
using Baseline = std::map<std::pair<std::string, std::string>, std::size_t>;

/// Parses `<count> <rule> <file>` lines; '#' comments and blanks skipped.
/// Returns false on a malformed line (reported to `err`).
bool parse_baseline(std::istream& in, Baseline* out, std::ostream& err);

/// Filters `violations` through the baseline. Groups within allowance are
/// dropped; over-allowance groups are reported whole. Notes (shrunk groups,
/// stale baseline entries) are appended to `notes`.
std::vector<Violation> apply_baseline(const std::vector<Violation>& violations,
                                      const Baseline& baseline,
                                      std::vector<std::string>* notes);

/// Serializes current violations in baseline format (sorted, commented).
std::string format_baseline(const std::vector<Violation>& violations);

/// Prints violations gcc-style (`file:line: warning: [rule] message`) or as
/// one JSON object per line.
void report(const std::vector<Violation>& violations, bool json, std::ostream& out);

/// Full CLI: parses argv, lints, reports. Exit code 0 clean, 1 violations,
/// 2 usage/IO error.
int run(int argc, char** argv);

}  // namespace evvo::lint

namespace evvo::lint::selftest {

/// Runs the embedded rule self-test; returns the number of failures.
int run();

}  // namespace evvo::lint::selftest
