#include "lint/scope.hpp"

#include <algorithm>

namespace evvo::lint {

namespace {

bool control_keyword(std::string_view ident) {
  static constexpr std::string_view kKeywords[] = {
      "if",    "else",   "while", "for",  "do",    "switch", "struct",
      "class", "namespace", "enum", "union", "try", "catch",
  };
  return std::any_of(std::begin(kKeywords), std::end(kKeywords),
                     [&](std::string_view k) { return ident == k; });
}

}  // namespace

void walk_scopes(const std::vector<std::string>& code_lines, ScopeSink& sink) {
  std::vector<ScopeInfo> scopes;
  WalkState st;
  st.scopes = &scopes;
  // Last control keyword seen since the previous statement/scope boundary;
  // it becomes the owner of the next '{' ("while" -> loop body, etc.).
  std::string pending_keyword;
  int paren_depth = 0;

  for (std::size_t line = 0; line < code_lines.size(); ++line) {
    const std::string& code = code_lines[line];
    for (std::size_t col = 0; col < code.size(); ++col) {
      const char c = code[col];
      if (is_ident_char(c)) {
        std::size_t end = col;
        while (end < code.size() && is_ident_char(code[end])) ++end;
        const std::string_view ident(code.data() + col, end - col);
        if (control_keyword(ident)) {
          pending_keyword = std::string(ident);
          if (ident == "while" || ident == "for" || ident == "do") st.statement_has_loop = true;
          if (ident == "if" || ident == "while") st.statement_has_branch = true;
        }
        sink.on_identifier(line, col, ident, st);
        col = end - 1;
        continue;
      }
      switch (c) {
        case '(':
          ++paren_depth;
          break;
        case ')':
          if (paren_depth > 0) --paren_depth;
          break;
        case '{': {
          ++st.depth;
          scopes.push_back({st.depth, pending_keyword, line});
          sink.on_scope_open(scopes.back(), st);
          pending_keyword.clear();
          // A brace body starts fresh statement state; the loop/branch nature
          // of the opener lives on in the scope keyword.
          st.statement_has_loop = false;
          st.statement_has_branch = false;
          break;
        }
        case '}': {
          if (!scopes.empty()) {
            const ScopeInfo closing = scopes.back();
            scopes.pop_back();
            --st.depth;
            sink.on_scope_close(closing, line, st);
          }
          st.statement_has_loop = false;
          st.statement_has_branch = false;
          sink.on_statement_end(line, st);
          pending_keyword.clear();
          break;
        }
        case ';':
          // A ';' inside parens is a for-loop separator, not a statement end.
          if (paren_depth == 0) {
            sink.on_statement_end(line, st);
            st.statement_has_loop = false;
            st.statement_has_branch = false;
            pending_keyword.clear();
          }
          break;
        default:
          break;
      }
    }
  }
}

}  // namespace evvo::lint
