// Cross-file symbol tables for the scope-aware rules.
//
// A first pass over every file under analysis collects:
//   - the LockRank enumerator values (from common/lock_ranks.hpp, or from an
//     embedded enum in self-test snippets),
//   - every `Mutex` member/variable declaration with the rank it was
//     constructed with (or none),
//   - every `std::atomic<...>` declaration,
//   - every `CondVar` declaration.
// The rules then resolve `MutexLock lock(shard.shard_mutex)` or
// `stats_.hits.fetch_add(...)` against these tables by trailing identifier,
// which is why the codebase keeps mutex member names globally unique.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace evvo::lint {

struct MutexDecl {
  std::string name;
  std::string rank_name;  // "kPlanShard" etc., empty when unranked
  bool ranked = false;
  std::string file;
  std::size_t line = 0;  // 0-based
};

struct AtomicDecl {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

struct CondVarDecl {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

/// Symbols declared in one file.
struct FileSymbols {
  std::vector<MutexDecl> mutexes;
  std::vector<AtomicDecl> atomics;
  std::vector<CondVarDecl> condvars;
  std::map<std::string, int> ranks;  // enumerator name -> value
};

/// Merged view over every file; built before rules run.
class SymbolTable {
 public:
  void absorb(const FileSymbols& symbols);

  const MutexDecl* find_mutex(std::string_view name) const;
  bool is_atomic(std::string_view name) const;
  bool is_condvar(std::string_view name) const;

  /// Numeric value of a rank enumerator; false when the name is unknown.
  bool rank_value(std::string_view rank_name, int* out) const;

  /// Mutex names declared twice with conflicting ranks (reported by the
  /// lock-order rule: an ambiguous name defeats cross-file resolution).
  const std::vector<MutexDecl>& conflicts() const { return conflicts_; }

 private:
  std::map<std::string, MutexDecl, std::less<>> mutexes_;
  std::map<std::string, AtomicDecl, std::less<>> atomics_;
  std::map<std::string, CondVarDecl, std::less<>> condvars_;
  std::map<std::string, int, std::less<>> ranks_;
  std::vector<MutexDecl> conflicts_;
};

/// Scans one file's stripped code for the declarations above.
FileSymbols collect_symbols(const SourceFile& file);

/// Convenience: collect + absorb over a whole file set.
SymbolTable build_symbol_table(const std::vector<SourceFile>& files);

}  // namespace evvo::lint
