// Embedded self-test: every rule must fire on a seeded violation and stay
// quiet when the violation is suppressed or the code is clean. Runs as the
// `lint_selftest` ctest and in the CI quick job, so a rule that silently
// stops firing is caught before it stops gating anything.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace evvo::lint::selftest {

namespace {

/// Mini rank enum embedded alongside snippets that exercise lock-order.
const std::string kRanks =
    "#pragma once\n"
    "enum class LockRank : int {\n"
    "  kA = 10,\n"
    "  kB = 20,\n"
    "};\n";

bool fires_in(const std::vector<SourceFile>& files, std::string_view rule) {
  const auto vs = analyze(files);
  return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) { return v.rule == rule; });
}

bool fires(const SourceFile& file, std::string_view rule) {
  return fires_in(std::vector<SourceFile>{file}, rule);
}

SourceFile ranks_file() { return make_source("src/common/lock_ranks2.hpp", kRanks); }

}  // namespace

int run() {
  int failures = 0;
  const auto expect = [&](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "self-test FAILED: " << what << "\n";
      ++failures;
    }
  };

  // -------------------------------------------------------------------------
  // v1 rules, unchanged behavior
  // -------------------------------------------------------------------------

  expect(fires(make_source("src/core/planner.hpp",
                           "#pragma once\nvoid plan(double depart_time_s);\n"),
               "naked-unit-param"),
         "naked-unit-param fires on `double depart_time_s` in a boundary header");
  expect(fires(make_source("src/core/planner.hpp", "#pragma once\nvoid go(double speed);\n"),
               "naked-unit-param"),
         "naked-unit-param fires on `double speed`");
  expect(!fires(make_source("src/core/internal_detail.hpp",
                            "#pragma once\nvoid plan(double depart_time_s);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent outside boundary headers");
  expect(!fires(make_source("src/core/planner.hpp",
                            "#pragma once\nvoid plan(Seconds depart_time);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent on a strong-typed parameter");
  expect(!fires(make_source("src/core/planner.hpp",
                            "#pragma once\nvoid plan(double depart_time_s);  "
                            "// evvo-lint: allow(naked-unit-param)\n"),
                "naked-unit-param"),
         "naked-unit-param honors suppression");
  expect(!fires(make_source("src/core/planner.hpp",
                            "#pragma once\nvoid turn(double grade_rad);\n"),
                "naked-unit-param"),
         "naked-unit-param is silent on non-unit parameter names");

  expect(fires(make_source("src/core/a.cpp", "int x = std::rand();\n"), "banned-random"),
         "banned-random fires on std::rand");
  expect(fires(make_source("src/core/a.cpp", "srand(time(0));\n"), "banned-random"),
         "banned-random fires on srand/time(0)");
  expect(!fires(make_source("src/core/a.cpp", "double run_time(Run r);\n"), "banned-random"),
         "banned-random is silent on identifiers containing 'time'/'rand'");
  expect(!fires(make_source("src/core/a.cpp", "// std::rand() would be wrong here\n"),
                "banned-random"),
         "banned-random ignores comments");

  expect(fires(make_source("src/core/b.hpp", "#pragma once\nstruct DpSolution {\n};\n"),
               "nodiscard-result"),
         "nodiscard-result fires on an unannotated Solution struct");
  expect(!fires(make_source("src/core/b.hpp",
                            "#pragma once\nstruct [[nodiscard]] DpSolution {\n};\n"),
                "nodiscard-result"),
         "nodiscard-result is silent when annotated");
  expect(!fires(make_source("src/core/b.hpp", "#pragma once\nstruct DpSolution;\n"),
                "nodiscard-result"),
         "nodiscard-result is silent on forward declarations");

  expect(fires(make_source("src/core/c.hpp", "#pragma once\nstd::mutex m_;\n"), "raw-sync"),
         "raw-sync fires on std::mutex outside the wrapper");
  expect(!fires(make_source("src/common/mutex.hpp", "#pragma once\nstd::mutex inner_;\n"),
                "raw-sync"),
         "raw-sync is silent inside common/mutex.hpp");

  expect(fires(make_source("src/core/cl.cpp",
                           "auto t = std::chrono::steady_clock::now();\n"),
               "raw-clock"),
         "raw-clock fires on steady_clock::now outside the seam");
  expect(fires(make_source("src/core/cl2.cpp",
                           "using Clock = std::chrono::high_resolution_clock;\n"),
               "raw-clock"),
         "raw-clock fires on a clock type alias (the funnel-evasion vector)");
  expect(!fires(make_source("src/common/clock.hpp",
                            "#pragma once\nauto t = std::chrono::steady_clock::now();\n"),
                "raw-clock"),
         "raw-clock is silent inside common/clock.hpp");
  expect(!fires(make_source("src/common/telemetry.cpp",
                            "auto t = std::chrono::steady_clock::now();\n"),
                "raw-clock"),
         "raw-clock is silent inside common/telemetry.cpp");
  expect(!fires(make_source("src/core/cl3.cpp", "// steady_clock would be wrong here\n"),
                "raw-clock"),
         "raw-clock ignores comments");
  expect(!fires(make_source("src/core/cl4.cpp",
                            "auto t = std::chrono::steady_clock::now();  "
                            "// evvo-lint: allow(raw-clock)\n"),
                "raw-clock"),
         "raw-clock honors suppression");

  expect(fires(make_source("src/core/k.cpp", "#include <immintrin.h>\n"), "raw-intrinsics"),
         "raw-intrinsics fires on an intrinsic header include");
  expect(fires(make_source("src/core/k.cpp", "auto v = _mm_add_ps(a, b);\n"),
               "raw-intrinsics"),
         "raw-intrinsics fires on an _mm_ identifier");
  expect(fires(make_source("src/core/k.cpp", "auto v = vld1q_f32(p);\n"), "raw-intrinsics"),
         "raw-intrinsics fires on a NEON vld1q identifier");
  expect(!fires(make_source("src/common/simd.hpp",
                            "#pragma once\n#include <immintrin.h>\nauto v = _mm_add_ps(a, b);\n"),
                "raw-intrinsics"),
         "raw-intrinsics is silent inside common/simd.hpp");
  expect(!fires(make_source("src/core/k.cpp",
                            "#include <immintrin.h>  // evvo-lint: allow(raw-intrinsics)\n"),
                "raw-intrinsics"),
         "raw-intrinsics honors suppression");
  expect(!fires(make_source("src/core/k.cpp", "// _mm_add_ps would be wrong here\n"),
                "raw-intrinsics"),
         "raw-intrinsics ignores comments");

  expect(fires(make_source("src/core/d.hpp",
                           "#pragma once\nclass A {\n common::Mutex d_mutex_;\n};\n"),
               "guarded-mutex"),
         "guarded-mutex fires on a Mutex member with no annotations in file");
  expect(fires(make_source("src/core/d2.hpp",
                           "#pragma once\nclass A {\n common::Mutex d2_mutex_{LockRank::kA};\n};\n"),
               "guarded-mutex"),
         "guarded-mutex fires on a brace-initialized (ranked) Mutex too");
  expect(!fires(make_source("src/core/d.hpp",
                            "#pragma once\nclass A {\n common::Mutex d_mutex_;\n"
                            " int x EVVO_GUARDED_BY(d_mutex_);\n};\n"),
                "guarded-mutex"),
         "guarded-mutex is silent when the file has annotations");

  expect(fires(make_source("src/core/e.hpp", "int x;\n"), "include-hygiene"),
         "include-hygiene fires on a header without #pragma once");
  expect(fires(make_source("src/core/f.hpp",
                           "#pragma once\n#include \"../road/route.hpp\"\n"),
               "include-hygiene"),
         "include-hygiene fires on parent-relative includes");
  expect(fires(make_source("src/core/g.hpp", "#pragma once\nusing namespace std;\n"),
               "include-hygiene"),
         "include-hygiene fires on using namespace in a header");
  expect(!fires(make_source("src/core/h.cpp", "using namespace std::chrono_literals;\n"),
                "include-hygiene"),
         "include-hygiene allows using namespace in a .cpp");

  // -------------------------------------------------------------------------
  // lock-order
  // -------------------------------------------------------------------------

  const std::string decls =
      "#pragma once\n"
      "struct S {\n"
      "  Mutex low_mutex{LockRank::kA};\n"
      "  Mutex high_mutex{LockRank::kB};\n"
      "  Mutex plain_mutex;\n"
      "  int x EVVO_GUARDED_BY(low_mutex);\n"
      "};\n";
  const auto with_ranks = [&](const std::string& path, const std::string& body) {
    return std::vector<SourceFile>{ranks_file(), make_source("src/core/decls.hpp", decls),
                                   make_source(path, body)};
  };

  expect(fires_in(with_ranks("src/core/lo.cpp",
                             "void f(S& s) {\n"
                             "  MutexLock a(s.high_mutex);\n"
                             "  MutexLock b(s.low_mutex);\n"
                             "}\n"),
                  "lock-order"),
         "lock-order fires on a rank inversion (high then low)");
  expect(fires_in(with_ranks("src/core/lo_eq.cpp",
                             "void f(S& s, S& t) {\n"
                             "  MutexLock a(s.low_mutex);\n"
                             "  MutexLock b(t.low_mutex);\n"
                             "}\n"),
                  "lock-order"),
         "lock-order fires on equal-rank nesting (must be strictly increasing)");
  expect(!fires_in(with_ranks("src/core/lo_ok.cpp",
                              "void f(S& s) {\n"
                              "  MutexLock a(s.low_mutex);\n"
                              "  MutexLock b(s.high_mutex);\n"
                              "}\n"),
                   "lock-order"),
         "lock-order is silent on rank-increasing nesting");
  expect(!fires_in(with_ranks("src/core/lo_seq.cpp",
                              "void f(S& s) {\n"
                              "  {\n"
                              "    MutexLock a(s.high_mutex);\n"
                              "  }\n"
                              "  MutexLock b(s.low_mutex);\n"
                              "}\n"),
                   "lock-order"),
         "lock-order is silent when the first lock's scope closed (sequential)");
  expect(fires_in(with_ranks("src/core/lo_plain.cpp",
                             "void f(S& s) {\n"
                             "  MutexLock a(s.plain_mutex);\n"
                             "}\n"),
                  "lock-order"),
         "lock-order fires when locking a Mutex declared without a rank");
  expect(fires_in(std::vector<SourceFile>{
                      ranks_file(),
                      make_source("src/core/decls2.hpp",
                                  "#pragma once\n"
                                  "struct T {\n"
                                  "  Mutex typo_mutex{LockRank::kNoSuchRank};\n"
                                  "  int x EVVO_GUARDED_BY(typo_mutex);\n"
                                  "};\n"),
                      make_source("src/core/lo_typo.cpp",
                                  "void f(T& t) {\n"
                                  "  MutexLock a(t.typo_mutex);\n"
                                  "}\n")},
                  "lock-order"),
         "lock-order fires when a rank name is not a LockRank enumerator");
  expect(!fires_in(with_ranks("src/core/lo_sup.cpp",
                              "void f(S& s) {\n"
                              "  MutexLock a(s.high_mutex);\n"
                              "  // evvo-lint: allow(lock-order)\n"
                              "  MutexLock b(s.low_mutex);\n"
                              "}\n"),
                   "lock-order"),
         "lock-order honors suppression on the acquisition line");
  expect(fires_in(std::vector<SourceFile>{
                      ranks_file(),
                      make_source("src/core/dup1.hpp",
                                  "#pragma once\nstruct A { Mutex dup_mutex{LockRank::kA}; "
                                  "int x EVVO_GUARDED_BY(dup_mutex); };\n"),
                      make_source("src/core/dup2.hpp",
                                  "#pragma once\nstruct B { Mutex dup_mutex{LockRank::kB}; "
                                  "int x EVVO_GUARDED_BY(dup_mutex); };\n")},
                  "lock-order"),
         "lock-order fires on duplicate mutex names with conflicting ranks");

  // -------------------------------------------------------------------------
  // atomics-misuse
  // -------------------------------------------------------------------------

  const std::string atomic_decl =
      "#pragma once\nstruct C {\n  std::atomic<unsigned> hits{0};\n};\n";
  const auto with_atomic = [&](const std::string& body) {
    return std::vector<SourceFile>{make_source("src/core/cdecl.hpp", atomic_decl),
                                   make_source("src/core/am.cpp", body)};
  };

  expect(fires_in(with_atomic("void f(C& c) {\n  c.hits.fetch_add(1);\n}\n"),
                  "atomics-misuse"),
         "atomics-misuse fires on an atomic op without an explicit memory order");
  expect(!fires_in(with_atomic("void f(C& c) {\n"
                               "  c.hits.fetch_add(1, std::memory_order_relaxed);\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse is silent on a discarded relaxed counter bump");
  expect(fires_in(with_atomic("unsigned f(C& c) {\n"
                              "  unsigned n = c.hits.fetch_add(1, std::memory_order_relaxed);\n"
                              "  return n;\n}\n"),
                  "atomics-misuse"),
         "atomics-misuse fires on a consumed relaxed RMW");
  expect(!fires_in(with_atomic("unsigned f(C& c) {\n"
                               "  unsigned n = c.hits.fetch_add(1, std::memory_order_acq_rel);\n"
                               "  return n;\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse is silent on a consumed acq_rel RMW");
  expect(!fires_in(with_atomic("unsigned f(C& c) {\n"
                               "  // claims an index only, not a publication edge\n"
                               "  // evvo-lint: allow(atomics-misuse)\n"
                               "  unsigned n = c.hits.fetch_add(1, std::memory_order_relaxed);\n"
                               "  return n;\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse honors suppression on a consumed relaxed RMW");
  expect(fires_in(with_atomic("void f(C& c) {\n"
                              "  c.hits.store(0, std::memory_order_seq_cst);\n}\n"),
                  "atomics-misuse"),
         "atomics-misuse fires on memory_order_seq_cst");
  expect(fires_in(with_atomic("void f(C& c) {\n"
                              "  if (c.hits.load(std::memory_order_acquire) == 0) {\n"
                              "    c.hits.store(1, std::memory_order_release);\n"
                              "  }\n}\n"),
                  "atomics-misuse"),
         "atomics-misuse fires on atomic check-then-act (load in branch, then store)");
  expect(fires_in(with_atomic("void f(C& c) {\n"
                              "  if (c.hits.load(std::memory_order_acquire) == 0) "
                              "c.hits.store(1, std::memory_order_release);\n}\n"),
                  "atomics-misuse"),
         "atomics-misuse fires on single-statement check-then-act");
  expect(!fires_in(with_atomic("void f(C& c) {\n"
                               "  unsigned want = 0;\n"
                               "  while (!c.hits.compare_exchange_weak(want, 1,\n"
                               "      std::memory_order_acq_rel, std::memory_order_acquire)) {\n"
                               "  }\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse is silent on a compare_exchange retry loop");
  expect(!fires_in(with_atomic("void f(C& c) {\n"
                               "  if (c.hits.load(std::memory_order_acquire) == 0) {\n"
                               "    log();\n"
                               "  }\n"
                               "  c.hits.store(1, std::memory_order_release);\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse is silent when the store is outside the guarded branch");
  expect(!fires_in(std::vector<SourceFile>{
                       make_source("src/core/vec.cpp",
                                   "void f(VecF v, float* p) {\n  v.store(p);\n}\n")},
                   "atomics-misuse"),
         "atomics-misuse is silent on non-atomic receivers (simd VecF::store)");
  expect(!fires_in(with_atomic("void f(D& d, int i) {\n"
                               "  d.cells[i].hits.fetch_add(1, std::memory_order_relaxed);\n}\n"),
                   "atomics-misuse"),
         "atomics-misuse is silent on a discarded RMW behind an array subscript");

  // -------------------------------------------------------------------------
  // fp-determinism
  // -------------------------------------------------------------------------

  expect(fires(make_source("src/core/fp.cpp",
                           "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"),
               "fp-determinism"),
         "fp-determinism fires on std::accumulate in src/core");
  expect(fires(make_source("src/learn/fp.cpp",
                           "double s = std::reduce(v.begin(), v.end());\n"),
               "fp-determinism"),
         "fp-determinism fires on std::reduce in src/learn");
  expect(!fires(make_source("src/road/fp.cpp",
                            "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"),
                "fp-determinism"),
         "fp-determinism reduction ban is scoped to the deterministic zones");
  expect(fires(make_source("src/road/fp2.cpp", "#pragma STDC FP_CONTRACT ON\n"),
               "fp-determinism"),
         "fp-determinism fires on FP_CONTRACT pragmas anywhere");
  expect(fires(make_source("src/road/fp3.cpp", "#pragma clang fp contract(fast)\n"),
               "fp-determinism"),
         "fp-determinism fires on clang fp pragmas");
  expect(fires(make_source("src/core/fp4.cpp", "#pragma omp parallel for\n"),
               "fp-determinism"),
         "fp-determinism fires on OpenMP pragmas");
  expect(fires(make_source("src/core/fp5.cpp", "double y = std::fma(a, b, c);\n"),
               "fp-determinism"),
         "fp-determinism fires on std::fma outside simd.hpp");
  expect(!fires(make_source("src/common/simd.hpp",
                            "#pragma once\ndouble y = std::fma(a, b, c);\n"),
                "fp-determinism"),
         "fp-determinism allows std::fma inside common/simd.hpp");
  expect(!fires(make_source("src/core/fp6.cpp",
                            "double s = std::accumulate(v.begin(), v.end(), 0.0);  "
                            "// evvo-lint: allow(fp-determinism)\n"),
                "fp-determinism"),
         "fp-determinism honors suppression");

  // -------------------------------------------------------------------------
  // wait-predicate
  // -------------------------------------------------------------------------

  const std::string cv_decl =
      "#pragma once\nstruct W {\n  Mutex w_mutex;\n  CondVar ready;\n"
      "  bool done EVVO_GUARDED_BY(w_mutex);\n};\n";
  const auto with_cv = [&](const std::string& body) {
    return std::vector<SourceFile>{make_source("src/core/wdecl.hpp", cv_decl),
                                   make_source("src/core/wp.cpp", body)};
  };

  expect(fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                          "  w.ready.wait(w.w_mutex);\n}\n"),
                  "wait-predicate"),
         "wait-predicate fires on a bare wait");
  expect(fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                          "  if (!w.done) w.ready.wait(w.w_mutex);\n}\n"),
                  "wait-predicate"),
         "wait-predicate fires on an if-guarded wait");
  expect(!fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                           "  while (!w.done) w.ready.wait(w.w_mutex);\n}\n"),
                   "wait-predicate"),
         "wait-predicate is silent on a while-guarded wait");
  expect(!fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                           "  while (!w.done) {\n    w.ready.wait(w.w_mutex);\n  }\n}\n"),
                   "wait-predicate"),
         "wait-predicate is silent on a braced while body");
  expect(!fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                           "  do {\n    w.ready.wait(w.w_mutex);\n  } while (!w.done);\n}\n"),
                   "wait-predicate"),
         "wait-predicate is silent inside a do-while body");
  expect(!fires_in(with_cv("void f(W& w, Future& fut) {\n  fut.wait();\n}\n"),
                   "wait-predicate"),
         "wait-predicate ignores wait() on non-CondVar receivers");
  expect(!fires_in(with_cv("void f(W& w) {\n  MutexLock lock(w.w_mutex);\n"
                           "  w.ready.wait(w.w_mutex);  // evvo-lint: allow(wait-predicate)\n}\n"),
                   "wait-predicate"),
         "wait-predicate honors suppression");

  // -------------------------------------------------------------------------
  // tokenizer / suppression corners
  // -------------------------------------------------------------------------

  expect(!fires(make_source("src/core/t1.cpp",
                            "/* std::rand() in a block comment\n"
                            "   spanning lines */ int x;\n"),
                "banned-random"),
         "tokenizer strips block comments spanning lines");
  expect(!fires(make_source("src/core/t2.cpp",
                            "const char* s = \"std::rand()\";\n"),
                "banned-random"),
         "tokenizer strips string literal contents");
  expect(fires(make_source("src/core/t3.cpp",
                           "int n = 1'000'000; int x = std::rand();\n"),
               "banned-random"),
         "tokenizer passes digit separators through (code after them still lints)");
  expect(!fires(make_source("src/core/t4.cpp",
                            "char c = ';'; int x = 0; // std::rand\n"),
                "banned-random"),
         "tokenizer strips char literals and trailing comments");
  // Suppression across a blank line must NOT apply.
  expect(fires(make_source("src/core/t5.cpp",
                           "// evvo-lint: allow(banned-random)\n"
                           "\n"
                           "int x = std::rand();\n"),
               "banned-random"),
         "a blank line breaks the allow-above association");
  expect(!fires(make_source("src/core/t6.cpp",
                            "int x = std::rand(); int y = _mm_add_ps(a, b);  "
                            "// evvo-lint: allow(banned-random) allow(raw-intrinsics)\n"),
                "banned-random") &&
             !fires(make_source("src/core/t6.cpp",
                                "int x = std::rand(); int y = _mm_add_ps(a, b);  "
                                "// evvo-lint: allow(banned-random) allow(raw-intrinsics)\n"),
                    "raw-intrinsics"),
         "multiple allow() groups on one line each apply");
  expect(!fires(make_source("src/core/t7.cpp",
                            "int x = std::rand(); int y = _mm_add_ps(a, b);  "
                            "// evvo-lint: allow(banned-random, raw-intrinsics)\n"),
                "raw-intrinsics"),
         "comma-separated allow lists apply to every named rule");

  if (failures == 0) {
    std::cout << "evvo_lint self-test: all rules fire and suppress correctly\n";
  }
  return failures;
}

}  // namespace evvo::lint::selftest
