// Longitudinal vehicle dynamics: the required drive force of paper Eq. (1).
#pragma once

#include "ev/vehicle_params.hpp"

namespace evvo::ev {

/// Per-term breakdown of the drive force, useful for diagnostics and tests.
struct ForceBreakdown {
  double inertial_n = 0.0;   ///< m * dv/dt
  double aero_n = 0.0;       ///< 0.5 * rho * A_f * C_d * v^2
  double grade_n = 0.0;      ///< m * g * sin(theta)
  double rolling_n = 0.0;    ///< mu * m * g * cos(theta)

  double total() const { return inertial_n + aero_n + grade_n + rolling_n; }
};

/// Eq. (1): F_drive = m*a + 0.5*rho*A_f*C_d*v^2 + m*g*sin(theta) + mu*m*g*cos(theta).
///
/// `grade_rad` is the road gradient theta in radians (positive = uphill).
/// Rolling resistance is applied only while moving (v > 0), so a parked
/// vehicle needs no tractive force.
double drive_force(const VehicleParams& p, double speed_ms, double accel_ms2, double grade_rad = 0.0);

/// Same as drive_force but returns each term separately.
ForceBreakdown drive_force_breakdown(const VehicleParams& p, double speed_ms, double accel_ms2,
                                     double grade_rad = 0.0);

/// Tractive power at the wheel, F_drive * v [W].
double wheel_power(const VehicleParams& p, double speed_ms, double accel_ms2, double grade_rad = 0.0);

/// Steady-state cruising force (a = 0) on flat ground; handy for tests.
double cruise_force(const VehicleParams& p, double speed_ms);

}  // namespace evvo::ev
