#include "ev/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace evvo::ev {

BatteryStress battery_stress(const EnergyModel& model, const BatteryPack& pack,
                             const DriveCycle& cycle, const GradeFn& grade) {
  BatteryStress stress;
  if (cycle.size() < 2) return stress;
  const double dt = cycle.dt();
  const std::vector<double> cum = cycle.cumulative_distance();
  const auto speeds = cycle.speeds();
  double sq_sum = 0.0;
  int prev_sign = 0;
  for (std::size_t i = 0; i + 1 < speeds.size(); ++i) {
    const double v_mid = 0.5 * (speeds[i] + speeds[i + 1]);
    const double a = (speeds[i + 1] - speeds[i]) / dt;
    const double theta = grade ? grade(0.5 * (cum[i] + cum[i + 1])) : 0.0;
    const double amps = model.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(a), theta);
    stress.ah_throughput += as_to_ah(std::abs(amps) * dt);
    sq_sum += amps * amps * dt;
    stress.peak_discharge_a = std::max(stress.peak_discharge_a, amps);
    stress.peak_regen_a = std::max(stress.peak_regen_a, -amps);
    const int sign = amps > 1e-9 ? 1 : amps < -1e-9 ? -1 : 0;
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++stress.direction_reversals;
    if (sign != 0) prev_sign = sign;
  }
  const double duration = cycle.duration();
  stress.rms_current_a = duration > 0.0 ? std::sqrt(sq_sum / duration) : 0.0;
  stress.equivalent_full_cycles = stress.ah_throughput / (2.0 * pack.capacity_ah());
  return stress;
}

}  // namespace evvo::ev
