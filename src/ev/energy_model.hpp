// EV energy consumption model: paper Eq. (2)-(3).
//
// The paper accounts energy as electrical charge: Eq. (3) converts wheel power
// into a pack current zeta = F_drive * v / (U * eta1 * eta2), and trip totals
// are reported in mAh. This module provides the instantaneous rate and trip
// integration over drive cycles and planned profiles.
#pragma once

#include <functional>

#include <memory>

#include "common/units.hpp"
#include "ev/battery.hpp"
#include "ev/efficiency_map.hpp"
#include "ev/drive_cycle.hpp"
#include "ev/vehicle_params.hpp"

namespace evvo::ev {

/// How negative wheel power (deceleration) is converted into pack current.
enum class RegenConvention {
  /// Paper Eq. (3) verbatim: zeta = P / (U*eta1*eta2) for all P, scaled by
  /// regen_efficiency when P < 0. With regen_efficiency = 1 this reproduces
  /// the fully symmetric negative rates of Fig. 3.
  kPaperEq3,
  /// Physical direction-aware conversion: discharging divides by the
  /// efficiencies, charging multiplies by them (and by regen_efficiency).
  kPhysical,
};

/// Grade profile: road gradient [rad] as a function of position [m].
using GradeFn = std::function<double(double)>;

/// Energy accounting for a trip, in the units the paper reports.
struct TripEnergy {
  double charge_mah = 0.0;       ///< net pack charge consumed (regen credited)
  double driving_mah = 0.0;      ///< charge consumed while wheel power >= 0
  double regenerated_mah = 0.0;  ///< charge recovered while wheel power < 0
  double accessory_mah = 0.0;    ///< charge drawn by the constant auxiliary load
  double duration_s = 0.0;
  double distance_m = 0.0;

  /// Consumption per distance [mAh/km]; 0 for a zero-length trip.
  double mah_per_km() const { return distance_m > 0.0 ? charge_mah / (distance_m / 1000.0) : 0.0; }
};

/// The paper's EV energy model over a given pack voltage.
class EnergyModel {
 public:
  EnergyModel(VehicleParams params, double pack_voltage,
              RegenConvention regen = RegenConvention::kPaperEq3);

  /// Paper-default model: Spark-EV params over the 399 V 22P95S pack.
  EnergyModel();

  /// Replaces the constant powertrain efficiency eta_2 with a speed/power
  /// efficiency map (extension; nullptr restores the paper's constant).
  void set_powertrain_map(std::shared_ptr<const EfficiencyMap> map) { map_ = std::move(map); }
  const EfficiencyMap* powertrain_map() const { return map_.get(); }

  const VehicleParams& params() const { return params_; }
  double pack_voltage() const { return voltage_; }
  RegenConvention regen_convention() const { return regen_; }

  /// Eq. (3): instantaneous pack current [A] to drive at speed v with
  /// acceleration a on gradient theta [rad]. Includes the accessory load.
  double current_a(MetersPerSecond speed, MetersPerSecondSquared accel,
                   double grade_rad = 0.0) const;

  /// Traction-only part of current_a (no accessory load) — the literal Eq. (3).
  double traction_current_a(MetersPerSecond speed, MetersPerSecondSquared accel,
                            double grade_rad = 0.0) const;

  /// Accessory current [A], constant while the vehicle is on.
  double accessory_current_a() const;

  /// Charge [Ah] for holding (v, a, theta) during `dt`.
  double charge_ah(MetersPerSecond speed, MetersPerSecondSquared accel, Seconds dt,
                   double grade_rad = 0.0) const;

  /// Integrates a time-domain cycle. `grade` maps position to gradient
  /// (defaults to flat road).
  TripEnergy trip(const DriveCycle& cycle, const GradeFn& grade = {}) const;

  /// Speed [m/s] that minimizes charge-per-meter on flat ground within
  /// [v_lo, v_hi]; the natural cruise point the optimizer gravitates to
  /// (test oracle).
  double most_efficient_cruise_speed(MetersPerSecond v_lo, MetersPerSecond v_hi,
                                     MetersPerSecond step = MetersPerSecond(0.1)) const;

 private:
  VehicleParams params_;
  double voltage_;
  RegenConvention regen_;
  std::shared_ptr<const EfficiencyMap> map_;
};

}  // namespace evvo::ev
