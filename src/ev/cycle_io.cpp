#include "ev/cycle_io.hpp"

#include <cmath>
#include <stdexcept>

#include "common/csv.hpp"

namespace evvo::ev {

void save_cycle_csv(const std::filesystem::path& path, const DriveCycle& cycle) {
  CsvTable table;
  table.columns = {"time_s", "speed_ms"};
  const auto speeds = cycle.speeds();
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    table.add_row({static_cast<double>(i) * cycle.dt(), speeds[i]});
  }
  write_csv(path, table);
}

DriveCycle load_cycle_csv(const std::filesystem::path& path) {
  const CsvTable table = read_csv(path);
  std::vector<double> times, speeds;
  try {
    times = table.column("time_s");
    speeds = table.column("speed_ms");
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(std::string("load_cycle_csv: ") + e.what());
  }
  if (times.size() < 2) throw std::runtime_error("load_cycle_csv: need at least two samples");
  const double dt = times[1] - times[0];
  if (dt <= 0.0) throw std::runtime_error("load_cycle_csv: non-increasing time column");
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (std::abs(times[i] - times[i - 1] - dt) > 1e-6)
      throw std::runtime_error("load_cycle_csv: time column is not uniformly spaced");
  }
  return DriveCycle(std::move(speeds), dt);
}

}  // namespace evvo::ev
