#include "ev/battery.hpp"

#include <algorithm>
#include <stdexcept>

namespace evvo::ev {

BatteryPack::BatteryPack(CellSpec cell, PackLayout layout)
    : capacity_ah_(cell.capacity_ah * static_cast<double>(layout.parallel_strings)),
      max_voltage_(cell.max_voltage * static_cast<double>(layout.series_cells)),
      nominal_voltage_(cell.nominal_voltage * static_cast<double>(layout.series_cells)),
      cell_count_(layout.series_cells * layout.parallel_strings) {
  if (layout.series_cells == 0 || layout.parallel_strings == 0)
    throw std::invalid_argument("BatteryPack: layout must have at least one cell");
  if (cell.capacity_ah <= 0.0 || cell.max_voltage <= 0.0 || cell.nominal_voltage <= 0.0)
    throw std::invalid_argument("BatteryPack: cell spec must be positive");
}

BatteryPack::BatteryPack() : BatteryPack(CellSpec{}, PackLayout{}) {}

double BatteryPack::nominal_energy_kwh() const {
  return nominal_voltage_ * capacity_ah_ / 1000.0;
}

void BatteryPack::reset(double soc) {
  if (soc < 0.0 || soc > 1.0) throw std::invalid_argument("BatteryPack::reset: soc out of [0,1]");
  soc_ = soc;
}

double BatteryPack::discharge_ah(double ah) {
  const double before = soc_ * capacity_ah_;
  const double after = std::clamp(before - ah, 0.0, capacity_ah_);
  soc_ = after / capacity_ah_;
  return before - after;
}

}  // namespace evvo::ev
