// Speed/power-dependent powertrain efficiency map.
//
// The paper treats the powertrain efficiency eta_2 as a constant (Eq. 2-3);
// real drives traverse a motor efficiency map that sags at low speed / low
// load and near peak power. This optional extension replaces the constant
// with a bilinear lookup so the optimizer sees the realistic sweet spot;
// the constant-eta paper model remains the default.
#pragma once

#include <vector>

namespace evvo::ev {

/// Bilinear efficiency lookup over (speed [m/s], |mechanical power| [W]).
class EfficiencyMap {
 public:
  /// Grid axes must be strictly increasing; efficiency[i][j] pairs
  /// speed_axis[i] with power_axis[j] and must lie in (0, 1].
  EfficiencyMap(std::vector<double> speed_axis_ms, std::vector<double> power_axis_w,
                std::vector<std::vector<double>> efficiency);

  /// A representative permanent-magnet traction-motor map for a Spark-EV
  /// class machine: ~0.70 at crawl/low load, ~0.93 plateau at mid speed and
  /// mid power, falling toward 0.85 at peak power.
  static EfficiencyMap typical_ev_motor();

  /// Efficiency at (speed, |power|), bilinear inside the grid, clamped at the
  /// edges.
  double at(double speed_ms, double power_w) const;

  double min_efficiency() const;
  double max_efficiency() const;

 private:
  std::vector<double> speeds_;
  std::vector<double> powers_;
  std::vector<std::vector<double>> eta_;
};

}  // namespace evvo::ev
