// Battery pack model: pack sizing from cells and charge bookkeeping (Eq. 2).
#pragma once

#include <cstddef>

namespace evvo::ev {

/// A single lithium-ion cell. Default: Sony US18650 VTC4 (2.1 Ah, 4.2 V max,
/// 3.6 V nominal), the cell the paper builds its pack from.
struct CellSpec {
  double capacity_ah = 2.1;
  double max_voltage = 4.2;
  double nominal_voltage = 3.6;
};

/// Series/parallel pack layout. Default: the paper's 22P95S Spark-EV-like pack
/// (95 series x 22 parallel = 2090 cells, 46.2 Ah, 399 V max).
struct PackLayout {
  std::size_t series_cells = 95;
  std::size_t parallel_strings = 22;
};

/// Battery pack with state-of-charge tracking in ampere-hours.
///
/// Charge is the paper's accounting unit for EV energy consumption: Eq. (3)
/// produces a pack current, and total consumption is reported in mAh.
class BatteryPack {
 public:
  BatteryPack(CellSpec cell, PackLayout layout);
  BatteryPack();  ///< paper-default pack

  double capacity_ah() const { return capacity_ah_; }
  double max_voltage() const { return max_voltage_; }
  double nominal_voltage() const { return nominal_voltage_; }
  std::size_t cell_count() const { return cell_count_; }

  /// Pack energy content at nominal voltage [kWh].
  double nominal_energy_kwh() const;

  /// Current state of charge as a fraction in [0, 1].
  double state_of_charge() const { return soc_; }

  /// Remaining charge [Ah].
  double remaining_ah() const { return soc_ * capacity_ah_; }

  /// Resets SoC (fraction in [0, 1]).
  void reset(double soc = 1.0);

  /// Applies a discharge of `ah` ampere-hours (negative = regeneration).
  /// SoC saturates at [0, 1]; returns the charge actually moved.
  double discharge_ah(double ah);

 private:
  double capacity_ah_;
  double max_voltage_;
  double nominal_voltage_;
  std::size_t cell_count_;
  double soc_ = 1.0;
};

}  // namespace evvo::ev
