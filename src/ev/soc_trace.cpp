#include "ev/soc_trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"

namespace evvo::ev {

SocTrace run_battery(const EnergyModel& model, BatteryPack& pack, const DriveCycle& cycle,
                     const GradeFn& grade) {
  SocTrace trace;
  trace.soc.reserve(cycle.size());
  trace.soc.push_back(pack.state_of_charge());
  trace.min_soc = pack.state_of_charge();
  if (cycle.size() < 2) return trace;

  const double dt = cycle.dt();
  const std::vector<double> cum = cycle.cumulative_distance();
  const auto speeds = cycle.speeds();
  for (std::size_t i = 0; i + 1 < speeds.size(); ++i) {
    const double v_mid = 0.5 * (speeds[i] + speeds[i + 1]);
    const double a = (speeds[i + 1] - speeds[i]) / dt;
    const double theta = grade ? grade(0.5 * (cum[i] + cum[i + 1])) : 0.0;
    const double ah =
        as_to_ah(model.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(a), theta) * dt);
    const double moved = pack.discharge_ah(ah);
    trace.consumed_ah += moved;
    if (ah > 0.0 && moved < ah - 1e-12) trace.depleted = true;
    trace.soc.push_back(pack.state_of_charge());
    trace.min_soc = std::min(trace.min_soc, pack.state_of_charge());
  }
  return trace;
}

double estimated_range_m(const EnergyModel& model, const BatteryPack& pack,
                         double cruise_speed_ms) {
  if (cruise_speed_ms <= 0.0)
    throw std::invalid_argument("estimated_range_m: cruise speed must be positive");
  const double amps = model.current_a(MetersPerSecond(cruise_speed_ms), MetersPerSecondSquared(0.0));
  if (amps <= 0.0) return 0.0;
  const double seconds = pack.remaining_ah() * kSecondsPerHour / amps;
  return seconds * cruise_speed_ms;
}

}  // namespace evvo::ev
