// Time-domain velocity profiles ("drive cycles") and their statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace evvo::ev {

/// A velocity trace sampled on a fixed time step: v[k] = speed at t = k*dt.
///
/// This is the common currency between the trace generator, the traffic
/// simulator (recorded ego trajectories), and the profile evaluator. The
/// optimizer's distance-domain plans are converted to DriveCycle for
/// energy/time accounting so that every profile in Fig. 6-8 is compared on
/// identical footing.
class DriveCycle {
 public:
  DriveCycle(std::vector<double> speeds_ms, double dt_s);

  double dt() const { return dt_; }
  std::size_t size() const { return speeds_.size(); }
  bool empty() const { return speeds_.empty(); }
  std::span<const double> speeds() const { return speeds_; }

  /// Total duration [s]. A cycle with n samples spans (n-1)*dt.
  double duration() const;

  /// Total distance traveled [m] (trapezoidal integration of speed).
  double distance() const;

  /// Speed at time t [m/s], linearly interpolated; clamped to the ends.
  double speed_at(double t) const;

  /// Cumulative distance at time t [m].
  double distance_at(double t) const;

  /// Cumulative-distance series aligned with the speed samples (Fig. 8 series).
  std::vector<double> cumulative_distance() const;

  /// Central-difference acceleration series [m/s^2], same length as speeds.
  std::vector<double> accelerations() const;

  /// Speed as a function of distance, sampled every ds meters from 0 to distance().
  std::vector<double> speed_by_distance(double ds) const;

  double max_speed() const;

  /// Number of stop events: entries into speed < threshold that last at least
  /// min_duration seconds (the initial standstill at t=0 is not counted).
  int stop_count(double threshold_ms = 0.3, double min_duration_s = 1.0) const;

  /// Time spent at speed < threshold, excluding the leading standstill [s].
  double stopped_time(double threshold_ms = 0.3) const;

  /// Returns a copy resampled to a new time step (linear interpolation).
  DriveCycle resampled(double new_dt) const;

  /// Appends a sample (used by simulators that record step by step).
  void push_back(double speed_ms);

 private:
  std::vector<double> speeds_;
  double dt_;
};

}  // namespace evvo::ev
