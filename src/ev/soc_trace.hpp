// Battery state-of-charge tracking over a trip, and simple range estimation.
//
// Connects the Eq. (3) charge accounting to the pack model: integrates the
// pack current over a drive cycle, yielding the SoC trajectory the driver
// sees and the remaining-range estimate a navigation system would show.
#pragma once

#include <vector>

#include "ev/battery.hpp"
#include "ev/drive_cycle.hpp"
#include "ev/energy_model.hpp"

namespace evvo::ev {

/// SoC trajectory over a cycle, one sample per cycle step.
struct SocTrace {
  std::vector<double> soc;        ///< fraction of capacity per sample
  double consumed_ah = 0.0;       ///< net charge drawn over the trip
  double min_soc = 1.0;
  bool depleted = false;          ///< pack hit empty mid-trip

  double final_soc() const { return soc.empty() ? 1.0 : soc.back(); }
};

/// Integrates the cycle against the model, mutating `pack`'s SoC.
/// `grade` maps position to road gradient (defaults to flat).
SocTrace run_battery(const EnergyModel& model, BatteryPack& pack, const DriveCycle& cycle,
                     const GradeFn& grade = {});

/// Remaining range [m] at the pack's current SoC, assuming steady cruising at
/// `cruise_speed_ms` on flat ground (the dashboard "distance to empty").
double estimated_range_m(const EnergyModel& model, const BatteryPack& pack,
                         double cruise_speed_ms);

}  // namespace evvo::ev
