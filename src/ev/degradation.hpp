// Battery stress metrics over a trip.
//
// The paper motivates velocity optimization partly by battery lifetime:
// "frequent charging/discharging reduces battery lifetime" (Sec. I). These
// metrics quantify that channel: charge throughput (each ampere-hour cycled
// through the pack ages it), RMS and peak currents (C-rate stress), and the
// count of charge-direction reversals (micro-cycles caused by stop-and-go).
#pragma once

#include "ev/battery.hpp"
#include "ev/drive_cycle.hpp"
#include "ev/energy_model.hpp"

namespace evvo::ev {

struct BatteryStress {
  double ah_throughput = 0.0;        ///< integral of |I| dt (charge cycled)
  double rms_current_a = 0.0;
  double peak_discharge_a = 0.0;     ///< largest positive pack current
  double peak_regen_a = 0.0;         ///< largest magnitude charging current
  int direction_reversals = 0;       ///< discharge<->charge sign flips
  double equivalent_full_cycles = 0.0;  ///< throughput / (2 * pack capacity)

  /// Peak C-rate relative to the pack capacity.
  double peak_c_rate(const BatteryPack& pack) const {
    return peak_discharge_a / pack.capacity_ah();
  }
};

/// Integrates the stress metrics of driving `cycle` under `model` over a pack
/// of the given capacity. `grade` maps position to gradient (default flat).
BatteryStress battery_stress(const EnergyModel& model, const BatteryPack& pack,
                             const DriveCycle& cycle, const GradeFn& grade = {});

}  // namespace evvo::ev
