// Drive-cycle CSV import/export: persist recorded or planned profiles (the
// format the Fig. 6-8 CSVs use: time,speed rows) and load external traces.
#pragma once

#include <filesystem>

#include "ev/drive_cycle.hpp"

namespace evvo::ev {

/// Writes `time_s,speed_ms` rows.
void save_cycle_csv(const std::filesystem::path& path, const DriveCycle& cycle);

/// Loads a cycle saved by save_cycle_csv (or any CSV with those two columns).
/// The time column must be uniformly spaced; throws std::runtime_error
/// otherwise.
DriveCycle load_cycle_csv(const std::filesystem::path& path);

}  // namespace evvo::ev
