#include "ev/efficiency_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace evvo::ev {

namespace {
void require_increasing(const std::vector<double>& axis, const char* name) {
  if (axis.size() < 2) throw std::invalid_argument(std::string("EfficiencyMap: ") + name + " needs >= 2 points");
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (axis[i] <= axis[i - 1])
      throw std::invalid_argument(std::string("EfficiencyMap: ") + name + " must be strictly increasing");
  }
}

/// Index of the cell such that axis[i] <= x < axis[i+1], clamped to the grid.
std::size_t cell_index(const std::vector<double>& axis, double x) {
  if (x <= axis.front()) return 0;
  if (x >= axis[axis.size() - 2]) return axis.size() - 2;
  std::size_t lo = 0;
  std::size_t hi = axis.size() - 2;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (axis[mid] <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}
}  // namespace

EfficiencyMap::EfficiencyMap(std::vector<double> speed_axis_ms, std::vector<double> power_axis_w,
                             std::vector<std::vector<double>> efficiency)
    : speeds_(std::move(speed_axis_ms)), powers_(std::move(power_axis_w)), eta_(std::move(efficiency)) {
  require_increasing(speeds_, "speed axis");
  require_increasing(powers_, "power axis");
  if (eta_.size() != speeds_.size())
    throw std::invalid_argument("EfficiencyMap: efficiency rows must match the speed axis");
  for (const auto& row : eta_) {
    if (row.size() != powers_.size())
      throw std::invalid_argument("EfficiencyMap: efficiency columns must match the power axis");
    for (const double e : row) {
      if (e <= 0.0 || e > 1.0)
        throw std::invalid_argument("EfficiencyMap: efficiencies must lie in (0, 1]");
    }
  }
}

EfficiencyMap EfficiencyMap::typical_ev_motor() {
  // speed [m/s] x |power| [W]; values follow the familiar PMSM island shape.
  const std::vector<double> speeds{0.5, 5.0, 10.0, 15.0, 20.0, 30.0};
  const std::vector<double> powers{500.0, 2000.0, 5000.0, 10000.0, 20000.0, 40000.0, 80000.0};
  const std::vector<std::vector<double>> eta{
      {0.70, 0.72, 0.74, 0.73, 0.70, 0.66, 0.60},
      {0.76, 0.84, 0.88, 0.88, 0.85, 0.80, 0.74},
      {0.78, 0.88, 0.92, 0.93, 0.91, 0.87, 0.82},
      {0.78, 0.88, 0.93, 0.93, 0.92, 0.89, 0.85},
      {0.77, 0.87, 0.92, 0.93, 0.92, 0.90, 0.86},
      {0.75, 0.85, 0.90, 0.92, 0.91, 0.89, 0.85},
  };
  return EfficiencyMap(speeds, powers, eta);
}

double EfficiencyMap::at(double speed_ms, double power_w) const {
  const double v = std::abs(speed_ms);
  const double p = std::abs(power_w);
  const std::size_t i = cell_index(speeds_, v);
  const std::size_t j = cell_index(powers_, p);
  const double tv = clamp((v - speeds_[i]) / (speeds_[i + 1] - speeds_[i]), 0.0, 1.0);
  const double tp = clamp((p - powers_[j]) / (powers_[j + 1] - powers_[j]), 0.0, 1.0);
  const double low = lerp(eta_[i][j], eta_[i][j + 1], tp);
  const double high = lerp(eta_[i + 1][j], eta_[i + 1][j + 1], tp);
  return lerp(low, high, tv);
}

double EfficiencyMap::min_efficiency() const {
  double best = 1.0;
  for (const auto& row : eta_) best = std::min(best, *std::min_element(row.begin(), row.end()));
  return best;
}

double EfficiencyMap::max_efficiency() const {
  double best = 0.0;
  for (const auto& row : eta_) best = std::max(best, *std::max_element(row.begin(), row.end()));
  return best;
}

}  // namespace evvo::ev
