// Vehicle and powertrain parameters for the pure-EV energy model (paper Sec. II-A).
#pragma once

namespace evvo::ev {

/// Road-load and powertrain parameters entering Eq. (1) and Eq. (3).
///
/// Defaults reproduce the paper's experimental vehicle, a Chevrolet Spark EV:
/// m = 1300 kg, A_f = 2.2 m^2, C_d = 0.33, mu = 0.018, eta1 = 0.95 (battery),
/// eta2 = 0.85 (powertrain). The OCR of the paper garbles some digits; values
/// here are the physically sensible restorations documented in DESIGN.md.
struct VehicleParams {
  double mass_kg = 1300.0;              ///< gross weight m
  double frontal_area_m2 = 2.2;         ///< frontal area A_f
  double drag_coefficient = 0.33;       ///< aerodynamic drag C_d
  double rolling_resistance = 0.018;    ///< rolling resistance mu
  double battery_efficiency = 0.95;     ///< eta_1, battery energy transforming efficiency
  double powertrain_efficiency = 0.85;  ///< eta_2, powertrain working efficiency

  /// Comfort/safety acceleration envelope used by the optimizer (paper Sec. III-A1).
  double min_acceleration = -1.5;  ///< m/s^2
  double max_acceleration = 2.5;   ///< m/s^2

  /// Constant auxiliary electrical load (HVAC, electronics) drawn whenever the
  /// vehicle is on. Not in the paper's Eq. (3); it gives idle time a nonzero
  /// cost so the optimizer cannot "win" by crawling, matching the paper's
  /// empirical observation that the optimal plan does not increase trip time.
  double accessory_power_w = 500.0;

  /// Fraction of regenerated power actually returned to the pack when the
  /// wheel power is negative. 1.0 reproduces the paper's Eq. (3) exactly
  /// (Fig. 3 shows fully symmetric negative rates); < 1 is the physical mode
  /// explored by the ablation bench.
  double regen_efficiency = 1.0;

  /// Validates physical ranges; throws std::invalid_argument on nonsense.
  void validate() const;
};

}  // namespace evvo::ev
