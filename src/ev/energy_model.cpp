#include "ev/energy_model.hpp"

#include <limits>
#include <stdexcept>

#include "common/units.hpp"
#include "ev/longitudinal.hpp"

namespace evvo::ev {

EnergyModel::EnergyModel(VehicleParams params, double pack_voltage, RegenConvention regen)
    : params_(params), voltage_(pack_voltage), regen_(regen) {
  params_.validate();
  if (voltage_ <= 0.0) throw std::invalid_argument("EnergyModel: pack voltage must be positive");
}

EnergyModel::EnergyModel() : EnergyModel(VehicleParams{}, BatteryPack{}.max_voltage()) {}

double EnergyModel::traction_current_a(MetersPerSecond speed, MetersPerSecondSquared accel,
                                       double grade_rad) const {
  // .value() seam: everything below runs on raw SI doubles, bit-identical to
  // the pre-units code.
  const double speed_ms = speed.value();
  const double accel_ms2 = accel.value();
  const double power_w = wheel_power(params_, speed_ms, accel_ms2, grade_rad);
  const double eta_powertrain =
      map_ ? map_->at(speed_ms, power_w) : params_.powertrain_efficiency;
  const double eta = params_.battery_efficiency * eta_powertrain;
  if (power_w >= 0.0) return power_w / (voltage_ * eta);
  switch (regen_) {
    case RegenConvention::kPaperEq3:
      return params_.regen_efficiency * power_w / (voltage_ * eta);
    case RegenConvention::kPhysical:
      return params_.regen_efficiency * power_w * eta / voltage_;
  }
  return 0.0;  // unreachable
}

double EnergyModel::accessory_current_a() const {
  return params_.accessory_power_w / (voltage_ * params_.battery_efficiency);
}

double EnergyModel::current_a(MetersPerSecond speed, MetersPerSecondSquared accel,
                              double grade_rad) const {
  return traction_current_a(speed, accel, grade_rad) + accessory_current_a();
}

double EnergyModel::charge_ah(MetersPerSecond speed, MetersPerSecondSquared accel, Seconds dt,
                              double grade_rad) const {
  return as_to_ah(current_a(speed, accel, grade_rad) * dt.value());
}

TripEnergy EnergyModel::trip(const DriveCycle& cycle, const GradeFn& grade) const {
  TripEnergy e;
  if (cycle.size() < 2) return e;
  const double dt = cycle.dt();
  const std::vector<double> cum = cycle.cumulative_distance();
  const auto speeds = cycle.speeds();
  for (std::size_t i = 0; i + 1 < speeds.size(); ++i) {
    const double v_mid = 0.5 * (speeds[i] + speeds[i + 1]);
    const double a = (speeds[i + 1] - speeds[i]) / dt;
    const double s_mid = 0.5 * (cum[i] + cum[i + 1]);
    const double theta = grade ? grade(s_mid) : 0.0;
    const double traction = traction_current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(a), theta);
    const double traction_mah = ah_to_mah(as_to_ah(traction * dt));
    if (traction >= 0.0) {
      e.driving_mah += traction_mah;
    } else {
      e.regenerated_mah += -traction_mah;
    }
    e.accessory_mah += ah_to_mah(as_to_ah(accessory_current_a() * dt));
  }
  e.charge_mah = e.driving_mah - e.regenerated_mah + e.accessory_mah;
  e.duration_s = cycle.duration();
  e.distance_m = cycle.distance();
  return e;
}

double EnergyModel::most_efficient_cruise_speed(MetersPerSecond v_lo_q, MetersPerSecond v_hi_q,
                                                MetersPerSecond step_q) const {
  const double v_lo = v_lo_q.value(), v_hi = v_hi_q.value(), step = step_q.value();
  if (v_lo <= 0.0 || v_hi < v_lo || step <= 0.0)
    throw std::invalid_argument("most_efficient_cruise_speed: bad range");
  double best_v = v_lo;
  double best_rate = std::numeric_limits<double>::infinity();
  for (double v = v_lo; v <= v_hi + 1e-9; v += step) {
    const double per_meter =
        current_a(MetersPerSecond(v), MetersPerSecondSquared(0.0)) / v;  // A*s per meter
    if (per_meter < best_rate) {
      best_rate = per_meter;
      best_v = v;
    }
  }
  return best_v;
}

}  // namespace evvo::ev
