#include "ev/longitudinal.hpp"

#include <cmath>

#include "common/units.hpp"

namespace evvo::ev {

ForceBreakdown drive_force_breakdown(const VehicleParams& p, double speed_ms, double accel_ms2,
                                     double grade_rad) {
  ForceBreakdown f;
  f.inertial_n = p.mass_kg * accel_ms2;
  f.aero_n = 0.5 * kAirDensity * p.frontal_area_m2 * p.drag_coefficient * speed_ms * speed_ms;
  f.grade_n = p.mass_kg * kGravity * std::sin(grade_rad);
  f.rolling_n = speed_ms > 0.0 ? p.rolling_resistance * p.mass_kg * kGravity * std::cos(grade_rad) : 0.0;
  return f;
}

double drive_force(const VehicleParams& p, double speed_ms, double accel_ms2, double grade_rad) {
  return drive_force_breakdown(p, speed_ms, accel_ms2, grade_rad).total();
}

double wheel_power(const VehicleParams& p, double speed_ms, double accel_ms2, double grade_rad) {
  return drive_force(p, speed_ms, accel_ms2, grade_rad) * speed_ms;
}

double cruise_force(const VehicleParams& p, double speed_ms) {
  return drive_force(p, speed_ms, 0.0, 0.0);
}

}  // namespace evvo::ev
