#include "ev/vehicle_params.hpp"

#include <stdexcept>

namespace evvo::ev {

void VehicleParams::validate() const {
  if (mass_kg <= 0.0) throw std::invalid_argument("VehicleParams: mass must be positive");
  if (frontal_area_m2 <= 0.0) throw std::invalid_argument("VehicleParams: frontal area must be positive");
  if (drag_coefficient < 0.0) throw std::invalid_argument("VehicleParams: drag coefficient must be >= 0");
  if (rolling_resistance < 0.0) throw std::invalid_argument("VehicleParams: rolling resistance must be >= 0");
  if (battery_efficiency <= 0.0 || battery_efficiency > 1.0)
    throw std::invalid_argument("VehicleParams: battery efficiency must be in (0, 1]");
  if (powertrain_efficiency <= 0.0 || powertrain_efficiency > 1.0)
    throw std::invalid_argument("VehicleParams: powertrain efficiency must be in (0, 1]");
  if (min_acceleration >= 0.0 || max_acceleration <= 0.0)
    throw std::invalid_argument("VehicleParams: acceleration envelope must bracket zero");
  if (accessory_power_w < 0.0) throw std::invalid_argument("VehicleParams: accessory power must be >= 0");
  if (regen_efficiency < 0.0 || regen_efficiency > 1.0)
    throw std::invalid_argument("VehicleParams: regen efficiency must be in [0, 1]");
}

}  // namespace evvo::ev
