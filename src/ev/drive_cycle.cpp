#include "ev/drive_cycle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace evvo::ev {

DriveCycle::DriveCycle(std::vector<double> speeds_ms, double dt_s)
    : speeds_(std::move(speeds_ms)), dt_(dt_s) {
  if (dt_ <= 0.0) throw std::invalid_argument("DriveCycle: dt must be positive");
  for (const double v : speeds_) {
    if (v < 0.0 || !std::isfinite(v)) throw std::invalid_argument("DriveCycle: speeds must be finite and >= 0");
  }
}

double DriveCycle::duration() const {
  return speeds_.size() < 2 ? 0.0 : dt_ * static_cast<double>(speeds_.size() - 1);
}

double DriveCycle::distance() const { return trapezoid(speeds_, dt_); }

double DriveCycle::speed_at(double t) const {
  if (speeds_.empty()) return 0.0;
  if (t <= 0.0) return speeds_.front();
  const double pos = t / dt_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= speeds_.size()) return speeds_.back();
  return lerp(speeds_[idx], speeds_[idx + 1], pos - static_cast<double>(idx));
}

double DriveCycle::distance_at(double t) const {
  if (speeds_.size() < 2 || t <= 0.0) return 0.0;
  double dist = 0.0;
  double elapsed = 0.0;
  for (std::size_t i = 0; i + 1 < speeds_.size(); ++i) {
    const double step = std::min(dt_, t - elapsed);
    if (step <= 0.0) break;
    const double v_end = lerp(speeds_[i], speeds_[i + 1], step / dt_);
    dist += 0.5 * (speeds_[i] + v_end) * step;
    elapsed += step;
  }
  return dist;
}

std::vector<double> DriveCycle::cumulative_distance() const {
  std::vector<double> out(speeds_.size(), 0.0);
  for (std::size_t i = 1; i < speeds_.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * (speeds_[i - 1] + speeds_[i]) * dt_;
  }
  return out;
}

std::vector<double> DriveCycle::accelerations() const {
  std::vector<double> out(speeds_.size(), 0.0);
  if (speeds_.size() < 2) return out;
  out.front() = (speeds_[1] - speeds_[0]) / dt_;
  out.back() = (speeds_[speeds_.size() - 1] - speeds_[speeds_.size() - 2]) / dt_;
  for (std::size_t i = 1; i + 1 < speeds_.size(); ++i) {
    out[i] = (speeds_[i + 1] - speeds_[i - 1]) / (2.0 * dt_);
  }
  return out;
}

std::vector<double> DriveCycle::speed_by_distance(double ds) const {
  if (ds <= 0.0) throw std::invalid_argument("DriveCycle::speed_by_distance: ds must be positive");
  const std::vector<double> cum = cumulative_distance();
  std::vector<double> out;
  if (cum.empty()) return out;
  const double total = cum.back();
  std::size_t seg = 0;
  for (double s = 0.0; s <= total + 1e-9; s += ds) {
    while (seg + 1 < cum.size() && cum[seg + 1] < s) ++seg;
    if (seg + 1 >= cum.size()) {
      out.push_back(speeds_.back());
      continue;
    }
    const double span = cum[seg + 1] - cum[seg];
    const double t = span > 1e-12 ? (s - cum[seg]) / span : 0.0;
    out.push_back(lerp(speeds_[seg], speeds_[seg + 1], clamp(t, 0.0, 1.0)));
  }
  return out;
}

double DriveCycle::max_speed() const {
  return speeds_.empty() ? 0.0 : *std::max_element(speeds_.begin(), speeds_.end());
}

int DriveCycle::stop_count(double threshold_ms, double min_duration_s) const {
  const auto min_samples = static_cast<std::size_t>(std::ceil(min_duration_s / dt_));
  int stops = 0;
  std::size_t i = 0;
  // Skip the leading standstill (vehicles start parked).
  while (i < speeds_.size() && speeds_[i] < threshold_ms) ++i;
  while (i < speeds_.size()) {
    if (speeds_[i] < threshold_ms) {
      std::size_t j = i;
      while (j < speeds_.size() && speeds_[j] < threshold_ms) ++j;
      if (j - i >= min_samples) ++stops;
      i = j;
    } else {
      ++i;
    }
  }
  return stops;
}

double DriveCycle::stopped_time(double threshold_ms) const {
  std::size_t i = 0;
  while (i < speeds_.size() && speeds_[i] < threshold_ms) ++i;
  std::size_t halted = 0;
  for (; i < speeds_.size(); ++i) {
    if (speeds_[i] < threshold_ms) ++halted;
  }
  return static_cast<double>(halted) * dt_;
}

DriveCycle DriveCycle::resampled(double new_dt) const {
  if (new_dt <= 0.0) throw std::invalid_argument("DriveCycle::resampled: dt must be positive");
  const double total = duration();
  std::vector<double> out;
  for (double t = 0.0; t <= total + 1e-9; t += new_dt) out.push_back(speed_at(t));
  return DriveCycle(std::move(out), new_dt);
}

void DriveCycle::push_back(double speed_ms) {
  if (speed_ms < 0.0 || !std::isfinite(speed_ms))
    throw std::invalid_argument("DriveCycle::push_back: speed must be finite and >= 0");
  speeds_.push_back(speed_ms);
}

}  // namespace evvo::ev
