#include "sim/krauss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evvo::sim {

double krauss_safe_speed(double gap_m, double leader_speed_ms, double decel_ms2,
                         double reaction_time_s) {
  if (decel_ms2 <= 0.0) throw std::invalid_argument("krauss_safe_speed: decel must be positive");
  if (gap_m <= 0.0) return 0.0;
  const double bt = decel_ms2 * reaction_time_s;
  const double radicand = bt * bt + leader_speed_ms * leader_speed_ms + 2.0 * decel_ms2 * gap_m;
  return std::max(0.0, -bt + std::sqrt(radicand));
}

double krauss_safe_speed_for_stop(double distance_m, double decel_ms2, double reaction_time_s) {
  return krauss_safe_speed(distance_m, 0.0, decel_ms2, reaction_time_s);
}

double krauss_following_speed(const DriverParams& driver, double current_speed_ms,
                              double desired_speed_ms, double safe_speed_ms, double dt_s) {
  const double accelerated = current_speed_ms + driver.accel_ms2 * dt_s;
  const double v = std::min({accelerated, desired_speed_ms, safe_speed_ms});
  // Physical braking bound: even an emergency stop cannot shed more than
  // b_emergency * dt per step; use 2x comfortable decel as the emergency bound.
  const double emergency_floor = current_speed_ms - 2.0 * driver.decel_ms2 * dt_s;
  return std::max(0.0, std::max(v, emergency_floor));
}

}  // namespace evvo::sim
