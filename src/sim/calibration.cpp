#include "sim/calibration.hpp"

namespace evvo::sim {

traffic::VmParams calibrated_vm_params(const DriverParams& background, double min_speed_ms,
                                       double straight_ratio) {
  traffic::VmParams vm;
  vm.min_speed_ms = min_speed_ms;
  vm.max_accel_ms2 = background.accel_ms2;
  vm.spacing_m =
      background.length_m + background.min_gap_m + min_speed_ms * background.reaction_time_s;
  vm.straight_ratio = straight_ratio;
  vm.validate();
  return vm;
}

}  // namespace evvo::sim
