#include "sim/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evvo::sim {

InductionLoop::InductionLoop(double position_m, double bucket_s)
    : position_m_(position_m), bucket_s_(bucket_s) {
  if (bucket_s_ <= 0.0) throw std::invalid_argument("InductionLoop: bucket must be positive");
}

void InductionLoop::observe(const Microsim& sim) {
  const auto bucket = static_cast<std::size_t>(sim.time() / bucket_s_);
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  std::map<int, double> current;
  for (const SimVehicle& v : sim.vehicles()) {
    current[v.id] = v.position_m;
    const auto it = last_positions_.find(v.id);
    if (it != last_positions_.end() && it->second <= position_m_ && v.position_m > position_m_) {
      ++total_;
      ++buckets_[bucket];
    }
  }
  last_positions_ = std::move(current);
}

traffic::HourlyVolumeSeries InductionLoop::to_hourly_series(int start_hour_of_week) const {
  if (std::abs(bucket_s_ - 3600.0) > 1e-9)
    throw std::logic_error("InductionLoop: hourly series requires 3600 s buckets");
  std::vector<double> volumes(buckets_.begin(), buckets_.end());
  return traffic::HourlyVolumeSeries(std::move(volumes), start_hour_of_week);
}

QueueLengthRecorder::QueueLengthRecorder(std::size_t light_index) : light_index_(light_index) {}

void QueueLengthRecorder::observe(const Microsim& sim) {
  const auto [count, length] = sim.measured_queue(light_index_);
  samples_.push_back(QueueSample{sim.time(), count, length});
}

double QueueLengthRecorder::max_length_m() const {
  double best = 0.0;
  for (const QueueSample& s : samples_) best = std::max(best, s.length_m);
  return best;
}

std::vector<double> QueueLengthRecorder::length_series(double t0, double span_s, double dt) const {
  if (dt <= 0.0) throw std::invalid_argument("QueueLengthRecorder: dt must be positive");
  std::vector<double> out;
  std::size_t idx = 0;
  for (double t = t0; t <= t0 + span_s + 1e-9; t += dt) {
    while (idx + 1 < samples_.size() &&
           std::abs(samples_[idx + 1].time_s - t) <= std::abs(samples_[idx].time_s - t)) {
      ++idx;
    }
    out.push_back(samples_.empty() ? 0.0 : samples_[idx].length_m);
  }
  return out;
}

TravelTimeProbe::TravelTimeProbe(double entry_m, double exit_m)
    : entry_m_(entry_m), exit_m_(exit_m) {
  if (exit_m_ <= entry_m_) throw std::invalid_argument("TravelTimeProbe: exit must be downstream");
}

void TravelTimeProbe::observe(const Microsim& sim) {
  std::map<int, double> current;
  for (const SimVehicle& v : sim.vehicles()) {
    current[v.id] = v.position_m;
    const auto last = last_positions_.find(v.id);
    if (last == last_positions_.end()) continue;
    if (last->second <= entry_m_ && v.position_m > entry_m_) {
      entry_times_[v.id] = sim.time();
    }
    const auto entered = entry_times_.find(v.id);
    if (entered != entry_times_.end() && last->second <= exit_m_ && v.position_m > exit_m_) {
      travel_times_.push_back(sim.time() - entered->second);
      entry_times_.erase(entered);
    }
  }
  // Vehicles that left the corridor (turned off) drop their pending entries.
  for (auto it = entry_times_.begin(); it != entry_times_.end();) {
    it = current.count(it->first) ? std::next(it) : entry_times_.erase(it);
  }
  last_positions_ = std::move(current);
}

double TravelTimeProbe::mean_travel_time() const {
  if (travel_times_.empty()) return 0.0;
  double sum = 0.0;
  for (const double t : travel_times_) sum += t;
  return sum / static_cast<double>(travel_times_.size());
}

double TravelTimeProbe::mean_delay(double free_flow_speed_ms) const {
  if (free_flow_speed_ms <= 0.0)
    throw std::invalid_argument("TravelTimeProbe: free-flow speed must be positive");
  const double free_flow = (exit_m_ - entry_m_) / free_flow_speed_ms;
  return std::max(0.0, mean_travel_time() - free_flow);
}

}  // namespace evvo::sim
