// Calibration bridge: derive the VM/QL model's discharge parameters from the
// simulator's driver population, the same way the paper measured its
// inter-vehicle distance d = 8.5 m from its own observed traffic.
//
// The VM model treats d as both the standstill spacing and the spacing held
// while discharging at v_min; the effective discharge headway is therefore
// d / v_min. For a Krauss population, the saturation headway at speed v is
// reaction_time + (length + min_gap) / v, so matching the model's discharge
// *rate* to the simulator requires
//   d_eff = v_min * headway(v_min) = length + min_gap + v_min * reaction_time.
#pragma once

#include "sim/vehicle.hpp"
#include "traffic/vm_model.hpp"

namespace evvo::sim {

/// VM parameters whose queue-clearance times match this driver population.
traffic::VmParams calibrated_vm_params(const DriverParams& background, double min_speed_ms,
                                       double straight_ratio = 0.7636);

}  // namespace evvo::sim
