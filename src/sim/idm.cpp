#include "sim/idm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evvo::sim {

double idm_acceleration(const DriverParams& driver, double speed_ms, double desired_speed_ms,
                        double gap_m, double approach_rate_ms) {
  if (driver.accel_ms2 <= 0.0 || driver.decel_ms2 <= 0.0)
    throw std::invalid_argument("idm_acceleration: accel/decel must be positive");
  const double v0 = std::max(desired_speed_ms, 0.1);
  const double free_term = std::pow(speed_ms / v0, 4.0);
  const double s_star = driver.min_gap_m + speed_ms * driver.reaction_time_s +
                        speed_ms * approach_rate_ms /
                            (2.0 * std::sqrt(driver.accel_ms2 * driver.decel_ms2));
  const double gap = std::max(gap_m, 0.1);
  const double interaction = std::max(s_star, 0.0) / gap;
  return driver.accel_ms2 * (1.0 - free_term - interaction * interaction);
}

double idm_following_speed(const DriverParams& driver, double speed_ms, double desired_speed_ms,
                           double gap_m, double approach_rate_ms, double dt_s) {
  const double a = idm_acceleration(driver, speed_ms, desired_speed_ms, gap_m, approach_rate_ms);
  // Bound by an emergency-braking floor like the Krauss update.
  const double bounded = std::max(a, -2.0 * driver.decel_ms2);
  return std::max(0.0, speed_ms + bounded * dt_s);
}

}  // namespace evvo::sim
