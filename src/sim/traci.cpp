#include "sim/traci.hpp"

#include <stdexcept>

namespace evvo::sim {

namespace {
constexpr double kCreepSpeed_ms = 0.4;  ///< floor so zero-speed plan points are approached
}

TraciClient::TraciClient(Microsim& sim) : sim_(sim) {}

int TraciClient::add_ego(double position_m, const DriverParams& driver) {
  return sim_.spawn_ego(position_m, driver);
}

bool TraciClient::ego_present() const { return sim_.ego() != nullptr; }

double TraciClient::ego_position() const {
  const SimVehicle* ego = sim_.ego();
  if (!ego) throw std::logic_error("TraciClient: no ego");
  return ego->position_m;
}

double TraciClient::ego_speed() const {
  const SimVehicle* ego = sim_.ego();
  if (!ego) throw std::logic_error("TraciClient: no ego");
  return ego->speed_ms;
}

void TraciClient::set_speed(double speed_ms) { sim_.command_ego_speed(speed_ms); }

void TraciClient::simulation_step() { sim_.step(); }

double TraciClient::time() const { return sim_.time(); }

ExecutionResult execute_planned_profile(Microsim& sim, const TargetSpeedFn& target, double start_m,
                                        double end_m, double timeout_s,
                                        const DriverParams& ego_driver) {
  if (end_m <= start_m) throw std::invalid_argument("execute_planned_profile: end before start");
  TraciClient traci(sim);
  traci.add_ego(start_m, ego_driver);
  ExecutionResult result;
  result.start_time_s = sim.time();
  std::vector<double> speeds{0.0};
  result.positions.push_back(start_m);
  const double deadline = sim.time() + timeout_s;
  while (sim.time() < deadline) {
    const double pos = traci.ego_position();
    if (pos >= end_m) {
      result.completed = true;
      break;
    }
    const double wanted = target(pos, sim.time());
    traci.set_speed(std::max(wanted, kCreepSpeed_ms));
    traci.simulation_step();
    speeds.push_back(traci.ego_speed());
    result.positions.push_back(traci.ego_position());
  }
  result.finish_time_s = sim.time();
  result.cycle = ev::DriveCycle(std::move(speeds), sim.config().step_s);
  sim.remove_ego();
  return result;
}

}  // namespace evvo::sim
