// Microscopic single-lane corridor traffic simulator - the SUMO substitute.
//
// Background vehicles are inserted upstream by a (possibly time-varying)
// Poisson process, follow each other with the Krauss model (SUMO's default),
// obey the fixed-time signals, and turn off the corridor at each signal with
// probability (1 - gamma). The ego EV is a distinguished vehicle whose speed
// can be commanded step-by-step through the TraCI-style client; commands are
// clamped by car-following safety and red lights, exactly as SUMO clamps
// TraCI setSpeed requests, which is how the paper derives its "velocity
// profile from SUMO" (Fig. 6).
//
// Stop signs on the corridor govern the ego's route (minor-movement sign);
// through traffic is not signed - see DESIGN.md. Arrival volumes quoted by
// the paper are multi-lane totals; `lane_equivalent_count` divides them into
// this single-lane world.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "road/corridor.hpp"
#include "sim/vehicle.hpp"
#include "traffic/queue_predictor.hpp"

namespace evvo::sim {

/// Which car-following law background vehicles use.
enum class CarFollowing {
  kKrauss,  ///< SUMO's default (used throughout the paper reproduction)
  kIdm,     ///< Intelligent Driver Model (robustness checks)
};

struct MicrosimConfig {
  double step_s = 0.5;
  CarFollowing car_following = CarFollowing::kKrauss;
  double insertion_point_m = -300.0;  ///< upstream spawn location
  double exit_margin_m = 100.0;       ///< vehicles are removed past corridor end + margin
  double lane_equivalent_count = 2.0; ///< divides multi-lane demand into this lane
  double straight_ratio = 0.7636;     ///< gamma: share continuing straight at each signal
  double halt_speed_ms = 1.5;         ///< below ~5 km/h counts as queued (SUMO queue convention)
  double queue_scan_window_m = 400.0; ///< how far upstream of a light queues are measured
  std::uint64_t seed = 1;
  DriverParams background_driver{};

  void validate() const;
};

/// Aggregate counters for tests and experiment logs.
struct [[nodiscard]] MicrosimStats {
  long inserted = 0;
  long removed_at_exit = 0;
  long turned_off = 0;
  long insertion_blocked = 0;  ///< Poisson arrivals that found no safe gap
};

class Microsim {
 public:
  Microsim(road::Corridor corridor, MicrosimConfig config,
           std::shared_ptr<const traffic::ArrivalRateProvider> demand);

  const road::Corridor& corridor() const { return corridor_; }
  const MicrosimConfig& config() const { return config_; }
  double time() const { return time_s_; }
  const MicrosimStats& stats() const { return stats_; }

  /// Advances one time step.
  void step();

  /// Runs until sim time >= t.
  void run_until(double t);

  /// Inserts the ego vehicle at `position_m` with zero speed; returns its id.
  /// Only one ego may exist at a time.
  int spawn_ego(double position_m, const DriverParams& driver);

  /// Removes the ego (when its trip ends).
  void remove_ego();

  /// Commands the ego's speed for subsequent steps (TraCI setSpeed semantics:
  /// clamped by safety and red lights). Negative releases the command.
  void command_ego_speed(double speed_ms);

  const SimVehicle* ego() const;
  const SimVehicle* find(int id) const;
  const std::vector<SimVehicle>& vehicles() const { return vehicles_; }

  /// Measured queue at a signal: contiguous chain of slow vehicles upstream
  /// of the stop line. Returns (vehicle count, queue length in meters).
  /// `speed_threshold_ms` < 0 uses the config's halt speed (standing queue);
  /// passing ~v_min instead counts vehicles that have not yet discharged,
  /// which is the QL model's queue definition (Eq. 6).
  std::pair<int, double> measured_queue(std::size_t light_index,
                                        double speed_threshold_ms = -1.0) const;

  /// True if any pair of vehicles overlaps (test invariant; should never happen).
  bool has_collision() const;

 private:
  void maybe_insert_background();
  double desired_speed(const SimVehicle& v) const;
  double safe_speed_bound(const SimVehicle& v, const SimVehicle* leader) const;
  void apply_regulatory_stops(SimVehicle& v, double& bound, double& desired);
  void update_speeds();
  void update_speeds_krauss();
  void move_and_cull();

  road::Corridor corridor_;
  MicrosimConfig config_;
  std::shared_ptr<const traffic::ArrivalRateProvider> demand_;
  Rng rng_;
  std::vector<SimVehicle> vehicles_;  ///< sorted by position, descending (leader first)
  std::vector<double> next_speeds_;
  /// Staging SoA buffers for the vectorized Krauss update (update_speeds_krauss):
  /// per-vehicle state is gathered here each step so the safe-speed and
  /// following-speed kernels run vector lanes over contiguous arrays, while
  /// vehicles_ stays AoS for the public API. Persistent to avoid per-step
  /// allocation.
  struct FollowerSoa {
    std::vector<double> speed, accel, decel, tau, desired, gap, lead_speed, bound;
    void resize(std::size_t n);
  };
  FollowerSoa soa_;
  double time_s_ = 0.0;
  double next_arrival_s_ = -1.0;
  int next_id_ = 0;
  int ego_id_ = -1;
  MicrosimStats stats_;
};

}  // namespace evvo::sim
