// Simulated vehicle state and driver parameterization.
#pragma once

#include <cstdint>

namespace evvo::sim {

/// Car-following / driver parameters (Krauss model inputs).
struct DriverParams {
  double desired_speed_ms = 20.0;  ///< free-flow target before speed limits
  double speed_factor = 1.0;       ///< multiplier on the posted limit (fast drivers > 1 slightly)
  double accel_ms2 = 2.0;          ///< comfortable acceleration a
  double decel_ms2 = 3.0;          ///< comfortable deceleration b
  double reaction_time_s = 1.0;    ///< tau
  double min_gap_m = 2.0;          ///< standstill gap to the leader
  double length_m = 4.5;
  double sigma = 0.3;              ///< Krauss dawdling factor (0 = perfect driver)
};

/// One vehicle in the microsimulation.
struct SimVehicle {
  int id = -1;
  double position_m = 0.0;  ///< front-bumper position along the corridor
  double speed_ms = 0.0;
  DriverParams driver;
  bool is_ego = false;
  double depart_time_s = 0.0;

  /// Ego speed command (TraCI setSpeed); < 0 means "drive normally".
  double commanded_speed_ms = -1.0;

  /// Index of the next stop sign this vehicle must service; only the ego
  /// services stop signs (through traffic on the corridor is not signed).
  std::size_t next_stop_sign = 0;
  /// While >= 0: vehicle is dwelling at a stop sign until this sim time.
  double stop_wait_until_s = -1.0;

  double rear_position() const { return position_m - driver.length_m; }
};

}  // namespace evvo::sim
