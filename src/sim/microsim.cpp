#include "sim/microsim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"
#include "common/units.hpp"
#include "sim/idm.hpp"
#include "sim/krauss.hpp"

namespace evvo::sim {

namespace {
constexpr double kStopLineBuffer_m = 1.0;   ///< vehicles halt this far before the line
constexpr double kSignalLookahead_m = 300.0;
constexpr double kStopSignDwellZone_m = 3.0;
}  // namespace

void MicrosimConfig::validate() const {
  if (step_s <= 0.0) throw std::invalid_argument("MicrosimConfig: step must be positive");
  if (insertion_point_m >= 0.0)
    throw std::invalid_argument("MicrosimConfig: insertion point must be upstream of the origin");
  if (lane_equivalent_count <= 0.0)
    throw std::invalid_argument("MicrosimConfig: lane equivalent count must be positive");
  if (straight_ratio <= 0.0 || straight_ratio > 1.0)
    throw std::invalid_argument("MicrosimConfig: straight ratio must be in (0, 1]");
}

Microsim::Microsim(road::Corridor corridor, MicrosimConfig config,
                   std::shared_ptr<const traffic::ArrivalRateProvider> demand)
    : corridor_(std::move(corridor)), config_(config), demand_(std::move(demand)), rng_(config.seed) {
  config_.validate();
  if (!demand_) throw std::invalid_argument("Microsim: null demand provider");
}

void Microsim::run_until(double t) {
  while (time_s_ < t - 1e-9) step();
}

void Microsim::step() {
  maybe_insert_background();
  update_speeds();
  move_and_cull();
  time_s_ += config_.step_s;
}

void Microsim::maybe_insert_background() {
  const double rate_veh_s =
      per_hour_to_per_second(demand_->arrival_rate_veh_h(Seconds(time_s_))) /
      config_.lane_equivalent_count;
  if (rate_veh_s <= 0.0) {
    next_arrival_s_ = -1.0;  // re-seed the arrival process when demand resumes
    return;
  }
  if (next_arrival_s_ < 0.0) {
    next_arrival_s_ = time_s_ + rng_.exponential(rate_veh_s);
  }
  while (next_arrival_s_ <= time_s_) {
    // Attempt an insertion at the upstream spawn point.
    const SimVehicle* tail = vehicles_.empty() ? nullptr : &vehicles_.back();
    DriverParams driver = config_.background_driver;
    // Mild heterogeneity keeps platoons from being perfectly uniform.
    driver.speed_factor *= rng_.uniform(0.92, 1.08);
    driver.accel_ms2 *= rng_.uniform(0.9, 1.1);
    bool inserted = false;
    const double spawn = config_.insertion_point_m;
    const double gap = tail ? tail->rear_position() - spawn : 1e9;
    if (gap > driver.min_gap_m + 1.0) {
      SimVehicle v;
      v.id = next_id_++;
      v.position_m = spawn;
      v.driver = driver;
      v.depart_time_s = time_s_;
      const double limit = corridor_.route.speed_limit_at(std::max(0.0, spawn)) * driver.speed_factor;
      const double safe = tail ? krauss_safe_speed(std::max(0.0, gap - driver.min_gap_m),
                                                   tail->speed_ms, driver.decel_ms2,
                                                   driver.reaction_time_s)
                               : limit;
      v.speed_ms = std::min(limit, safe);
      vehicles_.push_back(v);
      ++stats_.inserted;
      inserted = true;
    }
    if (!inserted) ++stats_.insertion_blocked;
    const double next_rate =
        per_hour_to_per_second(demand_->arrival_rate_veh_h(Seconds(next_arrival_s_))) /
        config_.lane_equivalent_count;
    if (next_rate <= 0.0) {
      next_arrival_s_ = -1.0;
      break;
    }
    next_arrival_s_ += rng_.exponential(next_rate);
  }
}

double Microsim::desired_speed(const SimVehicle& v) const {
  if (v.is_ego && v.commanded_speed_ms >= 0.0) return v.commanded_speed_ms;
  const double limit = corridor_.route.speed_limit_at(std::max(0.0, v.position_m));
  return std::min(v.driver.desired_speed_ms, limit * v.driver.speed_factor);
}

double Microsim::safe_speed_bound(const SimVehicle& v, const SimVehicle* leader) const {
  if (!leader) return 1e9;
  const double gap = leader->rear_position() - v.position_m - v.driver.min_gap_m;
  return krauss_safe_speed(gap, leader->speed_ms, v.driver.decel_ms2, v.driver.reaction_time_s);
}

void Microsim::apply_regulatory_stops(SimVehicle& v, double& bound, double& desired) {
  // Red lights: the nearest signal ahead within lookahead acts as a wall.
  for (const auto& light : corridor_.lights) {
    const double dist = light.position() - v.position_m;
    if (dist < 0.0 || dist > kSignalLookahead_m) continue;
    if (light.is_red(time_s_)) {
      bound = std::min(bound, krauss_safe_speed_for_stop(dist - kStopLineBuffer_m, v.driver.decel_ms2,
                                                         v.driver.reaction_time_s));
    }
    break;  // only the nearest signal binds
  }
  // Stop signs bind the ego only (minor-movement sign; see DESIGN.md).
  if (!v.is_ego || v.next_stop_sign >= corridor_.stop_signs.size()) return;
  const road::StopSign& sign = corridor_.stop_signs[v.next_stop_sign];
  const double dist = sign.position_m - v.position_m;
  if (dist < -0.5) {  // somehow passed: mark serviced
    v.next_stop_sign++;
    return;
  }
  if (v.stop_wait_until_s >= 0.0) {
    if (time_s_ >= v.stop_wait_until_s) {
      v.stop_wait_until_s = -1.0;
      v.next_stop_sign++;
    } else {
      bound = 0.0;
      desired = 0.0;
    }
    return;
  }
  bound = std::min(bound, krauss_safe_speed_for_stop(std::max(0.0, dist), v.driver.decel_ms2,
                                                     v.driver.reaction_time_s));
  if (dist <= kStopSignDwellZone_m && v.speed_ms < 0.1) {
    v.stop_wait_until_s = time_s_ + sign.min_stop_s;
    bound = 0.0;
    desired = 0.0;
  }
}

void Microsim::FollowerSoa::resize(std::size_t n) {
  speed.resize(n);
  accel.resize(n);
  decel.resize(n);
  tau.resize(n);
  desired.resize(n);
  gap.resize(n);
  lead_speed.resize(n);
  bound.resize(n);
}

/// Krauss-config speed update, restructured into staged passes so the two
/// pure-arithmetic stages run vector lanes over SoA arrays:
///   1. scalar gather of per-vehicle state (AoS -> SoA),
///   2. vector safe-speed bound (krauss_safe_speed lane-wise),
///   3. scalar regulatory pass (signals/stop signs; mutates ego state in
///      ascending order exactly as the fused loop did),
///   4. vector following speed (krauss_following_speed lane-wise),
///   5. scalar dawdle pass (preserves the RNG draw order: one uniform() per
///      moving non-ego, ascending index).
/// Every lane op replicates the scalar functions' operation sequence (and
/// the tails call the scalar functions themselves), so next_speeds_ is
/// bit-identical to the original per-vehicle loop on every backend.
void Microsim::update_speeds_krauss() {
  namespace sd = common::simd;
  constexpr std::size_t W = sd::VecD::kWidth;
  const std::size_t n = vehicles_.size();
  soa_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SimVehicle& v = vehicles_[i];
    // The scalar loop throws from krauss_safe_speed for any follower with a
    // non-positive decel before using it; keep that contract.
    if (i > 0 && v.driver.decel_ms2 <= 0.0)
      throw std::invalid_argument("krauss_safe_speed: decel must be positive");
    soa_.speed[i] = v.speed_ms;
    soa_.accel[i] = v.driver.accel_ms2;
    soa_.decel[i] = v.driver.decel_ms2;
    soa_.tau[i] = v.driver.reaction_time_s;
    soa_.desired[i] = desired_speed(v);
    soa_.gap[i] =
        i > 0 ? vehicles_[i - 1].rear_position() - v.position_m - v.driver.min_gap_m : 0.0;
    soa_.lead_speed[i] = i > 0 ? vehicles_[i - 1].speed_ms : 0.0;
  }

  // Pass 2: bound[i] = krauss_safe_speed(gap, lead_speed, decel, tau).
  // Lanes with gap <= 0 may take sqrt of a negative radicand; the NaN is
  // discarded by the same select that implements the early `return 0`.
  const sd::VecD zero = sd::VecD::broadcast(0.0);
  const sd::VecD two = sd::VecD::broadcast(2.0);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const sd::VecD g = sd::VecD::load(soa_.gap.data() + i);
    const sd::VecD ls = sd::VecD::load(soa_.lead_speed.data() + i);
    const sd::VecD b = sd::VecD::load(soa_.decel.data() + i);
    const sd::VecD bt = b * sd::VecD::load(soa_.tau.data() + i);
    const sd::VecD radicand = bt * bt + ls * ls + (two * b) * g;
    const sd::VecD safe = sd::max_std(zero, (zero - bt) + sd::sqrt(radicand));
    sd::select(sd::cmp_le(g, zero), zero, safe).store(soa_.bound.data() + i);
  }
  for (; i < n; ++i) {
    soa_.bound[i] = i == 0 ? 1e9
                           : krauss_safe_speed(soa_.gap[i], soa_.lead_speed[i], soa_.decel[i],
                                               soa_.tau[i]);
  }
  if (n > 0) soa_.bound[0] = 1e9;  // the lead vehicle has no follower bound

  // Pass 3: regulatory stops, scalar and in order (mutates ego stop-sign
  // state and reads signal phases; identical to the fused loop's order).
  for (std::size_t r = 0; r < n; ++r) {
    apply_regulatory_stops(vehicles_[r], soa_.bound[r], soa_.desired[r]);
  }

  // Pass 4: next = krauss_following_speed(driver, speed, desired, bound, dt).
  const sd::VecD vdt = sd::VecD::broadcast(config_.step_s);
  i = 0;
  for (; i + W <= n; i += W) {
    const sd::VecD sp = sd::VecD::load(soa_.speed.data() + i);
    const sd::VecD accelerated = sp + sd::VecD::load(soa_.accel.data() + i) * vdt;
    const sd::VecD capped =
        sd::min_std(sd::min_std(accelerated, sd::VecD::load(soa_.desired.data() + i)),
                    sd::VecD::load(soa_.bound.data() + i));
    const sd::VecD floor = sp - (two * sd::VecD::load(soa_.decel.data() + i)) * vdt;
    sd::max_std(zero, sd::max_std(capped, floor)).store(next_speeds_.data() + i);
  }
  for (; i < n; ++i) {
    next_speeds_[i] = krauss_following_speed(vehicles_[i].driver, soa_.speed[i], soa_.desired[i],
                                             soa_.bound[i], config_.step_s);
  }

  // Pass 5: dawdling (background drivers only; the ego executes plans
  // exactly). One RNG draw per moving non-ego, ascending index.
  for (std::size_t r = 0; r < n; ++r) {
    const SimVehicle& v = vehicles_[r];
    const double next = next_speeds_[r];
    if (!v.is_ego && v.driver.sigma > 0.0 && next > 0.0) {
      next_speeds_[r] = std::max(
          0.0, next - v.driver.sigma * v.driver.accel_ms2 * config_.step_s * rng_.uniform());
    }
  }
}

void Microsim::update_speeds() {
  // The SoA Krauss kernel only pays for itself with real vector lanes; the
  // scalar backend keeps the fused loop below (its else-branch is the
  // original Krauss update, bit-identical to the SoA passes by construction).
  if (config_.car_following == CarFollowing::kKrauss && common::simd::kHasSimd) {
    next_speeds_.resize(vehicles_.size());  // every element is overwritten
    update_speeds_krauss();
    return;
  }
  next_speeds_.assign(vehicles_.size(), 0.0);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    SimVehicle& v = vehicles_[i];
    const SimVehicle* leader = i > 0 ? &vehicles_[i - 1] : nullptr;
    double desired = desired_speed(v);
    double next;
    if (config_.car_following == CarFollowing::kIdm && !v.is_ego) {
      // IDM: the binding obstacle is whichever of {leader, nearest red light}
      // is closest; red lights act as standing leaders at the stop line.
      double gap = leader ? leader->rear_position() - v.position_m : 1e9;
      double lead_speed = leader ? leader->speed_ms : v.speed_ms;
      for (const auto& light : corridor_.lights) {
        const double dist = light.position() - v.position_m;
        if (dist < 0.0 || dist > kSignalLookahead_m) continue;
        if (light.is_red(time_s_) && dist - kStopLineBuffer_m < gap) {
          gap = dist - kStopLineBuffer_m;
          lead_speed = 0.0;
        }
        break;
      }
      next = idm_following_speed(v.driver, v.speed_ms, desired, gap, v.speed_ms - lead_speed,
                                 config_.step_s);
    } else {
      double bound = safe_speed_bound(v, leader);
      apply_regulatory_stops(v, bound, desired);
      next = krauss_following_speed(v.driver, v.speed_ms, desired, bound, config_.step_s);
      // Dawdling (background drivers only; the ego executes plans exactly).
      if (!v.is_ego && v.driver.sigma > 0.0 && next > 0.0) {
        next = std::max(0.0,
                        next - v.driver.sigma * v.driver.accel_ms2 * config_.step_s * rng_.uniform());
      }
    }
    next_speeds_[i] = next;
  }
}

void Microsim::move_and_cull() {
  const double end = corridor_.length() + config_.exit_margin_m;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    vehicles_[i].speed_ms = next_speeds_[i];
    vehicles_[i].position_m += next_speeds_[i] * config_.step_s;
  }
  // Enforce no-overtaking order (numerically possible only via rounding).
  for (std::size_t i = 1; i < vehicles_.size(); ++i) {
    const double cap = vehicles_[i - 1].rear_position() - 0.1;
    if (vehicles_[i].position_m > cap) vehicles_[i].position_m = cap;
  }
  std::vector<SimVehicle> kept;
  kept.reserve(vehicles_.size());
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    SimVehicle& v = vehicles_[i];
    const double old_pos = v.position_m - v.speed_ms * config_.step_s;
    bool remove = false;
    if (v.position_m > end && !v.is_ego) {
      ++stats_.removed_at_exit;
      remove = true;
    } else if (!v.is_ego) {
      for (const auto& light : corridor_.lights) {
        if (old_pos <= light.position() && v.position_m > light.position()) {
          if (rng_.bernoulli(1.0 - config_.straight_ratio)) {
            ++stats_.turned_off;
            remove = true;
          }
          break;
        }
      }
    }
    if (!remove) kept.push_back(v);
  }
  vehicles_ = std::move(kept);
}

int Microsim::spawn_ego(double position_m, const DriverParams& driver) {
  if (ego_id_ >= 0) throw std::logic_error("Microsim: ego already present");
  SimVehicle ego;
  ego.id = next_id_++;
  ego.position_m = position_m;
  ego.speed_ms = 0.0;
  ego.driver = driver;
  ego.is_ego = true;
  ego.depart_time_s = time_s_;
  const auto insert_at = std::lower_bound(
      vehicles_.begin(), vehicles_.end(), position_m,
      [](const SimVehicle& v, double pos) { return v.position_m > pos; });
  ego_id_ = ego.id;
  vehicles_.insert(insert_at, ego);
  return ego_id_;
}

void Microsim::remove_ego() {
  if (ego_id_ < 0) return;
  std::erase_if(vehicles_, [this](const SimVehicle& v) { return v.id == ego_id_; });
  ego_id_ = -1;
}

void Microsim::command_ego_speed(double speed_ms) {
  for (SimVehicle& v : vehicles_) {
    if (v.id == ego_id_) {
      v.commanded_speed_ms = speed_ms;
      return;
    }
  }
  throw std::logic_error("Microsim::command_ego_speed: no ego present");
}

const SimVehicle* Microsim::ego() const { return find(ego_id_); }

const SimVehicle* Microsim::find(int id) const {
  if (id < 0) return nullptr;
  for (const SimVehicle& v : vehicles_) {
    if (v.id == id) return &v;
  }
  return nullptr;
}

std::pair<int, double> Microsim::measured_queue(std::size_t light_index,
                                                double speed_threshold_ms) const {
  const double line = corridor_.lights.at(light_index).position();
  const double threshold =
      speed_threshold_ms < 0.0 ? config_.halt_speed_ms : speed_threshold_ms;
  int count = 0;
  double tail_rear = line;
  double expected_front = line;  // where the next queued vehicle's front should be
  for (const SimVehicle& v : vehicles_) {
    if (v.position_m > line + 0.5) continue;                      // beyond the line
    if (v.position_m < line - config_.queue_scan_window_m) break; // out of scan range
    if (v.speed_ms >= threshold) {
      if (count > 0) break;  // a moving vehicle inside the chain ends the queue
      continue;              // movers between the line and the first halted one
    }
    // Contiguity: the vehicle's front must be within a plausible spacing of
    // the previous queue tail.
    if (expected_front - v.position_m > v.driver.length_m + v.driver.min_gap_m + 12.0) {
      if (count == 0) continue;  // an isolated halt far upstream is not this queue
      break;
    }
    ++count;
    tail_rear = v.rear_position();
    expected_front = tail_rear;
  }
  return {count, count > 0 ? line - tail_rear : 0.0};
}

bool Microsim::has_collision() const {
  for (std::size_t i = 1; i < vehicles_.size(); ++i) {
    if (vehicles_[i].position_m > vehicles_[i - 1].rear_position() + 1e-6) return true;
  }
  return false;
}

}  // namespace evvo::sim
