// Krauss (1998) stochastic car-following model - SUMO's default.
#pragma once

#include "sim/vehicle.hpp"

namespace evvo::sim {

/// Maximum speed that still allows stopping behind a leader moving at
/// `leader_speed` with net gap `gap_m`, under reaction time tau and
/// deceleration b:  v_safe = -b*tau + sqrt(b^2*tau^2 + v_l^2 + 2*b*gap).
double krauss_safe_speed(double gap_m, double leader_speed_ms, double decel_ms2,
                         double reaction_time_s);

/// Safe speed against a fixed obstacle (stop line) `distance_m` ahead.
double krauss_safe_speed_for_stop(double distance_m, double decel_ms2, double reaction_time_s);

/// One Krauss update without dawdling: min(v + a*dt, v_desired, v_safe),
/// floored at 0. Dawdling is applied by the caller (the simulator), which
/// owns the RNG.
double krauss_following_speed(const DriverParams& driver, double current_speed_ms,
                              double desired_speed_ms, double safe_speed_ms, double dt_s);

}  // namespace evvo::sim
