// Intelligent Driver Model (Treiber 2000) - the main alternative to Krauss in
// microscopic traffic simulation. Supporting both lets the experiments check
// that the paper's conclusions do not hinge on the car-following model.
#pragma once

#include "sim/vehicle.hpp"

namespace evvo::sim {

/// IDM acceleration:
///   a = a_max * [1 - (v/v0)^4 - (s*/gap)^2],
///   s* = s0 + v*T + v*dv / (2*sqrt(a_max*b)).
/// `gap_m` is the net gap to the leader; `approach_rate_ms` = v - v_leader.
/// With no leader pass a huge gap and approach rate 0.
double idm_acceleration(const DriverParams& driver, double speed_ms, double desired_speed_ms,
                        double gap_m, double approach_rate_ms);

/// One IDM step: new speed after dt (floored at 0). The caller supplies the
/// stop-line constraint by treating red lights as standing leaders.
double idm_following_speed(const DriverParams& driver, double speed_ms, double desired_speed_ms,
                           double gap_m, double approach_rate_ms, double dt_s);

}  // namespace evvo::sim
