// TraCI-style ego control: command a planned speed step-by-step and record
// the trajectory the simulator actually allows (paper Sec. III-B3, Fig. 6).
#pragma once

#include <functional>
#include <vector>

#include "ev/drive_cycle.hpp"
#include "sim/microsim.hpp"

namespace evvo::sim {

/// Thin client mirroring the TraCI calls the paper uses: subscribe to the ego
/// vehicle, set its speed each step, read back its state.
class TraciClient {
 public:
  explicit TraciClient(Microsim& sim);

  /// Adds the ego at a position (speed 0) and subscribes to it.
  int add_ego(double position_m, const DriverParams& driver = {});

  bool ego_present() const;
  double ego_position() const;
  double ego_speed() const;

  /// TraCI vehicle.setSpeed: the simulator clamps by safety and signals.
  void set_speed(double speed_ms);

  /// TraCI simulationStep.
  void simulation_step();

  double time() const;

 private:
  Microsim& sim_;
};

/// Target speed for the ego as a function of (position [m], time [s]).
using TargetSpeedFn = std::function<double(double, double)>;

/// The trajectory the simulator permitted while executing a plan.
struct [[nodiscard]] ExecutionResult {
  ev::DriveCycle cycle{std::vector<double>{}, 1.0};  ///< recorded ego speed per sim step
  std::vector<double> positions; ///< ego position per sim step (same indexing)
  bool completed = false;        ///< ego reached the end position
  double finish_time_s = 0.0;    ///< sim time when the run ended
  double start_time_s = 0.0;
};

/// Drives the ego from `start_m` to `end_m`, commanding `target(pos, t)` every
/// step (floored at a small creep speed so deliberate zero-speed plan points -
/// stop signs - are reached and handled by the simulator's own stop logic).
/// Gives up after `timeout_s` of sim time.
ExecutionResult execute_planned_profile(Microsim& sim, const TargetSpeedFn& target, double start_m,
                                        double end_m, double timeout_s,
                                        const DriverParams& ego_driver = {});

}  // namespace evvo::sim
