// Roadside measurement devices: induction loops (hourly volume counts, the
// SCDoT data source substitute) and queue-length recorders (the "real data"
// ground truth of Fig. 5(b)).
#pragma once

#include <map>
#include <vector>

#include "sim/microsim.hpp"
#include "traffic/volume_series.hpp"

namespace evvo::sim {

/// Counts vehicles crossing a fixed position, bucketed by time.
class InductionLoop {
 public:
  InductionLoop(double position_m, double bucket_s = 3600.0);

  double position() const { return position_m_; }

  /// Observes the current simulator state; call once per sim step.
  void observe(const Microsim& sim);

  /// Total crossings so far.
  long total_count() const { return total_; }

  /// Counts per completed bucket (bucket i covers [i*bucket_s, (i+1)*bucket_s)).
  const std::vector<long>& bucket_counts() const { return buckets_; }

  /// Converts the buckets into an hourly volume series (requires bucket_s = 3600).
  traffic::HourlyVolumeSeries to_hourly_series(int start_hour_of_week = 0) const;

 private:
  double position_m_;
  double bucket_s_;
  long total_ = 0;
  std::vector<long> buckets_;
  std::map<int, double> last_positions_;  ///< vehicle id -> position at last observe
};

/// One queue-length sample.
struct QueueSample {
  double time_s = 0.0;
  int vehicles = 0;
  double length_m = 0.0;
};

/// Samples the measured queue at one signal every observe() call.
class QueueLengthRecorder {
 public:
  explicit QueueLengthRecorder(std::size_t light_index);

  void observe(const Microsim& sim);

  const std::vector<QueueSample>& samples() const { return samples_; }

  /// Maximum queue length observed [m].
  double max_length_m() const;

  /// Queue-length series resampled onto a fixed dt over [t0, t0+span]
  /// (nearest-sample; for comparing against the QL model's profile).
  std::vector<double> length_series(double t0, double span_s, double dt) const;

 private:
  std::size_t light_index_;
  std::vector<QueueSample> samples_;
};

/// Measures per-vehicle travel times between two corridor positions; the
/// excess over free-flow time is the measured control delay, the ground truth
/// for the QL-model delay estimates.
class TravelTimeProbe {
 public:
  TravelTimeProbe(double entry_m, double exit_m);

  void observe(const Microsim& sim);

  const std::vector<double>& travel_times() const { return travel_times_; }
  double mean_travel_time() const;

  /// Mean delay relative to traversing the probe at `free_flow_speed`.
  double mean_delay(double free_flow_speed_ms) const;

  long completed_count() const { return static_cast<long>(travel_times_.size()); }

 private:
  double entry_m_;
  double exit_m_;
  std::map<int, double> entry_times_;     ///< vehicle id -> time it crossed entry
  std::map<int, double> last_positions_;
  std::vector<double> travel_times_;
};

}  // namespace evvo::sim
