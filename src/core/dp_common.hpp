// Layout constants and helpers shared by the production DP solver and the
// naive reference solver in src/check/. Both sides must agree bit-for-bit on
// backpointer packing, the route-content hash, and the state-table checksum,
// or the differential harness would report spurious divergences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "road/route.hpp"

namespace evvo::core::detail {

inline constexpr float kDpInf = std::numeric_limits<float>::infinity();

/// Backpointer packing: predecessor (j, k) plus a flag for same-layer dwells.
inline constexpr std::uint32_t kDwellFlag = 0x8000'0000u;
inline constexpr std::uint32_t kNoPred = 0xFFFF'FFFFu;

/// Dominance-pruning slack. The destination selection breaks near-ties
/// within 1e-9; pruning only drops states that are worse by more than this
/// much larger margin, so a dropped state's completion can never have won
/// that tie-break either.
inline constexpr float kPruneMargin = 1e-6f;

inline std::uint32_t pack_pred(std::size_t j, std::size_t k, bool dwell) {
  return static_cast<std::uint32_t>(j << 20) | static_cast<std::uint32_t>(k) |
         (dwell ? kDwellFlag : 0u);
}
inline std::size_t pred_j(std::uint32_t p) { return (p & ~kDwellFlag) >> 20; }
inline std::size_t pred_k(std::uint32_t p) { return p & 0x000F'FFFFu; }
inline bool pred_is_dwell(std::uint32_t p) { return (p & kDwellFlag) != 0u && p != kNoPred; }

/// FNV-1a over the route's segment payload: the workspace's model tables are
/// keyed by route *content* because replanning solves over short-lived
/// suffix routes whose stack addresses recur.
inline std::uint64_t hash_route(const road::Route& route) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  for (const road::RoadSegment& seg : route.segments()) {
    mix(seg.start_m);
    mix(seg.end_m);
    mix(seg.speed_limit_ms);
    mix(seg.min_speed_ms);
    mix(seg.grade_rad);
  }
  return h;
}

/// FNV-1a accumulator for checksumming solver state.
class TableHasher {
 public:
  void mix_u64(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (value >> (8 * byte)) & 0xFFu;
      h_ *= 1099511628211ull;
    }
  }
  void mix_f32(float value) {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    mix_u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

/// Checksum of the reachable DP state: every finite-cost cell's identity,
/// cost, continuous arrival time, and backpointer, in deterministic
/// (layer, velocity, time-bin) order. Cells that were never relaxed into are
/// skipped, so lazily reset tables (which leave stale time/back values behind
/// infinite costs) hash identically to densely initialized ones. Tables are
/// layer-major: index = layer * (n_v * n_t) + j * n_t + k.
inline std::uint64_t checksum_state_tables(std::size_t n_layers, std::size_t n_v, std::size_t n_t,
                                           const float* cost, const float* time,
                                           const std::uint32_t* back) {
  TableHasher hasher;
  const std::size_t layer_size = n_v * n_t;
  for (std::size_t layer = 0; layer < n_layers; ++layer) {
    const std::size_t base = layer * layer_size;
    for (std::size_t cell = 0; cell < layer_size; ++cell) {
      const std::size_t id = base + cell;
      if (cost[id] >= kDpInf) continue;
      hasher.mix_u64((static_cast<std::uint64_t>(layer) << 32) | cell);
      hasher.mix_f32(cost[id]);
      hasher.mix_f32(time[id]);
      hasher.mix_u64(back[id]);
    }
  }
  return hasher.value();
}

/// Strided twin of checksum_state_tables for the lane-interleaved SoA tables
/// of the batched solver (element index = state_index * stride + offset).
/// The mix sequence is identical for identical lane contents, so a batch
/// lane's checksum equals the standalone solve's checksum of the same state.
inline std::uint64_t checksum_state_tables_strided(std::size_t n_layers, std::size_t n_v,
                                                   std::size_t n_t, const float* cost,
                                                   const float* time, const std::uint32_t* back,
                                                   std::size_t stride, std::size_t offset) {
  TableHasher hasher;
  const std::size_t layer_size = n_v * n_t;
  for (std::size_t layer = 0; layer < n_layers; ++layer) {
    const std::size_t base = layer * layer_size;
    for (std::size_t cell = 0; cell < layer_size; ++cell) {
      const std::size_t id = (base + cell) * stride + offset;
      if (cost[id] >= kDpInf) continue;
      hasher.mix_u64((static_cast<std::uint64_t>(layer) << 32) | cell);
      hasher.mix_f32(cost[id]);
      hasher.mix_f32(time[id]);
      hasher.mix_u64(back[id]);
    }
  }
  return hasher.value();
}

}  // namespace evvo::core::detail
