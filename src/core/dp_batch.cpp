#include "core/dp_batch.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "common/simd.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/dp_common.hpp"
#include "core/dp_extract.hpp"
#include "core/workspace_pool.hpp"

namespace evvo::core {

namespace {

namespace sd = common::simd;

/// Scenario lanes per chunk; the vector width so one VecF load spans the
/// whole chunk's copy of a state cell.
constexpr std::size_t kLanes = sd::VecF::kWidth;
constexpr unsigned kFullMask = (1u << kLanes) - 1u;

/// The batched state tables are a long-lived pooled arena holding kLanes
/// interleaved scenarios - kLanes times the standalone table bytes - swept
/// with scattered per-row accesses, so 4 KiB pages keep the TLB on the
/// critical path. On kernels running transparent_hugepage=madvise this hint
/// upgrades the arena to huge pages; the ephemeral per-request cold
/// workspaces stay on small pages, where the one-shot fault-time compaction
/// would not amortize. Best effort: any failure leaves plain pages behind.
inline void advise_huge_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(page - 1);
  if (hi > lo) (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

constexpr float kInf = detail::kDpInf;
using detail::kNoPred;
using detail::kPruneMargin;
using detail::pack_pred;

}  // namespace

std::size_t dp_batch_lanes() { return kLanes; }

DpBatchKey DpBatchKey::of(const DpProblem& problem) {
  DpBatchKey key;
  key.route_hash = detail::hash_route(*problem.route);
  key.energy = problem.energy;
  key.ds_m = problem.resolution.ds_m;
  key.dv_ms = problem.resolution.dv_ms;
  key.dt_s = problem.resolution.dt_s;
  key.horizon_s = problem.resolution.horizon_s;
  key.penalty_mode = problem.penalty.mode;
  key.penalty_m = problem.penalty.m;
  key.penalty_additive_mah = problem.penalty.additive_mah;
  key.penalty_min_cost_mah = problem.penalty.min_cost_mah;
  key.smoothness = problem.smoothness_weight_mah_per_ms;
  key.time_weight = problem.time_weight_mah_per_s;
  key.dominance_pruning = problem.dominance_pruning;
  key.events.reserve(problem.events.size());
  for (const LayerEvent& e : problem.events) {
    key.events.push_back(EventSkeleton{e.type, e.layer, e.dwell_s, e.enforce_windows});
  }
  return key;
}

namespace detail {

/// One SoA sweep over kLanes compatible scenarios (see core/dp_batch.hpp for
/// the identity argument). The structure mirrors DpEngine pass for pass;
/// every deviation from the scalar kernel is a lane-masking device, never an
/// arithmetic one.
class DpBatchEngine {
 public:
  DpBatchEngine(std::array<const DpProblem*, kLanes> problems, DpWorkspace& ws,
                common::ThreadPool* pool)
      : problems_(problems), ws_(ws), pool_(pool), route_(*problems[0]->route),
        energy_(*problems[0]->energy), res_(problems[0]->resolution) {}

  std::array<std::optional<DpSolution>, kLanes> run();

 private:
  bool relax_layer(std::size_t i);  // false: union frontier empty, sweep over
  void relax_stripe(std::size_t i, std::size_t j2_begin, std::size_t j2_end, std::size_t stripe);
  void flush_gather_counters();

  std::array<const DpProblem*, kLanes> problems_;
  DpWorkspace& ws_;
  common::ThreadPool* pool_;
  const road::Route& route_;
  const ev::EnergyModel& energy_;
  const DpResolution& res_;

  std::size_t n_hops_ = 0, n_layers_ = 0, n_v_ = 0, n_t_ = 0, layer_size_ = 0;
  double ds_ = 0.0;
  std::array<std::size_t, kLanes> j_source_{};
  std::array<std::size_t, kLanes> j_dest_{};

  double lambda_ = 0.0, idle_mah_s_ = 0.0;
  float idle_step_cost_ = 0.0f;
  double inv_dt_ = 0.0;
  /// Per-lane exact float image of the horizon test (per-lane departures).
  alignas(64) std::array<float, kLanes> thresh_f_{};
  alignas(64) std::array<double, kLanes> depart_{};
  /// Per (layer, lane) event pointer: the skeleton (type, dwell, enforce) is
  /// identical across lanes by DpBatchKey, the window lists are not.
  std::vector<std::array<const LayerEvent*, kLanes>> event_at_;
  std::ptrdiff_t last_window_layer_ = -1;
  std::vector<float> smooth_by_diff_;

  unsigned lane_alive_ = kFullMask;
  /// Per-lane work counters, accumulated exactly where the scalar engine
  /// accumulates its scalars (gather: frontier/pruned; stripes: relaxations).
  std::array<std::uint64_t, kLanes> frontier_{};
  std::array<std::uint64_t, kLanes> pruned_{};
  std::vector<std::array<std::uint64_t, kLanes>> stripe_relax_;
  sd::VecI32 frontier_acc_{};
  sd::VecI32 pruned_acc_{};
  std::array<DpStats, kLanes> stats_{};
};

void DpBatchEngine::flush_gather_counters() {
  alignas(64) std::int32_t buf[kLanes];
  frontier_acc_.store(buf);
  for (std::size_t l = 0; l < kLanes; ++l) frontier_[l] += static_cast<std::uint32_t>(buf[l]);
  pruned_acc_.store(buf);
  for (std::size_t l = 0; l < kLanes; ++l) pruned_[l] += static_cast<std::uint32_t>(buf[l]);
  frontier_acc_ = sd::VecI32::broadcast(0);
  pruned_acc_ = sd::VecI32::broadcast(0);
}

std::array<std::optional<DpSolution>, kLanes> DpBatchEngine::run() {
  static telemetry::Histogram& sweep_hist = telemetry::histogram("dp.batch.sweep_ns");
  const telemetry::TraceSpan sweep_span(sweep_hist, "dp.batch.sweep");

  // Like any engine run, a batched sweep reuses (and therefore invalidates)
  // the workspace's tables for every warm-start snapshot held against it.
  ++ws_.solve_serial_;

  // Grid geometry: identical for every lane by DpBatchKey (same route
  // content, same resolution), computed exactly as DpEngine::run does.
  n_hops_ = static_cast<std::size_t>(std::max(1.0, std::round(route_.length() / res_.ds_m)));
  ds_ = route_.length() / static_cast<double>(n_hops_);
  n_layers_ = n_hops_ + 1;
  n_v_ = static_cast<std::size_t>(std::floor(route_.max_speed_limit() / res_.dv_ms)) + 1;
  n_t_ = static_cast<std::size_t>(std::ceil(res_.horizon_s / res_.dt_s)) + 1;
  layer_size_ = n_v_ * n_t_;
  if (n_v_ >= (1u << 11) || n_t_ >= (1u << 20))
    throw std::invalid_argument("solve_dp: grid too large for backpointer packing");

  event_at_.assign(n_layers_, {});
  last_window_layer_ = -1;
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (const LayerEvent& e : problems_[l]->events) {
      if (e.layer >= n_layers_) throw std::invalid_argument("solve_dp: event layer out of range");
      event_at_[e.layer][l] = &e;
      if (l == 0 && e.type == LayerEvent::Type::kSignal && e.enforce_windows) {
        last_window_layer_ = std::max(last_window_layer_, static_cast<std::ptrdiff_t>(e.layer));
      }
    }
  }

  lambda_ = problems_[0]->time_weight_mah_per_s;
  idle_mah_s_ = ah_to_mah(as_to_ah(energy_.accessory_current_a())) + lambda_;
  idle_step_cost_ = static_cast<float>(idle_mah_s_ * res_.dt_s);

  int dt_exp = 0;
  inv_dt_ = std::frexp(res_.dt_s, &dt_exp) == 0.5 ? 1.0 / res_.dt_s : 0.0;

  // Per-lane horizon thresholds: the scalar ulp-walk (see DpEngine::run),
  // one per departure time.
  for (std::size_t l = 0; l < kLanes; ++l) {
    const double depart = problems_[l]->depart_time.value();
    depart_[l] = depart;
    const double horizon = res_.horizon_s;
    const auto over = [&](float a) { return static_cast<double>(a) - depart >= horizon; };
    constexpr float kFInf = std::numeric_limits<float>::infinity();
    float t = static_cast<float>(horizon + depart);
    if (std::isnan(t)) t = kFInf;
    while (!over(t)) t = std::nextafterf(t, kFInf);
    for (float p = std::nextafterf(t, -kFInf); over(p); p = std::nextafterf(t, -kFInf)) t = p;
    thresh_f_[l] = t;
  }

  smooth_by_diff_.resize(n_v_);
  for (std::size_t d = 0; d < n_v_; ++d) {
    smooth_by_diff_[d] = static_cast<float>(problems_[0]->smoothness_weight_mah_per_ms *
                                            static_cast<double>(d) * res_.dv_ms);
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    const auto snap_level = [&](double v) {
      const auto j = static_cast<std::size_t>(std::lround(v / res_.dv_ms));
      if (j >= n_v_)
        throw std::invalid_argument("solve_dp: boundary speed above the velocity grid");
      return j;
    };
    j_source_[l] = snap_level(problems_[l]->initial_speed.value());
    j_dest_[l] = snap_level(problems_[l]->final_speed.value());
  }

  ws_.ensure_model_tables(route_, energy_, res_, problems_[0]->time_weight_mah_per_s,
                          problems_[0]->smoothness_weight_mah_per_ms, ds_, n_hops_, n_layers_,
                          n_v_);

  auto& bt = ws_.batch_;
  const std::size_t need = n_layers_ * layer_size_ * kLanes;
  bt.cost.grow_to(need);
  bt.time.grow_to(need);
  bt.back.grow_to(need);
  advise_huge_pages(bt.cost.data(), need * sizeof(float));
  advise_huge_pages(bt.time.data(), need * sizeof(float));
  advise_huge_pages(bt.back.data(), need * sizeof(std::uint32_t));

  // Layer-0 seed: the full layer cleared for every lane, then each lane's
  // source cell set from its own departure (float image, as scalar).
  std::fill(bt.cost.data(), bt.cost.data() + layer_size_ * kLanes, kInf);
  for (std::size_t l = 0; l < kLanes; ++l) {
    const std::size_t id = (j_source_[l] * n_t_ + 0) * kLanes + l;
    bt.cost[id] = 0.0f;
    bt.time[id] = static_cast<float>(depart_[l]);
    bt.back[id] = kNoPred;
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    stats_[l] = DpStats{};
    stats_[l].layers = n_layers_;
    stats_[l].velocity_levels = n_v_;
    stats_[l].time_bins = n_t_;
  }

  const std::size_t width =
      pool_ ? std::min<std::size_t>(pool_->thread_count(),
                                    common::ThreadPool::resolve_threads(res_.threads))
            : 1;
  stripe_relax_.assign(std::max<std::size_t>(width, 1), {});

  lane_alive_ = kFullMask;
  frontier_acc_ = sd::VecI32::broadcast(0);
  pruned_acc_ = sd::VecI32::broadcast(0);
  for (std::size_t i = 0; i + 1 < n_layers_; ++i) {
    if (!relax_layer(i)) break;
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    for (const auto& stripe : stripe_relax_) stats_[l].relaxations += stripe[l];
    stats_[l].frontier_states = frontier_[l];
    stats_[l].pruned_states = pruned_[l];
  }

  // Fleet-level work counters: the sum of what each standalone solve would
  // have pushed (a dead lane freezes with exactly its standalone partial
  // totals; see relax_layer).
  static telemetry::Counter& relax_ctr = telemetry::counter("dp.relaxations");
  static telemetry::Counter& frontier_ctr = telemetry::counter("dp.frontier_states");
  static telemetry::Counter& pruned_ctr = telemetry::counter("dp.pruned_states");
  std::uint64_t relax_total = 0, frontier_total = 0, pruned_total = 0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    relax_total += stats_[l].relaxations;
    frontier_total += frontier_[l];
    pruned_total += pruned_[l];
  }
  relax_ctr.add(static_cast<long>(relax_total));
  frontier_ctr.add(static_cast<long>(frontier_total));
  pruned_ctr.add(static_cast<long>(pruned_total));

  std::array<std::optional<DpSolution>, kLanes> out;
  const float* cost = bt.cost.data();
  const float* time = bt.time.data();
  const std::uint32_t* back = bt.back.data();
  for (std::size_t l = 0; l < kLanes; ++l) {
    if ((lane_alive_ & (1u << l)) == 0) continue;  // infeasible: stays nullopt
    if (problems_[l]->checksum_tables) {
      // The lane survived the whole sweep, so every cell of every layer was
      // initialized (layer 0 by the seed fill, later layers by the stripes'
      // lazy row resets) - the same argument as the standalone solver.
      stats_[l].table_checksum = detail::checksum_state_tables_strided(
          n_layers_, n_v_, n_t_, cost, time, back, kLanes, l);
    }
    std::vector<const LayerEvent*> lane_events(n_layers_, nullptr);
    for (std::size_t i = 0; i < n_layers_; ++i) lane_events[i] = event_at_[i][l];
    out[l] = detail::extract_dp_solution(
        route_, energy_, lane_events, problems_[l]->events.size(), ds_, res_.dv_ms, n_layers_,
        n_t_, layer_size_, j_dest_[l], stats_[l],
        [cost, l](std::size_t id) { return cost[id * kLanes + l]; },
        [time, l](std::size_t id) { return time[id * kLanes + l]; },
        [back, l](std::size_t id) { return back[id * kLanes + l]; });
  }
  return out;
}

bool DpBatchEngine::relax_layer(std::size_t i) {
  const std::size_t base = i * layer_size_;
  const LayerEvent* ev0 = event_at_[i][0];  // skeleton fields: any lane's copy
  const bool is_sign = ev0 && ev0->type == LayerEvent::Type::kStopSign;
  const bool is_signal = ev0 && ev0->type == LayerEvent::Type::kSignal;
  auto& bt = ws_.batch_;
  float* layer_cost = bt.cost.data() + base * kLanes;
  float* layer_time = bt.time.data() + base * kLanes;
  std::uint32_t* layer_back = bt.back.data() + base * kLanes;

  // Dwell expansion on the standstill row, all lanes per step: the +inf
  // guard of the scalar loop is subsumed by the strict-< (inf + idle == inf
  // improves nothing), and the select discards the time/back candidates of
  // non-improving lanes, so stale values behind +inf are never propagated.
  {
    const sd::VecF idle_v = sd::VecF::broadcast(idle_step_cost_);
    const sd::VecF dt_v = sd::VecF::broadcast(static_cast<float>(res_.dt_s));
    const sd::VecI32 pred_base = sd::VecI32::broadcast(0);
    (void)pred_base;
    for (std::size_t k = 0; k + 1 < n_t_; ++k) {
      float* c1 = layer_cost + (k + 1) * kLanes;
      const sd::VecF ck = sd::VecF::load(layer_cost + k * kLanes);
      const sd::VecF ck1 = sd::VecF::load(c1);
      const sd::VecF cand = ck + idle_v;
      const sd::MaskF improve = sd::cmp_lt(cand, ck1);
      if (sd::movemask(improve) == 0) continue;
      sd::select(improve, cand, ck1).store(c1);
      float* t1 = layer_time + (k + 1) * kLanes;
      const sd::VecF tk = sd::VecF::load(layer_time + k * kLanes);
      sd::select(improve, tk + dt_v, sd::VecF::load(t1)).store(t1);
      auto* b1 = reinterpret_cast<std::int32_t*>(layer_back + (k + 1) * kLanes);
      const auto pred = static_cast<std::int32_t>(pack_pred(0, k, /*dwell=*/true));
      sd::select(improve, sd::VecI32::broadcast(pred), sd::VecI32::load(b1)).store(b1);
    }
  }

  // Union source gather, (j, k)-lex order with a per-entry live-lane bitmask:
  // lane l's kept entries are exactly its standalone source list, in order.
  // Pruning state (running row minimum) is a vector lane per scenario; the
  // accumulation order and float ops per lane match the scalar scan.
  const float dwell_f = is_sign ? static_cast<float>(ev0->dwell_s) : 0.0f;
  const float extra_f = is_sign ? static_cast<float>(idle_mah_s_ * ev0->dwell_s) : 0.0f;
  const bool check_windows = is_signal && ev0->enforce_windows;
  const bool prune =
      problems_[0]->dominance_pruning && static_cast<std::ptrdiff_t>(i) > last_window_layer_;
  const std::size_t j_end = is_sign ? 1 : n_v_;
  bt.row_begin.assign(n_v_ + 1, 0);
  {
    const std::size_t cap = j_end * n_t_;
    if (bt.src_pred.size() < cap) {
      bt.src_pred.resize(cap);
      bt.src_kept.resize(cap);
      bt.src_inside.resize(cap);
      bt.src_cost.resize(cap * kLanes);
      bt.src_time.resize(cap * kLanes);
    }
  }
  const sd::VecF inf_v = sd::VecF::broadcast(kInf);
  const sd::VecF margin_v = sd::VecF::broadcast(kPruneMargin);
  const sd::VecF extra_v = sd::VecF::broadcast(extra_f);
  const sd::VecF dwell_v = sd::VecF::broadcast(dwell_f);
  const sd::VecI32 one_i = sd::VecI32::broadcast(1);
  const sd::VecI32 zero_i = sd::VecI32::broadcast(0);
  std::uint32_t n = 0;
  std::array<std::uint32_t, kLanes> lane_kept_entries{};
  for (std::size_t j = 0; j < j_end; ++j) {
    bt.row_begin[j] = n;
    sd::VecF row_min = inf_v;
    const bool prune_row = prune && j >= 1;
    for (std::size_t k = 0; k < n_t_; ++k) {
      const std::size_t cell = (j * n_t_ + k) * kLanes;
      const sd::VecF c0 = sd::VecF::load(layer_cost + cell);
      sd::MaskF kept_m = sd::cmp_lt(c0, inf_v);
      unsigned kept = static_cast<unsigned>(sd::movemask(kept_m));
      if (kept == 0) continue;
      if (prune_row) {
        const sd::MaskF pruned_m = sd::mask_and(kept_m, sd::cmp_lt(row_min + margin_v, c0));
        pruned_acc_ = pruned_acc_ + sd::select(pruned_m, one_i, zero_i);
        kept_m = sd::mask_andnot(kept_m, pruned_m);
        kept = static_cast<unsigned>(sd::movemask(kept_m));
        row_min = sd::select(kept_m, sd::min_std(row_min, c0), row_min);
        if (kept == 0) continue;
      }
      frontier_acc_ = frontier_acc_ + sd::select(kept_m, one_i, zero_i);
      bt.src_pred[n] = pack_pred(j, k, /*dwell=*/false);
      bt.src_kept[n] = kept;
      sd::select(kept_m, c0 + extra_v, inf_v).store(bt.src_cost.data() + n * kLanes);
      sd::VecF t0 = sd::VecF::load(layer_time + cell);
      if (is_sign) t0 = t0 + dwell_v;
      sd::select(kept_m, t0, inf_v).store(bt.src_time.data() + n * kLanes);
      if (check_windows) {
        std::uint32_t inside = 0;
        for (unsigned bits = kept; bits != 0; bits &= bits - 1) {
          const auto l = static_cast<unsigned>(std::countr_zero(bits));
          const double t_l = static_cast<double>(bt.src_time[n * kLanes + l]);
          if (in_any_window(event_at_[i][l]->windows, t_l)) inside |= 1u << l;
        }
        bt.src_inside[n] = inside;
      }
      for (unsigned bits = kept; bits != 0; bits &= bits - 1) {
        ++lane_kept_entries[static_cast<unsigned>(std::countr_zero(bits))];
      }
      ++n;
    }
  }
  for (std::size_t j = j_end; j <= n_v_; ++j) bt.row_begin[j] = n;
  flush_gather_counters();

  // A lane with an empty frontier can never recover (later layers are fed
  // only from here): it dies at this layer, freezing its counters exactly
  // where the standalone solver's early stop would (no stripe work happened
  // for it yet, matching the scalar return-before-stripes).
  for (std::size_t l = 0; l < kLanes; ++l) {
    if (lane_kept_entries[l] == 0) lane_alive_ &= ~(1u << l);
  }
  if (n == 0 || lane_alive_ == 0) return false;

  const std::size_t n_stripes = std::max<std::size_t>(1, std::min(stripe_relax_.size(), n_v_));
  const auto run_stripe = [&](std::size_t s) {
    const std::size_t j2_begin = s * n_v_ / n_stripes;
    const std::size_t j2_end = (s + 1) * n_v_ / n_stripes;
    relax_stripe(i, j2_begin, j2_end, s);
  };
  if (pool_ && n_stripes > 1) {
    pool_->parallel_for(n_stripes, run_stripe);
  } else {
    for (std::size_t s = 0; s < n_stripes; ++s) run_stripe(s);
  }
  return true;
}

void DpBatchEngine::relax_stripe(std::size_t i, std::size_t j2_begin, std::size_t j2_end,
                                 std::size_t stripe) {
  using Rev = DpWorkspace::RevHop;

  const LayerEvent* ev0 = event_at_[i][0];
  const bool is_sign = ev0 && ev0->type == LayerEvent::Type::kStopSign;
  const bool is_signal = ev0 && ev0->type == LayerEvent::Type::kSignal;
  const bool check_windows = is_signal && ev0->enforce_windows;
  const LayerEvent* next_ev0 = event_at_[i + 1][0];
  const bool next_is_sign = next_ev0 && next_ev0->type == LayerEvent::Type::kStopSign;
  const bool next_is_dest = (i + 1 == n_layers_ - 1);
  const double next_limit = ws_.layer_limit_[i + 1];
  const double dt_s = res_.dt_s;
  const bool use_inv = inv_dt_ != 0.0;
  const std::size_t table_base = static_cast<std::size_t>(ws_.layer_class_[i]) * n_v_ * n_v_;
  const float* energy_table = ws_.grade_energy_.data() + table_base;
  const float* fused_table = ws_.grade_fused_.data() + table_base;

  auto& bt = ws_.batch_;
  const std::size_t next_base = (i + 1) * layer_size_ * kLanes;
  float* cost = bt.cost.data() + next_base;
  float* time = bt.time.data() + next_base;
  std::uint32_t* back = bt.back.data() + next_base;

  // Hoisted lane-wise invariants (per-lane horizon thresholds / departures).
  constexpr auto Dw = sd::VecD::kWidth;
  const sd::VecF thresh_v = sd::VecF::load(thresh_f_.data());
  const sd::VecD depart_lo = sd::VecD::load(depart_.data());
  const sd::VecD depart_hi =
      kLanes > Dw ? sd::VecD::load(depart_.data() + Dw) : depart_lo;
  const sd::VecD scale_v = sd::VecD::broadcast(use_inv ? inv_dt_ : dt_s);
  const sd::VecF zero_f = sd::VecF::broadcast(0.0f);
  // Per-lane relaxation counts, kept as a histogram over the relax bitmask (a
  // single scalar increment on the hot path) and expanded per lane once at
  // stripe end.
  std::array<std::uint32_t, std::size_t{1} << kLanes> relax_hist{};

  // Lazy reset of this stripe's destination rows, all lanes.
  std::fill(cost + j2_begin * n_t_ * kLanes, cost + j2_end * n_t_ * kLanes, kInf);

  for (std::size_t j2 = j2_begin; j2 < j2_end; ++j2) {
    const double v2 = static_cast<double>(j2) * res_.dv_ms;
    if (v2 > next_limit + 1e-9) continue;
    if (next_is_sign && j2 != 0) continue;
    // Terminal-speed constraint, per lane: the row is live only for lanes
    // whose destination level is j2 (the scalar engine skips the row
    // entirely for the others).
    unsigned row_lanes = kFullMask;
    if (next_is_dest) {
      row_lanes = 0;
      for (std::size_t l = 0; l < kLanes; ++l) {
        if (j_dest_[l] == j2) row_lanes |= 1u << l;
      }
      if (row_lanes == 0) continue;
    }
    float* crow = cost + j2 * n_t_ * kLanes;
    float* trow = time + j2 * n_t_ * kLanes;
    std::uint32_t* brow = back + j2 * n_t_ * kLanes;
    for (std::uint32_t h = ws_.rev_begin_[j2]; h < ws_.rev_begin_[j2 + 1]; ++h) {
      const Rev hop = ws_.rev_hops_[h];
      const std::size_t j = hop.j_from;
      if (is_sign && j != 0) continue;
      const float fused = fused_table[j * n_v_ + j2];
      const float raw = energy_table[j * n_v_ + j2];
      const float lambda_dt = static_cast<float>(lambda_ * hop.dt);
      const float smooth_f = smooth_by_diff_[j2 >= j ? j2 - j : j - j2];
      // Signal-window hop costs: the penalty inputs (config, raw energy) are
      // lane-invariant, so the scalar sequence - float cast, finiteness
      // check, then the two dependent adds - runs once per membership value
      // and lanes select by their own window membership. A non-finite
      // penalized cost (hard mode, outside) removes those lanes from the
      // relaxation without counting them, matching the scalar `continue`.
      float hc_in = 0.0f, hc_out = 0.0f;
      unsigned elig_in = kFullMask, elig_out = kFullMask;
      if (check_windows) {
        hc_in = static_cast<float>(penalized_cost(problems_[0]->penalty,
                                                  static_cast<double>(raw), true));
        hc_out = static_cast<float>(penalized_cost(problems_[0]->penalty,
                                                   static_cast<double>(raw), false));
        if (std::isfinite(hc_in)) {
          hc_in += lambda_dt;
          hc_in += smooth_f;
        } else {
          elig_in = 0;
        }
        if (std::isfinite(hc_out)) {
          hc_out += lambda_dt;
          hc_out += smooth_f;
        } else {
          elig_out = 0;
        }
      }
      const sd::VecF hop_dt_v = sd::VecF::broadcast(hop.dt);
      const sd::VecF fused_v = sd::VecF::broadcast(fused);
      const sd::VecF hin_v = sd::VecF::broadcast(hc_in);
      const sd::VecF hout_v = sd::VecF::broadcast(hc_out);
      // Per-lane emulation of the scalar early `break` on over-horizon
      // sources: source times ascend within a row per lane, so a lane that
      // goes over on one of ITS OWN kept entries is over for the rest of the
      // row - row_alive drops it and the entry scan stops when no lane is
      // left.
      unsigned row_alive = row_lanes;
      const std::uint32_t row_end = bt.row_begin[j + 1];
      for (std::uint32_t s = bt.row_begin[j]; s < row_end; ++s) {
        const unsigned active = bt.src_kept[s] & row_alive;
        if (active == 0) continue;
        const sd::VecF arrive = sd::VecF::load(bt.src_time.data() + s * kLanes) + hop_dt_v;
        const auto over = static_cast<unsigned>(sd::movemask(sd::cmp_ge(arrive, thresh_v)));
        row_alive &= ~(over & active);
        unsigned relax = active & ~over;
        if (check_windows && relax != 0) {
          const std::uint32_t inside = bt.src_inside[s];
          relax &= (inside & elig_in) | (~inside & elig_out);
        }
        if (relax == 0) {
          if (row_alive == 0) break;
          continue;
        }
        const sd::MaskF relax_m = sd::mask_from_bits(relax);
        ++relax_hist[relax];
        // Per-lane time binning, the exact scalar sequence (widen to double,
        // subtract the lane's departure, multiply-or-divide, truncate). Dead
        // lanes are sanitized to 0.0f first: their would-be +inf arrivals
        // must not reach the float->int truncation (UB / poison on some
        // backends); the sanitized bins are garbage and never consulted.
        const sd::VecF arr_s = sd::select(relax_m, arrive, zero_f);
        const sd::VecD e_lo = sd::widen_low(arr_s) - depart_lo;
        const sd::VecD k_lo = use_inv ? e_lo * scale_v : e_lo / scale_v;
        sd::VecI32 k2_v;
        if constexpr (kLanes > Dw) {
          const sd::VecD e_hi = sd::widen_high(arr_s) - depart_hi;
          const sd::VecD k_hi = use_inv ? e_hi * scale_v : e_hi / scale_v;
          k2_v = sd::trunc_concat_i32(k_lo, k_hi);
        } else {
          k2_v = sd::trunc_i32(k_lo);
        }
        const sd::VecF hop_cost_v =
            check_windows ? sd::select(sd::mask_from_bits(bt.src_inside[s]), hin_v, hout_v)
                          : fused_v;
        const sd::VecF new_cost =
            sd::VecF::load(bt.src_cost.data() + s * kLanes) + hop_cost_v;
        const sd::VecI32 pred_v =
            sd::VecI32::broadcast(static_cast<std::int32_t>(bt.src_pred[s]));
        // Scatter, grouping lanes by equal destination bin: pick the first
        // unhandled lane's bin, compare-exchange every lane that binned there
        // in one masked pass (strict-<, ascending entry order - the scalar
        // tie-break), clear those lanes, repeat. Lanes write disjoint
        // (bin, lane) slots, so the grouping is pure vector efficiency and
        // the loop is exact for any bin spread; in practice lanes of one
        // entry share a source cell and one or two groups cover the entry.
        unsigned todo = relax;
        do {
          const auto f = static_cast<unsigned>(std::countr_zero(todo));
          const std::int32_t b = sd::extract_lane_i32(k2_v, f);
          const sd::MaskF eq = sd::cmp_eq(k2_v, sd::VecI32::broadcast(b));
          todo &= ~static_cast<unsigned>(sd::movemask(eq));
          float* cslot = crow + static_cast<std::size_t>(b) * kLanes;
          const sd::VecF cur = sd::VecF::load(cslot);
          const sd::MaskF improve =
              sd::mask_and(sd::cmp_lt(new_cost, cur), sd::mask_and(relax_m, eq));
          const auto imp = static_cast<unsigned>(sd::movemask(improve));
          if (imp == 0) continue;
          sd::select(improve, new_cost, cur).store(cslot);
          float* tslot = trow + static_cast<std::size_t>(b) * kLanes;
          auto* bslot =
              reinterpret_cast<std::int32_t*>(brow + static_cast<std::size_t>(b) * kLanes);
          if (imp == kFullMask) {
            arrive.store(tslot);
            pred_v.store(bslot);
          } else {
            sd::select(improve, arrive, sd::VecF::load(tslot)).store(tslot);
            sd::select(improve, pred_v, sd::VecI32::load(bslot)).store(bslot);
          }
        } while (todo != 0);
        if (row_alive == 0) break;
      }
    }
  }

  // Expand the mask histogram into per-lane relaxation counts.
  auto& lane_counts = stripe_relax_[stripe];
  for (std::size_t m = 1; m < relax_hist.size(); ++m) {
    const std::uint32_t c = relax_hist[m];
    if (c == 0) continue;
    for (unsigned bits = static_cast<unsigned>(m); bits != 0; bits &= bits - 1) {
      lane_counts[static_cast<unsigned>(std::countr_zero(bits))] += c;
    }
  }
}

}  // namespace detail

namespace {

struct BatchGroup {
  DpBatchKey key;
  std::vector<std::size_t> members;  // input indices, in input order
};

}  // namespace

std::vector<std::optional<DpSolution>> solve_dp_batch(std::span<const DpProblem> problems,
                                                      WorkspacePool& pool,
                                                      common::ThreadPool* thread_pool,
                                                      DpBatchStats* stats) {
  std::vector<std::optional<DpSolution>> out(problems.size());
  if (problems.empty()) {
    if (stats != nullptr) *stats = DpBatchStats{};
    return out;
  }
  for (const DpProblem& problem : problems) problem.validate();

  // Group by compatibility key, first-occurrence order (few groups per
  // batch, so the linear key scan beats ordering/hashing boilerplate).
  std::vector<BatchGroup> groups;
  for (std::size_t idx = 0; idx < problems.size(); ++idx) {
    DpBatchKey key = DpBatchKey::of(problems[idx]);
    bool placed = false;
    for (BatchGroup& group : groups) {
      if (group.key == key) {
        group.members.push_back(idx);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back(BatchGroup{std::move(key), {idx}});
  }

  static telemetry::Counter& groups_ctr = telemetry::counter("dp.batch.groups");
  static telemetry::Counter& lanes_ctr = telemetry::counter("dp.batch.lanes");
  static telemetry::Counter& fallback_ctr = telemetry::counter("dp.batch.fallback_lanes");
  static telemetry::Counter& slots_ctr = telemetry::counter("dp.batch.lane_slots");
  static telemetry::Histogram& group_size_hist =
      telemetry::histogram("dp.batch.group_size", telemetry::Unit::kCount);

  DpBatchStats local;
  local.groups = groups.size();
  groups_ctr.add(static_cast<long>(groups.size()));

  // One pool transaction checks out a workspace per group; the affinity tag
  // warms the matching group's model tables, the rest reuse allocations.
  std::vector<std::unique_ptr<WorkspacePool::Entry>> entries =
      pool.acquire_many(groups.front().key.route_hash, groups.size());
  const auto release_all = [&] {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (entries[g] == nullptr) continue;
      entries[g]->affinity = groups[g].key.route_hash;
      pool.release(std::move(entries[g]));
    }
  };

  try {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const BatchGroup& group = groups[g];
      DpWorkspace& ws = entries[g]->workspace;
      group_size_hist.record(static_cast<long>(group.members.size()));
      const std::size_t n_chunks = group.members.size() / kLanes;
      for (std::size_t c = 0; c < n_chunks; ++c) {
        std::array<const DpProblem*, kLanes> chunk{};
        for (std::size_t l = 0; l < kLanes; ++l) {
          chunk[l] = &problems[group.members[c * kLanes + l]];
        }
        detail::DpBatchEngine engine(chunk, ws, thread_pool);
        std::array<std::optional<DpSolution>, kLanes> results = engine.run();
        for (std::size_t l = 0; l < kLanes; ++l) {
          out[group.members[c * kLanes + l]] = std::move(results[l]);
        }
        local.batched_lanes += kLanes;
      }
      // Ragged remainder: standalone cold solves on the same workspace (the
      // cached model tables carry over - same DpBatchKey, same fingerprint).
      for (std::size_t m = n_chunks * kLanes; m < group.members.size(); ++m) {
        out[group.members[m]] = solve_dp(problems[group.members[m]], ws, thread_pool);
        ++local.fallback_lanes;
      }
      local.batched_lanes += 0;  // (chunks counted above)
      slots_ctr.add(static_cast<long>((n_chunks + (group.members.size() % kLanes != 0 ? 1 : 0)) *
                                      kLanes));
    }
  } catch (...) {
    release_all();
    throw;
  }
  release_all();

  lanes_ctr.add(static_cast<long>(local.batched_lanes));
  fallback_ctr.add(static_cast<long>(local.fallback_lanes));
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace evvo::core
