// Solution extraction shared by the single-scenario DP engine and the
// batched SoA engine (core/dp_batch.cpp). The destination scan, tie-break,
// backtrack, stop-sign dwell materialization, and physical-energy annotation
// are one template walked through table accessors, so the two engines cannot
// drift: a batch lane extracting through its strided accessors performs the
// exact float/double op sequence of a standalone solve over the same bits.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "core/dp_common.hpp"
#include "core/dp_solver.hpp"
#include "ev/energy_model.hpp"
#include "road/route.hpp"

namespace evvo::core::detail {

/// `cost_at`/`time_at`/`back_at` map a flat state index
/// (layer * n_v * n_t + j * n_t + k) to the lane's storage: the plain tables
/// pass a direct read, the batch engine passes a lane-strided read. Time and
/// backpointer cells are only ever dereferenced behind a finite cost, which
/// keeps the lazy-reset data path (stale time/back behind +inf) sound here
/// exactly as in the relaxation.
template <typename CostAt, typename TimeAt, typename BackAt>
std::optional<DpSolution> extract_dp_solution(
    const road::Route& route, const ev::EnergyModel& energy,
    const std::vector<const LayerEvent*>& event_at, std::size_t n_events, double ds, double dv,
    std::size_t n_layers, std::size_t n_t, std::size_t layer_size, std::size_t j_dest,
    DpStats stats, CostAt&& cost_at, TimeAt&& time_at, BackAt&& back_at) {
  constexpr float kInf = kDpInf;
  const auto cell_of = [n_t](std::size_t j, std::size_t k) { return j * n_t + k; };

  // Destination at the terminal speed; among optima prefer the earliest
  // arrival. (Restructured from the original: skip unreached/infinite cells
  // up front so the tie-break can never consult an unset best state.)
  const std::size_t dest_base = (n_layers - 1) * layer_size + j_dest * n_t;
  std::size_t best_k = n_t;
  float best_cost = kInf;
  float best_time = 0.0f;
  for (std::size_t k = 0; k < n_t; ++k) {
    const std::size_t id = dest_base + k;
    const float c = cost_at(id);
    if (c >= kInf) continue;
    if (best_k == n_t || c < best_cost - 1e-9f ||
        (std::abs(c - best_cost) <= 1e-9f && time_at(id) < best_time)) {
      best_cost = c;
      best_k = k;
      best_time = time_at(id);
    }
  }
  if (best_k == n_t) return std::nullopt;
  stats.best_cost_mah = static_cast<double>(best_cost);

  // Backtrack.
  struct RawNode {
    std::size_t i, j, k;
  };
  std::vector<RawNode> chain;
  std::size_t ci = n_layers - 1;
  std::size_t cj = j_dest;
  std::size_t ck = best_k;
  while (true) {
    chain.push_back(RawNode{ci, cj, ck});
    const std::uint32_t p = back_at(ci * layer_size + cell_of(cj, ck));
    if (p == kNoPred) break;
    const bool dwell = pred_is_dwell(p);
    const std::size_t pj = pred_j(p);
    const std::size_t pk = pred_k(p);
    if (!dwell) {
      if (ci == 0) break;
      --ci;
    }
    cj = pj;
    ck = pk;
  }
  std::reverse(chain.begin(), chain.end());

  std::vector<PlanNode> nodes;
  nodes.reserve(chain.size() + n_events);
  for (std::size_t n = 0; n < chain.size(); ++n) {
    const RawNode& r = chain[n];
    PlanNode node;
    node.position_m = static_cast<double>(r.i) * ds;
    node.speed_ms = static_cast<double>(r.j) * dv;
    node.time_s = static_cast<double>(time_at(r.i * layer_size + cell_of(r.j, r.k)));
    // Materialize the mandatory stop-sign dwell as an explicit node so the
    // time-domain expansion shows the standstill.
    if (n > 0 && !nodes.empty()) {
      const RawNode& prev = chain[n - 1];
      const LayerEvent* pe = event_at[prev.i];
      if (pe && pe->type == LayerEvent::Type::kStopSign && prev.i != r.i && pe->dwell_s > 0.0) {
        PlanNode wait = nodes.back();
        wait.time_s += pe->dwell_s;
        nodes.push_back(wait);
      }
    }
    nodes.push_back(node);
  }

  // Annotate cumulative *physical* charge along the plan (the solver's state
  // cost additionally carries the time-value term and penalties, which are
  // optimizer-internal).
  const double phys_idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a()));
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    PlanNode& cur = nodes[n];
    const PlanNode& prev = nodes[n - 1];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    double delta = 0.0;
    if (dist < 1e-9) {
      delta = phys_idle_mah_s * dt;  // dwell
    } else {
      const double v_mid = 0.5 * (prev.speed_ms + cur.speed_ms);
      const double a = (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * dist);
      const double grade = route.grade_at(prev.position_m + 0.5 * dist);
      delta = ah_to_mah(
          as_to_ah(energy.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(a), grade) * dt));
    }
    cur.energy_mah = prev.energy_mah + delta;
  }

  return DpSolution{PlannedProfile(std::move(nodes)), stats};
}

}  // namespace evvo::core::detail
