// Planned-profile serialization: the wire/disk format for shipping optimal
// profiles between the cloud planner and vehicles (position, speed, time,
// cumulative energy per node).
#pragma once

#include <filesystem>

#include "core/planned_profile.hpp"

namespace evvo::core {

/// Writes `position_m,speed_ms,time_s,energy_mah` rows, one per plan node.
void save_plan_csv(const std::filesystem::path& path, const PlannedProfile& profile);

/// Loads a profile saved by save_plan_csv. Throws std::runtime_error on
/// malformed files (PlannedProfile's own monotonicity validation applies).
PlannedProfile load_plan_csv(const std::filesystem::path& path);

}  // namespace evvo::core
