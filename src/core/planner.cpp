#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "core/dp_batch.hpp"
#include "core/dp_common.hpp"
#include "core/dp_replan.hpp"
#include "core/workspace_pool.hpp"

namespace evvo::core {

/// Shared across planner copies: solver contexts (workspace + previous-solve
/// snapshot, keyed by route-content affinity so replans of the same corridor
/// suffix warm-start; see core/workspace_pool.hpp) are checked out per call,
/// and the relaxation pool is created on first use. The configured thread
/// count is fixed at construction, so the pool never needs resizing.
struct VelocityPlanner::Runtime {
  common::Mutex runtime_mutex{common::LockRank::kPlannerRuntime};
  WorkspacePool workspaces;
  std::unique_ptr<common::ThreadPool> pool EVVO_GUARDED_BY(runtime_mutex);

  common::ThreadPool* pool_for(unsigned thread_hint) EVVO_EXCLUDES(runtime_mutex) {
    const unsigned want = common::ThreadPool::resolve_threads(thread_hint);
    if (want <= 1) return nullptr;
    common::MutexLock lock(runtime_mutex);
    if (!pool) pool = std::make_unique<common::ThreadPool>(want);
    return pool.get();
  }
};

const char* signal_policy_name(SignalPolicy policy) {
  switch (policy) {
    case SignalPolicy::kQueueAware:
      return "queue-aware (proposed)";
    case SignalPolicy::kGreenWindow:
      return "green-window (current DP)";
    case SignalPolicy::kIgnoreSignals:
      return "signal-oblivious";
  }
  return "?";
}

VelocityPlanner::VelocityPlanner(road::Corridor corridor, ev::EnergyModel energy,
                                 PlannerConfig config)
    : corridor_(std::move(corridor)),
      energy_(std::move(energy)),
      config_(std::move(config)),
      runtime_(std::make_shared<Runtime>()) {
  config_.resolution.validate();
  config_.penalty.validate();
}

namespace {

/// Builds the DP layer events for any corridor under a planner config.
std::vector<LayerEvent> build_events_for(
    const road::Corridor& corridor, const PlannerConfig& config, double depart_time_s,
    const std::shared_ptr<const traffic::ArrivalRateProvider>& arrivals) {
  const road::Route& route = corridor.route;
  const auto n_hops = static_cast<std::size_t>(
      std::max(1.0, std::round(route.length() / config.resolution.ds_m)));
  const double ds = route.length() / static_cast<double>(n_hops);
  const auto snap = [&](double position) {
    const auto layer = static_cast<std::size_t>(std::llround(position / ds));
    if (layer == 0 || layer >= n_hops)
      throw std::invalid_argument("VelocityPlanner: regulatory element at the route boundary");
    return layer;
  };

  std::vector<LayerEvent> events;
  for (const road::StopSign& sign : corridor.stop_signs) {
    LayerEvent e;
    e.type = LayerEvent::Type::kStopSign;
    e.layer = snap(sign.position_m);
    e.dwell_s = sign.min_stop_s;
    events.push_back(std::move(e));
  }
  const double t0 = depart_time_s;
  const double t1 = depart_time_s + config.resolution.horizon_s;
  for (const road::TrafficLight& light : corridor.lights) {
    LayerEvent e;
    e.type = LayerEvent::Type::kSignal;
    e.layer = snap(light.position());
    switch (config.policy) {
      case SignalPolicy::kQueueAware: {
        if (!arrivals)
          throw std::invalid_argument("VelocityPlanner: queue-aware planning needs arrival rates");
        const traffic::QueuePredictor predictor(
            light, traffic::QueueModel(config.vm, config.discharge), arrivals);
        e.windows = predictor.zero_queue_windows(Seconds(t0), Seconds(t1));
        e.enforce_windows = true;
        break;
      }
      case SignalPolicy::kGreenWindow:
        e.windows = light.green_windows(t0, t1);
        e.enforce_windows = true;
        break;
      case SignalPolicy::kIgnoreSignals:
        e.enforce_windows = false;
        break;
    }
    // Safety margins are part of the proposed system; the green-window
    // baseline believes vehicles pass the instant the light is green (the
    // very assumption the paper attacks), so it gets no margins.
    if (e.enforce_windows && config.policy == SignalPolicy::kQueueAware) {
      std::vector<road::TimeWindow> trimmed;
      for (road::TimeWindow w : e.windows) {
        w.start_s += config.window_start_margin_s;
        w.end_s -= config.window_end_margin_s;
        if (w.duration() > 0.0) trimmed.push_back(w);
      }
      e.windows = std::move(trimmed);
    }
    events.push_back(std::move(e));
  }
  // Distinct elements must land on distinct layers (10 m grid vs. hundreds of
  // meters of separation on the experimental corridor).
  for (std::size_t a = 0; a < events.size(); ++a) {
    for (std::size_t b = a + 1; b < events.size(); ++b) {
      if (events[a].layer == events[b].layer)
        throw std::invalid_argument("VelocityPlanner: two regulatory elements share a grid layer");
    }
  }
  return events;
}

DpProblem make_problem(const road::Route& route, const ev::EnergyModel& energy,
                       const PlannerConfig& config, double depart_time_s,
                       std::vector<LayerEvent> events) {
  DpProblem problem;
  problem.route = &route;
  problem.energy = &energy;
  problem.depart_time = Seconds(depart_time_s);
  problem.resolution = config.resolution;
  problem.penalty = config.penalty;
  problem.time_weight_mah_per_s = config.time_weight_mah_per_s;
  problem.smoothness_weight_mah_per_ms = config.smoothness_weight_mah_per_ms;
  problem.dominance_pruning = config.dominance_pruning;
  problem.events = std::move(events);
  return problem;
}

}  // namespace

std::vector<LayerEvent> VelocityPlanner::build_events(
    Seconds depart_time, std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const {
  return build_events_for(corridor_, config_, depart_time.value(), arrivals);
}

std::optional<DpSolution> VelocityPlanner::solve_problem(const DpProblem& problem) const {
  // Affinity = route content: a replan of the same corridor suffix gets the
  // context whose tables and previous-solve snapshot it can warm-start from
  // (bit-identically; see core/dp_replan.hpp). Cross-corridor checkouts
  // still reuse the allocations, they just solve cold.
  const std::uint64_t affinity = detail::hash_route(*problem.route);
  std::unique_ptr<WorkspacePool::Entry> entry = runtime_->workspaces.acquire(affinity);
  common::ThreadPool* pool = runtime_->pool_for(config_.resolution.threads);
  std::optional<DpSolution> solution;
  try {
    solution = solve_dp_incremental(problem, entry->prev, entry->workspace, pool);
  } catch (...) {
    entry->affinity = affinity;
    runtime_->workspaces.release(std::move(entry));
    throw;
  }
  entry->affinity = affinity;
  runtime_->workspaces.release(std::move(entry));
  return solution;
}

DpSolution VelocityPlanner::plan_with_stats(
    Seconds depart_time, std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const {
  const double depart_time_s = depart_time.value();  // .value() seam
  DpProblem problem = make_problem(corridor_.route, energy_, config_, depart_time_s,
                                   build_events_for(corridor_, config_, depart_time_s, arrivals));
  auto solution = solve_problem(problem);
  if (!solution.has_value())
    throw std::runtime_error("VelocityPlanner: no feasible trajectory within the horizon");
  return std::move(*solution);
}

PlannedProfile VelocityPlanner::plan(
    Seconds depart_time, std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const {
  return plan_with_stats(depart_time, std::move(arrivals)).profile;
}

PlannedProfile VelocityPlanner::replan(
    Meters position, MetersPerSecond speed, Seconds time,
    std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const {
  const double position_m = position.value();  // .value() seam
  const double speed_ms = speed.value();
  const double time_s = time.value();
  if (position_m < 0.0 || position_m >= corridor_.length())
    throw std::invalid_argument("VelocityPlanner::replan: position outside the corridor");
  road::Corridor rest = road::corridor_suffix(corridor_, position_m);
  // Elements closer than one grid step count as already passed (they would
  // otherwise snap to the boundary layer).
  const double too_close = config_.resolution.ds_m * 1.5;
  std::erase_if(rest.lights,
                [&](const road::TrafficLight& l) { return l.position() < too_close; });
  std::erase_if(rest.stop_signs,
                [&](const road::StopSign& s) { return s.position_m < too_close; });
  // Signal offsets are absolute times; nothing to shift there.

  DpProblem problem = make_problem(rest.route, energy_, config_, time_s,
                                   build_events_for(rest, config_, time_s, arrivals));
  problem.initial_speed =
      MetersPerSecond(clamp(speed_ms, 0.0, rest.route.speed_limit_at(0.0)));
  auto solution = solve_problem(problem);
  if (!solution.has_value())
    throw std::runtime_error("VelocityPlanner::replan: no feasible trajectory within the horizon");
  return solution->profile.shifted(position_m);
}

std::vector<PlanBatchResult> VelocityPlanner::plan_batch(
    std::span<const PlanJob> jobs,
    std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const {
  std::vector<PlanBatchResult> out(jobs.size());

  // Problem construction mirrors plan()/replan() exactly (same validation,
  // same error text), with per-job failures captured instead of thrown.
  // DpProblem.route points into its corridor's Route, so replan suffixes are
  // heap-owned to keep the pointers stable across the whole batch.
  std::vector<std::unique_ptr<road::Corridor>> suffixes;
  std::vector<DpProblem> problems;
  std::vector<std::size_t> job_of;  // problems index -> jobs index
  problems.reserve(jobs.size());
  job_of.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const PlanJob& job = jobs[i];
    try {
      if (!job.replan) {
        problems.push_back(
            make_problem(corridor_.route, energy_, config_, job.depart_time_s,
                         build_events_for(corridor_, config_, job.depart_time_s, arrivals)));
      } else {
        if (job.position_m < 0.0 || job.position_m >= corridor_.length())
          throw std::invalid_argument("VelocityPlanner::replan: position outside the corridor");
        auto rest = std::make_unique<road::Corridor>(
            road::corridor_suffix(corridor_, job.position_m));
        const double too_close = config_.resolution.ds_m * 1.5;
        std::erase_if(rest->lights,
                      [&](const road::TrafficLight& l) { return l.position() < too_close; });
        std::erase_if(rest->stop_signs,
                      [&](const road::StopSign& s) { return s.position_m < too_close; });
        DpProblem problem =
            make_problem(rest->route, energy_, config_, job.depart_time_s,
                         build_events_for(*rest, config_, job.depart_time_s, arrivals));
        problem.initial_speed =
            MetersPerSecond(clamp(job.speed_ms, 0.0, rest->route.speed_limit_at(0.0)));
        suffixes.push_back(std::move(rest));
        problems.push_back(std::move(problem));
      }
      job_of.push_back(i);
    } catch (...) {
      out[i].error = std::current_exception();
    }
  }

  common::ThreadPool* pool = runtime_->pool_for(config_.resolution.threads);
  std::vector<std::optional<DpSolution>> solutions =
      solve_dp_batch(problems, runtime_->workspaces, pool);
  for (std::size_t p = 0; p < problems.size(); ++p) {
    const std::size_t i = job_of[p];
    if (!solutions[p].has_value()) {
      out[i].error = std::make_exception_ptr(std::runtime_error(
          jobs[i].replan ? "VelocityPlanner::replan: no feasible trajectory within the horizon"
                         : "VelocityPlanner: no feasible trajectory within the horizon"));
      continue;
    }
    out[i].profile = jobs[i].replan ? solutions[p]->profile.shifted(jobs[i].position_m)
                                    : std::move(solutions[p]->profile);
  }
  return out;
}

}  // namespace evvo::core
