#include "core/glosa.hpp"

#include <algorithm>
#include <stdexcept>

namespace evvo::core {

GlosaAdvisor::GlosaAdvisor(road::Corridor corridor, GlosaConfig config,
                           std::shared_ptr<const traffic::ArrivalRateProvider> arrivals)
    : corridor_(std::move(corridor)), config_(config), arrivals_(std::move(arrivals)) {
  if (config_.min_advisory_ms <= 0.0)
    throw std::invalid_argument("GlosaAdvisor: min advisory speed must be positive");
  if (config_.cruise_factor <= 0.0 || config_.cruise_factor > 1.0)
    throw std::invalid_argument("GlosaAdvisor: cruise factor must be in (0, 1]");
  if (config_.queue_aware && !arrivals_)
    throw std::invalid_argument("GlosaAdvisor: queue-aware mode needs arrival rates");
}

const road::TrafficLight* GlosaAdvisor::next_light(Meters position) const {
  const double position_m = position.value();  // .value() seam
  for (const auto& light : corridor_.lights) {
    if (light.position() > position_m + 1.0) return &light;
  }
  return nullptr;
}

std::vector<road::TimeWindow> GlosaAdvisor::windows_for(const road::TrafficLight& light, double t0,
                                                        double t1) const {
  if (!config_.queue_aware) return light.green_windows(t0, t1);
  const traffic::QueuePredictor predictor(light, traffic::QueueModel(config_.vm), arrivals_);
  return predictor.zero_queue_windows(Seconds(t0), Seconds(t1));
}

double GlosaAdvisor::advise(Meters position, Seconds time) const {
  const double position_m = position.value();  // .value() seam
  const double time_s = time.value();
  const double cruise =
      config_.cruise_factor * corridor_.route.speed_limit_at(std::max(0.0, position_m));
  const road::TrafficLight* light = next_light(Meters(position_m));
  if (!light) return cruise;

  const double distance = light->position() - position_m;
  const double earliest_arrival = time_s + distance / cruise;
  // Consider windows from the earliest physically attainable arrival onward.
  const auto windows = windows_for(*light, earliest_arrival, earliest_arrival + 300.0);
  if (windows.empty()) return cruise;  // saturated: no advice beats cruising

  for (const auto& w : windows) {
    // Can we arrive inside this window at a reasonable speed?
    const double latest_start = std::max(w.start_s, earliest_arrival);
    if (latest_start >= w.end_s) continue;
    const double needed = distance / (latest_start - time_s);
    if (needed >= config_.min_advisory_ms && needed <= cruise + 1e-9) {
      return std::max(needed, config_.min_advisory_ms);
    }
  }
  // Every attainable window needs a speed below the floor: crawl at the floor
  // (the simulator's red-light logic will hold the vehicle if needed).
  return config_.min_advisory_ms;
}

std::function<double(double, double)> GlosaAdvisor::target_speed_fn() const {
  const auto self = std::make_shared<GlosaAdvisor>(*this);
  return [self](double position, double time) { return self->advise(Meters(position), Seconds(time)); };
}

}  // namespace evvo::core
