#include "core/dp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "common/units.hpp"

namespace evvo::core {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Backpointer packing: predecessor (j, k) plus a flag for same-layer dwells.
constexpr std::uint32_t kDwellFlag = 0x8000'0000u;
constexpr std::uint32_t kNoPred = 0xFFFF'FFFFu;

std::uint32_t pack_pred(std::size_t j, std::size_t k, bool dwell) {
  return static_cast<std::uint32_t>(j << 20) | static_cast<std::uint32_t>(k) |
         (dwell ? kDwellFlag : 0u);
}
std::size_t pred_j(std::uint32_t p) { return (p & ~kDwellFlag) >> 20; }
std::size_t pred_k(std::uint32_t p) { return p & 0x000F'FFFFu; }
bool pred_is_dwell(std::uint32_t p) { return (p & kDwellFlag) != 0u && p != kNoPred; }

/// Kinematics of one velocity transition over a fixed distance step.
struct Hop {
  std::size_t j_to = 0;
  float dt = 0.0f;     ///< travel time
  float accel = 0.0f;  ///< constant acceleration
};

}  // namespace

void DpResolution::validate() const {
  if (ds_m <= 0.0 || dv_ms <= 0.0 || dt_s <= 0.0 || horizon_s <= 0.0)
    throw std::invalid_argument("DpResolution: all steps must be positive");
  if (horizon_s / dt_s > 1e6) throw std::invalid_argument("DpResolution: too many time bins");
}

void DpProblem::validate() const {
  if (!route || !energy) throw std::invalid_argument("DpProblem: route and energy model required");
  resolution.validate();
  penalty.validate();
}

std::optional<DpSolution> solve_dp(const DpProblem& problem) {
  problem.validate();
  const road::Route& route = *problem.route;
  const ev::EnergyModel& energy = *problem.energy;
  const ev::VehicleParams& vp = energy.params();
  const DpResolution& res = problem.resolution;

  // Grid geometry. The distance step is adjusted so layers divide the route
  // length exactly.
  const auto n_hops = static_cast<std::size_t>(std::max(1.0, std::round(route.length() / res.ds_m)));
  const double ds = route.length() / static_cast<double>(n_hops);
  const std::size_t n_layers = n_hops + 1;
  const auto n_v = static_cast<std::size_t>(std::floor(route.max_speed_limit() / res.dv_ms)) + 1;
  const auto n_t = static_cast<std::size_t>(std::ceil(res.horizon_s / res.dt_s)) + 1;
  if (n_v >= (1u << 11) || n_t >= (1u << 20))
    throw std::invalid_argument("solve_dp: grid too large for backpointer packing");

  // Per-layer event lookup.
  std::vector<const LayerEvent*> event_at(n_layers, nullptr);
  for (const LayerEvent& e : problem.events) {
    if (e.layer >= n_layers) throw std::invalid_argument("solve_dp: event layer out of range");
    event_at[e.layer] = &e;
  }

  // Feasible hops per source velocity level (kinematics are layer-independent).
  const double a_min = vp.min_acceleration;
  const double a_max = vp.max_acceleration;
  std::vector<std::vector<Hop>> hops(n_v);
  for (std::size_t j = 0; j < n_v; ++j) {
    const double v = static_cast<double>(j) * res.dv_ms;
    for (std::size_t j2 = 0; j2 < n_v; ++j2) {
      const double v2 = static_cast<double>(j2) * res.dv_ms;
      const double v_mid = 0.5 * (v + v2);
      if (v_mid <= 1e-9) continue;  // no movement; dwells handle waiting
      const double a = (v2 * v2 - v * v) / (2.0 * ds);
      if (a < a_min - 1e-9 || a > a_max + 1e-9) continue;
      hops[j].push_back(Hop{j2, static_cast<float>(ds / v_mid), static_cast<float>(a)});
    }
  }

  // Transition energy cost [mAh] per (grade class, j, j2). Few grade values
  // exist along a route, so tables are cached per class.
  std::map<long, std::vector<float>> cost_by_grade;
  std::vector<const std::vector<float>*> layer_cost(n_layers - 1, nullptr);
  for (std::size_t i = 0; i + 1 < n_layers; ++i) {
    const double s_mid = (static_cast<double>(i) + 0.5) * ds;
    const double grade = route.grade_at(s_mid);
    const long key = std::lround(grade * 1e9);
    auto [it, inserted] = cost_by_grade.try_emplace(key);
    if (inserted) {
      std::vector<float>& table = it->second;
      table.assign(n_v * n_v, kInf);
      for (std::size_t j = 0; j < n_v; ++j) {
        const double v = static_cast<double>(j) * res.dv_ms;
        for (const Hop& hop : hops[j]) {
          const double v2 = static_cast<double>(hop.j_to) * res.dv_ms;
          const double v_mid = 0.5 * (v + v2);
          const double mah =
              ah_to_mah(as_to_ah(energy.current_a(v_mid, hop.accel, grade) * hop.dt));
          table[j * n_v + hop.j_to] = static_cast<float>(mah);
        }
      }
    }
    layer_cost[i] = &it->second;
  }

  // Per-layer speed cap (posted limit at the layer's position).
  std::vector<double> layer_limit(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    layer_limit[i] = route.speed_limit_at(static_cast<double>(i) * ds);
  }

  // State tables.
  const std::size_t layer_size = n_v * n_t;
  std::vector<float> cost(n_layers * layer_size, kInf);
  std::vector<float> time(n_layers * layer_size, 0.0f);
  std::vector<std::uint32_t> back(n_layers * layer_size, kNoPred);
  const auto idx = [&](std::size_t i, std::size_t j, std::size_t k) {
    return i * layer_size + j * n_t + k;
  };

  // Idle cost plus the explicit value of time (see DpProblem); both apply to
  // every second whether driving or waiting.
  const double lambda = problem.time_weight_mah_per_s;
  const double idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a())) + lambda;

  // Boundary velocity levels (Eq. 7d by default; replans may start moving).
  const auto snap_level = [&](double v) {
    const auto j = static_cast<std::size_t>(std::lround(v / res.dv_ms));
    if (j >= n_v) throw std::invalid_argument("solve_dp: boundary speed above the velocity grid");
    return j;
  };
  const std::size_t j_source = snap_level(problem.initial_speed_ms);
  const std::size_t j_dest = snap_level(problem.final_speed_ms);

  // Source state at the departure time.
  cost[idx(0, j_source, 0)] = 0.0f;
  time[idx(0, j_source, 0)] = static_cast<float>(problem.depart_time_s);

  DpStats stats;
  stats.layers = n_layers;
  stats.velocity_levels = n_v;
  stats.time_bins = n_t;

  for (std::size_t i = 0; i + 1 < n_layers; ++i) {
    const LayerEvent* event = event_at[i];
    const bool is_sign = event && event->type == LayerEvent::Type::kStopSign;
    const bool is_signal = event && event->type == LayerEvent::Type::kSignal;

    // Dwell expansion: waiting in place at v = 0 (time bins ascending so
    // chains of waits propagate within the layer).
    for (std::size_t k = 0; k + 1 < n_t; ++k) {
      const std::size_t from = idx(i, 0, k);
      if (cost[from] >= kInf) continue;
      const float new_cost = cost[from] + static_cast<float>(idle_mah_s * res.dt_s);
      const std::size_t to = idx(i, 0, k + 1);
      if (new_cost < cost[to]) {
        cost[to] = new_cost;
        time[to] = time[from] + static_cast<float>(res.dt_s);
        back[to] = pack_pred(0, k, /*dwell=*/true);
      }
    }

    // Forward hops to layer i+1.
    const std::vector<float>& costs = *layer_cost[i];
    const double next_limit = layer_limit[i + 1];
    const LayerEvent* next_event = event_at[i + 1];
    const bool next_is_sign = next_event && next_event->type == LayerEvent::Type::kStopSign;
    const bool next_is_dest = (i + 1 == n_layers - 1);
    for (std::size_t j = 0; j < n_v; ++j) {
      if (is_sign && j != 0) continue;  // stop signs are left from standstill
      for (std::size_t k = 0; k < n_t; ++k) {
        const std::size_t from = idx(i, j, k);
        const float c0 = cost[from];
        if (c0 >= kInf) continue;
        float t0 = time[from];
        float extra_cost = 0.0f;
        if (is_sign) {
          // Mandatory standstill before proceeding (Eq. 7c + dwell).
          t0 += static_cast<float>(event->dwell_s);
          extra_cost += static_cast<float>(idle_mah_s * event->dwell_s);
        }
        // Signal crossing happens when leaving the signal's layer.
        bool inside_window = true;
        if (is_signal && event->enforce_windows) {
          inside_window = in_any_window(event->windows, static_cast<double>(t0));
        }
        for (const Hop& hop : hops[j]) {
          const double v2 = static_cast<double>(hop.j_to) * res.dv_ms;
          if (v2 > next_limit + 1e-9) continue;
          if (next_is_sign && hop.j_to != 0) continue;      // stop signs: arrive stopped
          if (next_is_dest && hop.j_to != j_dest) continue;  // terminal speed constraint
          const float arrive_t = t0 + hop.dt;
          const double elapsed = static_cast<double>(arrive_t) - problem.depart_time_s;
          if (elapsed >= res.horizon_s) continue;
          const auto k2 = static_cast<std::size_t>(elapsed / res.dt_s);
          float hop_cost = costs[j * n_v + hop.j_to];
          if (is_signal && event->enforce_windows) {
            hop_cost = static_cast<float>(
                penalized_cost(problem.penalty, static_cast<double>(hop_cost), inside_window));
            if (!std::isfinite(hop_cost)) continue;
          }
          hop_cost += static_cast<float>(lambda * hop.dt);
          hop_cost += static_cast<float>(problem.smoothness_weight_mah_per_ms *
                                         std::abs(static_cast<double>(hop.j_to) - static_cast<double>(j)) *
                                         res.dv_ms);
          const float new_cost = c0 + extra_cost + hop_cost;
          const std::size_t to = idx(i + 1, hop.j_to, k2);
          ++stats.relaxations;
          if (new_cost < cost[to]) {
            cost[to] = new_cost;
            time[to] = arrive_t;
            back[to] = pack_pred(j, k, /*dwell=*/false);
          }
        }
      }
    }
  }

  // Destination at the terminal speed; among optima prefer the earliest arrival.
  std::size_t best_k = n_t;
  float best_cost = kInf;
  for (std::size_t k = 0; k < n_t; ++k) {
    const std::size_t id = idx(n_layers - 1, j_dest, k);
    if (cost[id] < best_cost - 1e-9f ||
        (std::abs(cost[id] - best_cost) <= 1e-9f && best_k < n_t &&
         time[id] < time[idx(n_layers - 1, j_dest, best_k)])) {
      if (cost[id] < kInf) {
        best_cost = cost[id];
        best_k = k;
      }
    }
  }
  if (best_k == n_t) return std::nullopt;
  stats.best_cost_mah = static_cast<double>(best_cost);

  // Backtrack.
  struct RawNode {
    std::size_t i, j, k;
  };
  std::vector<RawNode> chain;
  std::size_t ci = n_layers - 1;
  std::size_t cj = j_dest;
  std::size_t ck = best_k;
  while (true) {
    chain.push_back(RawNode{ci, cj, ck});
    const std::uint32_t p = back[idx(ci, cj, ck)];
    if (p == kNoPred) break;
    const bool dwell = pred_is_dwell(p);
    const std::size_t pj = pred_j(p);
    const std::size_t pk = pred_k(p);
    if (!dwell) {
      if (ci == 0) break;
      --ci;
    }
    cj = pj;
    ck = pk;
  }
  std::reverse(chain.begin(), chain.end());

  std::vector<PlanNode> nodes;
  nodes.reserve(chain.size() + problem.events.size());
  for (std::size_t n = 0; n < chain.size(); ++n) {
    const RawNode& r = chain[n];
    PlanNode node;
    node.position_m = static_cast<double>(r.i) * ds;
    node.speed_ms = static_cast<double>(r.j) * res.dv_ms;
    node.time_s = static_cast<double>(time[idx(r.i, r.j, r.k)]);
    // Materialize the mandatory stop-sign dwell as an explicit node so the
    // time-domain expansion shows the standstill.
    if (n > 0 && !nodes.empty()) {
      const RawNode& prev = chain[n - 1];
      const LayerEvent* pe = event_at[prev.i];
      if (pe && pe->type == LayerEvent::Type::kStopSign && prev.i != r.i && pe->dwell_s > 0.0) {
        PlanNode wait = nodes.back();
        wait.time_s += pe->dwell_s;
        nodes.push_back(wait);
      }
    }
    nodes.push_back(node);
  }

  // Annotate cumulative *physical* charge along the plan (the solver's state
  // cost additionally carries the time-value term and penalties, which are
  // optimizer-internal).
  const double phys_idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a()));
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    PlanNode& cur = nodes[n];
    const PlanNode& prev = nodes[n - 1];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    double delta = 0.0;
    if (dist < 1e-9) {
      delta = phys_idle_mah_s * dt;  // dwell
    } else {
      const double v_mid = 0.5 * (prev.speed_ms + cur.speed_ms);
      const double a = (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * dist);
      const double grade = route.grade_at(prev.position_m + 0.5 * dist);
      delta = ah_to_mah(as_to_ah(energy.current_a(v_mid, a, grade) * dt));
    }
    cur.energy_mah = prev.energy_mah + delta;
  }

  return DpSolution{PlannedProfile(std::move(nodes)), stats};
}

}  // namespace evvo::core
