#include "core/dp_solver.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/simd.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/dp_common.hpp"
#include "core/dp_extract.hpp"
#include "core/dp_replan.hpp"

namespace evvo::core {

namespace {

// Packing, pruning margin, and the route-content hash are shared with the
// reference solver (src/check) through dp_common.hpp.
using detail::hash_route;
using detail::kDwellFlag;
using detail::kNoPred;
using detail::kPruneMargin;
using detail::pack_pred;
using detail::pred_is_dwell;
using detail::pred_j;
using detail::pred_k;

constexpr float kInf = detail::kDpInf;

}  // namespace

void DpResolution::validate() const {
  if (ds_m <= 0.0 || dv_ms <= 0.0 || dt_s <= 0.0 || horizon_s <= 0.0)
    throw std::invalid_argument("DpResolution: all steps must be positive");
  if (horizon_s / dt_s > 1e6) throw std::invalid_argument("DpResolution: too many time bins");
}

void DpProblem::validate() const {
  if (!route || !energy) throw std::invalid_argument("DpProblem: route and energy model required");
  resolution.validate();
  penalty.validate();
}

void DpWorkspace::ensure_model_tables(const road::Route& route, const ev::EnergyModel& energy,
                                      const DpResolution& res, double lambda, double smoothness,
                                      double ds, std::size_t n_hops, std::size_t n_layers,
                                      std::size_t n_v) {
  ModelKey key;
  key.valid = true;
  key.energy = &energy;
  key.route_hash = hash_route(route);
  key.ds_m = res.ds_m;
  key.dv_ms = res.dv_ms;
  key.lambda = lambda;
  key.smoothness = smoothness;
  if (model_key_ == key) return;

  const ev::VehicleParams& vp = energy.params();
  const double a_min = vp.min_acceleration;
  const double a_max = vp.max_acceleration;

  // Feasible hops per source velocity level (kinematics are layer-independent).
  fwd_hops_.clear();
  fwd_begin_.assign(n_v + 1, 0);
  for (std::size_t j = 0; j < n_v; ++j) {
    fwd_begin_[j] = static_cast<std::uint32_t>(fwd_hops_.size());
    const double v = static_cast<double>(j) * res.dv_ms;
    for (std::size_t j2 = 0; j2 < n_v; ++j2) {
      const double v2 = static_cast<double>(j2) * res.dv_ms;
      const double v_mid = 0.5 * (v + v2);
      if (v_mid <= 1e-9) continue;  // no movement; dwells handle waiting
      const double a = (v2 * v2 - v * v) / (2.0 * ds);
      if (a < a_min - 1e-9 || a > a_max + 1e-9) continue;
      fwd_hops_.push_back(FwdHop{static_cast<std::uint32_t>(j2),
                                 static_cast<float>(ds / v_mid), static_cast<float>(a)});
    }
  }
  fwd_begin_[n_v] = static_cast<std::uint32_t>(fwd_hops_.size());

  // Reverse adjacency: hops grouped by destination level, sources ascending
  // (the gather loop must visit sources in the same order as the forward
  // sweep so equal-cost ties resolve to the same predecessor).
  std::vector<std::uint32_t> rev_count(n_v + 1, 0);
  for (const FwdHop& hop : fwd_hops_) ++rev_count[hop.j_to + 1];
  rev_begin_.assign(n_v + 1, 0);
  for (std::size_t j2 = 0; j2 < n_v; ++j2) rev_begin_[j2 + 1] = rev_begin_[j2] + rev_count[j2 + 1];
  rev_hops_.assign(fwd_hops_.size(), RevHop{});
  {
    std::vector<std::uint32_t> fill(rev_begin_.begin(), rev_begin_.end() - 1);
    for (std::size_t j = 0; j < n_v; ++j) {
      for (std::uint32_t h = fwd_begin_[j]; h < fwd_begin_[j + 1]; ++h) {
        const FwdHop& hop = fwd_hops_[h];
        rev_hops_[fill[hop.j_to]++] = RevHop{static_cast<std::uint32_t>(j), hop.dt};
      }
    }
  }

  // Flat, sorted grade-class table. Few grade values exist along a route, so
  // per-class cost tables are shared by all layers of that class.
  std::vector<long> layer_key(n_hops);
  std::vector<double> first_grade;  // representative grade per class (first layer encountered)
  std::vector<long> classes;
  for (std::size_t i = 0; i < n_hops; ++i) {
    const double s_mid = (static_cast<double>(i) + 0.5) * ds;
    layer_key[i] = std::lround(route.grade_at(s_mid) * 1e9);
  }
  classes = layer_key;
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  first_grade.assign(classes.size(), 0.0);
  std::vector<bool> seen(classes.size(), false);
  layer_class_.assign(n_hops, 0);
  for (std::size_t i = 0; i < n_hops; ++i) {
    const auto cls = static_cast<std::size_t>(
        std::lower_bound(classes.begin(), classes.end(), layer_key[i]) - classes.begin());
    layer_class_[i] = static_cast<std::uint32_t>(cls);
    if (!seen[cls]) {
      seen[cls] = true;
      first_grade[cls] = route.grade_at((static_cast<double>(i) + 0.5) * ds);
    }
  }

  // Transition energy [mAh] per (grade class, j, j2), plus the fused variant
  // with lambda*dt and the smoothness regularizer pre-added. The fused table
  // applies the same float-rounding sequence as the step-by-step inner loop,
  // so results are bit-identical to computing the terms per relaxation.
  const std::size_t table_size = n_v * n_v;
  grade_energy_.assign(classes.size() * table_size, kInf);
  grade_fused_.assign(classes.size() * table_size, kInf);
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    const double grade = first_grade[cls];
    float* energy_table = grade_energy_.data() + cls * table_size;
    float* fused_table = grade_fused_.data() + cls * table_size;
    for (std::size_t j = 0; j < n_v; ++j) {
      const double v = static_cast<double>(j) * res.dv_ms;
      for (std::uint32_t h = fwd_begin_[j]; h < fwd_begin_[j + 1]; ++h) {
        const FwdHop& hop = fwd_hops_[h];
        const double v2 = static_cast<double>(hop.j_to) * res.dv_ms;
        const double v_mid = 0.5 * (v + v2);
        const double mah =
            ah_to_mah(as_to_ah(
                energy.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(hop.accel), grade) *
                hop.dt));
        const auto raw = static_cast<float>(mah);
        float fused = raw;
        fused += static_cast<float>(lambda * hop.dt);
        fused += static_cast<float>(smoothness *
                                    std::abs(static_cast<double>(hop.j_to) - static_cast<double>(j)) *
                                    res.dv_ms);
        energy_table[j * n_v + hop.j_to] = raw;
        fused_table[j * n_v + hop.j_to] = fused;
      }
    }
  }

  // Per-layer speed cap (posted limit at the layer's position).
  layer_limit_.resize(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    layer_limit_[i] = route.speed_limit_at(static_cast<double>(i) * ds);
  }

  model_key_ = key;
}

namespace detail {

/// One solve over a workspace. Per layer, the live (velocity, time-bin)
/// cells are gathered into a compact source list (costs, times, window
/// membership, and packed backpointers precomputed) and only those are
/// relaxed; destination rows are lazily reset to +inf just before a stripe
/// relaxes into them, so no full-grid clear ever happens.
class DpEngine {
 public:
  DpEngine(const DpProblem& problem, DpWorkspace& ws, common::ThreadPool* pool)
      : problem_(problem), ws_(ws), pool_(pool), route_(*problem.route),
        energy_(*problem.energy), res_(problem.resolution) {}

  /// first_relax > 0 is the warm entry (core/dp_replan.hpp): the workspace
  /// must already hold a completed solve of a problem whose inputs to layers
  /// [0, first_relax] are unchanged, so the sweep resumes there instead of
  /// re-seeding layer 0. The caller (solve_dp_incremental) is responsible
  /// for that precondition; everything here stays bit-identical to a cold
  /// run because relax_layer(i) reads only layer i's table and the dwell
  /// re-expansion of an already-expanded layer is a strict-< no-op.
  std::optional<DpSolution> run(std::size_t first_relax);

  /// Checksum of the state tables a previous run left in `ws` (splice path:
  /// serving a cached solution to a caller that newly asks for checksums).
  static std::uint64_t table_checksum_of(const DpWorkspace& ws, std::size_t n_layers,
                                         std::size_t n_v, std::size_t n_t) {
    return detail::checksum_state_tables(n_layers, n_v, n_t, ws.cost_.data(), ws.time_.data(),
                                         ws.back_.data());
  }

 private:
  using Fwd = DpWorkspace::FwdHop;
  using Rev = DpWorkspace::RevHop;

  void reset_state();
  bool relax_layer(std::size_t i);  // false: layer empty, solve infeasible
  void relax_stripe(std::size_t i, std::size_t j2_begin, std::size_t j2_end, std::size_t stripe);
  std::optional<DpSolution> extract_solution();

  std::size_t cell_of(std::size_t j, std::size_t k) const { return j * n_t_ + k; }

  const DpProblem& problem_;
  DpWorkspace& ws_;
  common::ThreadPool* pool_;
  const road::Route& route_;
  const ev::EnergyModel& energy_;
  const DpResolution& res_;

  // Grid geometry.
  std::size_t n_hops_ = 0, n_layers_ = 0, n_v_ = 0, n_t_ = 0, layer_size_ = 0;
  double ds_ = 0.0;
  std::size_t j_source_ = 0, j_dest_ = 0;

  double lambda_ = 0.0, idle_mah_s_ = 0.0;
  float idle_step_cost_ = 0.0f;
  /// Vector relaxation kernel enabled (compiled backend has lanes AND the
  /// resolution asks for it). Either value is bit-identical (see header).
  bool use_simd_ = false;
  /// 1 / dt_s when dt_s is a power of two (incl. the default 1.0), else 0.
  /// Multiplying by an exact power-of-two reciprocal is bit-identical to the
  /// division and far cheaper in the time-binning hot path.
  double inv_dt_ = 0.0;
  /// Smallest float arrival time whose double-precision elapsed time reaches
  /// the horizon (see run()); lets the vector kernel do the horizon check as
  /// a single float compare.
  float over_thresh_f_ = std::numeric_limits<float>::infinity();
  std::vector<const LayerEvent*> event_at_;
  /// Last layer whose crossing is checked against enforced windows; states
  /// strictly past it face only time-independent costs, enabling dominance
  /// pruning. -1 when no window is enforced anywhere.
  std::ptrdiff_t last_window_layer_ = -1;
  std::vector<float> smooth_by_diff_;  ///< smoothness cost per |j2 - j|

  std::vector<std::size_t> stripe_relaxations_;
  DpStats stats_;
};

void DpEngine::reset_state() {
  // No grid-wide clear: each destination row is reset to +inf by the stripe
  // that relaxes into it, and time_/back_ are only ever read behind a finite
  // cost, so stale contents from earlier solves are unreachable.
  const std::size_t need = n_layers_ * layer_size_;
  ws_.cost_.grow_to(need);
  ws_.time_.grow_to(need);
  ws_.back_.grow_to(need);
}

std::optional<DpSolution> DpEngine::run(std::size_t first_relax) {
  // Cold solves (full sweep) and warm resumes (replan suffix) land in
  // separate histograms: their latency distributions differ by orders of
  // magnitude and a merged percentile would describe neither.
  static telemetry::Histogram& cold_hist = telemetry::histogram("dp.solve_cold_ns");
  static telemetry::Histogram& warm_hist = telemetry::histogram("dp.solve_warm_ns");
  const bool cold = first_relax == 0;
  const telemetry::TraceSpan solve_span(cold ? cold_hist : warm_hist,
                                        cold ? "dp.solve_cold" : "dp.solve_warm");

  // Any engine run - warm, cold, throwing, or infeasible - invalidates every
  // previous-solve snapshot other solvers hold against this workspace.
  ++ws_.solve_serial_;

  // Grid geometry. The distance step is adjusted so layers divide the route
  // length exactly.
  n_hops_ = static_cast<std::size_t>(std::max(1.0, std::round(route_.length() / res_.ds_m)));
  ds_ = route_.length() / static_cast<double>(n_hops_);
  n_layers_ = n_hops_ + 1;
  n_v_ = static_cast<std::size_t>(std::floor(route_.max_speed_limit() / res_.dv_ms)) + 1;
  n_t_ = static_cast<std::size_t>(std::ceil(res_.horizon_s / res_.dt_s)) + 1;
  layer_size_ = n_v_ * n_t_;
  if (n_v_ >= (1u << 11) || n_t_ >= (1u << 20))
    throw std::invalid_argument("solve_dp: grid too large for backpointer packing");

  // Per-layer event lookup.
  event_at_.assign(n_layers_, nullptr);
  last_window_layer_ = -1;
  for (const LayerEvent& e : problem_.events) {
    if (e.layer >= n_layers_) throw std::invalid_argument("solve_dp: event layer out of range");
    event_at_[e.layer] = &e;
    if (e.type == LayerEvent::Type::kSignal && e.enforce_windows) {
      last_window_layer_ = std::max(last_window_layer_, static_cast<std::ptrdiff_t>(e.layer));
    }
  }

  // Idle cost plus the explicit value of time (see DpProblem); both apply to
  // every second whether driving or waiting.
  lambda_ = problem_.time_weight_mah_per_s;
  idle_mah_s_ = ah_to_mah(as_to_ah(energy_.accessory_current_a())) + lambda_;
  idle_step_cost_ = static_cast<float>(idle_mah_s_ * res_.dt_s);

  int dt_exp = 0;
  inv_dt_ = std::frexp(res_.dt_s, &dt_exp) == 0.5 ? 1.0 / res_.dt_s : 0.0;

  use_simd_ = common::simd::kHasSimd && res_.simd;

  // Exact float image of the horizon test. The scalar relaxation checks
  // `(double)arrive - depart >= horizon`; that predicate is monotone in the
  // float `arrive`, so it equals `arrive >= T` for the smallest float T that
  // satisfies it. The vector kernel then tests the horizon with one float
  // compare and no widening, bit-identically. T is found by an exact
  // ulp-walk from the rounded seed (at most a few steps).
  {
    const double depart = problem_.depart_time.value();
    const double horizon = res_.horizon_s;
    const auto over = [&](float a) { return static_cast<double>(a) - depart >= horizon; };
    constexpr float kFInf = std::numeric_limits<float>::infinity();
    float t = static_cast<float>(horizon + depart);
    if (std::isnan(t)) t = kFInf;
    while (!over(t)) t = std::nextafterf(t, kFInf);
    for (float p = std::nextafterf(t, -kFInf); over(p); p = std::nextafterf(t, -kFInf)) t = p;
    over_thresh_f_ = t;
  }

  smooth_by_diff_.resize(n_v_);
  for (std::size_t d = 0; d < n_v_; ++d) {
    smooth_by_diff_[d] = static_cast<float>(problem_.smoothness_weight_mah_per_ms *
                                            static_cast<double>(d) * res_.dv_ms);
  }

  // Boundary velocity levels (Eq. 7d by default; replans may start moving).
  const auto snap_level = [&](double v) {
    const auto j = static_cast<std::size_t>(std::lround(v / res_.dv_ms));
    if (j >= n_v_) throw std::invalid_argument("solve_dp: boundary speed above the velocity grid");
    return j;
  };
  j_source_ = snap_level(problem_.initial_speed.value());
  j_dest_ = snap_level(problem_.final_speed.value());

  ws_.ensure_model_tables(route_, energy_, res_, problem_.time_weight_mah_per_s,
                          problem_.smoothness_weight_mah_per_ms, ds_, n_hops_, n_layers_, n_v_);
  reset_state();

  if (first_relax >= n_layers_) throw std::invalid_argument("solve_dp: first_relax out of range");

  // Source state at the departure time (layer 0 cleared in full: its source
  // scan visits every row). A warm run resumes mid-sweep: layers up to and
  // including first_relax already hold the previous solve's bits.
  if (first_relax == 0) {
    std::fill(ws_.cost_.data(), ws_.cost_.data() + layer_size_, kInf);
    const std::size_t id = cell_of(j_source_, 0);  // layer 0 base is 0
    ws_.cost_[id] = 0.0f;
    ws_.time_[id] = static_cast<float>(problem_.depart_time.value());
    ws_.back_[id] = kNoPred;
  }

  stats_ = DpStats{};
  stats_.layers = n_layers_;
  stats_.velocity_levels = n_v_;
  stats_.time_bins = n_t_;

  const std::size_t width = pool_ ? std::min<std::size_t>(pool_->thread_count(),
                                                          common::ThreadPool::resolve_threads(res_.threads))
                                  : 1;
  stripe_relaxations_.assign(std::max<std::size_t>(width, 1), 0);

  bool feasible = true;
  for (std::size_t i = first_relax; i + 1 < n_layers_; ++i) {
    if (!relax_layer(i)) {
      feasible = false;
      break;
    }
  }

  for (const std::size_t count : stripe_relaxations_) stats_.relaxations += count;

  // Fleet-level work counters (registry only, never DpStats: the stats struct
  // is part of the SIMD-vs-scalar bit-identity contract). Pushed even for
  // infeasible sweeps - the work was still done.
  static telemetry::Counter& relax_ctr = telemetry::counter("dp.relaxations");
  static telemetry::Counter& frontier_ctr = telemetry::counter("dp.frontier_states");
  static telemetry::Counter& pruned_ctr = telemetry::counter("dp.pruned_states");
  relax_ctr.add(static_cast<long>(stats_.relaxations));
  frontier_ctr.add(static_cast<long>(stats_.frontier_states));
  pruned_ctr.add(static_cast<long>(stats_.pruned_states));

  if (!feasible) return std::nullopt;
  if (problem_.checksum_tables) {
    // Every cell of every layer was initialized (layer 0 by the full fill,
    // later layers by the stripes' lazy row resets), so the finite-cell scan
    // never reads stale cost values.
    stats_.table_checksum = detail::checksum_state_tables(
        n_layers_, n_v_, n_t_, ws_.cost_.data(), ws_.time_.data(), ws_.back_.data());
  }
  return extract_solution();
}

bool DpEngine::relax_layer(std::size_t i) {
  const std::size_t base = i * layer_size_;
  const LayerEvent* event = event_at_[i];
  const bool is_sign = event && event->type == LayerEvent::Type::kStopSign;
  const bool is_signal = event && event->type == LayerEvent::Type::kSignal;
  float* layer_cost = ws_.cost_.data() + base;
  float* layer_time = ws_.time_.data() + base;

  // Dwell expansion: waiting in place at v = 0 (time bins ascending so
  // chains of waits propagate within the layer).
  for (std::size_t k = 0; k + 1 < n_t_; ++k) {
    if (layer_cost[k] >= kInf) continue;
    const float new_cost = layer_cost[k] + idle_step_cost_;
    if (new_cost < layer_cost[k + 1]) {
      layer_cost[k + 1] = new_cost;
      layer_time[k + 1] = layer_time[k] + static_cast<float>(res_.dt_s);
      ws_.back_[base + k + 1] = pack_pred(0, k, /*dwell=*/true);
    }
  }

  // Source gather: one row-major scan over the layer's live cells, emitting
  // compact per-source arrays (cost with the mandatory stop-sign charge
  // folded in, crossing time, window membership, packed backpointer) so the
  // relaxation below is pure sequential loads. The float additions mirror
  // the naive per-relaxation arithmetic exactly. Past the last enforced
  // window, dominated states are dropped during the same scan: continuous
  // times ascend with the bin inside a row, so a running minimum finds every
  // earlier-and-cheaper dominator. At a stop-sign layer only standstill
  // states may proceed, so the moving rows are dropped outright.
  const float dwell_f = is_sign ? static_cast<float>(event->dwell_s) : 0.0f;
  const float extra_f = is_sign ? static_cast<float>(idle_mah_s_ * event->dwell_s) : 0.0f;
  const bool check_windows = is_signal && event->enforce_windows;
  const bool prune =
      problem_.dominance_pruning && static_cast<std::ptrdiff_t>(i) > last_window_layer_;
  ws_.row_begin_.assign(n_v_ + 1, 0);
  const std::size_t j_end = is_sign ? 1 : n_v_;
  // Indexed writes into capacity-sized arrays instead of push_back: the
  // four size bumps per kept state are measurable at frontier scale, and the
  // window-membership column is only consulted by the relaxation when
  // check_windows is set, so ordinary layers skip writing it entirely.
  {
    const std::size_t cap = j_end * n_t_ + common::simd::VecF::kWidth;
    if (ws_.src_pred_.size() < cap) {
      ws_.src_pred_.resize(cap);
      ws_.src_cost_.resize(cap);
      ws_.src_time_.resize(cap);
      ws_.src_inside_.resize(cap);
    }
  }
  std::uint32_t* const out_pred = ws_.src_pred_.data();
  float* const out_cost = ws_.src_cost_.data();
  float* const out_time = ws_.src_time_.data();
  std::uint8_t* const out_inside = ws_.src_inside_.data();
  std::uint32_t n = 0;
  for (std::size_t j = 0; j < j_end; ++j) {
    ws_.row_begin_[j] = n;
    const float* row_cost = layer_cost + j * n_t_;
    const float* row_time = layer_time + j * n_t_;
    float row_min = kInf;
    const bool prune_row = prune && j >= 1;
    if (!check_windows && !is_sign) {
      // Hot variant: no dwell, no window membership; arithmetic is the
      // same `c0 + extra_f` (extra_f == 0 here) so table bits cannot move.
      for (std::size_t k = 0; k < n_t_; ++k) {
        const float c0 = row_cost[k];
        if (c0 >= kInf) continue;
        if (prune_row) {
          if (c0 > row_min + kPruneMargin) {
            ++stats_.pruned_states;
            continue;
          }
          row_min = std::min(row_min, c0);
        }
        out_pred[n] = pack_pred(j, k, /*dwell=*/false);
        out_cost[n] = c0 + extra_f;
        out_time[n] = row_time[k];
        ++n;
      }
      continue;
    }
    for (std::size_t k = 0; k < n_t_; ++k) {
      const float c0 = row_cost[k];
      if (c0 >= kInf) continue;
      if (prune_row) {
        if (c0 > row_min + kPruneMargin) {
          ++stats_.pruned_states;
          continue;
        }
        row_min = std::min(row_min, c0);
      }
      float t0 = row_time[k];
      if (is_sign) t0 += dwell_f;  // mandatory standstill before proceeding (Eq. 7c + dwell)
      out_pred[n] = pack_pred(j, k, /*dwell=*/false);
      out_cost[n] = c0 + extra_f;
      out_time[n] = t0;
      out_inside[n] =
          check_windows ? (in_any_window(event->windows, static_cast<double>(t0)) ? 1 : 0) : 1;
      ++n;
    }
  }
  for (std::size_t j = j_end; j <= n_v_; ++j) {
    ws_.row_begin_[j] = n;
  }
  const std::size_t n_src = n;
  stats_.frontier_states += n_src;
  // An empty layer can never be recovered from (later layers are fed only
  // from here), so the solve is infeasible and the sweep stops; stopping
  // before the stripes also keeps the next layer's rows from being read
  // uninitialized.
  if (n_src == 0) return false;

  // Sentinel padding: the vector kernel loads full VecF-width chunks, so the
  // last row's final chunk may read up to kWidth-1 entries past the list.
  // +inf times make those lanes permanently over-horizon (never scattered);
  // row_begin_ is already final, so no row sees them as sources. Appended
  // after the frontier stats so counters stay identical to the scalar build
  // (kWidth == 1 appends nothing).
  for (std::size_t p = 0; p + 1 < common::simd::VecF::kWidth; ++p) {
    out_pred[n] = 0;
    out_cost[n] = std::numeric_limits<float>::infinity();
    out_time[n] = std::numeric_limits<float>::infinity();
    out_inside[n] = 1;
    ++n;
  }

  // Gather relaxation into layer i+1 over destination-velocity stripes; each
  // stripe owns a disjoint range of destination rows (which it first resets
  // to +inf), so stripes never write the same cell and may run on any number
  // of threads.
  const std::size_t n_stripes =
      std::max<std::size_t>(1, std::min(stripe_relaxations_.size(), n_v_));
  const auto run_stripe = [&](std::size_t s) {
    const std::size_t j2_begin = s * n_v_ / n_stripes;
    const std::size_t j2_end = (s + 1) * n_v_ / n_stripes;
    relax_stripe(i, j2_begin, j2_end, s);
  };
  if (pool_ && n_stripes > 1) {
    pool_->parallel_for(n_stripes, run_stripe);
  } else {
    for (std::size_t s = 0; s < n_stripes; ++s) run_stripe(s);
  }
  return true;
}

void DpEngine::relax_stripe(std::size_t i, std::size_t j2_begin, std::size_t j2_end,
                            std::size_t stripe) {
  // Per-stripe wall time; runs on pool workers, so the histogram sees one
  // sample per (layer, stripe) and its spread exposes stripe imbalance.
  static telemetry::Histogram& stripe_hist = telemetry::histogram("dp.stripe_relax_ns");
  const telemetry::TraceSpan stripe_span(stripe_hist, "dp.stripe_relax");

  const LayerEvent* event = event_at_[i];
  const bool is_sign = event && event->type == LayerEvent::Type::kStopSign;
  const bool is_signal = event && event->type == LayerEvent::Type::kSignal;
  const bool check_windows = is_signal && event->enforce_windows;
  const LayerEvent* next_event = event_at_[i + 1];
  const bool next_is_sign = next_event && next_event->type == LayerEvent::Type::kStopSign;
  const bool next_is_dest = (i + 1 == n_layers_ - 1);
  const double next_limit = ws_.layer_limit_[i + 1];
  const double depart = problem_.depart_time.value();
  const double horizon = res_.horizon_s;
  const double dt_s = res_.dt_s;
  const double inv_dt = inv_dt_;
  const std::size_t table_base = static_cast<std::size_t>(ws_.layer_class_[i]) * n_v_ * n_v_;
  const float* energy_table = ws_.grade_energy_.data() + table_base;
  const float* fused_table = ws_.grade_fused_.data() + table_base;

  const std::size_t next_base = (i + 1) * layer_size_;
  float* cost = ws_.cost_.data() + next_base;
  float* time = ws_.time_.data() + next_base;
  std::uint32_t* back = ws_.back_.data() + next_base;
  std::size_t relaxations = 0;
  std::size_t simd_chunks = 0;       // vector iterations taken this stripe
  std::size_t simd_lanes_used = 0;   // lanes that survived the stop mask

  // Loop invariants of the vector kernel, hoisted: rows can be short, so
  // per-hop setup cost is visible. (Cheap no-ops on the scalar backend.)
  namespace sd = common::simd;
  constexpr auto W = static_cast<std::uint32_t>(sd::VecF::kWidth);
  constexpr auto Dw = static_cast<std::uint32_t>(sd::VecD::kWidth);
  constexpr unsigned full = (1u << W) - 1u;
  const bool vec_path = use_simd_ && !check_windows;
  const bool use_inv = inv_dt != 0.0;
  const sd::VecF v_thresh = sd::VecF::broadcast(over_thresh_f_);
  const sd::VecD v_depart = sd::VecD::broadcast(depart);
  const sd::VecD v_scale = sd::VecD::broadcast(use_inv ? inv_dt : dt_s);
  float arrive_buf[W];
  float cost_buf[W];
  std::int32_t k2_buf[2 * Dw];  // == W on vector backends; 2 on scalar (dead path)

  // Lazy reset: this stripe owns rows [j2_begin, j2_end) of layer i + 1, so
  // it clears exactly those before relaxing into them. (No memset: +inf is
  // not a repeated-byte pattern.)
  std::fill(cost + j2_begin * n_t_, cost + j2_end * n_t_, kInf);

  for (std::size_t j2 = j2_begin; j2 < j2_end; ++j2) {
    const double v2 = static_cast<double>(j2) * res_.dv_ms;
    if (v2 > next_limit + 1e-9) continue;
    if (next_is_sign && j2 != 0) continue;       // stop signs: arrive stopped
    if (next_is_dest && j2 != j_dest_) continue;  // terminal speed constraint
    for (std::uint32_t h = ws_.rev_begin_[j2]; h < ws_.rev_begin_[j2 + 1]; ++h) {
      const Rev hop = ws_.rev_hops_[h];
      const std::size_t j = hop.j_from;
      if (is_sign && j != 0) continue;  // stop signs are left from standstill
      const float fused = fused_table[j * n_v_ + j2];
      const float raw = energy_table[j * n_v_ + j2];
      const float lambda_dt = static_cast<float>(lambda_ * hop.dt);
      const float smooth_f =
          smooth_by_diff_[j2 >= j ? j2 - j : j - j2];
      if (vec_path) {
        // Vector relaxation, kWidth sources per step. Every arithmetic step
        // is the scalar sequence applied lane-wise (float add for the
        // arrival, the exact float image of the horizon test, widen-to-double
        // subtract for the elapsed time, the same *inv_dt-or-/dt binning,
        // float add for the candidate cost), and the strict-< scatter below
        // runs scalar in ascending source order, so tie-breaking, stats, and
        // tables match the scalar path bit for bit.
        const sd::VecF v_hop_dt = sd::VecF::broadcast(hop.dt);
        const sd::VecF v_fused = sd::VecF::broadcast(fused);
        float* crow = cost + j2 * n_t_;
        float* trow = time + j2 * n_t_;
        std::uint32_t* brow = back + j2 * n_t_;
        const std::uint32_t row_end = ws_.row_begin_[j + 1];
        for (std::uint32_t s = ws_.row_begin_[j]; s < row_end; s += W) {
          const auto n = std::min<std::uint32_t>(W, row_end - s);
          // Full-width loads are safe: the gather appended W-1 sentinels
          // past the last row, and interior rows are followed by real data.
          const sd::VecF arrive = sd::VecF::load(ws_.src_time_.data() + s) + v_hop_dt;
          const auto over = static_cast<unsigned>(sd::movemask(sd::cmp_ge(arrive, v_thresh)));
          const sd::VecD e_lo = sd::widen_low(arrive) - v_depart;
          const sd::VecD e_hi = sd::widen_high(arrive) - v_depart;
          const sd::VecD k_lo = use_inv ? e_lo * v_scale : e_lo / v_scale;
          const sd::VecD k_hi = use_inv ? e_hi * v_scale : e_hi / v_scale;
          sd::trunc_store_i32(k_lo, k2_buf);
          sd::trunc_store_i32(k_hi, k2_buf + Dw);
          (sd::VecF::load(ws_.src_cost_.data() + s) + v_fused).store(cost_buf);
          arrive.store(arrive_buf);
          // Lanes beyond the row (n < W) count as stopped; processing halts
          // at the first over-horizon or out-of-row lane, exactly where the
          // scalar `break` would (source times ascend within a row).
          const unsigned valid = n == W ? full : (1u << n) - 1u;
          const unsigned stop = ((over & valid) | ~valid) & full;
          const std::uint32_t n_ok =
              stop != 0 ? static_cast<std::uint32_t>(std::countr_zero(stop)) : W;
          for (std::uint32_t l = 0; l < n_ok; ++l) {
            const auto k2 = static_cast<std::size_t>(k2_buf[l]);
            const float new_cost = cost_buf[l];
            if (new_cost < crow[k2]) {
              crow[k2] = new_cost;
              trow[k2] = arrive_buf[l];
              brow[k2] = ws_.src_pred_[s + l];
            }
          }
          relaxations += n_ok;
          ++simd_chunks;
          simd_lanes_used += n_ok;
          if (n_ok < W) break;
        }
        continue;
      }
      for (std::uint32_t s = ws_.row_begin_[j]; s < ws_.row_begin_[j + 1]; ++s) {
        const float arrive_t = ws_.src_time_[s] + hop.dt;
        const double elapsed = static_cast<double>(arrive_t) - depart;
        // Source times ascend within a row, so the whole tail is over too.
        if (elapsed >= horizon) break;
        float hop_cost;
        if (check_windows) {
          // Signal crossing happens when leaving the signal's layer.
          hop_cost = static_cast<float>(penalized_cost(problem_.penalty,
                                                       static_cast<double>(raw),
                                                       ws_.src_inside_[s] != 0));
          if (!std::isfinite(hop_cost)) continue;
          hop_cost += lambda_dt;
          hop_cost += smooth_f;
        } else {
          hop_cost = fused;
        }
        const auto k2 = static_cast<std::size_t>(inv_dt != 0.0 ? elapsed * inv_dt
                                                               : elapsed / dt_s);
        const float new_cost = ws_.src_cost_[s] + hop_cost;
        const std::size_t to = j2 * n_t_ + k2;
        ++relaxations;
        if (new_cost < cost[to]) {
          cost[to] = new_cost;
          time[to] = arrive_t;
          back[to] = ws_.src_pred_[s];
        }
      }
    }
  }
  stripe_relaxations_[stripe] += relaxations;

  // Lane utilization = used / capacity. Local accumulation above keeps the
  // inner loop free of atomics; one add per stripe lands in the registry.
  if (simd_chunks != 0) {
    static telemetry::Counter& lanes_used_ctr = telemetry::counter("dp.simd_lanes_used");
    static telemetry::Counter& lanes_cap_ctr = telemetry::counter("dp.simd_lanes_capacity");
    lanes_used_ctr.add(static_cast<long>(simd_lanes_used));
    lanes_cap_ctr.add(static_cast<long>(simd_chunks * W));
  }
}

std::optional<DpSolution> DpEngine::extract_solution() {
  const float* cost = ws_.cost_.data();
  const float* time = ws_.time_.data();
  const std::uint32_t* back = ws_.back_.data();
  return detail::extract_dp_solution(
      route_, energy_, event_at_, problem_.events.size(), ds_, res_.dv_ms, n_layers_, n_t_,
      layer_size_, j_dest_, stats_, [cost](std::size_t id) { return cost[id]; },
      [time](std::size_t id) { return time[id]; }, [back](std::size_t id) { return back[id]; });
}

}  // namespace detail

std::optional<DpSolution> solve_dp(const DpProblem& problem) {
  DpWorkspace workspace;
  return solve_dp(problem, workspace, nullptr);
}

std::optional<DpSolution> solve_dp(const DpProblem& problem, DpWorkspace& workspace,
                                   common::ThreadPool* pool) {
  problem.validate();
  detail::DpEngine engine(problem, workspace, pool);
  return engine.run(0);
}

std::optional<DpSolution> solve_dp_incremental(const DpProblem& problem, DpPrevSolution& prev,
                                               DpWorkspace& workspace, common::ThreadPool* pool,
                                               DpReplanStats* replan_stats) {
  problem.validate();

  DpReplanStats local_stats;
  DpReplanStats& rs = replan_stats ? *replan_stats : local_stats;
  rs = DpReplanStats{};
  {
    const auto n_hops = static_cast<std::size_t>(
        std::max(1.0, std::round(problem.route->length() / problem.resolution.ds_m)));
    rs.total_layers = n_hops;  // a cold solve runs n_layers - 1 == n_hops relaxations
  }

  ReplanDelta delta;
  if (!prev.valid) {
    delta = ReplanDelta{ReplanDelta::Path::kCold, 0, "no previous solve"};
  } else if (prev.workspace_serial != workspace.solve_serial()) {
    delta = ReplanDelta{ReplanDelta::Path::kCold, 0, "workspace reused by another solve"};
  } else {
    delta = classify_replan(prev.key, prev.events, prev.dominance_pruning, problem);
  }

  // Outcome mix of the replan classifier; the ratio of splices to cold
  // fallbacks is the fleet-level health signal for warm-start effectiveness.
  static telemetry::Counter& spliced_ctr = telemetry::counter("dp.replan.spliced");
  static telemetry::Counter& stripes_ctr = telemetry::counter("dp.replan.stripes");
  static telemetry::Counter& cold_ctr = telemetry::counter("dp.replan.cold");
  (delta.path == ReplanDelta::Path::kSpliced ? spliced_ctr
   : delta.path == ReplanDelta::Path::kStripes ? stripes_ctr
                                               : cold_ctr)
      .add(1);

  if (delta.path == ReplanDelta::Path::kSpliced) {
    // Nothing the DP reads has changed: the cached solution IS the cold
    // solve's output (the solver is deterministic), and the workspace still
    // holds its tables (serial matched), so a newly requested checksum can
    // be computed from them without re-relaxing anything.
    DpSolution out = *prev.solution;
    if (problem.checksum_tables) {
      if (!prev.had_checksum) {
        const DpStats& st = prev.solution->stats;
        out.stats.table_checksum = detail::DpEngine::table_checksum_of(
            workspace, st.layers, st.velocity_levels, st.time_bins);
        prev.solution->stats.table_checksum = out.stats.table_checksum;
        prev.had_checksum = true;
      }
    } else {
      out.stats.table_checksum = 0;  // a cold no-checksum solve reports 0
    }
    rs.path = ReplanDelta::Path::kSpliced;
    rs.relaxed_layers = 0;
    return out;
  }

  const std::size_t first_relax =
      delta.path == ReplanDelta::Path::kStripes ? delta.first_relax : 0;
  detail::DpEngine engine(problem, workspace, pool);
  std::optional<DpSolution> out;
  try {
    out = engine.run(first_relax);
  } catch (...) {
    prev.reset();
    throw;
  }
  rs.path = delta.path;
  rs.first_relax = first_relax;
  rs.relaxed_layers = rs.total_layers - first_relax;
  rs.cold_reason = delta.path == ReplanDelta::Path::kCold ? delta.reason : "";
  if (!out.has_value()) {
    // Infeasible sweeps stop mid-suffix, leaving later layers stale; the
    // next solve over this workspace must start cold.
    prev.reset();
    return out;
  }
  prev.valid = true;
  prev.workspace_serial = workspace.solve_serial();
  prev.key = DpProblemKey::of(problem);
  prev.events = problem.events;
  prev.dominance_pruning = problem.dominance_pruning;
  prev.had_checksum = problem.checksum_tables;
  prev.solution = *out;
  return out;
}

}  // namespace evvo::core
