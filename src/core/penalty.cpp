#include "core/penalty.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace evvo::core {

void PenaltyConfig::validate() const {
  if (m <= 1.0) throw std::invalid_argument("PenaltyConfig: M must exceed 1");
  if (additive_mah <= 0.0) throw std::invalid_argument("PenaltyConfig: additive penalty must be positive");
  if (min_cost_mah < 0.0) throw std::invalid_argument("PenaltyConfig: penalty floor must be >= 0");
}

double penalized_cost(const PenaltyConfig& config, double cost_mah, bool inside_window) {
  if (inside_window) return cost_mah;
  switch (config.mode) {
    case PenaltyMode::kMultiplicative:
      // |cost| keeps regenerative (negative) transitions from being rewarded;
      // the floor keeps near-zero-energy crossings from dodging the penalty.
      return config.m * std::max(std::abs(cost_mah), config.min_cost_mah);
    case PenaltyMode::kAdditive:
      return cost_mah + config.additive_mah;
    case PenaltyMode::kHard:
      return std::numeric_limits<double>::infinity();
  }
  return cost_mah;  // unreachable
}

bool in_any_window(const std::vector<road::TimeWindow>& windows, double t) {
  return std::any_of(windows.begin(), windows.end(),
                     [t](const road::TimeWindow& w) { return w.contains(t); });
}

}  // namespace evvo::core
