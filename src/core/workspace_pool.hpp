// Free-list of DP solver contexts with warm-state affinity.
//
// A solver context is a DpWorkspace plus the DpPrevSolution snapshot of the
// last solve it ran (core/dp_replan.hpp): the pair is what makes a replan
// warm. A plain LIFO free-list defeats that pairing under interleaved
// traffic - vehicle A's replan would check out the workspace vehicle B just
// released, and both solves go cold. acquire() therefore prefers the most
// recently released entry whose affinity tag (the planner uses the route
// content hash of the problem about to be solved) matches, and falls back to
// LIFO only when nothing matches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/dp_replan.hpp"

namespace evvo::core {

class WorkspacePool {
 public:
  struct Entry {
    DpWorkspace workspace;
    DpPrevSolution prev;
    /// Caller-maintained tag of what this entry last solved; matched by
    /// acquire(). 0 = never used.
    std::uint64_t affinity = 0;
  };

  /// Checks an entry out of the pool: the most recently released entry
  /// tagged `affinity` if any, else the most recently released entry of any
  /// tag (LIFO keeps caches hot), else a fresh one. Never blocks on a solve.
  std::unique_ptr<Entry> acquire(std::uint64_t affinity) EVVO_EXCLUDES(free_mutex_);

  /// Batch checkout: `n` entries in one pool-lock acquisition (the batched
  /// solver checks out one workspace per compatibility group). Affinity
  /// matches are taken first (most recently released first), then LIFO, then
  /// fresh entries constructed outside the lock - the same preference order
  /// as n calls to acquire(), without n lock round-trips.
  std::vector<std::unique_ptr<Entry>> acquire_many(std::uint64_t affinity, std::size_t n)
      EVVO_EXCLUDES(free_mutex_);

  /// Returns an entry to the pool. The caller sets entry->affinity to the
  /// tag of the solve it just ran before releasing.
  void release(std::unique_ptr<Entry> entry) EVVO_EXCLUDES(free_mutex_);

  /// Entries currently idle in the pool (diagnostics/tests).
  std::size_t idle_count() const EVVO_EXCLUDES(free_mutex_);

 private:
  mutable common::Mutex free_mutex_{common::LockRank::kWorkspacePool};
  std::vector<std::unique_ptr<Entry>> free_ EVVO_GUARDED_BY(free_mutex_);  // back = most recent
};

}  // namespace evvo::core
