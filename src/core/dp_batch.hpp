// Batched structure-of-arrays multi-scenario DP (perf layer over
// core/dp_solver.hpp).
//
// A PlanService miss storm on one corridor produces many *compatible* solver
// runs: same route content, same grid resolution, same penalty/regularizer
// configuration - differing only in departure time, signal-window contents,
// boundary speeds, and checksum requests. Each standalone solve walks the
// same multi-megabyte state tables and the same reverse-hop adjacency; K
// compatible scenarios therefore re-read identical model data K times.
//
// solve_dp_batch() packs K = VecF::kWidth compatible scenarios into one
// sweep over the velocity grid. The state tables are lane-interleaved
// (element index = state_index * K + lane), so one vector load touches the
// same (layer, velocity, time-bin) cell of all K scenarios, and the gather /
// relax / scatter arithmetic of dp_solver.cpp runs lane-wise across
// *scenarios* instead of across source states. All vector ops go through
// common/simd.hpp; on the scalar backend K == 1 and the kernel degrades to
// the plain scalar solver.
//
// Identity contract: each lane's result is bit-identical to a standalone
// solve_dp() of the same problem - same float operation order per lane, same
// strict-< tie-breaks, same DpStats, same table checksum. The batched sweep
// achieves this by construction:
//  - the per-entry arithmetic (arrival add, horizon threshold compare,
//    widen-to-double binning, fused-cost add) is the scalar sequence applied
//    lane-wise, and every lane-varying input (departure, threshold, window
//    membership) is a per-lane vector lane;
//  - the union frontier visits cells in the same (j, k)-lex order as the
//    scalar gather, with a per-entry live-lane bitmask, so each lane sees
//    exactly its own source list in its own order;
//  - the scalar kernel's early `break` on over-horizon sources becomes a
//    per-row live-lane mask (source times ascend within a row, so a lane
//    that goes over is over for the rest of the row);
//  - the scatter performs masked compare-exchanges per destination bin in
//    ascending entry order, preserving the strict-< first-wins tie-break.
// The contract is enforced by src/check/batch_identity.hpp and the
// fuzz_batch_identity ctest / evvo_fuzz --batch mode.
//
// Grouping: requests are grouped by DpBatchKey (route content, grid shape,
// penalty config, event skeleton). Full K-size chunks of a group run the SoA
// sweep; ragged remainders fall back to the standalone solver per lane,
// reusing the group's workspace (the cached model tables are shared either
// way). Infeasible lanes are native to the sweep - a lane whose frontier
// empties simply freezes (its rows stay +inf, contributing no counts),
// exactly matching the standalone solver's early stop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dp_solver.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::core {

class WorkspacePool;

/// Lanes per SoA chunk (8 on AVX2, 4 on SSE2/NEON, 1 on the scalar backend).
std::size_t dp_batch_lanes();

/// Compatibility fingerprint: two problems may share a batched sweep iff
/// their keys compare equal. Everything that shapes the grid, the cached
/// model tables, or the shared control flow is in the key; departure time,
/// window *contents*, boundary speeds, and checksum requests are per-lane.
/// `resolution.threads` and `.simd` are excluded: they do not affect results
/// (bit-identical either way), so they must not split otherwise-identical
/// groups.
struct DpBatchKey {
  /// Per-event skeleton: layer placement, type, dwell, and whether windows
  /// are enforced must agree across lanes (they steer shared branches); the
  /// window lists themselves are free to differ.
  struct EventSkeleton {
    LayerEvent::Type type = LayerEvent::Type::kSignal;
    std::size_t layer = 0;
    double dwell_s = 0.0;
    bool enforce_windows = false;
    bool operator==(const EventSkeleton&) const = default;
  };

  std::uint64_t route_hash = 0;
  const void* energy = nullptr;
  double ds_m = 0.0, dv_ms = 0.0, dt_s = 0.0, horizon_s = 0.0;
  PenaltyMode penalty_mode = PenaltyMode::kMultiplicative;
  double penalty_m = 0.0, penalty_additive_mah = 0.0, penalty_min_cost_mah = 0.0;
  double smoothness = 0.0, time_weight = 0.0;
  bool dominance_pruning = true;
  std::vector<EventSkeleton> events;

  bool operator==(const DpBatchKey&) const = default;

  static DpBatchKey of(const DpProblem& problem);
};

/// Dispatch accounting for one solve_dp_batch() call (also pushed to the
/// dp.batch.* telemetry counters).
struct [[nodiscard]] DpBatchStats {
  std::size_t groups = 0;          ///< distinct DpBatchKey groups seen
  std::size_t batched_lanes = 0;   ///< scenarios solved by the SoA sweep
  std::size_t fallback_lanes = 0;  ///< ragged-remainder scenarios solved standalone
};

/// Solves every problem, batching compatible ones. Results are returned in
/// input order; std::nullopt marks an infeasible scenario, exactly as
/// solve_dp would have reported it. Workspaces are checked out of `pool`
/// (one per group, a single pool-lock acquisition for the whole batch) and
/// returned before this function exits, including on throw. `thread_pool`
/// parallelizes the per-layer relaxation stripes exactly as in solve_dp;
/// results are bit-identical at any thread count. Invalid problems throw
/// the same exceptions as solve_dp.
[[nodiscard]] std::vector<std::optional<DpSolution>> solve_dp_batch(
    std::span<const DpProblem> problems, WorkspacePool& pool,
    common::ThreadPool* thread_pool = nullptr, DpBatchStats* stats = nullptr);

}  // namespace evvo::core
