// Heuristic GLOSA (Green-Light Optimal Speed Advisory) baseline.
//
// The paper's related work compares against GLOSA-style advisories
// (Seredynski et al. [17]): instead of a global DP, the vehicle continuously
// adjusts a target speed so it arrives at the *next* signal inside a green
// window (optionally a queue-aware window). This is the classic reactive
// advisory; comparing it against the DP planner quantifies what global
// optimization buys over per-light greedy advice.
#pragma once

#include <functional>
#include <memory>

#include "common/units.hpp"
#include "road/corridor.hpp"
#include "traffic/queue_model.hpp"
#include "traffic/queue_predictor.hpp"

namespace evvo::core {

struct GlosaConfig {
  double min_advisory_ms = 4.0;   ///< never advise crawling below this
  double cruise_factor = 0.95;    ///< free-flow advisory as a fraction of the limit
  /// When true, the advisor targets zero-queue windows (queue-aware GLOSA);
  /// when false, raw green phases (classic GLOSA).
  bool queue_aware = false;
  traffic::VmParams vm{};
};

/// Stateless per-step advisory speed: given the vehicle's position and the
/// current time, the speed that reaches the next signal inside the next
/// attainable window. Usable directly as a sim::TargetSpeedFn.
class GlosaAdvisor {
 public:
  GlosaAdvisor(road::Corridor corridor, GlosaConfig config,
               std::shared_ptr<const traffic::ArrivalRateProvider> arrivals = nullptr);

  /// Advisory speed [m/s] at (position, time).
  double advise(Meters position, Seconds time) const;

  /// Adapter for sim::execute_planned_profile (raw SI doubles by contract).
  std::function<double(double, double)> target_speed_fn() const;

 private:
  /// The next light strictly ahead of `position`, or nullptr.
  const road::TrafficLight* next_light(Meters position) const;

  /// Windows for one light over [t0, t1] under the configured mode.
  std::vector<road::TimeWindow> windows_for(const road::TrafficLight& light, double t0,
                                            double t1) const;

  road::Corridor corridor_;
  GlosaConfig config_;
  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals_;
};

}  // namespace evvo::core
