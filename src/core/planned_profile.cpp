#include "core/planned_profile.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/math_util.hpp"

namespace evvo::core {

PlannedProfile::PlannedProfile(std::vector<PlanNode> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.size() < 2) throw std::invalid_argument("PlannedProfile: needs at least two nodes");
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].position_m < nodes_[i - 1].position_m - 1e-9)
      throw std::invalid_argument("PlannedProfile: positions must be nondecreasing");
    if (nodes_[i].time_s < nodes_[i - 1].time_s - 1e-9)
      throw std::invalid_argument("PlannedProfile: times must be nondecreasing");
  }
}

double PlannedProfile::speed_at_position(double s) const {
  if (s <= nodes_.front().position_m) return nodes_.front().speed_ms;
  if (s >= nodes_.back().position_m) return nodes_.back().speed_ms;
  // Find the first node at or beyond s; interpolate on the moving segment
  // ending there (dwell nodes share a position, so use the last node at the
  // segment's start).
  std::size_t hi = 1;
  while (hi < nodes_.size() && nodes_[hi].position_m < s) ++hi;
  const PlanNode& b = nodes_[hi];
  const PlanNode& a = nodes_[hi - 1];  // last node at the segment start (dwells share positions)
  const double ds = b.position_m - a.position_m;
  if (ds <= 1e-12) return b.speed_ms;
  // Constant acceleration over distance: v(s)^2 = v_a^2 + (v_b^2 - v_a^2) * x.
  const double x = (s - a.position_m) / ds;
  const double v2 = a.speed_ms * a.speed_ms + (b.speed_ms * b.speed_ms - a.speed_ms * a.speed_ms) * x;
  return std::sqrt(std::max(0.0, v2));
}

double PlannedProfile::time_at_position(double s) const {
  if (s <= nodes_.front().position_m) return nodes_.front().time_s;
  if (s >= nodes_.back().position_m) return nodes_.back().time_s;
  std::size_t hi = 1;
  while (hi < nodes_.size() && nodes_[hi].position_m < s) ++hi;
  const PlanNode& a = nodes_[hi - 1];
  const PlanNode& b = nodes_[hi];
  const double ds = b.position_m - a.position_m;
  if (ds <= 1e-12) return a.time_s;
  const double v_mid = 0.5 * (a.speed_ms + speed_at_position(s));
  if (v_mid <= 1e-9) return a.time_s;
  return a.time_s + (s - a.position_m) / std::max(v_mid, 0.1);
}

double PlannedProfile::departure_time_at(double s) const {
  // The last node lying at (or within a whisker of) position s marks the end
  // of any dwell there.
  double depart = -1.0;
  for (const PlanNode& node : nodes_) {
    if (std::abs(node.position_m - s) <= 1e-6) depart = node.time_s;
    if (node.position_m > s + 1e-6) break;
  }
  return depart >= 0.0 ? depart : time_at_position(s);
}

double PlannedProfile::dwell_time() const {
  double total = 0.0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].position_m - nodes_[i - 1].position_m < 1e-9) {
      total += nodes_[i].time_s - nodes_[i - 1].time_s;
    }
  }
  return total;
}

int PlannedProfile::planned_stops() const {
  int stops = 0;
  bool in_dwell = false;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const bool dwell = nodes_[i].position_m - nodes_[i - 1].position_m < 1e-9 &&
                       nodes_[i].time_s > nodes_[i - 1].time_s + 1e-9;
    if (dwell && !in_dwell && i > 1) ++stops;  // leading dwell at the source is departure idling
    in_dwell = dwell;
  }
  return stops;
}

ev::DriveCycle PlannedProfile::to_drive_cycle(double dt_s) const {
  if (dt_s <= 0.0) throw std::invalid_argument("PlannedProfile::to_drive_cycle: dt must be positive");
  std::vector<double> speeds;
  const double t0 = depart_time();
  const double t1 = arrival_time();
  std::size_t seg = 0;
  for (double t = t0; t <= t1 + 1e-9; t += dt_s) {
    while (seg + 1 < nodes_.size() && nodes_[seg + 1].time_s < t) ++seg;
    if (seg + 1 >= nodes_.size()) {
      speeds.push_back(nodes_.back().speed_ms);
      continue;
    }
    const PlanNode& a = nodes_[seg];
    const PlanNode& b = nodes_[seg + 1];
    const double span = b.time_s - a.time_s;
    const double frac = span > 1e-12 ? clamp((t - a.time_s) / span, 0.0, 1.0) : 1.0;
    speeds.push_back(lerp(a.speed_ms, b.speed_ms, frac));
  }
  return ev::DriveCycle(std::move(speeds), dt_s);
}

PlannedProfile PlannedProfile::shifted(double position_offset_m) const {
  std::vector<PlanNode> nodes = nodes_;
  for (PlanNode& node : nodes) node.position_m += position_offset_m;
  return PlannedProfile(std::move(nodes));
}

PlannedProfile PlannedProfile::time_shifted(double time_offset_s) const {
  std::vector<PlanNode> nodes = nodes_;
  for (PlanNode& node : nodes) node.time_s += time_offset_s;
  return PlannedProfile(std::move(nodes));
}

std::function<double(double, double)> PlannedProfile::target_speed_fn() const {
  // Copy the nodes so the callable outlives the profile if needed.
  const auto self = std::make_shared<PlannedProfile>(*this);
  return [self](double position, double /*time*/) { return self->speed_at_position(position); };
}

}  // namespace evvo::core
