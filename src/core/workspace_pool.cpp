#include "core/workspace_pool.hpp"

#include <algorithm>

#include "common/telemetry.hpp"

namespace evvo::core {

namespace {

// Checkout outcomes: affinity hits keep replans warm, LIFO reuses keep
// allocations amortized, fresh allocations mean the pool is undersized.
telemetry::Counter& affinity_hits_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.affinity_hits");
  return c;
}
telemetry::Counter& lifo_reuses_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.lifo_reuses");
  return c;
}
telemetry::Counter& fresh_allocs_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.fresh_allocs");
  return c;
}

}  // namespace

std::unique_ptr<WorkspacePool::Entry> WorkspacePool::acquire(std::uint64_t affinity) {
  {
    common::MutexLock lock(free_mutex_);
    if (!free_.empty()) {
      // Most recently released first, so ties go to the warmest entry.
      for (std::size_t i = free_.size(); i-- > 0;) {
        if (free_[i]->affinity == affinity) {
          std::unique_ptr<Entry> entry = std::move(free_[i]);
          free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
          affinity_hits_ctr().add(1);
          return entry;
        }
      }
      std::unique_ptr<Entry> entry = std::move(free_.back());
      free_.pop_back();
      lifo_reuses_ctr().add(1);
      return entry;
    }
  }
  fresh_allocs_ctr().add(1);
  return std::make_unique<Entry>();
}

void WorkspacePool::release(std::unique_ptr<Entry> entry) {
  common::MutexLock lock(free_mutex_);
  free_.push_back(std::move(entry));
}

std::size_t WorkspacePool::idle_count() const {
  common::MutexLock lock(free_mutex_);
  return free_.size();
}

}  // namespace evvo::core
