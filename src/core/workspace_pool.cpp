#include "core/workspace_pool.hpp"

#include <algorithm>

#include "common/telemetry.hpp"

namespace evvo::core {

namespace {

// Checkout outcomes: affinity hits keep replans warm, LIFO reuses keep
// allocations amortized, fresh allocations mean the pool is undersized.
telemetry::Counter& affinity_hits_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.affinity_hits");
  return c;
}
telemetry::Counter& lifo_reuses_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.lifo_reuses");
  return c;
}
telemetry::Counter& fresh_allocs_ctr() {
  static telemetry::Counter& c = telemetry::counter("dp.pool.fresh_allocs");
  return c;
}

}  // namespace

std::unique_ptr<WorkspacePool::Entry> WorkspacePool::acquire(std::uint64_t affinity) {
  {
    common::MutexLock lock(free_mutex_);
    if (!free_.empty()) {
      // Most recently released first, so ties go to the warmest entry.
      for (std::size_t i = free_.size(); i-- > 0;) {
        if (free_[i]->affinity == affinity) {
          std::unique_ptr<Entry> entry = std::move(free_[i]);
          free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
          affinity_hits_ctr().add(1);
          return entry;
        }
      }
      std::unique_ptr<Entry> entry = std::move(free_.back());
      free_.pop_back();
      lifo_reuses_ctr().add(1);
      return entry;
    }
  }
  fresh_allocs_ctr().add(1);
  return std::make_unique<Entry>();
}

std::vector<std::unique_ptr<WorkspacePool::Entry>> WorkspacePool::acquire_many(
    std::uint64_t affinity, std::size_t n) {
  std::vector<std::unique_ptr<Entry>> out;
  out.reserve(n);
  std::size_t affinity_hits = 0;
  std::size_t lifo_reuses = 0;
  {
    common::MutexLock lock(free_mutex_);
    for (std::size_t i = free_.size(); i-- > 0 && out.size() < n;) {
      if (free_[i]->affinity == affinity) {
        out.push_back(std::move(free_[i]));
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        ++affinity_hits;
      }
    }
    while (out.size() < n && !free_.empty()) {
      out.push_back(std::move(free_.back()));
      free_.pop_back();
      ++lifo_reuses;
    }
  }
  if (affinity_hits != 0) affinity_hits_ctr().add(static_cast<long>(affinity_hits));
  if (lifo_reuses != 0) lifo_reuses_ctr().add(static_cast<long>(lifo_reuses));
  if (out.size() < n) fresh_allocs_ctr().add(static_cast<long>(n - out.size()));
  while (out.size() < n) out.push_back(std::make_unique<Entry>());
  return out;
}

void WorkspacePool::release(std::unique_ptr<Entry> entry) {
  common::MutexLock lock(free_mutex_);
  free_.push_back(std::move(entry));
}

std::size_t WorkspacePool::idle_count() const {
  common::MutexLock lock(free_mutex_);
  return free_.size();
}

}  // namespace evvo::core
