#include "core/workspace_pool.hpp"

#include <algorithm>

namespace evvo::core {

std::unique_ptr<WorkspacePool::Entry> WorkspacePool::acquire(std::uint64_t affinity) {
  {
    common::MutexLock lock(free_mutex_);
    if (!free_.empty()) {
      // Most recently released first, so ties go to the warmest entry.
      for (std::size_t i = free_.size(); i-- > 0;) {
        if (free_[i]->affinity == affinity) {
          std::unique_ptr<Entry> entry = std::move(free_[i]);
          free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
          return entry;
        }
      }
      std::unique_ptr<Entry> entry = std::move(free_.back());
      free_.pop_back();
      return entry;
    }
  }
  return std::make_unique<Entry>();
}

void WorkspacePool::release(std::unique_ptr<Entry> entry) {
  common::MutexLock lock(free_mutex_);
  free_.push_back(std::move(entry));
}

std::size_t WorkspacePool::idle_count() const {
  common::MutexLock lock(free_mutex_);
  return free_.size();
}

}  // namespace evvo::core
