// The optimizer's output: an optimal velocity profile over a route,
// v*(s_i) with arrival times and per-transition energy (paper Eq. 8).
#pragma once

#include <functional>
#include <vector>

#include "ev/drive_cycle.hpp"

namespace evvo::core {

/// One grid point of the plan. Consecutive nodes with the same position and
/// zero velocity represent waiting (dwell) at that point.
struct PlanNode {
  double position_m = 0.0;
  double speed_ms = 0.0;
  double time_s = 0.0;        ///< absolute arrival time at this node
  double energy_mah = 0.0;    ///< cumulative charge consumed up to this node
};

/// A planned velocity profile: monotone in time, piecewise-constant
/// acceleration between nodes, possibly with dwells at stop points.
class PlannedProfile {
 public:
  explicit PlannedProfile(std::vector<PlanNode> nodes);

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  double depart_time() const { return nodes_.front().time_s; }
  double arrival_time() const { return nodes_.back().time_s; }
  double trip_time() const { return arrival_time() - depart_time(); }
  double total_energy_mah() const { return nodes_.back().energy_mah; }
  double length() const { return nodes_.back().position_m - nodes_.front().position_m; }

  /// Planned speed at position s [m/s] (within-dwell positions report 0).
  double speed_at_position(double s) const;

  /// Absolute time at which the plan reaches position s (first arrival).
  double time_at_position(double s) const;

  /// Absolute time at which the plan *leaves* position s: equals
  /// time_at_position(s) except at dwell points (stop lines), where it is the
  /// end of the wait - the signal-crossing time the Eq. (11) windows test.
  double departure_time_at(double s) const;

  /// Total time spent dwelling (v = 0 while position holds still) [s].
  double dwell_time() const;

  /// Number of planned stops (dwell episodes).
  int planned_stops() const;

  /// Expands the plan into a fixed-step time-domain cycle (for the energy
  /// evaluator and the Fig. 6-8 series). Sampling starts at depart_time().
  ev::DriveCycle to_drive_cycle(double dt_s) const;

  /// Callable (position, time) -> target speed for the TraCI executor.
  std::function<double(double, double)> target_speed_fn() const;

  /// A copy with every position shifted by `position_offset_m` (used to map a
  /// replanned suffix back into the original corridor's coordinates).
  PlannedProfile shifted(double position_offset_m) const;

  /// A copy with every node time shifted by `time_offset_s` (serving a cached
  /// plan at a departure time congruent modulo the signals' hyperperiod).
  PlannedProfile time_shifted(double time_offset_s) const;

 private:
  std::vector<PlanNode> nodes_;
};

}  // namespace evvo::core
