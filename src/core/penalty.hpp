// The zero-queue arrival penalty of paper Eq. (11)-(12).
//
// The paper multiplies the transition energy by a large constant M when the
// arrival time at a signal misses the zero-queue window T_q. A literal
// multiplication misbehaves when the transition energy is negative (regen):
// M * zeta would then *reward* missing the window. The default mode therefore
// multiplies the magnitude; additive and hard-constraint modes are provided
// for the ablation bench.
#pragma once

#include <vector>

#include "road/signals.hpp"

namespace evvo::core {

enum class PenaltyMode {
  kMultiplicative,  ///< paper Eq. (12), applied to |cost|
  kAdditive,        ///< fixed charge added per out-of-window crossing
  kHard,            ///< out-of-window crossings are infeasible (+inf)
};

struct PenaltyConfig {
  PenaltyMode mode = PenaltyMode::kMultiplicative;
  double m = 1000.0;            ///< the paper's large constant M
  double additive_mah = 500.0;  ///< used by kAdditive
  /// Floor on the magnitude the multiplicative penalty scales. Without it the
  /// optimizer can "game" M * |zeta| by crossing with a transition whose
  /// traction energy cancels the accessory draw (net ~0), making the penalty
  /// vanish; the floor makes every out-of-window crossing cost at least
  /// m * min_cost_mah.
  double min_cost_mah = 1.0;

  void validate() const;
};

/// Eq. (11)-(12): cost of a signal-crossing transition with base energy
/// `cost_mah`, given whether the crossing time lies in T_q. Returns +inf in
/// hard mode when outside.
double penalized_cost(const PenaltyConfig& config, double cost_mah, bool inside_window);

/// Is t inside any window of the set? (T_q membership test.)
bool in_any_window(const std::vector<road::TimeWindow>& windows, double t);

}  // namespace evvo::core
