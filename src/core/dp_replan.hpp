// Incremental warm-start layer over the time-expanded DP (rolling-horizon
// replanning).
//
// A fleet replans every few seconds, and consecutive solves of one corridor
// differ only slightly: a queue prediction update shifts a handful of T_q
// windows, or the vehicle advances along its own plan. The solver's forward
// relaxation is layer-local - relax_layer(i) reads only layer i's table and
// the events at layers i and i+1 - so when every input that feeds layers
// [0, E) is unchanged, those layers' cost/time/backpointer tables from the
// previous solve are bit-identical to what a cold solve would recompute, and
// the sweep may resume at the first dirty layer E over the pooled
// DpWorkspace tables ("dirty-stripe" re-relaxation; stripes are the
// distance-layer rows of the time-expanded grid).
//
// The warm path is exact, not approximate: solve_dp_incremental() produces
// the same table checksum, optimal cost, and profile bytes as solve_dp() on
// the same problem, for every classification it makes. Anything it cannot
// prove bit-identical (changed start state, rolled horizon, different route,
// a clobbered workspace) degrades to a cold solve over the same workspace.
// The --replan fuzz chains (src/check/replan_chain.hpp) replay perturbation
// sequences and assert warm == cold per step.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dp_solver.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::core {

/// Scalar fingerprint of everything - besides the per-layer events and the
/// pruning flag, which are diffed separately - that feeds the DP tables.
/// Deliberately excluded: resolution.threads and resolution.simd (any value
/// is bit-identical, see DpResolution) and checksum_tables (a read-only scan).
/// The route is captured by content hash, not address: replans solve
/// short-lived suffix routes whose stack addresses recur.
struct DpProblemKey {
  std::uint64_t route_hash = 0;
  const void* energy = nullptr;
  double route_length_m = 0.0;
  double depart_time_s = 0.0;
  double ds_m = 0.0;
  double dv_ms = 0.0;
  double dt_s = 0.0;
  double horizon_s = 0.0;
  double initial_speed_ms = 0.0;
  double final_speed_ms = 0.0;
  double smoothness_weight = 0.0;
  double time_weight = 0.0;
  int penalty_mode = 0;
  double penalty_m = 0.0;
  double penalty_additive_mah = 0.0;
  double penalty_min_cost_mah = 0.0;

  bool operator==(const DpProblemKey&) const = default;

  static DpProblemKey of(const DpProblem& problem);
};

/// How a warm solve may proceed relative to the previous one.
struct ReplanDelta {
  enum class Path {
    kSpliced,  ///< nothing dirty: the previous solution is returned verbatim
    kStripes,  ///< re-relax layers [first_relax, n_layers-1), reuse the prefix
    kCold,     ///< full solve (fingerprint changed or no usable warm state)
  };
  Path path = Path::kCold;
  std::size_t first_relax = 0;  ///< kStripes: first dirty relaxation index
  const char* reason = "";      ///< kCold: why warm start was not possible
};

/// The dirty-stripe frontier rule: the first relaxation index whose inputs
/// differ between the two event lists (with `n_layers` grid layers), or
/// std::nullopt when no relaxation can differ (empty frontier - the edit was
/// a no-op as far as the DP is concerned, e.g. identical windows re-sent, or
/// windows changed on a signal that does not enforce them).
///
/// Per relaxation index i in [0, n_layers-1), relax_layer(i) reads
///  - the full event view at layer i (presence, type, dwell, enforce flag,
///    and the windows iff enforced), so any view change at layer L dirties
///    index L;
///  - only "is there a stop sign" at layer i+1, so a stop-sign
///    appearance/disappearance at layer L additionally dirties index L-1;
///  - the dominance-pruning predicate `pruning && i > last enforced window
///    layer`, so a pruning toggle or a change of the last enforced layer
///    dirties the first index where the predicate flips.
/// The affected set is always the contiguous suffix [E, n_layers-1): layer
/// E+1's table is written by relaxation E, which makes every later
/// relaxation's input potentially dirty.
std::optional<std::size_t> first_dirty_relax(const std::vector<LayerEvent>& prev_events,
                                             const std::vector<LayerEvent>& next_events,
                                             std::size_t n_layers, bool prev_pruning,
                                             bool next_pruning);

/// Classifies `next` against the previous solve's key + events. kStripes is
/// only returned with 0 < first_relax < n_layers - 1; an edit reaching
/// relaxation 0 is reported as kCold (re-relaxing everything IS the cold
/// solve), and a fingerprint mismatch of any scalar (start state, depart
/// time, horizon, route, weights, ...) is kCold by definition - those change
/// the float sums in every layer, so no table prefix can be reused exactly.
ReplanDelta classify_replan(const DpProblemKey& prev_key,
                            const std::vector<LayerEvent>& prev_events, bool prev_pruning,
                            const DpProblem& next);

/// Snapshot of the last solve run over a particular workspace; the caller
/// keeps it alongside the workspace (VelocityPlanner pools them together)
/// and passes both back on the next solve. All fields are managed by
/// solve_dp_incremental().
struct [[nodiscard]] DpPrevSolution {
  bool valid = false;
  /// DpWorkspace::solve_serial() observed right after the recorded solve;
  /// a mismatch means another solve used the workspace in between and the
  /// tables no longer hold this solution (cold fallback).
  std::uint64_t workspace_serial = 0;
  DpProblemKey key{};
  std::vector<LayerEvent> events;
  bool dominance_pruning = true;
  bool had_checksum = false;
  /// Engaged exactly when `valid` (PlannedProfile has no empty state).
  std::optional<DpSolution> solution;

  void reset() { *this = DpPrevSolution{}; }
};

/// Diagnostics of one incremental solve (how much work was skipped).
struct [[nodiscard]] DpReplanStats {
  ReplanDelta::Path path = ReplanDelta::Path::kCold;
  std::size_t first_relax = 0;     ///< first executed relaxation (kStripes)
  std::size_t relaxed_layers = 0;  ///< layer relaxations actually run
  std::size_t total_layers = 0;    ///< layer relaxations a cold solve runs
  const char* cold_reason = "";    ///< why the solve went cold (kCold only)
};

/// solve_dp with warm-start: classifies `problem` against `prev` (the last
/// solve over `workspace`), then splices, re-relaxes the dirty suffix, or
/// solves cold - whichever is cheapest while staying bit-identical to
/// solve_dp(problem) in table checksum, cost, stats geometry, and profile.
/// Updates `prev` to describe this solve (or resets it when the solve is
/// infeasible or throws). DpStats counters (relaxations, frontier_states,
/// pruned_states) cover only the work actually executed on the kStripes
/// path; everything a caller can observe through the solution itself is
/// exact.
[[nodiscard]] std::optional<DpSolution> solve_dp_incremental(const DpProblem& problem,
                                                             DpPrevSolution& prev,
                                                             DpWorkspace& workspace,
                                                             common::ThreadPool* pool = nullptr,
                                                             DpReplanStats* replan_stats = nullptr);

}  // namespace evvo::core
