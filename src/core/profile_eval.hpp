// Uniform evaluation of velocity profiles (planned, human, or simulator-
// derived) so every bar in Fig. 7(b) and every curve in Fig. 8 is accounted
// with the same energy model over the same road.
#pragma once

#include "ev/drive_cycle.hpp"
#include "ev/energy_model.hpp"
#include "road/route.hpp"

namespace evvo::core {

struct [[nodiscard]] ProfileEvaluation {
  ev::TripEnergy energy;
  double trip_time_s = 0.0;
  double distance_m = 0.0;
  double max_speed_ms = 0.0;
  int stops = 0;
};

/// Evaluates a time-domain cycle over a route (grade-aware).
ProfileEvaluation evaluate_cycle(const ev::EnergyModel& model, const road::Route& route,
                                 const ev::DriveCycle& cycle);

/// Percentage saving of `candidate` relative to `baseline` (positive = candidate better).
double percent_saving(double baseline, double candidate);

}  // namespace evvo::core
