// High-level velocity-optimization facade: corridor + energy model +
// signal policy -> optimal velocity profile.
//
// Three signal policies implement the paper's three planners:
//  - kQueueAware   : the proposed method (T_q from the QL model, Eq. 11-12)
//  - kGreenWindow  : the "current DP" baseline [2] (green phases assumed
//                    queue-free, i.e. vehicles pass the instant the light is
//                    green)
//  - kIgnoreSignals: classic stop-sign-only DP (lower bound / ablation)
#pragma once

#include <memory>
#include <span>

#include "common/units.hpp"
#include "core/dp_solver.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"
#include "traffic/queue_model.hpp"
#include "traffic/queue_predictor.hpp"

namespace evvo::core {

enum class SignalPolicy {
  kQueueAware,
  kGreenWindow,
  kIgnoreSignals,
};

const char* signal_policy_name(SignalPolicy policy);

/// One job of a batched solve (VelocityPlanner::plan_batch): either a full
/// trip departing at `depart_time_s` or a mid-route replan from
/// (`position_m`, `speed_ms`) at that time.
struct PlanJob {
  bool replan = false;
  double depart_time_s = 0.0;
  double position_m = 0.0;  ///< replan only: corridor coordinate
  double speed_ms = 0.0;    ///< replan only: current speed
};

/// Per-job outcome of plan_batch: exactly one of `profile`/`error` is set.
/// `error` carries what the corresponding plan()/replan() call would have
/// thrown (invalid position, infeasible horizon, ...).
struct [[nodiscard]] PlanBatchResult {
  std::optional<PlannedProfile> profile;
  std::exception_ptr error;
};

struct PlannerConfig {
  DpResolution resolution{};
  PenaltyConfig penalty{};
  SignalPolicy policy = SignalPolicy::kQueueAware;
  traffic::VmParams vm{};  ///< QL/VM parameters for queue-aware planning
  traffic::DischargeModel discharge = traffic::DischargeModel::kVmAcceleration;
  /// Value of trip time (see DpProblem::time_weight_mah_per_s). The default
  /// is calibrated so the optimal profile's trip time matches the paper's
  /// fast-driving trip time on the US-25 corridor; 0 = pure energy.
  double time_weight_mah_per_s = 5.0;
  /// Safety margin carved off each predicted window: the start is pushed
  /// later (queue-clearance prediction error) and the end pulled earlier
  /// (don't cross at the instant the light flips). Windows that vanish are
  /// dropped.
  double window_start_margin_s = 2.0;
  double window_end_margin_s = 4.0;
  /// Smoothness tie-breaker (see DpProblem::smoothness_weight_mah_per_ms).
  double smoothness_weight_mah_per_ms = 0.3;
  /// Dominance pruning toggle (see DpProblem::dominance_pruning).
  bool dominance_pruning = true;
};

/// The planner owns a small runtime shared by all copies of itself: a
/// free-list of DpWorkspace (so repeated plans reuse the solver's state
/// tables and cached cost model instead of reallocating ~tens of MB per
/// call) and one lazily created thread pool sized from
/// config.resolution.threads. plan()/replan() are safe to call concurrently;
/// each call checks a workspace out of the free list for its duration.
class VelocityPlanner {
 public:
  VelocityPlanner(road::Corridor corridor, ev::EnergyModel energy, PlannerConfig config = {});

  const road::Corridor& corridor() const { return corridor_; }
  const ev::EnergyModel& energy_model() const { return energy_; }
  const PlannerConfig& config() const { return config_; }

  /// The regulatory events (with predicted T_q windows under the configured
  /// policy) for a trip departing at `depart_time_s`. Exposed so experiments
  /// can inspect the windows the optimizer targets. `arrivals` feeds the QL
  /// model and is required for kQueueAware.
  [[nodiscard]] std::vector<LayerEvent> build_events(
      Seconds depart_time, std::shared_ptr<const traffic::ArrivalRateProvider> arrivals) const;

  /// Plans the full trip (source and destination at rest, Eq. 7d). Throws
  /// std::runtime_error if no feasible trajectory exists within the horizon.
  [[nodiscard]] PlannedProfile plan(Seconds depart_time,
                      std::shared_ptr<const traffic::ArrivalRateProvider> arrivals = nullptr) const;

  /// plan() plus solver diagnostics.
  [[nodiscard]] DpSolution plan_with_stats(
      Seconds depart_time,
      std::shared_ptr<const traffic::ArrivalRateProvider> arrivals = nullptr) const;

  /// Replans the remaining trip from a mid-route state: current position on
  /// the corridor, current speed (snapped to the velocity grid), current
  /// time. The returned profile is expressed in the original corridor
  /// coordinates (it starts at `position_m`). Regulatory elements within one
  /// grid step of the position are treated as already passed.
  [[nodiscard]] PlannedProfile replan(Meters position, MetersPerSecond speed, Seconds time,
                        std::shared_ptr<const traffic::ArrivalRateProvider> arrivals = nullptr) const;

  /// Solves many independent jobs in one pass, batching compatible solver
  /// runs through the SoA multi-scenario kernel (core/dp_batch.hpp): jobs
  /// sharing a grid shape and event skeleton - e.g. full-trip plans at
  /// different departure times, or replans from the same layer - pack K per
  /// vector sweep. Results are in job order and each lane is bit-identical
  /// to the corresponding plan()/replan() call; per-job failures surface in
  /// PlanBatchResult::error instead of throwing, so one bad job cannot void
  /// the batch. Every job solves cold (batch lanes carry no warm-start
  /// state); single-job callers should prefer plan()/replan().
  [[nodiscard]] std::vector<PlanBatchResult> plan_batch(
      std::span<const PlanJob> jobs,
      std::shared_ptr<const traffic::ArrivalRateProvider> arrivals = nullptr) const;

 private:
  struct Runtime;

  /// Checks out a workspace (and the shared pool), runs solve_dp, returns
  /// the workspace. std::nullopt = infeasible.
  std::optional<DpSolution> solve_problem(const DpProblem& problem) const;

  road::Corridor corridor_;
  ev::EnergyModel energy_;
  PlannerConfig config_;
  std::shared_ptr<Runtime> runtime_;
};

}  // namespace evvo::core
