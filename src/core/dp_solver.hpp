// Time-expanded dynamic-programming velocity optimizer (paper Sec. II-C).
//
// The paper's recursion Eq. (8) optimizes over discrete velocities per
// equal-distance point and evaluates arrival times t(s_i) (Eq. 10) against
// the zero-queue windows T_q (Eq. 11). Arrival time is a function of the
// whole velocity history, so over (position, velocity) alone the problem is
// non-Markovian; the standard fix - used here - is to make (discretized)
// time an explicit state axis. States are (layer i, velocity v_j, time bin
// t_k); each cell also stores the continuous arrival time of its best path,
// so window tests do not accumulate binning error.
//
// Transitions apply constant acceleration over one distance step (Eq. 7b),
// respect per-segment speed limits (Eq. 7a), force v = 0 at stop signs,
// source, and destination (Eq. 7c-d), and charge the EV energy model
// (Eq. 3) as the transition cost g1 (Eq. 9). Crossings of a signal layer
// outside T_q incur the Eq. (12) penalty. Zero-speed states may dwell in
// place (waiting at a stop line) at accessory-power cost, which keeps the
// problem feasible for every signal schedule.
//
// Solver data path (vs. the dense-relaxation formulation):
//  - Reachable-frontier sweep: only the live (velocity, time-bin) cells of a
//    layer are expanded. Most of the n_v x n_t table is unreachable -
//    especially in early layers, where the arrival-time spread is narrow -
//    so the frontier is a small fraction of the grid.
//  - Dominance pruning: past the last enforced signal window, a state is
//    dropped when an earlier-or-equal-time state at the same (layer,
//    velocity) is strictly cheaper; remaining transition costs are then
//    time-independent, so the dominated state cannot improve the optimum.
//  - Fused cost tables: per grade class (few distinct grades exist along a
//    route), the transition energy, the time-value term lambda*dt, and the
//    smoothness regularizer are pre-added into one flat table with the same
//    float rounding sequence as the naive inner loop, making the relaxation
//    a pure load-add-compare.
//  - Gather parallelism: the per-layer relaxation is partitioned over
//    destination-velocity stripes; each worker owns a disjoint range of
//    destination rows and scans source states, so no two threads ever write
//    the same cell and results are bit-identical at every thread count.
//  - SIMD relaxation: away from enforced signal windows the inner source
//    scan runs VecF::kWidth states per step (common/simd.hpp) - the arrival
//    time, horizon test, time binning, and candidate cost are computed
//    lane-wise with exactly the scalar operation sequence, and the strict-<
//    scatter stays scalar in source order, so the solve (tables, stats,
//    ties) is bit-identical to the scalar path. DpResolution::simd toggles
//    the kernel at runtime for differential checking.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "core/penalty.hpp"
#include "core/planned_profile.hpp"
#include "ev/energy_model.hpp"
#include "road/route.hpp"
#include "road/signals.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::core {

namespace detail {
class DpEngine;
class DpBatchEngine;
}

/// Grid resolutions of the time-expanded DP.
struct DpResolution {
  double ds_m = 10.0;      ///< distance step between layers
  double dv_ms = 0.5;      ///< velocity quantum
  double dt_s = 1.0;       ///< time-bin width (continuous times are still propagated)
  double horizon_s = 450.0;///< maximum trip duration considered
  /// Worker threads for the per-layer relaxation; 0 = hardware_concurrency.
  /// Any value yields bit-identical solutions (gather formulation); 1 runs
  /// the serial path with no pool involvement at all.
  unsigned threads = 0;
  /// Use the vectorized relaxation kernel (common/simd.hpp) when the build
  /// compiled a non-scalar backend. Either setting yields bit-identical
  /// solutions and stats - the check harness solves both ways and compares
  /// table checksums - so this exists for differential testing and triage,
  /// not tuning. No effect on cached model tables (not part of ModelKey).
  bool simd = true;

  void validate() const;
};

/// A regulatory event snapped to a grid layer.
struct LayerEvent {
  enum class Type { kStopSign, kSignal };
  Type type = Type::kSignal;
  std::size_t layer = 0;
  double dwell_s = 0.0;                    ///< stop sign: mandatory standstill
  bool enforce_windows = false;            ///< signal: check T_q on crossing
  std::vector<road::TimeWindow> windows;   ///< T_q (absolute times)
};

/// Everything the solver needs for one trip.
struct DpProblem {
  const road::Route* route = nullptr;
  const ev::EnergyModel* energy = nullptr;
  Seconds depart_time{};
  DpResolution resolution{};
  PenaltyConfig penalty{};
  std::vector<LayerEvent> events;

  /// Boundary speeds. The paper's Eq. (7d) fixes both to 0 (a full trip from
  /// rest to rest); a mid-route replan instead starts from the vehicle's
  /// current speed. Speeds are snapped to the velocity grid.
  MetersPerSecond initial_speed{};
  MetersPerSecond final_speed{};

  /// Smoothness regularizer: extra cost per m/s of speed change across a
  /// hop [mAh per m/s]. Under the paper's symmetric Eq. (3) regeneration, a
  /// micro-oscillation between adjacent velocity levels is energy-free, so
  /// the solver is otherwise indifferent to chattering profiles; a small
  /// weight breaks those ties toward smooth (comfortable, battery-friendly)
  /// plans without measurably changing trip energy.
  double smoothness_weight_mah_per_ms = 0.3;

  /// Value of travel time, expressed as an equivalent charge rate [mAh/s]
  /// added to every second of the trip (driving, dwelling, and mandatory
  /// stops alike). The paper's evaluation reports that the optimal profile
  /// does not increase trip time over fast driving; a pure-energy objective
  /// would instead crawl (slower is always cheaper per meter below the
  /// aerodynamic crossover), so the trip-time value the paper leaves implicit
  /// is made explicit here. The default in PlannerConfig is calibrated so the
  /// optimizer's trip time lands at the paper's (~283 s over the corridor);
  /// bench_ablation sweeps it. 0 recovers the pure-energy objective.
  double time_weight_mah_per_s = 0.0;

  /// Drop dominated states past the last enforced signal window (see the
  /// header comment). Disable to force the exhaustive sweep; pruned and
  /// unpruned solves agree on the optimal cost.
  bool dominance_pruning = true;

  /// Checksum the final state tables into DpStats::table_checksum (see
  /// dp_common.hpp). Off by default: the scan touches the whole grid, which
  /// the lazy-reset data path otherwise avoids. The check harness uses it to
  /// assert table-level identity across thread counts and against the naive
  /// reference solver.
  bool checksum_tables = false;

  void validate() const;
};

/// Solver diagnostics.
struct [[nodiscard]] DpStats {
  std::size_t layers = 0;
  std::size_t velocity_levels = 0;
  std::size_t time_bins = 0;
  std::size_t relaxations = 0;
  std::size_t frontier_states = 0;  ///< live states expanded across all layers
  std::size_t pruned_states = 0;    ///< states dropped by dominance pruning
  double best_cost_mah = 0.0;
  /// FNV checksum of the reachable state tables (0 unless
  /// DpProblem::checksum_tables was set).
  std::uint64_t table_checksum = 0;
};

struct [[nodiscard]] DpSolution {
  PlannedProfile profile;
  DpStats stats;
};

/// Reusable solver memory: the (layers x velocities x time-bins) state
/// tables, the per-layer source lists, and the model-derived cost tables.
///
/// The state tables are the dominant per-solve cost of the naive solver
/// (three multi-megabyte allocations plus an O(N) infinity fill). A
/// workspace keeps them allocated across solves and skips the grid-wide
/// clear: each destination row is reset to +inf by the stripe that relaxes
/// into it, and time_/back_ are only ever read behind a finite cost, so no
/// cell is ever read stale. The model tables (feasible hops
/// per velocity level, per-grade-class transition costs) are cached across
/// solves and rebuilt only when the route geometry, energy model, or
/// resolution fingerprint changes - a PlanService miss storm on one corridor
/// pays the table build once.
///
/// A workspace is NOT thread-safe: one solve at a time per workspace.
/// VelocityPlanner keeps a pool of them so concurrent plan() calls each
/// check one out.
namespace detail {

/// Growable buffer that never value-initializes: growing to N elements is
/// one allocation, not an allocation plus an N-element memset. The DP state
/// tables are tens of megabytes and every live cell is written before it is
/// read (rows are +inf-filled by the relaxing stripe), so the zero-fill a
/// std::vector would do on first use is pure page-touching waste. Growth
/// discards contents - callers grow only between solves.
template <typename T>
class UninitBuffer {
 public:
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  void grow_to(std::size_t n) {
    if (n <= size_) return;
    data_ = std::make_unique_for_overwrite<T[]>(n);
    size_ = n;
  }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
};

}  // namespace detail

class DpWorkspace {
 public:
  DpWorkspace() = default;
  DpWorkspace(const DpWorkspace&) = delete;
  DpWorkspace& operator=(const DpWorkspace&) = delete;

  /// Bytes held by the per-solve state tables (diagnostics).
  std::size_t state_bytes() const {
    return cost_.size() * sizeof(float) + time_.size() * sizeof(float) +
           back_.size() * sizeof(std::uint32_t);
  }

  /// Monotone count of engine runs over this workspace, bumped before a run
  /// touches any table (a throwing or infeasible run still counts). The
  /// incremental solver (core/dp_replan.hpp) records it alongside its
  /// previous-solve snapshot: a mismatch proves another solve reused the
  /// tables in between, so warm-starting from them would be unsound.
  std::uint64_t solve_serial() const { return solve_serial_; }

 private:
  friend class detail::DpEngine;
  friend class detail::DpBatchEngine;

  struct FwdHop {
    std::uint32_t j_to = 0;
    float dt = 0.0f;     ///< travel time over one distance step
    float accel = 0.0f;  ///< constant acceleration
  };
  struct RevHop {
    std::uint32_t j_from = 0;
    float dt = 0.0f;
  };

  /// Fingerprint of everything the model tables depend on. The route is
  /// hashed by content (replanning solves over short-lived suffix routes
  /// whose addresses may recur).
  struct ModelKey {
    bool valid = false;
    const void* energy = nullptr;
    std::uint64_t route_hash = 0;
    double ds_m = 0.0, dv_ms = 0.0, lambda = 0.0, smoothness = 0.0;
    bool operator==(const ModelKey&) const = default;
  };

  // --- model tables (cached across solves, keyed by model_key_) ---
  ModelKey model_key_{};
  std::vector<FwdHop> fwd_hops_;            ///< flattened hops grouped by source level
  std::vector<std::uint32_t> fwd_begin_;    ///< n_v + 1 offsets into fwd_hops_
  std::vector<RevHop> rev_hops_;            ///< flattened hops grouped by destination level
  std::vector<std::uint32_t> rev_begin_;    ///< n_v + 1 offsets into rev_hops_
  std::vector<float> grade_energy_;         ///< [class][j][j2] transition energy [mAh]
  std::vector<float> grade_fused_;          ///< energy + lambda*dt + smoothness, seed rounding
  std::vector<std::uint32_t> layer_class_;  ///< hop layer -> grade class index
  std::vector<double> layer_limit_;         ///< per-layer posted speed limit

  // --- per-solve state (rows reset lazily by the relaxing stripe) ---
  detail::UninitBuffer<float> cost_;
  detail::UninitBuffer<float> time_;
  detail::UninitBuffer<std::uint32_t> back_;

  // --- per-layer scratch: compact source list in (j, k)-lex order ---
  std::vector<std::uint32_t> src_pred_;     ///< packed backpointer (j << 20 | k)
  std::vector<float> src_cost_;             ///< cost + mandatory-stop charge
  std::vector<float> src_time_;             ///< arrival time + mandatory dwell
  std::vector<std::uint8_t> src_inside_;    ///< inside the signal window T_q
  std::vector<std::uint32_t> row_begin_;    ///< n_v + 1 offsets into the source list

  // --- batched (SoA) solver storage: lane-interleaved state tables plus the
  // union-frontier scratch of core/dp_batch.cpp. Kept alongside the
  // single-scenario tables so a pooled workspace serves either entry point
  // without reallocating; unused (and unsized) until the first batch solve.
  struct BatchScratch {
    detail::UninitBuffer<float> cost;           ///< [state * lanes + lane]
    detail::UninitBuffer<float> time;
    detail::UninitBuffer<std::uint32_t> back;
    std::vector<std::uint32_t> src_pred;        ///< shared packed backpointer per entry
    std::vector<float> src_cost;                ///< [entry * lanes + lane]
    std::vector<float> src_time;
    std::vector<std::uint32_t> src_kept;        ///< per-entry live-lane bitmask
    std::vector<std::uint32_t> src_inside;      ///< per-entry inside-T_q lane bitmask
    std::vector<std::uint32_t> row_begin;
  };
  BatchScratch batch_;

  /// Build (or reuse) the cached model tables for the given grid geometry.
  /// Shared by the single-scenario engine and the batched SoA engine: both
  /// must see the identical fused-cost bits for the identity contract to
  /// hold, so there is exactly one builder.
  void ensure_model_tables(const road::Route& route, const ev::EnergyModel& energy,
                           const DpResolution& res, double lambda, double smoothness, double ds,
                           std::size_t n_hops, std::size_t n_layers, std::size_t n_v);

  std::uint64_t solve_serial_ = 0;  ///< see solve_serial()
};

/// Runs the DP. Returns std::nullopt only if no feasible trajectory reaches
/// the destination within the horizon. This overload allocates a throwaway
/// workspace and runs serially.
[[nodiscard]] std::optional<DpSolution> solve_dp(const DpProblem& problem);

/// As above, reusing `workspace` across calls. If `pool` is non-null and
/// problem.resolution.threads resolves to more than one thread, the
/// per-layer relaxation runs on the pool; the result is bit-identical to the
/// serial sweep either way.
[[nodiscard]] std::optional<DpSolution> solve_dp(const DpProblem& problem, DpWorkspace& workspace,
                                   common::ThreadPool* pool = nullptr);

}  // namespace evvo::core
