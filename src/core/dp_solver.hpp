// Time-expanded dynamic-programming velocity optimizer (paper Sec. II-C).
//
// The paper's recursion Eq. (8) optimizes over discrete velocities per
// equal-distance point and evaluates arrival times t(s_i) (Eq. 10) against
// the zero-queue windows T_q (Eq. 11). Arrival time is a function of the
// whole velocity history, so over (position, velocity) alone the problem is
// non-Markovian; the standard fix - used here - is to make (discretized)
// time an explicit state axis. States are (layer i, velocity v_j, time bin
// t_k); each cell also stores the continuous arrival time of its best path,
// so window tests do not accumulate binning error.
//
// Transitions apply constant acceleration over one distance step (Eq. 7b),
// respect per-segment speed limits (Eq. 7a), force v = 0 at stop signs,
// source, and destination (Eq. 7c-d), and charge the EV energy model
// (Eq. 3) as the transition cost g1 (Eq. 9). Crossings of a signal layer
// outside T_q incur the Eq. (12) penalty. Zero-speed states may dwell in
// place (waiting at a stop line) at accessory-power cost, which keeps the
// problem feasible for every signal schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/penalty.hpp"
#include "core/planned_profile.hpp"
#include "ev/energy_model.hpp"
#include "road/route.hpp"
#include "road/signals.hpp"

namespace evvo::core {

/// Grid resolutions of the time-expanded DP.
struct DpResolution {
  double ds_m = 10.0;      ///< distance step between layers
  double dv_ms = 0.5;      ///< velocity quantum
  double dt_s = 1.0;       ///< time-bin width (continuous times are still propagated)
  double horizon_s = 450.0;///< maximum trip duration considered

  void validate() const;
};

/// A regulatory event snapped to a grid layer.
struct LayerEvent {
  enum class Type { kStopSign, kSignal };
  Type type = Type::kSignal;
  std::size_t layer = 0;
  double dwell_s = 0.0;                    ///< stop sign: mandatory standstill
  bool enforce_windows = false;            ///< signal: check T_q on crossing
  std::vector<road::TimeWindow> windows;   ///< T_q (absolute times)
};

/// Everything the solver needs for one trip.
struct DpProblem {
  const road::Route* route = nullptr;
  const ev::EnergyModel* energy = nullptr;
  double depart_time_s = 0.0;
  DpResolution resolution{};
  PenaltyConfig penalty{};
  std::vector<LayerEvent> events;

  /// Boundary speeds. The paper's Eq. (7d) fixes both to 0 (a full trip from
  /// rest to rest); a mid-route replan instead starts from the vehicle's
  /// current speed. Speeds are snapped to the velocity grid.
  double initial_speed_ms = 0.0;
  double final_speed_ms = 0.0;

  /// Smoothness regularizer: extra cost per m/s of speed change across a
  /// hop [mAh per m/s]. Under the paper's symmetric Eq. (3) regeneration, a
  /// micro-oscillation between adjacent velocity levels is energy-free, so
  /// the solver is otherwise indifferent to chattering profiles; a small
  /// weight breaks those ties toward smooth (comfortable, battery-friendly)
  /// plans without measurably changing trip energy.
  double smoothness_weight_mah_per_ms = 0.3;

  /// Value of travel time, expressed as an equivalent charge rate [mAh/s]
  /// added to every second of the trip (driving, dwelling, and mandatory
  /// stops alike). The paper's evaluation reports that the optimal profile
  /// does not increase trip time over fast driving; a pure-energy objective
  /// would instead crawl (slower is always cheaper per meter below the
  /// aerodynamic crossover), so the trip-time value the paper leaves implicit
  /// is made explicit here. The default in PlannerConfig is calibrated so the
  /// optimizer's trip time lands at the paper's (~283 s over the corridor);
  /// bench_ablation sweeps it. 0 recovers the pure-energy objective.
  double time_weight_mah_per_s = 0.0;

  void validate() const;
};

/// Solver diagnostics.
struct DpStats {
  std::size_t layers = 0;
  std::size_t velocity_levels = 0;
  std::size_t time_bins = 0;
  std::size_t relaxations = 0;
  double best_cost_mah = 0.0;
};

struct DpSolution {
  PlannedProfile profile;
  DpStats stats;
};

/// Runs the DP. Returns std::nullopt only if no feasible trajectory reaches
/// the destination within the horizon.
std::optional<DpSolution> solve_dp(const DpProblem& problem);

}  // namespace evvo::core
