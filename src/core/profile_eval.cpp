#include "core/profile_eval.hpp"

#include <stdexcept>

namespace evvo::core {

ProfileEvaluation evaluate_cycle(const ev::EnergyModel& model, const road::Route& route,
                                 const ev::DriveCycle& cycle) {
  ProfileEvaluation eval;
  eval.energy = model.trip(cycle, [&route](double s) { return route.grade_at(s); });
  eval.trip_time_s = cycle.duration();
  eval.distance_m = cycle.distance();
  eval.max_speed_ms = cycle.max_speed();
  eval.stops = cycle.stop_count();
  return eval;
}

double percent_saving(double baseline, double candidate) {
  if (baseline == 0.0) throw std::invalid_argument("percent_saving: zero baseline");
  return (baseline - candidate) / baseline * 100.0;
}

}  // namespace evvo::core
