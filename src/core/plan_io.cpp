#include "core/plan_io.hpp"

#include <stdexcept>

#include "common/csv.hpp"

namespace evvo::core {

void save_plan_csv(const std::filesystem::path& path, const PlannedProfile& profile) {
  CsvTable table;
  table.columns = {"position_m", "speed_ms", "time_s", "energy_mah"};
  for (const PlanNode& node : profile.nodes()) {
    table.add_row({node.position_m, node.speed_ms, node.time_s, node.energy_mah});
  }
  write_csv(path, table);
}

PlannedProfile load_plan_csv(const std::filesystem::path& path) {
  const CsvTable table = read_csv(path);
  std::vector<double> positions, speeds, times, energies;
  try {
    positions = table.column("position_m");
    speeds = table.column("speed_ms");
    times = table.column("time_s");
    energies = table.column("energy_mah");
  } catch (const std::out_of_range& e) {
    throw std::runtime_error(std::string("load_plan_csv: ") + e.what());
  }
  std::vector<PlanNode> nodes;
  nodes.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    nodes.push_back(PlanNode{positions[i], speeds[i], times[i], energies[i]});
  }
  try {
    return PlannedProfile(std::move(nodes));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("load_plan_csv: invalid profile: ") + e.what());
  }
}

}  // namespace evvo::core
