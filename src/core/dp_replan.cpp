// Replan classification: the pure (no-solve) half of the incremental DP.
// The warm execution paths live in dp_solver.cpp next to the engine.
#include "core/dp_replan.hpp"

#include <algorithm>
#include <cmath>

#include "core/dp_common.hpp"

namespace evvo::core {

DpProblemKey DpProblemKey::of(const DpProblem& problem) {
  DpProblemKey key;
  key.route_hash = detail::hash_route(*problem.route);
  key.energy = problem.energy;
  key.route_length_m = problem.route->length();
  key.depart_time_s = problem.depart_time.value();
  key.ds_m = problem.resolution.ds_m;
  key.dv_ms = problem.resolution.dv_ms;
  key.dt_s = problem.resolution.dt_s;
  key.horizon_s = problem.resolution.horizon_s;
  key.initial_speed_ms = problem.initial_speed.value();
  key.final_speed_ms = problem.final_speed.value();
  key.smoothness_weight = problem.smoothness_weight_mah_per_ms;
  key.time_weight = problem.time_weight_mah_per_s;
  key.penalty_mode = static_cast<int>(problem.penalty.mode);
  key.penalty_m = problem.penalty.m;
  key.penalty_additive_mah = problem.penalty.additive_mah;
  key.penalty_min_cost_mah = problem.penalty.min_cost_mah;
  return key;
}

namespace {

/// The event view a relaxation actually reads at one layer. A signal that
/// does not enforce its windows is indistinguishable from no event at all
/// (relax_layer tests only `is_signal && enforce_windows`; extract reads only
/// stop-sign dwells), so it canonicalizes to "absent" - which is what makes
/// window edits on non-enforcing signals no-ops.
const LayerEvent* canonical_view(const LayerEvent* e) {
  if (!e) return nullptr;
  if (e->type == LayerEvent::Type::kSignal && !e->enforce_windows) return nullptr;
  return e;
}

bool windows_equal(const std::vector<road::TimeWindow>& a, const std::vector<road::TimeWindow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start_s != b[i].start_s || a[i].end_s != b[i].end_s) return false;
  }
  return true;
}

bool views_equal(const LayerEvent* a, const LayerEvent* b) {
  if (!a || !b) return a == b;
  if (a->type != b->type) return false;
  if (a->type == LayerEvent::Type::kStopSign) return a->dwell_s == b->dwell_s;
  // Enforced signal (canonical_view stripped the non-enforcing ones).
  return windows_equal(a->windows, b->windows);
}

bool is_stop(const LayerEvent* e) { return e && e->type == LayerEvent::Type::kStopSign; }

/// Last layer whose crossing is window-checked (mirrors the engine's
/// last_window_layer_); -1 when no window is enforced anywhere.
std::ptrdiff_t last_window_layer(const std::vector<const LayerEvent*>& at) {
  std::ptrdiff_t last = -1;
  for (std::size_t layer = 0; layer < at.size(); ++layer) {
    const LayerEvent* e = at[layer];
    if (e && e->type == LayerEvent::Type::kSignal && e->enforce_windows) {
      last = static_cast<std::ptrdiff_t>(layer);
    }
  }
  return last;
}

std::vector<const LayerEvent*> views_by_layer(const std::vector<LayerEvent>& events,
                                              std::size_t n_layers) {
  std::vector<const LayerEvent*> at(n_layers, nullptr);
  for (const LayerEvent& e : events) {
    // Out-of-range layers are the engine's (throwing) problem, not the
    // frontier rule's; skip them so classification never indexes past the grid.
    if (e.layer < n_layers) at[e.layer] = canonical_view(&e);
  }
  return at;
}

}  // namespace

std::optional<std::size_t> first_dirty_relax(const std::vector<LayerEvent>& prev_events,
                                             const std::vector<LayerEvent>& next_events,
                                             std::size_t n_layers, bool prev_pruning,
                                             bool next_pruning) {
  if (n_layers < 2) return std::nullopt;  // nothing to relax at all
  const std::size_t n_relax = n_layers - 1;
  const std::vector<const LayerEvent*> prev_at = views_by_layer(prev_events, n_layers);
  const std::vector<const LayerEvent*> next_at = views_by_layer(next_events, n_layers);

  std::size_t dirty = n_relax;  // sentinel: clean
  for (std::size_t layer = 0; layer < n_layers; ++layer) {
    const LayerEvent* a = prev_at[layer];
    const LayerEvent* b = next_at[layer];
    if (views_equal(a, b)) continue;
    // The full view at `layer` is read by relaxation `layer` (the final
    // layer's view is read by no relaxation: windows there are never
    // crossed, which is why an edit at the last layer alone splices).
    if (layer < n_relax) dirty = std::min(dirty, layer);
    // "Is layer+1 a stop sign" is additionally read one relaxation earlier
    // (arrivals into a stop layer must come to rest).
    if (is_stop(a) != is_stop(b) && layer >= 1) dirty = std::min(dirty, layer - 1);
  }

  // Dominance pruning: relaxation i prunes iff `pruning && i > lw`. Find the
  // first index where that predicate flips.
  const std::ptrdiff_t lw_prev = last_window_layer(prev_at);
  const std::ptrdiff_t lw_next = last_window_layer(next_at);
  if (prev_pruning != next_pruning || lw_prev != lw_next) {
    for (std::size_t i = 0; i < n_relax; ++i) {
      const bool p = prev_pruning && static_cast<std::ptrdiff_t>(i) > lw_prev;
      const bool q = next_pruning && static_cast<std::ptrdiff_t>(i) > lw_next;
      if (p != q) {
        dirty = std::min(dirty, i);
        break;
      }
    }
  }

  if (dirty == n_relax) return std::nullopt;
  return dirty;
}

ReplanDelta classify_replan(const DpProblemKey& prev_key,
                            const std::vector<LayerEvent>& prev_events, bool prev_pruning,
                            const DpProblem& next) {
  if (!(DpProblemKey::of(next) == prev_key)) {
    return ReplanDelta{ReplanDelta::Path::kCold, 0, "problem fingerprint changed"};
  }
  const auto n_hops = static_cast<std::size_t>(
      std::max(1.0, std::round(next.route->length() / next.resolution.ds_m)));
  const std::size_t n_layers = n_hops + 1;
  const std::optional<std::size_t> dirty = first_dirty_relax(
      prev_events, next.events, n_layers, prev_pruning, next.dominance_pruning);
  if (!dirty) return ReplanDelta{ReplanDelta::Path::kSpliced, 0, ""};
  if (*dirty == 0) return ReplanDelta{ReplanDelta::Path::kCold, 0, "edit reaches the first layer"};
  return ReplanDelta{ReplanDelta::Path::kStripes, *dirty, ""};
}

}  // namespace evvo::core
