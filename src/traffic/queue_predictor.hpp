// Per-signal zero-queue window prediction: the T_q of paper Eq. (11).
//
// Combines an arrival-rate source (SAE prediction, measured series, or a
// constant), the QL model, and a signal's fixed-time schedule into the set of
// absolute time windows in which an approaching EV finds a green light AND an
// empty queue — the windows the DP optimizer steers arrivals into.
#pragma once

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "road/signals.hpp"
#include "traffic/queue_model.hpp"
#include "traffic/volume_series.hpp"

namespace evvo::traffic {

/// Source of predicted vehicle arrival rate V_in at a signal.
class ArrivalRateProvider {
 public:
  virtual ~ArrivalRateProvider() = default;

  /// Predicted arrival rate [veh/h] at absolute time t.
  virtual double arrival_rate_veh_h(Seconds t) const = 0;
};

/// Fixed arrival rate (tests, single-cycle studies). Constructed from a
/// flow quantity so veh/h callers convert explicitly: 
///   ConstantArrivalRate(flow_from_veh_h(600.0)).
class ConstantArrivalRate final : public ArrivalRateProvider {
 public:
  explicit ConstantArrivalRate(VehiclesPerSecond rate);
  double arrival_rate_veh_h(Seconds t) const override;

 private:
  double veh_h_;
};

/// Arrival rate read from an hourly volume series whose hour 0 begins at
/// absolute time `series_start_s`.
class SeriesArrivalRate final : public ArrivalRateProvider {
 public:
  SeriesArrivalRate(HourlyVolumeSeries series, Seconds series_start = Seconds(0.0));
  double arrival_rate_veh_h(Seconds t) const override;

 private:
  HourlyVolumeSeries series_;
  double start_s_;
};

/// Predicts zero-queue windows for one signal.
class QueuePredictor {
 public:
  QueuePredictor(road::TrafficLight light, QueueModel model,
                 std::shared_ptr<const ArrivalRateProvider> arrivals);

  const road::TrafficLight& light() const { return light_; }
  const QueueModel& model() const { return model_; }

  /// Absolute zero-queue windows T_q intersecting [t0, t1]. Residual queues
  /// are carried across oversaturated cycles (warm-started a few cycles before
  /// t0 so the state at t0 is settled).
  std::vector<road::TimeWindow> zero_queue_windows(Seconds t0, Seconds t1) const;

  /// Predicted queue length [m] at absolute time t.
  double queue_length_m_at(Seconds t) const;

  /// Paper Eq. (11): is t inside T_q?
  bool in_zero_queue_window(Seconds t) const;

 private:
  /// Residual queue [m] at the start of the cycle containing t.
  double residual_at_cycle_start(double cycle_start) const;

  road::TrafficLight light_;
  QueueModel model_;
  std::shared_ptr<const ArrivalRateProvider> arrivals_;
};

/// Convenience: green windows treated as queue-free — the "current DP"
/// baseline's belief (it ignores queue dynamics entirely).
std::vector<road::TimeWindow> green_windows_as_queue_free(const road::TrafficLight& light,
                                                          Seconds t0, Seconds t1);

}  // namespace evvo::traffic
