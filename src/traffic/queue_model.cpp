#include "traffic/queue_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"

namespace evvo::traffic {

QueueModel::QueueModel(VmParams params, DischargeModel discharge)
    : params_(params), discharge_(discharge), vm_(params) {}

double QueueModel::discharged_length(Seconds tau_q, const CyclePhases& phases) const {
  const double tau = tau_q.value();  // .value() seam: raw SI internals below
  switch (discharge_) {
    case DischargeModel::kVmAcceleration:
      return vm_.discharged_length(tau, phases);
    case DischargeModel::kInstantMinSpeed:
      return tau > phases.red_s ? params_.min_speed_ms * (tau - phases.red_s) : 0.0;
  }
  return 0.0;  // unreachable
}

double QueueModel::queue_length_m(Seconds tau, const CyclePhases& phases,
                                  VehiclesPerSecond arrival, Meters initial_queue) const {
  const double arrival_veh_s = arrival.value();
  const double initial_queue_m = initial_queue.value();
  if (arrival_veh_s < 0.0) throw std::invalid_argument("QueueModel: arrival rate must be >= 0");
  if (initial_queue_m < 0.0) throw std::invalid_argument("QueueModel: initial queue must be >= 0");
  const double t = clamp(tau.value(), 0.0, phases.cycle());
  const double arrivals_m = params_.spacing_m * arrival_veh_s * t;
  return std::max(0.0, initial_queue_m + arrivals_m - discharged_length(Seconds(t), phases));
}

double QueueModel::queue_vehicles(Seconds tau, const CyclePhases& phases,
                                  VehiclesPerSecond arrival, Meters initial_queue) const {
  return queue_length_m(tau, phases, arrival, initial_queue) / params_.spacing_m;
}

std::optional<double> QueueModel::clear_time(const CyclePhases& phases, VehiclesPerSecond arrival,
                                             Meters initial_queue) const {
  const double arrival_veh_s = arrival.value();
  const double initial_queue_m = initial_queue.value();
  const double d_vin = params_.spacing_m * arrival_veh_s;  // queue growth rate [m/s]
  const double t_red = phases.red_s;
  const double t_end = phases.cycle();
  if (initial_queue_m <= 0.0 && arrival_veh_s <= 0.0) return t_red;  // nothing ever queued

  if (discharge_ == DischargeModel::kInstantMinSpeed) {
    // Solve L0 + d*Vin*t - v_min*(t - t_red) = 0.
    if (params_.min_speed_ms <= d_vin) return std::nullopt;  // oversaturated
    const double t_star =
        (initial_queue_m + params_.min_speed_ms * t_red) / (params_.min_speed_ms - d_vin);
    return t_star <= t_end ? std::optional<double>(std::max(t_star, t_red)) : std::nullopt;
  }

  // VM discharge. Phase (ii), acceleration: L0 + d*Vin*(t_red + x) = a/2 * x^2
  // with x = t - t_red in [0, v_min/a_max].
  const double a = params_.max_accel_ms2;
  const double c0 = initial_queue_m + d_vin * t_red;  // queue length at green onset
  double x = 0.0;
  if (largest_real_root(0.5 * a, -d_vin, -c0, x) && x >= 0.0 &&
      x <= params_.min_speed_ms / a) {
    const double t_star = t_red + x;
    return t_star <= t_end ? std::optional<double>(t_star) : std::nullopt;
  }
  // Phase (iii), constant v_min: L0 + d*Vin*t - v_min^2/(2a) - v_min*(t - t1) = 0
  // with t1 = t_red + v_min/a.
  if (params_.min_speed_ms <= d_vin) return std::nullopt;  // oversaturated
  const double t1 = t_red + params_.min_speed_ms / a;
  const double numerator = initial_queue_m - params_.min_speed_ms * params_.min_speed_ms / (2.0 * a) +
                           params_.min_speed_ms * t1;
  const double t_star = numerator / (params_.min_speed_ms - d_vin);
  if (t_star < t1 - 1e-9 || t_star > t_end) return std::nullopt;
  return std::max(t_star, t1);
}

double QueueModel::residual_queue_m(const CyclePhases& phases, VehiclesPerSecond arrival,
                                    Meters initial_queue) const {
  if (clear_time(phases, arrival, initial_queue).has_value()) return 0.0;
  return queue_length_m(Seconds(phases.cycle()), phases, arrival, initial_queue);
}

std::vector<double> QueueModel::queue_profile(const CyclePhases& phases, VehiclesPerSecond arrival,
                                              Seconds dt_q, Meters initial_queue) const {
  const double dt = dt_q.value();
  if (dt <= 0.0) throw std::invalid_argument("QueueModel::queue_profile: dt must be positive");
  std::vector<double> out;
  for (double t = 0.0; t <= phases.cycle() + 1e-9; t += dt) {
    out.push_back(queue_length_m(Seconds(t), phases, arrival, initial_queue));
  }
  return out;
}

}  // namespace evvo::traffic
