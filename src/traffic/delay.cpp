#include "traffic/delay.hpp"

#include <algorithm>
#include <stdexcept>

namespace evvo::traffic {

CycleDelay estimate_cycle_delay(const QueueModel& model, const CyclePhases& phases,
                                double arrival_veh_s, double dt, double initial_queue_m) {
  if (dt <= 0.0) throw std::invalid_argument("estimate_cycle_delay: dt must be positive");
  CycleDelay delay;
  double prev = model.queue_vehicles(Seconds(0.0), phases, VehiclesPerSecond(arrival_veh_s),
                                     Meters(initial_queue_m));
  delay.max_queue_veh = prev;
  for (double t = dt; t <= phases.cycle() + 1e-9; t += dt) {
    const double q = model.queue_vehicles(Seconds(t), phases, VehiclesPerSecond(arrival_veh_s),
                                          Meters(initial_queue_m));
    delay.total_veh_s += 0.5 * (prev + q) * dt;
    delay.max_queue_veh = std::max(delay.max_queue_veh, q);
    prev = q;
  }
  const double arrivals = arrival_veh_s * phases.cycle();
  delay.avg_delay_s_per_veh = arrivals > 1e-12 ? delay.total_veh_s / arrivals : 0.0;
  return delay;
}

double webster_uniform_delay(const CyclePhases& phases, double arrival_veh_s,
                             double saturation_flow_veh_s) {
  if (saturation_flow_veh_s <= 0.0)
    throw std::invalid_argument("webster_uniform_delay: saturation flow must be positive");
  if (arrival_veh_s < 0.0)
    throw std::invalid_argument("webster_uniform_delay: arrival rate must be >= 0");
  const double cycle = phases.cycle();
  const double green_ratio = phases.green_s / cycle;
  const double capacity = saturation_flow_veh_s * green_ratio;
  const double x = capacity > 0.0 ? std::min(1.0, arrival_veh_s / capacity) : 1.0;
  const double denom = 1.0 - x * green_ratio;
  if (denom <= 1e-9) return cycle;  // fully saturated: bounded by the cycle
  const double one_minus_g = 1.0 - green_ratio;
  return cycle * one_minus_g * one_minus_g / (2.0 * denom);
}

}  // namespace evvo::traffic
