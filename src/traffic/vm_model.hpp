// Vehicle-Movement (VM) model: queue discharge speed and leaving rate
// (paper Eq. (4)-(5), Sec. II-B2).
//
// When the light turns green, the waiting platoon accelerates from standstill
// to the zone's minimum speed limit v_min with the maximum comfortable
// acceleration a_max, then holds v_min while crossing the stop line. The
// leaving rate follows from the platoon speed, the constant in-queue spacing
// d, and the straight-through ratio gamma.
#pragma once

#include <vector>

namespace evvo::traffic {

/// Parameters of the discharge process. Defaults are the paper's probed cycle
/// at the second US-25 signal (Sec. III-B2).
struct VmParams {
  double min_speed_ms = 13.4;        ///< v_min of the signal zone
  double max_accel_ms2 = 2.5;        ///< a_max
  double spacing_m = 8.5;            ///< average inter-vehicle distance d
  double straight_ratio = 0.7636;    ///< gamma

  void validate() const;
};

/// Phase structure of one signal cycle for the VM/QL models: red occupies
/// [0, red_s), green [red_s, red_s + green_s).
struct CyclePhases {
  double red_s = 30.0;
  double green_s = 30.0;

  double cycle() const { return red_s + green_s; }
};

class VmModel {
 public:
  explicit VmModel(VmParams params = {});

  const VmParams& params() const { return params_; }

  /// Time into the cycle at which the platoon reaches v_min:
  /// t1 = t_red + v_min / a_max (Eq. (4) condition (ii) end).
  double accel_end_time(const CyclePhases& phases) const;

  /// Platoon speed v(tau) of Eq. (4) at time tau into the cycle, before the
  /// queue has cleared. (Condition (iv), the ego's v_opt after clearance, is
  /// not a property of the queue and is handled by the planner.)
  double platoon_speed(double tau, const CyclePhases& phases) const;

  /// Leaving rate V_out(tau) [veh/s] per Eq. (5): v(tau) / (d * gamma) while
  /// the queue discharges; once it has cleared (tau >= clear time) vehicles
  /// pass at their arrival rate, so V_out = V_in.
  double leaving_rate(double tau, const CyclePhases& phases, double arrival_rate_veh_s,
                      double clear_time_s) const;

  /// Baseline from the prior QL model [9]: discharge at constant v_min / d
  /// from the instant the light turns green (no acceleration phase).
  double baseline_leaving_rate(double tau, const CyclePhases& phases, double arrival_rate_veh_s,
                               double clear_time_s) const;

  /// Distance discharged by the platoon head since green onset (integral of
  /// Eq. (4) over the green phase up to tau).
  double discharged_length(double tau, const CyclePhases& phases) const;

 private:
  VmParams params_;
};

}  // namespace evvo::traffic
