// Traffic-volume (vehicle arrival rate) prediction, paper Sec. II-B1.
//
// Wraps the SAE deep model with the feature pipeline used in the paper's
// reference [10]: lagged hourly volumes plus cyclic time-of-day /
// day-of-week encodings, min-max scaled. Naive and historical-average
// baselines are provided for the ablation bench.
#pragma once

#include <span>
#include <vector>

#include "learn/sae.hpp"
#include "learn/scaler.hpp"
#include "traffic/volume_series.hpp"

namespace evvo::traffic {

struct PredictorConfig {
  std::size_t window_hours = 6;  ///< lagged-volume features
  learn::SaeConfig sae{};        ///< input_dim is derived; leave it 0

  std::size_t feature_dim() const { return window_hours + 4; }
};

/// Per-day prediction quality, the Fig. 4(b) series.
struct DailyMetrics {
  int day_of_week = 0;   ///< 0 = Monday
  double mre = 0.0;      ///< mean relative error (fraction, not %)
  double rmse = 0.0;     ///< vehicles/hour
  double mean_volume = 0.0;
};

/// One-step-ahead hourly volume predictor interface.
class VolumePredictor {
 public:
  virtual ~VolumePredictor() = default;

  /// Predicts the next hour's volume from the `window_hours` most recent
  /// actual volumes (oldest first) and the calendar slot being predicted.
  virtual double predict_next(std::span<const double> recent, int hour_of_day,
                              int day_of_week) const = 0;

  virtual std::size_t window_hours() const = 0;
};

/// One prediction request for SaeVolumePredictor::predict_batch: the
/// `window_hours` most recent volumes (oldest first) and the calendar slot
/// being predicted.
struct VolumeQuery {
  std::span<const double> recent;
  int hour_of_day = 0;
  int day_of_week = 0;
};

/// The paper's deep SAE predictor.
class SaeVolumePredictor final : public VolumePredictor {
 public:
  explicit SaeVolumePredictor(PredictorConfig config = {});

  /// Trains (pretrain + finetune) on an hourly series; needs at least
  /// window_hours + 1 samples.
  void fit(const HourlyVolumeSeries& train);

  bool trained() const { return trained_; }
  const PredictorConfig& config() const { return config_; }

  double predict_next(std::span<const double> recent, int hour_of_day,
                      int day_of_week) const override;

  /// Batched forward pass: one feature matrix, one trip through the SAE
  /// stack for all queries (a corridor-wide signal forecast amortizes the
  /// per-layer overheads). Element i equals
  /// predict_next(q[i].recent, q[i].hour_of_day, q[i].day_of_week) to the
  /// last bit: the blocked GEMM's per-row summation order is independent of
  /// the batch (see matmul_bt).
  std::vector<double> predict_batch(std::span<const VolumeQuery> queries) const;

  std::size_t window_hours() const override { return config_.window_hours; }

 private:
  void fill_feature_row(std::span<double> row, std::span<const double> recent, int hour_of_day,
                        int day_of_week) const;
  learn::Matrix build_features(std::span<const double> recent, int hour_of_day,
                               int day_of_week) const;

  PredictorConfig config_;
  learn::StackedAutoencoder sae_;
  learn::MinMaxScaler volume_scaler_;  // single-column scaler shared by lags and target
  bool trained_ = false;
};

/// Baseline: tomorrow looks like the last observed hour.
class NaivePredictor final : public VolumePredictor {
 public:
  explicit NaivePredictor(std::size_t window_hours = 1);
  double predict_next(std::span<const double> recent, int hour_of_day,
                      int day_of_week) const override;
  std::size_t window_hours() const override { return window_hours_; }

 private:
  std::size_t window_hours_;
};

/// Baseline: the training-set mean of the same hour-of-week.
class HistoricalAveragePredictor final : public VolumePredictor {
 public:
  explicit HistoricalAveragePredictor(const HourlyVolumeSeries& train);
  double predict_next(std::span<const double> recent, int hour_of_day,
                      int day_of_week) const override;
  std::size_t window_hours() const override { return 1; }

 private:
  std::vector<double> hour_of_week_mean_;  // 168 entries
};

/// One-step-ahead predictions over `test`, seeding the lag window from the
/// tail of `history` (typically the training series). Uses actual values as
/// lags (standard rolling evaluation).
std::vector<double> predict_series(const VolumePredictor& predictor,
                                   const HourlyVolumeSeries& history,
                                   const HourlyVolumeSeries& test);

/// Splits a test series into days and computes MRE/RMSE per day (Fig. 4(b)).
/// `mre_floor_veh_h` guards division by near-zero night volumes.
std::vector<DailyMetrics> per_day_metrics(const HourlyVolumeSeries& test,
                                          std::span<const double> predicted,
                                          double mre_floor_veh_h = 1.0);

}  // namespace evvo::traffic
