#include "traffic/vm_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace evvo::traffic {

void VmParams::validate() const {
  if (min_speed_ms <= 0.0) throw std::invalid_argument("VmParams: min speed must be positive");
  if (max_accel_ms2 <= 0.0) throw std::invalid_argument("VmParams: max accel must be positive");
  if (spacing_m <= 0.0) throw std::invalid_argument("VmParams: spacing must be positive");
  if (straight_ratio <= 0.0 || straight_ratio > 1.0)
    throw std::invalid_argument("VmParams: straight ratio must be in (0, 1]");
}

VmModel::VmModel(VmParams params) : params_(params) { params_.validate(); }

double VmModel::accel_end_time(const CyclePhases& phases) const {
  return phases.red_s + params_.min_speed_ms / params_.max_accel_ms2;
}

double VmModel::platoon_speed(double tau, const CyclePhases& phases) const {
  if (tau < phases.red_s) return 0.0;  // condition (i): red
  const double t1 = accel_end_time(phases);
  if (tau <= t1) return params_.max_accel_ms2 * (tau - phases.red_s);  // condition (ii)
  return params_.min_speed_ms;                                        // condition (iii)
}

double VmModel::leaving_rate(double tau, const CyclePhases& phases, double arrival_rate_veh_s,
                             double clear_time_s) const {
  if (tau >= clear_time_s) return arrival_rate_veh_s;  // queue gone: pass-through
  return platoon_speed(tau, phases) / (params_.spacing_m * params_.straight_ratio);
}

double VmModel::baseline_leaving_rate(double tau, const CyclePhases& phases,
                                      double arrival_rate_veh_s, double clear_time_s) const {
  if (tau >= clear_time_s) return arrival_rate_veh_s;
  if (tau < phases.red_s) return 0.0;
  return params_.min_speed_ms / params_.spacing_m;
}

double VmModel::discharged_length(double tau, const CyclePhases& phases) const {
  if (tau <= phases.red_s) return 0.0;
  const double t1 = accel_end_time(phases);
  const double accel_span = std::min(tau, t1) - phases.red_s;
  double length = 0.5 * params_.max_accel_ms2 * accel_span * accel_span;
  if (tau > t1) length += params_.min_speed_ms * (tau - t1);
  return length;
}

}  // namespace evvo::traffic
