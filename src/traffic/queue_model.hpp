// Queue-Length (QL) model: paper Eq. (6) and the zero-queue time it yields.
//
// During red, arrivals accumulate at spacing d; during green the platoon
// discharges per the VM model. The queue length (in meters of stopped
// vehicles) over one cycle is
//
//   L(tau) = max(0, L0 + d*V_in*tau - D(tau))
//
// where D is the discharged length (0 during red; the integral of the VM
// platoon speed during green). The paper's Eq. (6) is the L0 = 0 instance
// written out piecewise; L0 carries residual queues across cycles when a
// cycle is oversaturated (an extension the paper's model needs to stay
// physical under heavy traffic).
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "traffic/vm_model.hpp"

namespace evvo::traffic {

/// Which discharge law the QL model uses.
enum class DischargeModel {
  kVmAcceleration,    ///< ours: VM model with the acceleration phase (Eq. 4)
  kInstantMinSpeed,   ///< prior work [9]: platoon moves at v_min from green onset
};

class QueueModel {
 public:
  explicit QueueModel(VmParams params = {}, DischargeModel discharge = DischargeModel::kVmAcceleration);

  const VmParams& params() const { return params_; }
  DischargeModel discharge_model() const { return discharge_; }

  /// Length discharged [m] by `tau` into the cycle.
  double discharged_length(Seconds tau, const CyclePhases& phases) const;

  /// Queue length [m] at `tau` into the cycle. `arrival` is V_in; `initial_queue`
  /// is the residual from the prior cycle. Flow is vehicles/second — callers
  /// holding veh/h convert explicitly via flow_from_veh_h (the exact mixup
  /// this signature exists to reject).
  double queue_length_m(Seconds tau, const CyclePhases& phases, VehiclesPerSecond arrival,
                        Meters initial_queue = Meters(0.0)) const;

  /// Queue length in vehicles (length / spacing).
  double queue_vehicles(Seconds tau, const CyclePhases& phases, VehiclesPerSecond arrival,
                        Meters initial_queue = Meters(0.0)) const;

  /// Time into the cycle [s] at which the queue first reaches zero, if it does
  /// before the cycle ends (the paper's t* that opens the T_q window).
  std::optional<double> clear_time(const CyclePhases& phases, VehiclesPerSecond arrival,
                                   Meters initial_queue = Meters(0.0)) const;

  /// Queue remaining at the end of the cycle [m] (0 if it cleared).
  double residual_queue_m(const CyclePhases& phases, VehiclesPerSecond arrival,
                          Meters initial_queue = Meters(0.0)) const;

  /// Queue-length samples over one cycle every dt (Fig. 5(b) series).
  std::vector<double> queue_profile(const CyclePhases& phases, VehiclesPerSecond arrival,
                                    Seconds dt, Meters initial_queue = Meters(0.0)) const;

 private:
  VmParams params_;
  DischargeModel discharge_;
  VmModel vm_;
};

}  // namespace evvo::traffic
