#include "traffic/traffic_predictor.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/math_util.hpp"
#include "common/units.hpp"

namespace evvo::traffic {

namespace {

learn::SaeConfig complete_sae_config(const PredictorConfig& cfg) {
  learn::SaeConfig sae = cfg.sae;
  sae.input_dim = cfg.feature_dim();
  return sae;
}

/// Cyclic encodings mapped into [0, 1] so they live on the same scale as the
/// min-max-scaled volumes feeding the sigmoid stack.
void write_time_features(std::span<double> out, int hour_of_day, int day_of_week) {
  const double hour_angle = 2.0 * std::numbers::pi * hour_of_day / kHoursPerDay;
  const double day_angle = 2.0 * std::numbers::pi * day_of_week / kDaysPerWeek;
  out[0] = 0.5 * (std::sin(hour_angle) + 1.0);
  out[1] = 0.5 * (std::cos(hour_angle) + 1.0);
  out[2] = 0.5 * (std::sin(day_angle) + 1.0);
  out[3] = 0.5 * (std::cos(day_angle) + 1.0);
}

}  // namespace

SaeVolumePredictor::SaeVolumePredictor(PredictorConfig config)
    : config_(std::move(config)), sae_(complete_sae_config(config_)) {
  if (config_.window_hours == 0)
    throw std::invalid_argument("SaeVolumePredictor: window must be >= 1 hour");
}

void SaeVolumePredictor::fill_feature_row(std::span<double> row, std::span<const double> recent,
                                          int hour_of_day, int day_of_week) const {
  if (recent.size() != config_.window_hours)
    throw std::invalid_argument("SaeVolumePredictor: lag window size mismatch");
  for (std::size_t i = 0; i < recent.size(); ++i) {
    row[i] = volume_scaler_.transform_value(recent[i], 0);
  }
  write_time_features(row.subspan(config_.window_hours), hour_of_day, day_of_week);
}

learn::Matrix SaeVolumePredictor::build_features(std::span<const double> recent, int hour_of_day,
                                                 int day_of_week) const {
  learn::Matrix x(1, config_.feature_dim());
  fill_feature_row(x.row(0), recent, hour_of_day, day_of_week);
  return x;
}

void SaeVolumePredictor::fit(const HourlyVolumeSeries& train) {
  const std::size_t w = config_.window_hours;
  if (train.size() < w + 1)
    throw std::invalid_argument("SaeVolumePredictor::fit: series shorter than lag window");

  // Fit the volume scaler on the raw series (single column).
  {
    learn::Matrix volumes(train.size(), 1);
    for (std::size_t i = 0; i < train.size(); ++i) volumes(i, 0) = train.at(i);
    volume_scaler_.fit(volumes);
  }

  const std::size_t n = train.size() - w;
  learn::Matrix x(n, config_.feature_dim());
  learn::Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = x.row(i);
    for (std::size_t k = 0; k < w; ++k) row[k] = volume_scaler_.transform_value(train.at(i + k), 0);
    const std::size_t target = i + w;
    write_time_features(row.subspan(w), train.hour_of_day(target), train.day_of_week(target));
    y(i, 0) = volume_scaler_.transform_value(train.at(target), 0);
  }
  sae_.pretrain(x);
  sae_.finetune(x, y);
  trained_ = true;
}

double SaeVolumePredictor::predict_next(std::span<const double> recent, int hour_of_day,
                                        int day_of_week) const {
  if (!trained_) throw std::logic_error("SaeVolumePredictor: fit() has not run");
  const learn::Matrix pred = sae_.predict(build_features(recent, hour_of_day, day_of_week));
  // Volumes are nonnegative by construction; clamp regression output.
  return std::max(0.0, volume_scaler_.inverse_value(pred(0, 0), 0));
}

std::vector<double> SaeVolumePredictor::predict_batch(std::span<const VolumeQuery> queries) const {
  if (!trained_) throw std::logic_error("SaeVolumePredictor: fit() has not run");
  if (queries.empty()) return {};
  learn::Matrix x(queries.size(), config_.feature_dim());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    fill_feature_row(x.row(q), queries[q].recent, queries[q].hour_of_day, queries[q].day_of_week);
  }
  const learn::Matrix pred = sae_.predict(x);
  std::vector<double> out(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q] = std::max(0.0, volume_scaler_.inverse_value(pred(q, 0), 0));
  }
  return out;
}

NaivePredictor::NaivePredictor(std::size_t window_hours) : window_hours_(window_hours) {
  if (window_hours_ == 0) throw std::invalid_argument("NaivePredictor: window must be >= 1");
}

double NaivePredictor::predict_next(std::span<const double> recent, int, int) const {
  if (recent.empty()) throw std::invalid_argument("NaivePredictor: empty window");
  return recent.back();
}

HistoricalAveragePredictor::HistoricalAveragePredictor(const HourlyVolumeSeries& train)
    : hour_of_week_mean_(kHoursPerWeek, 0.0) {
  std::vector<int> counts(kHoursPerWeek, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const int slot = (train.start_hour_of_week() + static_cast<int>(i % kHoursPerWeek)) % kHoursPerWeek;
    hour_of_week_mean_[slot] += train.at(i);
    ++counts[slot];
  }
  for (int s = 0; s < kHoursPerWeek; ++s) {
    if (counts[s] > 0) hour_of_week_mean_[s] /= counts[s];
  }
}

double HistoricalAveragePredictor::predict_next(std::span<const double>, int hour_of_day,
                                                int day_of_week) const {
  return hour_of_week_mean_.at(static_cast<std::size_t>(day_of_week * kHoursPerDay + hour_of_day));
}

std::vector<double> predict_series(const VolumePredictor& predictor, const HourlyVolumeSeries& history,
                                   const HourlyVolumeSeries& test) {
  const std::size_t w = predictor.window_hours();
  if (history.size() < w)
    throw std::invalid_argument("predict_series: history shorter than the lag window");
  // Rolling window of actual values: tail of history, then test as it unfolds.
  std::vector<double> window;
  window.reserve(w);
  for (std::size_t i = history.size() - w; i < history.size(); ++i) window.push_back(history.at(i));

  std::vector<double> predictions;
  predictions.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    predictions.push_back(
        predictor.predict_next(window, test.hour_of_day(i), test.day_of_week(i)));
    window.erase(window.begin());
    window.push_back(test.at(i));
  }
  return predictions;
}

std::vector<DailyMetrics> per_day_metrics(const HourlyVolumeSeries& test,
                                          std::span<const double> predicted,
                                          double mre_floor_veh_h) {
  if (predicted.size() != test.size())
    throw std::invalid_argument("per_day_metrics: prediction length mismatch");
  std::vector<DailyMetrics> out;
  std::size_t i = 0;
  while (i < test.size()) {
    const int day = test.day_of_week(i);
    std::vector<double> actual_day;
    std::vector<double> pred_day;
    // A day's block ends where hour-of-day wraps to 0.
    do {
      actual_day.push_back(test.at(i));
      pred_day.push_back(predicted[i]);
      ++i;
    } while (i < test.size() && test.hour_of_day(i) != 0);
    DailyMetrics m;
    m.day_of_week = day;
    m.mre = mean_relative_error(pred_day, actual_day, mre_floor_veh_h);
    m.rmse = rmse(pred_day, actual_day);
    m.mean_volume = mean(actual_day);
    out.push_back(m);
  }
  return out;
}

}  // namespace evvo::traffic
