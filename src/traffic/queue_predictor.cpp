#include "traffic/queue_predictor.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"

namespace evvo::traffic {

ConstantArrivalRate::ConstantArrivalRate(VehiclesPerSecond rate) : veh_h_(to_veh_h(rate)) {
  if (veh_h_ < 0.0) throw std::invalid_argument("ConstantArrivalRate: rate must be >= 0");
}

double ConstantArrivalRate::arrival_rate_veh_h(Seconds) const { return veh_h_; }

SeriesArrivalRate::SeriesArrivalRate(HourlyVolumeSeries series, Seconds series_start)
    : series_(std::move(series)), start_s_(series_start.value()) {
  if (series_.empty()) throw std::invalid_argument("SeriesArrivalRate: empty series");
}

double SeriesArrivalRate::arrival_rate_veh_h(Seconds t) const {
  return series_.volume_at_time(t.value() - start_s_);
}

QueuePredictor::QueuePredictor(road::TrafficLight light, QueueModel model,
                               std::shared_ptr<const ArrivalRateProvider> arrivals)
    : light_(light), model_(std::move(model)), arrivals_(std::move(arrivals)) {
  if (!arrivals_) throw std::invalid_argument("QueuePredictor: null arrival provider");
}

namespace {
constexpr int kWarmupCycles = 8;  // settle residual queues before the query window
}

double QueuePredictor::residual_at_cycle_start(double cycle_start) const {
  const CyclePhases phases{light_.red_duration(), light_.green_duration()};
  double start = cycle_start - kWarmupCycles * light_.cycle_duration();
  double residual = 0.0;
  while (start < cycle_start - 1e-9) {
    const auto v_in = flow_from_veh_h(arrivals_->arrival_rate_veh_h(Seconds(start)));
    residual = model_.residual_queue_m(phases, v_in, Meters(residual));
    start += light_.cycle_duration();
  }
  return residual;
}

std::vector<road::TimeWindow> QueuePredictor::zero_queue_windows(Seconds t0_q, Seconds t1_q) const {
  const double t0 = t0_q.value(), t1 = t1_q.value();
  std::vector<road::TimeWindow> windows;
  if (t1 <= t0) return windows;
  const CyclePhases phases{light_.red_duration(), light_.green_duration()};
  const double first_cycle = light_.cycle_start(t0);
  double residual = residual_at_cycle_start(first_cycle);
  for (double start = first_cycle; start < t1; start += light_.cycle_duration()) {
    const auto v_in = flow_from_veh_h(arrivals_->arrival_rate_veh_h(Seconds(start)));
    const auto clear = model_.clear_time(phases, v_in, Meters(residual));
    if (clear.has_value()) {
      const road::TimeWindow open{start + *clear, start + phases.cycle()};
      const road::TimeWindow clipped{std::max(open.start_s, t0), std::min(open.end_s, t1)};
      if (clipped.duration() > 0.0) windows.push_back(clipped);
    }
    residual = model_.residual_queue_m(phases, v_in, Meters(residual));
  }
  return windows;
}

double QueuePredictor::queue_length_m_at(Seconds t_q) const {
  const double t = t_q.value();
  const CyclePhases phases{light_.red_duration(), light_.green_duration()};
  const double start = light_.cycle_start(t);
  const double residual = residual_at_cycle_start(start);
  const auto v_in = flow_from_veh_h(arrivals_->arrival_rate_veh_h(Seconds(start)));
  return model_.queue_length_m(Seconds(t - start), phases, v_in, Meters(residual));
}

bool QueuePredictor::in_zero_queue_window(Seconds t_q) const {
  const double t = t_q.value();
  const auto windows = zero_queue_windows(Seconds(t - light_.cycle_duration()),
                                          Seconds(t + light_.cycle_duration()));
  return std::any_of(windows.begin(), windows.end(),
                     [t](const road::TimeWindow& w) { return w.contains(t); });
}

std::vector<road::TimeWindow> green_windows_as_queue_free(const road::TrafficLight& light,
                                                          Seconds t0, Seconds t1) {
  return light.green_windows(t0.value(), t1.value());
}

}  // namespace evvo::traffic
