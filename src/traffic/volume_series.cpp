#include "traffic/volume_series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "common/units.hpp"

namespace evvo::traffic {

HourlyVolumeSeries::HourlyVolumeSeries(std::vector<double> volumes, int start_hour_of_week)
    : volumes_(std::move(volumes)), start_hour_of_week_(start_hour_of_week) {
  if (start_hour_of_week_ < 0 || start_hour_of_week_ >= kHoursPerWeek)
    throw std::invalid_argument("HourlyVolumeSeries: start hour out of [0, 168)");
  for (const double v : volumes_) {
    if (v < 0.0 || !std::isfinite(v))
      throw std::invalid_argument("HourlyVolumeSeries: volumes must be finite and >= 0");
  }
}

int HourlyVolumeSeries::hour_of_day(std::size_t hour_index) const {
  return static_cast<int>((start_hour_of_week_ + hour_index) % kHoursPerDay);
}

int HourlyVolumeSeries::day_of_week(std::size_t hour_index) const {
  return static_cast<int>(((start_hour_of_week_ + hour_index) % kHoursPerWeek) / kHoursPerDay);
}

double HourlyVolumeSeries::volume_at_time(double seconds_from_start) const {
  if (volumes_.empty()) throw std::logic_error("HourlyVolumeSeries: empty series");
  const double hours = seconds_from_start / kSecondsPerHour;
  const auto idx = hours <= 0.0 ? std::size_t{0}
                                : std::min(static_cast<std::size_t>(hours), volumes_.size() - 1);
  return volumes_[idx];
}

HourlyVolumeSeries HourlyVolumeSeries::slice(std::size_t from, std::size_t count) const {
  if (from + count > volumes_.size()) throw std::out_of_range("HourlyVolumeSeries::slice: out of range");
  std::vector<double> sub(volumes_.begin() + static_cast<std::ptrdiff_t>(from),
                          volumes_.begin() + static_cast<std::ptrdiff_t>(from + count));
  const int start = static_cast<int>((start_hour_of_week_ + from) % kHoursPerWeek);
  return HourlyVolumeSeries(std::move(sub), start);
}

std::pair<HourlyVolumeSeries, HourlyVolumeSeries> HourlyVolumeSeries::split(std::size_t head_hours) const {
  if (head_hours > volumes_.size()) throw std::out_of_range("HourlyVolumeSeries::split: out of range");
  return {slice(0, head_hours), slice(head_hours, volumes_.size() - head_hours)};
}

double HourlyVolumeSeries::max_volume() const {
  return volumes_.empty() ? 0.0 : *std::max_element(volumes_.begin(), volumes_.end());
}

double HourlyVolumeSeries::mean_volume() const { return mean(volumes_); }

}  // namespace evvo::traffic
