// Signal delay estimation from the QL model.
//
// For a vertical-queue model, the total waiting accumulated over a cycle is
// the time-integral of the queue length (vehicle-seconds); dividing by the
// arrivals per cycle gives the average control delay per vehicle - the
// quantity the paper's reference [9] estimates for fixed-time intersections.
#pragma once

#include "traffic/queue_model.hpp"

namespace evvo::traffic {

struct CycleDelay {
  double total_veh_s = 0.0;          ///< integral of queue length over the cycle
  double avg_delay_s_per_veh = 0.0;  ///< total / arrivals-per-cycle
  double max_queue_veh = 0.0;
};

/// Integrates the QL model's queue over one cycle (trapezoidal, step dt).
/// `initial_queue_m` carries residual from a previous cycle.
CycleDelay estimate_cycle_delay(const QueueModel& model, const CyclePhases& phases,
                                double arrival_veh_s, double dt = 0.1,
                                double initial_queue_m = 0.0);

/// Webster's classic uniform-delay term for a fixed-time signal:
///   d1 = C (1 - g/C)^2 / (2 (1 - min(1, x) g/C)),
/// with cycle C, effective green g, and degree of saturation
/// x = arrivals / (saturation_flow * g/C). The standard analytical yardstick
/// the QL-model estimates are compared against.
double webster_uniform_delay(const CyclePhases& phases, double arrival_veh_s,
                             double saturation_flow_veh_s);

}  // namespace evvo::traffic
