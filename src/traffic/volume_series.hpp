// Calendar-indexed hourly traffic volumes (the SCDoT loop-detector format the
// paper trains and validates the SAE predictor on).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace evvo::traffic {

/// Hourly traffic volume [veh/h] starting at a known hour of the week.
/// Hour index 0 of a series that starts Monday 00:00 is Monday 00:00-01:00.
class HourlyVolumeSeries {
 public:
  /// `start_hour_of_week` in [0, 167], 0 = Monday 00:00.
  explicit HourlyVolumeSeries(std::vector<double> volumes, int start_hour_of_week = 0);

  std::size_t size() const { return volumes_.size(); }
  bool empty() const { return volumes_.empty(); }
  std::span<const double> values() const { return volumes_; }

  double at(std::size_t hour_index) const { return volumes_.at(hour_index); }

  /// Hour-of-day in [0, 23] for a sample index.
  int hour_of_day(std::size_t hour_index) const;

  /// Day-of-week in [0, 6] (0 = Monday) for a sample index.
  int day_of_week(std::size_t hour_index) const;

  int start_hour_of_week() const { return start_hour_of_week_; }

  /// Volume at an absolute time offset [s] from the series start (piecewise
  /// constant per hour; clamped to the ends).
  double volume_at_time(double seconds_from_start) const;

  /// Sub-series [from, from+count).
  HourlyVolumeSeries slice(std::size_t from, std::size_t count) const;

  /// Splits off the head `head_hours` as (train, test).
  std::pair<HourlyVolumeSeries, HourlyVolumeSeries> split(std::size_t head_hours) const;

  double max_volume() const;
  double mean_volume() const;

 private:
  std::vector<double> volumes_;
  int start_hour_of_week_;
};

}  // namespace evvo::traffic
