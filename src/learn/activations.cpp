#include "learn/activations.hpp"

#include <cmath>
#include <cstddef>

#include "common/simd.hpp"

namespace evvo::learn {

namespace {

// Single-value sigmoid through the SIMD-layer exp: a broadcast lane runs the
// exact instruction sequence of the vector loop in activate_span, so scalar
// call sites (training inner loops, tails) match the vectorized path
// bit-for-bit on every backend.
double sigmoid_one(double x) {
  namespace sd = common::simd;
  double lanes[sd::VecD::kWidth];
  sd::exp(sd::VecD::broadcast(0.0 - x)).store(lanes);
  return 1.0 / (1.0 + lanes[0]);
}

}  // namespace

double activate(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kSigmoid:
      return sigmoid_one(x);
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
  }
  return x;  // unreachable
}

void activate_span(Activation act, std::span<double> xs) {
  if (act == Activation::kIdentity) return;
  if (act == Activation::kSigmoid) {
    // 1/(1 + exp(-x)) with vector lanes; the tail reuses the same lane ops
    // via sigmoid_one, so ragged sizes change nothing numerically.
    namespace sd = common::simd;
    constexpr std::size_t W = sd::VecD::kWidth;
    const sd::VecD one = sd::VecD::broadcast(1.0);
    const sd::VecD zero = sd::VecD::broadcast(0.0);
    double* p = xs.data();
    const std::size_t n = xs.size();
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const sd::VecD x = sd::VecD::load(p + i);
      (one / (one + sd::exp(zero - x))).store(p + i);
    }
    for (; i < n; ++i) p[i] = sigmoid_one(p[i]);
    return;
  }
  for (double& x : xs) x = activate(act, x);
}

double activate_derivative_from_output(Activation act, double y) {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kSigmoid:
      return y * (1.0 - y);
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;  // unreachable
}

void activate_inplace(Activation act, Matrix& m) { activate_span(act, m.flat()); }

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
  }
  return "?";
}

}  // namespace evvo::learn
