#include "learn/activations.hpp"

#include <cmath>

namespace evvo::learn {

double activate(Activation act, double x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
  }
  return x;  // unreachable
}

double activate_derivative_from_output(Activation act, double y) {
  switch (act) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kSigmoid:
      return y * (1.0 - y);
    case Activation::kTanh:
      return 1.0 - y * y;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;  // unreachable
}

void activate_inplace(Activation act, Matrix& m) {
  for (double& x : m.flat()) x = activate(act, x);
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
  }
  return "?";
}

}  // namespace evvo::learn
