#include "learn/sae.hpp"

#include <limits>
#include <optional>
#include <stdexcept>

namespace evvo::learn {

void SaeConfig::validate() const {
  if (input_dim == 0) throw std::invalid_argument("SaeConfig: input_dim must be set");
  if (hidden_dims.empty()) throw std::invalid_argument("SaeConfig: need at least one hidden layer");
  for (const std::size_t d : hidden_dims) {
    if (d == 0) throw std::invalid_argument("SaeConfig: hidden dims must be positive");
  }
  if (pretrain_epochs < 0 || finetune_epochs < 0)
    throw std::invalid_argument("SaeConfig: epochs must be >= 0");
  if (batch_size == 0) throw std::invalid_argument("SaeConfig: batch size must be positive");
  if (denoise_probability < 0.0 || denoise_probability >= 1.0)
    throw std::invalid_argument("SaeConfig: denoise probability must be in [0, 1)");
  if (validation_fraction < 0.0 || validation_fraction >= 1.0)
    throw std::invalid_argument("SaeConfig: validation fraction must be in [0, 1)");
  if (patience <= 0) throw std::invalid_argument("SaeConfig: patience must be positive");
}

StackedAutoencoder::StackedAutoencoder(SaeConfig config) : config_(std::move(config)), rng_(config_.seed) {
  config_.validate();
  std::size_t in_dim = config_.input_dim;
  encoders_.reserve(config_.hidden_dims.size());
  for (const std::size_t out_dim : config_.hidden_dims) {
    encoders_.emplace_back(in_dim, out_dim, config_.hidden_activation, rng_);
    in_dim = out_dim;
  }
}

namespace {

/// Splits [0, n) into shuffled minibatches.
std::vector<std::vector<std::size_t>> make_batches(Rng& rng, std::size_t n, std::size_t batch_size) {
  const std::vector<std::size_t> order = rng.permutation(n);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, n);
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

/// MSE gradient: d(mean((p-t)^2))/dp = 2*(p-t)/count.
Matrix mse_gradient(const Matrix& predicted, const Matrix& target) {
  Matrix grad(predicted.rows(), predicted.cols());
  const double scale = 2.0 / static_cast<double>(predicted.size());
  for (std::size_t i = 0; i < predicted.rows(); ++i) {
    for (std::size_t j = 0; j < predicted.cols(); ++j) {
      grad(i, j) = scale * (predicted(i, j) - target(i, j));
    }
  }
  return grad;
}

}  // namespace

std::vector<TrainHistory> StackedAutoencoder::pretrain(const Matrix& x) {
  if (x.cols() != config_.input_dim) throw std::invalid_argument("SAE::pretrain: input width mismatch");
  std::vector<TrainHistory> histories;
  Matrix representation = x;
  for (DenseLayer& encoder : encoders_) {
    // Temporary decoder reconstructs the layer input; sigmoid keeps outputs in
    // (0,1), matching min-max-scaled inputs and sigmoid hidden codes alike.
    DenseLayer decoder(encoder.out_dim(), encoder.in_dim(), Activation::kSigmoid, rng_);
    TrainHistory history;
    long step = 0;
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      double loss_sum = 0.0;
      std::size_t batch_count = 0;
      for (const auto& batch : make_batches(rng_, representation.rows(), config_.batch_size)) {
        Matrix clean = representation.gather_rows(batch);
        Matrix corrupted = clean;
        if (config_.denoise_probability > 0.0) {
          for (double& v : corrupted.flat()) {
            if (rng_.bernoulli(config_.denoise_probability)) v = 0.0;
          }
        }
        const Matrix code = encoder.forward(corrupted);
        const Matrix recon = decoder.forward(code);
        loss_sum += mse(recon, clean);
        ++batch_count;
        const Matrix grad_code = decoder.backward(mse_gradient(recon, clean));
        encoder.backward(grad_code);
        ++step;
        decoder.adam_step(config_.adam, step);
        encoder.adam_step(config_.adam, step);
      }
      history.epoch_loss.push_back(batch_count ? loss_sum / static_cast<double>(batch_count) : 0.0);
    }
    histories.push_back(std::move(history));
    representation = encoder.infer(representation);
  }
  pretrained_ = true;
  return histories;
}

Matrix StackedAutoencoder::forward_train(const Matrix& x) {
  Matrix h = x;
  for (DenseLayer& encoder : encoders_) h = encoder.forward(h);
  return output_layer_->forward(h);
}

void StackedAutoencoder::backward_and_step(const Matrix& grad_out, long step) {
  Matrix grad = output_layer_->backward(grad_out);
  for (auto it = encoders_.rbegin(); it != encoders_.rend(); ++it) grad = it->backward(grad);
  output_layer_->adam_step(config_.adam, step);
  for (DenseLayer& encoder : encoders_) encoder.adam_step(config_.adam, step);
}

TrainHistory StackedAutoencoder::finetune(const Matrix& x, const Matrix& y, int epochs) {
  if (x.cols() != config_.input_dim) throw std::invalid_argument("SAE::finetune: input width mismatch");
  if (x.rows() != y.rows()) throw std::invalid_argument("SAE::finetune: row count mismatch");
  if (!output_layer_) {
    output_layer_.emplace(config_.hidden_dims.back(), y.cols(), Activation::kIdentity, rng_);
  } else if (output_layer_->out_dim() != y.cols()) {
    throw std::invalid_argument("SAE::finetune: target width changed between calls");
  }
  const int n_epochs = epochs >= 0 ? epochs : config_.finetune_epochs;
  TrainHistory history;

  // Optional validation split for early stopping.
  Matrix train_x = x;
  Matrix train_y = y;
  Matrix val_x;
  Matrix val_y;
  const bool early_stopping = config_.validation_fraction > 0.0 && x.rows() >= 10;
  if (early_stopping) {
    const auto order = rng_.permutation(x.rows());
    const auto n_val = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.validation_fraction * static_cast<double>(x.rows())));
    const std::vector<std::size_t> val_idx(order.begin(),
                                           order.begin() + static_cast<std::ptrdiff_t>(n_val));
    const std::vector<std::size_t> train_idx(order.begin() + static_cast<std::ptrdiff_t>(n_val),
                                             order.end());
    val_x = x.gather_rows(val_idx);
    val_y = y.gather_rows(val_idx);
    train_x = x.gather_rows(train_idx);
    train_y = y.gather_rows(train_idx);
  }

  std::vector<DenseLayer> best_encoders;
  std::optional<DenseLayer> best_output;
  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;

  long step = 0;
  for (int epoch = 0; epoch < n_epochs; ++epoch) {
    double loss_sum = 0.0;
    std::size_t batch_count = 0;
    for (const auto& batch : make_batches(rng_, train_x.rows(), config_.batch_size)) {
      const Matrix bx = train_x.gather_rows(batch);
      const Matrix by = train_y.gather_rows(batch);
      const Matrix pred = forward_train(bx);
      loss_sum += mse(pred, by);
      ++batch_count;
      ++step;
      backward_and_step(mse_gradient(pred, by), step);
    }
    history.epoch_loss.push_back(batch_count ? loss_sum / static_cast<double>(batch_count) : 0.0);
    if (early_stopping) {
      const double val_loss = mse(predict(val_x), val_y);
      history.validation_loss.push_back(val_loss);
      if (val_loss < best_val - 1e-12) {
        best_val = val_loss;
        history.best_epoch = epoch;
        best_encoders = encoders_;
        best_output = output_layer_;
        since_best = 0;
      } else if (++since_best >= config_.patience) {
        break;
      }
    }
  }
  if (early_stopping && history.best_epoch >= 0) {
    encoders_ = std::move(best_encoders);
    output_layer_ = std::move(best_output);
  }
  return history;
}

Matrix StackedAutoencoder::encode(const Matrix& x) const {
  if (x.cols() != config_.input_dim) throw std::invalid_argument("SAE::encode: input width mismatch");
  Matrix h = x;
  for (const DenseLayer& encoder : encoders_) h = encoder.infer(h);
  return h;
}

Matrix StackedAutoencoder::predict(const Matrix& x) const {
  if (!output_layer_) throw std::logic_error("SAE::predict: model not fine-tuned yet");
  return output_layer_->infer(encode(x));
}

}  // namespace evvo::learn
