// Stacked AutoEncoder regressor (paper Sec. II-B1, reference [10]).
//
// Training follows the classic recipe: greedy layer-wise unsupervised
// pre-training of each encoder as a (denoising) autoencoder, then supervised
// fine-tuning of the whole stack plus a linear output layer with Adam.
#pragma once

#include <optional>
#include <vector>

#include "common/random.hpp"
#include "learn/dense_layer.hpp"
#include "learn/matrix.hpp"

namespace evvo::learn {

struct SaeConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> hidden_dims{32, 16};
  Activation hidden_activation = Activation::kSigmoid;
  int pretrain_epochs = 30;
  int finetune_epochs = 150;
  std::size_t batch_size = 32;
  AdamConfig adam{};
  /// Probability of masking an input to 0 during pre-training (denoising AE);
  /// 0 disables corruption.
  double denoise_probability = 0.1;
  /// Fraction of the fine-tuning set held out for validation-based early
  /// stopping (0 disables early stopping and trains all epochs).
  double validation_fraction = 0.0;
  /// Early stopping patience: stop after this many epochs without a new best
  /// validation loss, restoring the best weights.
  int patience = 10;
  std::uint64_t seed = 42;

  void validate() const;
};

/// Per-epoch training losses, for convergence tests and the perf bench.
struct TrainHistory {
  std::vector<double> epoch_loss;
  std::vector<double> validation_loss;  ///< filled when early stopping is on
  int best_epoch = -1;                  ///< epoch whose weights were kept

  double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
  double best_validation_loss() const {
    return best_epoch >= 0 ? validation_loss[static_cast<std::size_t>(best_epoch)] : 0.0;
  }
};

class StackedAutoencoder {
 public:
  explicit StackedAutoencoder(SaeConfig config);

  const SaeConfig& config() const { return config_; }
  bool pretrained() const { return pretrained_; }
  bool trained() const { return output_layer_.has_value(); }
  std::size_t depth() const { return encoders_.size(); }

  /// Greedy layer-wise pre-training on (scaled) inputs X [n x input_dim].
  /// Returns one history per layer.
  std::vector<TrainHistory> pretrain(const Matrix& x);

  /// Supervised fine-tuning toward targets Y [n x out_dim]. Creates the linear
  /// output layer on first call. May be called without pretrain() (ablation).
  TrainHistory finetune(const Matrix& x, const Matrix& y, int epochs = -1);

  /// Deep feature representation (output of the top encoder).
  Matrix encode(const Matrix& x) const;

  /// Regression prediction; requires finetune() to have run.
  Matrix predict(const Matrix& x) const;

 private:
  Matrix forward_train(const Matrix& x);
  void backward_and_step(const Matrix& grad_out, long step);

  SaeConfig config_;
  Rng rng_;
  std::vector<DenseLayer> encoders_;
  std::optional<DenseLayer> output_layer_;
  bool pretrained_ = false;
};

}  // namespace evvo::learn
