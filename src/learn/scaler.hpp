// Min-max feature scaling (the SAE reference scales traffic volumes to [0,1]).
#pragma once

#include "learn/matrix.hpp"

namespace evvo::learn {

/// Per-column min-max scaler mapping each feature into [0, 1].
class MinMaxScaler {
 public:
  /// Learns per-column ranges from X. Constant columns map to 0.
  void fit(const Matrix& x);

  bool fitted() const { return !mins_.empty(); }
  std::size_t dim() const { return mins_.size(); }

  Matrix transform(const Matrix& x) const;
  Matrix inverse_transform(const Matrix& x) const;

  double transform_value(double v, std::size_t column) const;
  double inverse_value(double v, std::size_t column) const;

 private:
  std::vector<double> mins_;
  std::vector<double> ranges_;  // max - min, floored away from zero
};

}  // namespace evvo::learn
