// Activation functions for the dense layers.
#pragma once

#include <span>

#include "learn/matrix.hpp"

namespace evvo::learn {

enum class Activation {
  kIdentity,
  kSigmoid,  ///< the paper's SAE reference uses logistic units
  kTanh,
  kRelu,
};

/// Applies the activation elementwise. Sigmoid is computed with the SIMD
/// layer's polynomial exp (~1 ulp from std::exp) so scalar and vectorized
/// call sites produce the same value on every backend.
double activate(Activation act, double x);

/// Elementwise activation over a contiguous span (in place); the vectorized
/// hot path behind both activate_inplace and DenseLayer::infer.
void activate_span(Activation act, std::span<double> xs);

/// Derivative expressed in terms of the *activated* output y = f(x); all four
/// supported activations admit this form, which avoids caching pre-activations.
double activate_derivative_from_output(Activation act, double y);

/// Elementwise activation over a matrix (in place).
void activate_inplace(Activation act, Matrix& m);

const char* activation_name(Activation act);

}  // namespace evvo::learn
