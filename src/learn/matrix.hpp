// Dense row-major matrix used by the neural-network substrate.
//
// Deliberately small: just the operations needed to train the paper's
// stacked-autoencoder traffic predictor on CPU.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace evvo::learn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Extracts a subset of rows (for minibatching).
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  void fill(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Throws on dimension mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B^T (common in backprop; avoids materializing the transpose).
Matrix matmul_bt(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix matmul_at(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& m);

/// a += scale * b (elementwise, same shape).
void axpy(Matrix& a, const Matrix& b, double scale = 1.0);

/// a[i] += scale * b[i] over two equal-length spans (row-level axpy; the
/// Matrix overload above forwards here). Throws on length mismatch.
void axpy(std::span<double> a, std::span<const double> b, double scale = 1.0);

/// Elementwise product, same shape.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Mean of squared elements (MSE against zero).
double mean_squared(const Matrix& m);

/// Frobenius-norm distance squared mean: mean((a-b)^2).
double mse(const Matrix& a, const Matrix& b);

}  // namespace evvo::learn
