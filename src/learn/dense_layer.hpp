// Fully connected layer with built-in Adam state.
#pragma once

#include "common/random.hpp"
#include "learn/activations.hpp"
#include "learn/matrix.hpp"

namespace evvo::learn {

/// Adam hyperparameters (defaults are the standard ones).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double l2 = 0.0;  ///< weight decay applied to W (not b)
};

/// y = f(x W^T + b), with W of shape [out x in].
///
/// The layer caches the last forward batch so backward() can compute weight
/// gradients; adam_step() then applies the update. One object is both the
/// inference and training representation — adequate at this library's scale.
class DenseLayer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act, Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  Activation activation() const { return act_; }

  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& mutable_weights() { return w_; }
  Matrix& mutable_bias() { return b_; }

  /// Accumulated gradients since the last adam_step()/zero_grad() (exposed
  /// for gradient-check tests and training diagnostics).
  const Matrix& gradient_weights() const { return grad_w_; }
  const Matrix& gradient_bias() const { return grad_b_; }

  /// Forward pass over a batch X [n x in]; returns Y [n x out] and caches
  /// X and Y for the next backward().
  Matrix forward(const Matrix& x);

  /// Inference-only forward (no caching).
  Matrix infer(const Matrix& x) const;

  /// Given dL/dY for the cached batch, accumulates dL/dW, dL/db and returns
  /// dL/dX. Must follow a forward() with the matching batch.
  Matrix backward(const Matrix& grad_output);

  /// Applies the accumulated gradients with Adam and clears them.
  /// `step` is the global 1-based Adam timestep (bias correction).
  void adam_step(const AdamConfig& cfg, long step);

  /// Clears accumulated gradients without applying them.
  void zero_grad();

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Activation act_;
  Matrix w_;       // [out x in]
  Matrix b_;       // [1 x out]
  Matrix grad_w_;  // accumulated
  Matrix grad_b_;
  Matrix m_w_, v_w_, m_b_, v_b_;  // Adam moments
  Matrix cached_input_;
  Matrix cached_output_;
};

}  // namespace evvo::learn
