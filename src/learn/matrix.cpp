#include "learn/matrix.hpp"

#include <stdexcept>

#include "common/simd.hpp"

namespace evvo::learn {

namespace sd = common::simd;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) throw std::invalid_argument("Matrix: data size mismatch");
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("Matrix::gather_rows: index out of range");
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

namespace {
void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}
}  // namespace

namespace {

/// crow[j] += scale * brow[j] over `cols` elements, vector lanes over j.
/// Each output element sees exactly the scalar operation sequence (one
/// multiply, one add, k-order controlled by the caller), so the axpy-style
/// products below are bit-identical to the naive triple loops they replace.
void row_axpy(double* crow, const double* brow, double scale, std::size_t cols) {
  constexpr std::size_t W = sd::VecD::kWidth;
  const sd::VecD vs = sd::VecD::broadcast(scale);
  std::size_t j = 0;
  for (; j + W <= cols; j += W) {
    (sd::VecD::load(crow + j) + vs * sd::VecD::load(brow + j)).store(crow + j);
  }
  for (; j < cols; ++j) crow[j] += scale * brow[j];
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      row_axpy(c.row(i).data(), b.row(k).data(), aik, b.cols());
    }
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  // The inference hot path (DenseLayer::infer): rows of `a` are samples,
  // rows of `b` are neurons, every output is a dot product over the shared
  // k axis. gcc cannot auto-vectorize the FP reduction (it reorders the
  // sum), so this kernel does it explicitly: 4 destination neurons per
  // block, one VecD accumulator each over k, lanes summed low-to-high, then
  // the scalar k-tail. For a fixed k-width the summation order is a function
  // of k alone - independent of the batch size or position - so a batched
  // forward pass equals the row-at-a-time pass to the last bit (the
  // predict_batch tests assert that). The order differs from the old naive
  // sequential sum; every consumer is tolerance-based.
  require(a.cols() == b.cols(), "matmul_bt: dimension mismatch");
  constexpr std::size_t W = sd::VecD::kWidth;
  constexpr std::size_t JB = 4;  // b-rows (output neurons) per block
  Matrix c(a.rows(), b.rows());
  const std::size_t n_k = a.cols();
  const std::size_t kv = n_k - n_k % W;  // vectorized prefix of the k axis
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i).data();
    auto crow = c.row(i);
    std::size_t j = 0;
    for (; j + JB <= b.rows(); j += JB) {
      const double* b0 = b.row(j).data();
      const double* b1 = b.row(j + 1).data();
      const double* b2 = b.row(j + 2).data();
      const double* b3 = b.row(j + 3).data();
      sd::VecD acc0 = sd::VecD::broadcast(0.0);
      sd::VecD acc1 = acc0, acc2 = acc0, acc3 = acc0;
      for (std::size_t k = 0; k < kv; k += W) {
        const sd::VecD av = sd::VecD::load(arow + k);
        acc0 = acc0 + av * sd::VecD::load(b0 + k);
        acc1 = acc1 + av * sd::VecD::load(b1 + k);
        acc2 = acc2 + av * sd::VecD::load(b2 + k);
        acc3 = acc3 + av * sd::VecD::load(b3 + k);
      }
      double s0 = sd::hsum(acc0);
      double s1 = sd::hsum(acc1);
      double s2 = sd::hsum(acc2);
      double s3 = sd::hsum(acc3);
      for (std::size_t k = kv; k < n_k; ++k) {
        const double ak = arow[k];
        s0 += ak * b0[k];
        s1 += ak * b1[k];
        s2 += ak * b2[k];
        s3 += ak * b3[k];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < b.rows(); ++j) {
      const double* brow = b.row(j).data();
      sd::VecD acc = sd::VecD::broadcast(0.0);
      for (std::size_t k = 0; k < kv; k += W) {
        acc = acc + sd::VecD::load(arow + k) * sd::VecD::load(brow + k);
      }
      double s = sd::hsum(acc);
      for (std::size_t k = kv; k < n_k; ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at: dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto arow = a.row(k);
    const double* brow = b.row(k).data();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      row_axpy(c.row(i).data(), brow, aki, b.cols());
    }
  }
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

void axpy(Matrix& a, const Matrix& b, double scale) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "axpy: shape mismatch");
  row_axpy(a.flat().data(), b.flat().data(), scale, a.size());
}

void axpy(std::span<double> a, std::span<const double> b, double scale) {
  require(a.size() == b.size(), "axpy: span length mismatch");
  row_axpy(a.data(), b.data(), scale, a.size());
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape mismatch");
  constexpr std::size_t W = sd::VecD::kWidth;
  Matrix c(a.rows(), a.cols());
  auto cf = c.flat();
  const auto af = a.flat();
  const auto bf = b.flat();
  std::size_t i = 0;
  for (; i + W <= af.size(); i += W) {
    (sd::VecD::load(af.data() + i) * sd::VecD::load(bf.data() + i)).store(cf.data() + i);
  }
  for (; i < af.size(); ++i) cf[i] = af[i] * bf[i];
  return c;
}

double mean_squared(const Matrix& m) {
  if (m.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : m.flat()) sum += x * x;
  return sum / static_cast<double>(m.size());
}

double mse(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "mse: shape mismatch");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  const auto af = a.flat();
  const auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) {
    const double d = af[i] - bf[i];
    sum += d * d;
  }
  return sum / static_cast<double>(af.size());
}

}  // namespace evvo::learn
