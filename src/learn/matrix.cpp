#include "learn/matrix.hpp"

#include <stdexcept>

namespace evvo::learn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols) throw std::invalid_argument("Matrix: data size mismatch");
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("Matrix::gather_rows: index out of range");
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

namespace {
void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}
}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_bt: dimension mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const auto brow = b.row(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      c(i, j) = sum;
    }
  }
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at: dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto arow = a.row(k);
    const auto brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  }
  return t;
}

void axpy(Matrix& a, const Matrix& b, double scale) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "axpy: shape mismatch");
  auto af = a.flat();
  const auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) af[i] += scale * bf[i];
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape mismatch");
  Matrix c(a.rows(), a.cols());
  auto cf = c.flat();
  const auto af = a.flat();
  const auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) cf[i] = af[i] * bf[i];
  return c;
}

double mean_squared(const Matrix& m) {
  if (m.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : m.flat()) sum += x * x;
  return sum / static_cast<double>(m.size());
}

double mse(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(), "mse: shape mismatch");
  if (a.empty()) return 0.0;
  double sum = 0.0;
  const auto af = a.flat();
  const auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) {
    const double d = af[i] - bf[i];
    sum += d * d;
  }
  return sum / static_cast<double>(af.size());
}

}  // namespace evvo::learn
