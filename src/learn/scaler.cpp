#include "learn/scaler.hpp"

#include <algorithm>
#include <stdexcept>

namespace evvo::learn {

void MinMaxScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler::fit: empty matrix");
  mins_.assign(x.cols(), 0.0);
  ranges_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double lo = x(0, c);
    double hi = x(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x(r, c));
      hi = std::max(hi, x(r, c));
    }
    mins_[c] = lo;
    ranges_[c] = std::max(hi - lo, 1e-12);
  }
}

namespace {
void require_fitted_width(std::size_t dim, const Matrix& x, const char* who) {
  if (dim == 0) throw std::logic_error(std::string(who) + ": scaler not fitted");
  if (x.cols() != dim) throw std::invalid_argument(std::string(who) + ": width mismatch");
}
}  // namespace

Matrix MinMaxScaler::transform(const Matrix& x) const {
  require_fitted_width(dim(), x, "MinMaxScaler::transform");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = transform_value(x(r, c), c);
  }
  return out;
}

Matrix MinMaxScaler::inverse_transform(const Matrix& x) const {
  require_fitted_width(dim(), x, "MinMaxScaler::inverse_transform");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = inverse_value(x(r, c), c);
  }
  return out;
}

double MinMaxScaler::transform_value(double v, std::size_t column) const {
  return (v - mins_.at(column)) / ranges_.at(column);
}

double MinMaxScaler::inverse_value(double v, std::size_t column) const {
  return v * ranges_.at(column) + mins_.at(column);
}

}  // namespace evvo::learn
