#include "learn/dense_layer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/simd.hpp"

namespace evvo::learn {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(out_dim, in_dim),
      b_(1, out_dim),
      grad_w_(out_dim, in_dim),
      grad_b_(1, out_dim),
      m_w_(out_dim, in_dim),
      v_w_(out_dim, in_dim),
      m_b_(1, out_dim),
      v_b_(1, out_dim) {
  if (in_dim == 0 || out_dim == 0) throw std::invalid_argument("DenseLayer: zero dimension");
  // Glorot-uniform initialization.
  const double limit = std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (double& w : w_.flat()) w = rng.uniform(-limit, limit);
}

Matrix DenseLayer::infer(const Matrix& x) const {
  if (x.cols() != in_dim_) throw std::invalid_argument("DenseLayer: input width mismatch");
  Matrix y = matmul_bt(x, w_);  // [n x out]
  for (std::size_t i = 0; i < y.rows(); ++i) {
    axpy(y.row(i), b_.flat());           // bias
    activate_span(act_, y.row(i));       // vectorized activation
  }
  return y;
}

Matrix DenseLayer::forward(const Matrix& x) {
  cached_input_ = x;
  cached_output_ = infer(x);
  return cached_output_;
}

Matrix DenseLayer::backward(const Matrix& grad_output) {
  if (grad_output.rows() != cached_output_.rows() || grad_output.cols() != out_dim_)
    throw std::invalid_argument("DenseLayer::backward: gradient shape mismatch");
  // dL/dz = dL/dy * f'(y)
  Matrix grad_z(grad_output.rows(), out_dim_);
  for (std::size_t i = 0; i < grad_output.rows(); ++i) {
    for (std::size_t j = 0; j < out_dim_; ++j) {
      grad_z(i, j) =
          grad_output(i, j) * activate_derivative_from_output(act_, cached_output_(i, j));
    }
  }
  // dL/dW = grad_z^T * X, dL/db = column sums of grad_z, dL/dX = grad_z * W.
  axpy(grad_w_, matmul_at(grad_z, cached_input_));
  // Vector lanes run over columns, so each column still accumulates in
  // ascending-row order (same sum as the scalar loop).
  for (std::size_t i = 0; i < grad_z.rows(); ++i) axpy(grad_b_.flat(), grad_z.row(i));
  return matmul(grad_z, w_);
}

namespace {
void adam_update(Matrix& param, Matrix& grad, Matrix& m, Matrix& v, const AdamConfig& cfg,
                 long step, double l2) {
  auto p = param.flat();
  auto g = grad.flat();
  auto mf = m.flat();
  auto vf = v.flat();
  const double bc1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(step));
  // Elementwise moment/parameter update, vector lanes over the flat index
  // (per-element arithmetic matches the scalar tail exactly).
  namespace sd = common::simd;
  constexpr std::size_t W = sd::VecD::kWidth;
  const sd::VecD vb1 = sd::VecD::broadcast(cfg.beta1);
  const sd::VecD vb2 = sd::VecD::broadcast(cfg.beta2);
  const sd::VecD vo1 = sd::VecD::broadcast(1.0 - cfg.beta1);
  const sd::VecD vo2 = sd::VecD::broadcast(1.0 - cfg.beta2);
  const sd::VecD vbc1 = sd::VecD::broadcast(bc1);
  const sd::VecD vbc2 = sd::VecD::broadcast(bc2);
  const sd::VecD vl2 = sd::VecD::broadcast(l2);
  const sd::VecD vlr = sd::VecD::broadcast(cfg.learning_rate);
  const sd::VecD veps = sd::VecD::broadcast(cfg.epsilon);
  std::size_t i = 0;
  for (; i + W <= p.size(); i += W) {
    const sd::VecD pv = sd::VecD::load(p.data() + i);
    const sd::VecD gi = sd::VecD::load(g.data() + i) + vl2 * pv;
    const sd::VecD mv = vb1 * sd::VecD::load(mf.data() + i) + vo1 * gi;
    const sd::VecD vv = vb2 * sd::VecD::load(vf.data() + i) + vo2 * gi * gi;
    mv.store(mf.data() + i);
    vv.store(vf.data() + i);
    const sd::VecD m_hat = mv / vbc1;
    const sd::VecD v_hat = vv / vbc2;
    (pv - vlr * m_hat / (sd::sqrt(v_hat) + veps)).store(p.data() + i);
  }
  for (; i < p.size(); ++i) {
    const double gi = g[i] + l2 * p[i];
    mf[i] = cfg.beta1 * mf[i] + (1.0 - cfg.beta1) * gi;
    vf[i] = cfg.beta2 * vf[i] + (1.0 - cfg.beta2) * gi * gi;
    const double m_hat = mf[i] / bc1;
    const double v_hat = vf[i] / bc2;
    p[i] -= cfg.learning_rate * m_hat / (std::sqrt(v_hat) + cfg.epsilon);
  }
}
}  // namespace

void DenseLayer::adam_step(const AdamConfig& cfg, long step) {
  if (step < 1) throw std::invalid_argument("DenseLayer::adam_step: step must be >= 1");
  adam_update(w_, grad_w_, m_w_, v_w_, cfg, step, cfg.l2);
  adam_update(b_, grad_b_, m_b_, v_b_, cfg, step, 0.0);
  zero_grad();
}

void DenseLayer::zero_grad() {
  grad_w_.fill(0.0);
  grad_b_.fill(0.0);
}

}  // namespace evvo::learn
