#include "learn/dense_layer.hpp"

#include <cmath>
#include <stdexcept>

namespace evvo::learn {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(out_dim, in_dim),
      b_(1, out_dim),
      grad_w_(out_dim, in_dim),
      grad_b_(1, out_dim),
      m_w_(out_dim, in_dim),
      v_w_(out_dim, in_dim),
      m_b_(1, out_dim),
      v_b_(1, out_dim) {
  if (in_dim == 0 || out_dim == 0) throw std::invalid_argument("DenseLayer: zero dimension");
  // Glorot-uniform initialization.
  const double limit = std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (double& w : w_.flat()) w = rng.uniform(-limit, limit);
}

Matrix DenseLayer::infer(const Matrix& x) const {
  if (x.cols() != in_dim_) throw std::invalid_argument("DenseLayer: input width mismatch");
  Matrix y = matmul_bt(x, w_);  // [n x out]
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto row = y.row(i);
    for (std::size_t j = 0; j < out_dim_; ++j) row[j] = activate(act_, row[j] + b_(0, j));
  }
  return y;
}

Matrix DenseLayer::forward(const Matrix& x) {
  cached_input_ = x;
  cached_output_ = infer(x);
  return cached_output_;
}

Matrix DenseLayer::backward(const Matrix& grad_output) {
  if (grad_output.rows() != cached_output_.rows() || grad_output.cols() != out_dim_)
    throw std::invalid_argument("DenseLayer::backward: gradient shape mismatch");
  // dL/dz = dL/dy * f'(y)
  Matrix grad_z(grad_output.rows(), out_dim_);
  for (std::size_t i = 0; i < grad_output.rows(); ++i) {
    for (std::size_t j = 0; j < out_dim_; ++j) {
      grad_z(i, j) =
          grad_output(i, j) * activate_derivative_from_output(act_, cached_output_(i, j));
    }
  }
  // dL/dW = grad_z^T * X, dL/db = column sums of grad_z, dL/dX = grad_z * W.
  axpy(grad_w_, matmul_at(grad_z, cached_input_));
  for (std::size_t i = 0; i < grad_z.rows(); ++i) {
    for (std::size_t j = 0; j < out_dim_; ++j) grad_b_(0, j) += grad_z(i, j);
  }
  return matmul(grad_z, w_);
}

namespace {
void adam_update(Matrix& param, Matrix& grad, Matrix& m, Matrix& v, const AdamConfig& cfg,
                 long step, double l2) {
  auto p = param.flat();
  auto g = grad.flat();
  auto mf = m.flat();
  auto vf = v.flat();
  const double bc1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(step));
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double gi = g[i] + l2 * p[i];
    mf[i] = cfg.beta1 * mf[i] + (1.0 - cfg.beta1) * gi;
    vf[i] = cfg.beta2 * vf[i] + (1.0 - cfg.beta2) * gi * gi;
    const double m_hat = mf[i] / bc1;
    const double v_hat = vf[i] / bc2;
    p[i] -= cfg.learning_rate * m_hat / (std::sqrt(v_hat) + cfg.epsilon);
  }
}
}  // namespace

void DenseLayer::adam_step(const AdamConfig& cfg, long step) {
  if (step < 1) throw std::invalid_argument("DenseLayer::adam_step: step must be >= 1");
  adam_update(w_, grad_w_, m_w_, v_w_, cfg, step, cfg.l2);
  adam_update(b_, grad_b_, m_b_, v_b_, cfg, step, 0.0);
  zero_grad();
}

void DenseLayer::zero_grad() {
  grad_w_.fill(0.0);
  grad_b_.fill(0.0);
}

}  // namespace evvo::learn
