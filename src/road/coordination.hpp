// Fixed-time signal coordination ("green wave") utilities.
//
// The paper's corridor has uncoordinated signals, which is exactly where
// queue-aware planning pays off. These helpers construct the opposite regime
// - offsets aligned so a vehicle cruising at the progression speed meets
// every onset of green - to quantify how much of the method's advantage
// survives under good coordination (ablation A11).
#pragma once

#include "road/corridor.hpp"

namespace evvo::road {

/// Returns a copy of the corridor whose signal offsets form a green wave for
/// a vehicle departing position 0 at time `depart_s` and cruising at
/// `progression_speed_ms`: each light's green begins `lead_s` seconds before
/// that vehicle arrives.
Corridor coordinate_for_progression(const Corridor& corridor, double progression_speed_ms,
                                    double depart_s = 0.0, double lead_s = 2.0);

/// Progression quality: the fraction of lights a constant-speed vehicle
/// departing at `depart_s` crosses on green (1.0 = perfect wave).
double progression_quality(const Corridor& corridor, double speed_ms, double depart_s);

/// Bandwidth of the wave: the widest interval of departure times (within one
/// hyperperiod-like scan window) for which a constant-speed vehicle crosses
/// every light on green. Returns seconds (0 when no departure works).
double progression_bandwidth(const Corridor& corridor, double speed_ms, double scan_window_s = 120.0,
                             double dt = 0.5);

}  // namespace evvo::road
