#include "road/signals.hpp"

#include <cmath>
#include <stdexcept>

namespace evvo::road {

TrafficLight::TrafficLight(double position_m, double red_s, double green_s, double offset_s)
    : position_m_(position_m), red_s_(red_s), green_s_(green_s), offset_s_(offset_s) {
  if (position_m_ < 0.0) throw std::invalid_argument("TrafficLight: position must be >= 0");
  if (red_s_ <= 0.0 || green_s_ <= 0.0)
    throw std::invalid_argument("TrafficLight: phase durations must be positive");
}

double TrafficLight::time_into_cycle(double t) const {
  const double cycle = cycle_duration();
  double phase = std::fmod(t - offset_s_, cycle);
  if (phase < 0.0) phase += cycle;
  return phase;
}

bool TrafficLight::is_green(double t) const { return time_into_cycle(t) >= red_s_; }

double TrafficLight::cycle_start(double t) const { return t - time_into_cycle(t); }

double TrafficLight::next_green(double t) const {
  if (is_green(t)) return t;
  return cycle_start(t) + red_s_;
}

std::vector<TimeWindow> TrafficLight::green_windows(double t0, double t1) const {
  std::vector<TimeWindow> windows;
  if (t1 <= t0) return windows;
  for (double start = cycle_start(t0); start < t1; start += cycle_duration()) {
    const TimeWindow green{start + red_s_, start + cycle_duration()};
    const TimeWindow clipped{std::max(green.start_s, t0), std::min(green.end_s, t1)};
    if (clipped.duration() > 0.0) windows.push_back(clipped);
  }
  return windows;
}

}  // namespace evvo::road
