#include "road/coordination.hpp"

#include <stdexcept>

namespace evvo::road {

Corridor coordinate_for_progression(const Corridor& corridor, double progression_speed_ms,
                                    double depart_s, double lead_s) {
  if (progression_speed_ms <= 0.0)
    throw std::invalid_argument("coordinate_for_progression: speed must be positive");
  Corridor coordinated{corridor.route, {}, corridor.stop_signs};
  for (const TrafficLight& light : corridor.lights) {
    const double arrival = depart_s + light.position() / progression_speed_ms;
    // The cycle is red-first: green begins offset + red. Choose the offset so
    // green starts lead_s before the arrival.
    const double offset = arrival - lead_s - light.red_duration();
    coordinated.lights.emplace_back(light.position(), light.red_duration(),
                                    light.green_duration(), offset);
  }
  return coordinated;
}

double progression_quality(const Corridor& corridor, double speed_ms, double depart_s) {
  if (speed_ms <= 0.0) throw std::invalid_argument("progression_quality: speed must be positive");
  if (corridor.lights.empty()) return 1.0;
  int green = 0;
  for (const TrafficLight& light : corridor.lights) {
    if (light.is_green(depart_s + light.position() / speed_ms)) ++green;
  }
  return static_cast<double>(green) / static_cast<double>(corridor.lights.size());
}

double progression_bandwidth(const Corridor& corridor, double speed_ms, double scan_window_s,
                             double dt) {
  if (dt <= 0.0) throw std::invalid_argument("progression_bandwidth: dt must be positive");
  double best = 0.0;
  double current = 0.0;
  for (double t = 0.0; t <= scan_window_s; t += dt) {
    if (progression_quality(corridor, speed_ms, t) >= 1.0) {
      current += dt;
      best = std::max(best, current);
    } else {
      current = 0.0;
    }
  }
  return best;
}

}  // namespace evvo::road
