#include "road/corridor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/random.hpp"

namespace evvo::road {

namespace {

/// Builds contiguous segments over [0, length] with reduced-speed zones around
/// each light and an optional sinusoidal grade profile.
std::vector<RoadSegment> build_segments(const CorridorConfig& c) {
  // Collect breakpoints: zone edges around each light.
  std::vector<double> breaks{0.0, c.length_m};
  const auto add_zone = [&](double center) {
    breaks.push_back(std::max(0.0, center - c.light_zone_half_width_m));
    breaks.push_back(std::min(c.length_m, center + c.light_zone_half_width_m));
  };
  add_zone(c.light1_m);
  add_zone(c.light2_m);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::abs(a - b) < 1e-9; }),
               breaks.end());

  const auto in_light_zone = [&](double s) {
    return std::abs(s - c.light1_m) <= c.light_zone_half_width_m ||
           std::abs(s - c.light2_m) <= c.light_zone_half_width_m;
  };

  std::vector<RoadSegment> segments;
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i) {
    RoadSegment seg;
    seg.start_m = breaks[i];
    seg.end_m = breaks[i + 1];
    const double mid = 0.5 * (seg.start_m + seg.end_m);
    seg.speed_limit_ms = c.speed_limit_ms;
    seg.min_speed_ms = in_light_zone(mid) ? c.light_zone_min_speed_ms : 0.0;
    if (c.grade_amplitude_rad > 0.0) {
      // One gentle rolling period over the corridor.
      seg.grade_rad = c.grade_amplitude_rad *
                      std::sin(2.0 * std::numbers::pi * mid / c.length_m);
    }
    segments.push_back(seg);
  }
  return segments;
}

}  // namespace

Corridor make_us25_corridor(const CorridorConfig& c) {
  if (!(0.0 < c.stop_sign_m && c.stop_sign_m < c.light1_m && c.light1_m < c.light2_m &&
        c.light2_m < c.length_m))
    throw std::invalid_argument("make_us25_corridor: elements must be ordered within the corridor");
  Corridor corridor{Route(build_segments(c)),
                    {TrafficLight(c.light1_m, c.red_s, c.green_s, c.light1_offset_s),
                     TrafficLight(c.light2_m, c.red_s, c.green_s, c.light2_offset_s)},
                    {StopSign{c.stop_sign_m}}};
  return corridor;
}

Corridor corridor_suffix(const Corridor& corridor, double from) {
  Corridor rest{corridor.route.suffix(from), {}, {}};
  for (const TrafficLight& light : corridor.lights) {
    if (light.position() > from + 1e-9) {
      rest.lights.emplace_back(light.position() - from, light.red_duration(),
                               light.green_duration(), light.offset());
    }
  }
  for (const StopSign& sign : corridor.stop_signs) {
    if (sign.position_m > from + 1e-9) {
      rest.stop_signs.push_back(StopSign{sign.position_m - from, sign.min_stop_s});
    }
  }
  return rest;
}

Corridor make_random_corridor(std::uint64_t seed, const RandomCorridorConfig& c) {
  Rng rng(seed);
  const double length = rng.uniform(c.min_length_m, c.max_length_m);

  // Place regulatory elements with at least min_element_gap_m spacing and a
  // margin from both ends.
  const int n_lights = rng.uniform_int(c.min_lights, c.max_lights);
  const int n_signs = rng.uniform_int(0, c.max_stop_signs);
  const int n_elements = n_lights + n_signs;
  const double margin = c.min_element_gap_m;
  std::vector<double> positions;
  int attempts = 0;
  while (static_cast<int>(positions.size()) < n_elements && attempts < 10000) {
    ++attempts;
    const double candidate = rng.uniform(margin, length - margin);
    bool ok = true;
    for (const double p : positions) ok &= std::abs(p - candidate) >= c.min_element_gap_m;
    if (ok) positions.push_back(candidate);
  }
  // Positions stay in generation order so the light/sign split below is not
  // positionally biased; each list is sorted at the end.

  // 2-4 speed-limit segments.
  const int n_segments = rng.uniform_int(2, 4);
  std::vector<RoadSegment> segments;
  double cursor = 0.0;
  for (int i = 0; i < n_segments; ++i) {
    RoadSegment seg;
    seg.start_m = cursor;
    seg.end_m = i + 1 == n_segments
                    ? length
                    : cursor + (length - cursor) / static_cast<double>(n_segments - i);
    seg.speed_limit_ms = rng.uniform(c.min_speed_limit_ms, c.max_speed_limit_ms);
    segments.push_back(seg);
    cursor = seg.end_m;
  }

  Corridor corridor{Route(std::move(segments)), {}, {}};
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (static_cast<int>(i) < n_lights) {
      const double red = rng.uniform(c.min_phase_s, c.max_phase_s);
      const double green = rng.uniform(c.min_phase_s, c.max_phase_s);
      const double offset = rng.uniform(0.0, red + green);
      corridor.lights.emplace_back(positions[i], red, green, offset);
    } else {
      corridor.stop_signs.push_back(StopSign{positions[i]});
    }
  }
  // Keep lights and signs individually sorted by position.
  std::sort(corridor.lights.begin(), corridor.lights.end(),
            [](const TrafficLight& a, const TrafficLight& b) { return a.position() < b.position(); });
  std::sort(corridor.stop_signs.begin(), corridor.stop_signs.end(),
            [](const StopSign& a, const StopSign& b) { return a.position_m < b.position_m; });
  return corridor;
}

Corridor make_single_light_corridor(double length_m, double light_m, double red_s, double green_s,
                                    double speed_limit_ms) {
  if (!(0.0 < light_m && light_m < length_m))
    throw std::invalid_argument("make_single_light_corridor: light must be inside the corridor");
  std::vector<RoadSegment> segments{{0.0, length_m, speed_limit_ms, 0.0, 0.0}};
  return Corridor{Route(std::move(segments)), {TrafficLight(light_m, red_s, green_s)}, {}};
}

}  // namespace evvo::road
