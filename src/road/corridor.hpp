// The experimental corridor: the 4.2 km US-25 section at Greenville, SC
// (paper Sec. III-A, Fig. 2) with one stop sign and two fixed-time signals.
#pragma once

#include <cstdint>
#include <vector>

#include "road/route.hpp"
#include "road/signals.hpp"

namespace evvo::road {

/// A route bundled with its regulatory elements; the unit the planner,
/// the trace generator, and the traffic simulator all consume.
struct Corridor {
  Route route;
  std::vector<TrafficLight> lights;      ///< sorted by position
  std::vector<StopSign> stop_signs;      ///< sorted by position

  double length() const { return route.length(); }
};

/// Parameters of the US-25 corridor. The paper's OCR garbles the element
/// positions; the restorations (490 m sign, 1820 m / 3460 m lights on a
/// 4200 m section) are documented in DESIGN.md. Signal timing is the paper's
/// probed cycle: t_red = t_green = 30 s.
struct CorridorConfig {
  double length_m = 4200.0;
  double speed_limit_ms = 20.1;        ///< 45 mph along the section
  double light_zone_min_speed_ms = 13.4;  ///< v_min near signals (30 mph)
  double light_zone_half_width_m = 150.0; ///< extent of the reduced-speed zone
  double stop_sign_m = 490.0;
  double light1_m = 1820.0;
  double light2_m = 3460.0;
  double red_s = 30.0;
  double green_s = 30.0;
  /// Signal offsets are chosen so that an uninformed (queue-oblivious) plan
  /// departing after the warm-up period naturally arrives at a green onset
  /// while the queue is still discharging - the situation the paper's Fig. 6
  /// probes. The two signals are uncoordinated.
  double light1_offset_s = 20.0;
  double light2_offset_s = 60.0;
  /// Optional rolling-terrain amplitude [rad]; 0 reproduces the paper's flat
  /// experiments, > 0 exercises the road-grade extension (paper future work).
  double grade_amplitude_rad = 0.0;
};

/// Builds the US-25 experimental corridor.
Corridor make_us25_corridor(const CorridorConfig& config = {});

/// The remaining corridor from position `from` (rebased to start at 0);
/// regulatory elements already passed are dropped, signal offsets are kept in
/// absolute time. Used by mid-route replanning.
Corridor corridor_suffix(const Corridor& corridor, double from);

/// Parameters for randomized corridor generation (property testing and
/// scaling studies beyond the single US-25 geometry).
struct RandomCorridorConfig {
  double min_length_m = 2000.0;
  double max_length_m = 6000.0;
  int min_lights = 1;
  int max_lights = 4;
  int max_stop_signs = 1;
  double min_element_gap_m = 400.0;  ///< spacing between regulatory elements
  double min_phase_s = 20.0;
  double max_phase_s = 45.0;
  double min_speed_limit_ms = 14.0;
  double max_speed_limit_ms = 25.0;
};

/// Generates a random but well-formed corridor from a seed: ordered elements
/// with generous spacing, per-light random phases and offsets, and 2-4 road
/// segments with differing speed limits.
Corridor make_random_corridor(std::uint64_t seed, const RandomCorridorConfig& config = {});

/// A short single-light corridor used by unit tests and the quickstart.
Corridor make_single_light_corridor(double length_m = 1000.0, double light_m = 600.0,
                                    double red_s = 30.0, double green_s = 30.0,
                                    double speed_limit_ms = 15.0);

}  // namespace evvo::road
