// Road geometry: a 1-D route made of contiguous segments with speed limits
// and gradients. This is the world model the optimizer plans over (Eq. 7).
#pragma once

#include <vector>

namespace evvo::road {

/// One homogeneous stretch of road.
struct RoadSegment {
  double start_m = 0.0;
  double end_m = 0.0;
  double speed_limit_ms = 20.0;  ///< v_max(s) of Eq. (7a)
  double min_speed_ms = 0.0;     ///< v_min(s) of Eq. (7a); advisory lower bound
  double grade_rad = 0.0;        ///< gradient theta (positive = uphill)

  double length() const { return end_m - start_m; }
};

/// An ordered, gap-free sequence of segments from 0 to length().
class Route {
 public:
  /// Segments must be contiguous, start at 0, and have positive length.
  explicit Route(std::vector<RoadSegment> segments);

  double length() const { return segments_.back().end_m; }
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Segment containing position s (s clamped into [0, length]).
  const RoadSegment& segment_at(double s) const;

  double speed_limit_at(double s) const { return segment_at(s).speed_limit_ms; }
  double min_speed_at(double s) const { return segment_at(s).min_speed_ms; }
  double grade_at(double s) const { return segment_at(s).grade_rad; }

  /// Highest speed limit along the route (sizes the optimizer's velocity grid).
  double max_speed_limit() const;

  /// The remaining route from position `from` (rebased so it starts at 0).
  /// Used by mid-route replanning. Requires 0 <= from < length().
  Route suffix(double from) const;

  /// Total climb: integral of sin(grade) ds [m of elevation gain].
  double elevation_gain() const;

 private:
  std::vector<RoadSegment> segments_;
};

}  // namespace evvo::road
