// Fixed-time traffic signals and stop signs.
//
// The paper's signal cycle (Sec. II-B2) runs red first then green: within one
// cycle, [0, t_red) is red and [t_red, t_red + t_green) is green. An offset
// shifts the cycle in absolute time.
#pragma once

#include <vector>

namespace evvo::road {

/// Absolute time interval [start, end).
struct TimeWindow {
  double start_s = 0.0;
  double end_s = 0.0;

  double duration() const { return end_s - start_s; }
  bool contains(double t) const { return t >= start_s && t < end_s; }
};

/// A fixed-time two-phase traffic light.
class TrafficLight {
 public:
  /// `offset_s` is the absolute time at which a red phase begins.
  TrafficLight(double position_m, double red_s, double green_s, double offset_s = 0.0);

  double position() const { return position_m_; }
  double red_duration() const { return red_s_; }
  double green_duration() const { return green_s_; }
  double cycle_duration() const { return red_s_ + green_s_; }
  double offset() const { return offset_s_; }

  /// Time since the current cycle's red phase began, in [0, cycle).
  double time_into_cycle(double t) const;

  bool is_green(double t) const;
  bool is_red(double t) const { return !is_green(t); }

  /// Start time of the cycle containing t (absolute seconds).
  double cycle_start(double t) const;

  /// Next time >= t at which the light is green (t itself if already green).
  double next_green(double t) const;

  /// All green windows intersecting [t0, t1], clipped to that range.
  std::vector<TimeWindow> green_windows(double t0, double t1) const;

 private:
  double position_m_;
  double red_s_;
  double green_s_;
  double offset_s_;
};

/// A stop sign: the plan must reach v = 0 here (Eq. 7c).
struct StopSign {
  double position_m = 0.0;
  double min_stop_s = 2.0;  ///< dwell a real driver spends at the sign
};

}  // namespace evvo::road
