#include "road/route.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evvo::road {

Route::Route(std::vector<RoadSegment> segments) : segments_(std::move(segments)) {
  if (segments_.empty()) throw std::invalid_argument("Route: needs at least one segment");
  if (std::abs(segments_.front().start_m) > 1e-9)
    throw std::invalid_argument("Route: first segment must start at 0");
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const RoadSegment& seg = segments_[i];
    if (seg.length() <= 0.0) throw std::invalid_argument("Route: segment length must be positive");
    if (seg.speed_limit_ms <= 0.0) throw std::invalid_argument("Route: speed limit must be positive");
    if (seg.min_speed_ms < 0.0 || seg.min_speed_ms > seg.speed_limit_ms)
      throw std::invalid_argument("Route: min speed must be in [0, speed limit]");
    if (i > 0 && std::abs(seg.start_m - segments_[i - 1].end_m) > 1e-9)
      throw std::invalid_argument("Route: segments must be contiguous");
  }
}

const RoadSegment& Route::segment_at(double s) const {
  const double pos = std::clamp(s, 0.0, length());
  // Binary search over segment ends.
  std::size_t lo = 0;
  std::size_t hi = segments_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (segments_[mid].end_m < pos) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return segments_[lo];
}

double Route::max_speed_limit() const {
  double best = 0.0;
  for (const auto& seg : segments_) best = std::max(best, seg.speed_limit_ms);
  return best;
}

Route Route::suffix(double from) const {
  if (from < 0.0 || from >= length())
    throw std::invalid_argument("Route::suffix: position outside the route");
  std::vector<RoadSegment> rest;
  for (const RoadSegment& seg : segments_) {
    if (seg.end_m <= from + 1e-9) continue;
    RoadSegment cut = seg;
    cut.start_m = std::max(seg.start_m, from) - from;
    cut.end_m = seg.end_m - from;
    rest.push_back(cut);
  }
  return Route(std::move(rest));
}

double Route::elevation_gain() const {
  double gain = 0.0;
  for (const auto& seg : segments_) {
    const double rise = seg.length() * std::sin(seg.grade_rad);
    if (rise > 0.0) gain += rise;
  }
  return gain;
}

}  // namespace evvo::road
