#include "pilot/pilot.hpp"

#include <cmath>
#include <stdexcept>

#include "common/logging.hpp"

namespace evvo::pilot {

namespace {
constexpr double kCreepSpeed_ms = 0.4;  ///< floor so stop points are reached (see sim/traci)
}

PilotResult drive_with_replanning(sim::Microsim& simulator, const core::VelocityPlanner& planner,
                                  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                                  const PilotConfig& config) {
  const double end = planner.corridor().length();
  core::PlannedProfile plan = planner.plan(Seconds(simulator.time()), arrivals);

  const int ego_id = simulator.spawn_ego(0.0, config.ego);
  PilotResult result;
  result.start_time_s = simulator.time();
  std::vector<double> speeds{0.0};
  result.positions.push_back(0.0);

  const double deadline = simulator.time() + config.timeout_s;
  double next_check = simulator.time() + config.check_interval_s;
  while (simulator.time() < deadline) {
    const sim::SimVehicle* ego = simulator.find(ego_id);
    if (!ego) throw std::logic_error("drive_with_replanning: ego vanished");
    const double pos = ego->position_m;
    if (pos >= end) {
      result.completed = true;
      break;
    }
    // Drift check: compare the wall clock against the plan's schedule at the
    // current position; replan from the live state when it diverges.
    if (simulator.time() >= next_check && result.replans < config.max_replans && pos > 1.0 &&
        pos < end - 2.0 * planner.config().resolution.ds_m) {
      next_check = simulator.time() + config.check_interval_s;
      const double drift = simulator.time() - plan.time_at_position(pos);
      if (std::abs(drift) > config.replan_drift_s) {
        plan = planner.replan(Meters(pos), MetersPerSecond(ego->speed_ms),
                              Seconds(simulator.time()), arrivals);
        ++result.replans;
        EVVO_LOG(kInfo, "pilot") << "replan #" << result.replans << " at " << pos << " m, drift "
                                 << drift << " s";
      }
    }
    simulator.command_ego_speed(std::max(plan.speed_at_position(pos), kCreepSpeed_ms));
    simulator.step();
    const sim::SimVehicle* after = simulator.find(ego_id);
    speeds.push_back(after->speed_ms);
    result.positions.push_back(after->position_m);
  }
  result.finish_time_s = simulator.time();
  result.cycle = ev::DriveCycle(std::move(speeds), simulator.config().step_s);
  simulator.remove_ego();
  return result;
}

}  // namespace evvo::pilot
