// Closed-loop adaptive pilot: drives a planned profile through the traffic
// simulator, monitors schedule drift, and replans mid-route when the traffic
// pushes the vehicle off its plan.
//
// The paper's system is open-loop (plan once, execute). In deployment a
// vehicle that is delayed - a slower leader, an unexpected queue - will miss
// its zero-queue windows at downstream signals, so the natural extension is
// to re-run the DP from the current (position, speed, time), which the
// time-expanded solver supports directly (DpProblem::initial_speed).
#pragma once

#include <memory>
#include <vector>

#include "core/planner.hpp"
#include "ev/drive_cycle.hpp"
#include "sim/microsim.hpp"

namespace evvo::pilot {

struct PilotConfig {
  /// Replan when |actual time - planned time at current position| exceeds this.
  double replan_drift_s = 4.0;
  /// How often the drift is checked [s of sim time].
  double check_interval_s = 5.0;
  /// Hard cap on replans per trip (each costs one DP solve).
  int max_replans = 5;
  /// Give up after this much sim time.
  double timeout_s = 900.0;
  /// Ego driver envelope (acceleration/braking capability in the simulator).
  sim::DriverParams ego{};
};

struct [[nodiscard]] PilotResult {
  ev::DriveCycle cycle{std::vector<double>{}, 1.0};  ///< recorded ego speeds per step
  std::vector<double> positions;
  bool completed = false;
  int replans = 0;
  double start_time_s = 0.0;
  double finish_time_s = 0.0;

  double trip_time() const { return finish_time_s - start_time_s; }
};

/// Drives the full corridor in `simulator` (which must be warmed up to the
/// desired departure time), planning with `planner` and replanning on drift.
/// `arrivals` feeds the queue predictor on every (re)plan.
PilotResult drive_with_replanning(sim::Microsim& simulator, const core::VelocityPlanner& planner,
                                  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                                  const PilotConfig& config = {});

}  // namespace evvo::pilot
