#include "cloud/plan_service.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace evvo::cloud {

double signal_hyperperiod(const std::vector<road::TrafficLight>& lights) {
  long lcm_ds = 0;  // deciseconds
  for (const auto& light : lights) {
    const long cycle_ds = std::lround(light.cycle_duration() * 10.0);
    if (cycle_ds <= 0) throw std::invalid_argument("signal_hyperperiod: non-positive cycle");
    lcm_ds = lcm_ds == 0 ? cycle_ds : std::lcm(lcm_ds, cycle_ds);
  }
  return static_cast<double>(lcm_ds) / 10.0;
}

PlanService::PlanService(core::VelocityPlanner planner,
                         std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                         CacheConfig cache)
    : planner_(std::move(planner)), arrivals_(std::move(arrivals)), cache_config_(cache),
      hyperperiod_s_(signal_hyperperiod(planner_.corridor().lights)) {
  // Replan keys quantize position to the solver's own grid (the same
  // rounding solve_dp applies to ds_m).
  const double length = planner_.corridor().length();
  const double n_hops =
      std::max(1.0, std::round(length / planner_.config().resolution.ds_m));
  grid_ds_m_ = length / n_hops;
  if (cache_config_.capacity == 0) throw std::invalid_argument("PlanService: zero cache capacity");
  if (cache_config_.phase_quantum_s <= 0.0 || cache_config_.demand_quantum_veh_h <= 0.0)
    throw std::invalid_argument("PlanService: quanta must be positive");
  if (planner_.config().policy == core::SignalPolicy::kQueueAware && !arrivals_)
    throw std::invalid_argument("PlanService: queue-aware planning needs arrival rates");
}

PlanService::~PlanService() = default;

PlanService::CacheKey PlanService::key_for(Seconds depart_time) const {
  const double depart_time_s = depart_time.value();  // .value() seam
  double phase = 0.0;
  if (hyperperiod_s_ > 0.0) {
    phase = std::fmod(depart_time_s, hyperperiod_s_);
    if (phase < 0.0) phase += hyperperiod_s_;
  }
  const double demand =
      arrivals_ ? arrivals_->arrival_rate_veh_h(Seconds(depart_time_s)) : 0.0;
  return CacheKey{std::lround(phase / cache_config_.phase_quantum_s),
                  std::lround(demand / cache_config_.demand_quantum_veh_h)};
}

void PlanService::insert_into_cache_locked(const CacheKey& key,
                                           const core::PlannedProfile& profile,
                                           double reference_time) {
  if (cache_.find(key) != cache_.end()) return;
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{profile, reference_time, lru_.begin()});
  if (cache_.size() > cache_config_.capacity) {
    const CacheKey victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
    EVVO_LOG(kDebug, "plan-service") << "evicted phase bin " << victim.phase_bin;
  }
}

PlanResponse PlanService::serve_cached(const CacheKey& key, int vehicle_id, Seconds request_time,
                                       const std::function<core::PlannedProfile()>& solve) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    common::MutexLock lock(mutex_);
    ++stats_.requests;
    if (key.layer >= 0) ++stats_.replans;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      const double shift = request_time.value() - it->second.reference_time;
      return PlanResponse{vehicle_id, it->second.profile.time_shifted(shift), true};
    }
    auto& slot = in_flight_[key];
    if (!slot) {
      slot = std::make_shared<InFlight>();
      leader = true;
      // Counted at takeoff so requests == cache_hits + solver_runs holds at
      // quiescence even if the solve throws.
      ++stats_.solver_runs;
    }
    flight = slot;
  }

  if (leader) {
    try {
      core::PlannedProfile profile = solve();
      {
        // Publish to the cache and retire the flight atomically: any request
        // arriving from here on hits the cache instead of the flight.
        common::MutexLock lock(mutex_);
        insert_into_cache_locked(key, profile, request_time.value());
        in_flight_.erase(key);
      }
      {
        common::MutexLock flight_lock(flight->mutex);
        flight->profile = profile;
        flight->reference_time = request_time.value();
        flight->done = true;
      }
      flight->completed.notify_all();
      return PlanResponse{vehicle_id, std::move(profile), false};
    } catch (...) {
      {
        common::MutexLock lock(mutex_);
        in_flight_.erase(key);
      }
      {
        common::MutexLock flight_lock(flight->mutex);
        flight->error = std::current_exception();
        flight->done = true;
      }
      flight->completed.notify_all();
      throw;
    }
  }

  // Follower: coalesce onto the leader's solve.
  std::optional<PlanResponse> response;
  {
    common::MutexLock flight_lock(flight->mutex);
    while (!flight->done) flight->completed.wait(flight->mutex);
    if (flight->error) std::rethrow_exception(flight->error);
    const double shift = request_time.value() - flight->reference_time;
    response.emplace(PlanResponse{vehicle_id, flight->profile->time_shifted(shift), true});
  }
  {
    common::MutexLock lock(mutex_);
    ++stats_.cache_hits;
    ++stats_.coalesced_hits;
  }
  return std::move(*response);
}

PlanResponse PlanService::request_plan(const PlanRequest& request) {
  const CacheKey key = key_for(Seconds(request.depart_time_s));
  return serve_cached(key, request.vehicle_id, Seconds(request.depart_time_s), [&] {
    return planner_.plan(Seconds(request.depart_time_s), arrivals_);
  });
}

PlanResponse PlanService::request_replan(const ReplanRequest& request) {
  if (request.position_m < 0.0 || request.position_m >= planner_.corridor().length())
    throw std::invalid_argument("PlanService::request_replan: position outside the corridor");

  // Segment-memo quantization: snap the state to its bin's grid point. Every
  // request in the bin is served the canonical state's plan (misses solve it,
  // hits time-shift it) - the same approximation the phase and demand bins
  // already make for departures.
  const double dv = planner_.config().resolution.dv_ms;
  const long n_hops = std::lround(planner_.corridor().length() / grid_ds_m_);
  const long layer =
      std::min(std::max(0L, std::lround(request.position_m / grid_ds_m_)), n_hops - 1);
  const long vlevel = std::max(0L, std::lround(request.speed_ms / dv));

  CacheKey key = key_for(Seconds(request.time_s));
  key.layer = layer;
  key.vlevel = vlevel;
  return serve_cached(key, request.vehicle_id, Seconds(request.time_s), [&, layer, vlevel] {
    return planner_.replan(Meters(static_cast<double>(layer) * grid_ds_m_),
                           MetersPerSecond(static_cast<double>(vlevel) * dv),
                           Seconds(request.time_s), arrivals_);
  });
}

std::vector<PlanResponse> PlanService::request_replans(std::span<const ReplanRequest> requests) {
  std::vector<std::optional<PlanResponse>> slots(requests.size());
  common::ThreadPool* pool = batch_pool();
  if (pool && requests.size() > 1) {
    pool->parallel_for(requests.size(),
                       [&](std::size_t i) { slots[i] = request_replan(requests[i]); });
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) slots[i] = request_replan(requests[i]);
  }
  std::vector<PlanResponse> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

common::ThreadPool* PlanService::batch_pool() {
  const unsigned want = common::ThreadPool::resolve_threads(cache_config_.batch_threads);
  if (want <= 1) return nullptr;
  common::MutexLock lock(mutex_);
  if (!batch_pool_) batch_pool_ = std::make_unique<common::ThreadPool>(want);
  return batch_pool_.get();
}

std::vector<PlanResponse> PlanService::request_plans(std::span<const PlanRequest> requests) {
  std::vector<std::optional<PlanResponse>> slots(requests.size());
  common::ThreadPool* pool = batch_pool();
  if (pool && requests.size() > 1) {
    pool->parallel_for(requests.size(),
                       [&](std::size_t i) { slots[i] = request_plan(requests[i]); });
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) slots[i] = request_plan(requests[i]);
  }
  std::vector<PlanResponse> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

ServiceStats PlanService::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace evvo::cloud
