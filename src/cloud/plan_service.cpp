#include "cloud/plan_service.hpp"

#include <cmath>

#include "common/logging.hpp"
#include <numeric>
#include <stdexcept>

namespace evvo::cloud {

double signal_hyperperiod(const std::vector<road::TrafficLight>& lights) {
  long lcm_ds = 0;  // deciseconds
  for (const auto& light : lights) {
    const long cycle_ds = std::lround(light.cycle_duration() * 10.0);
    if (cycle_ds <= 0) throw std::invalid_argument("signal_hyperperiod: non-positive cycle");
    lcm_ds = lcm_ds == 0 ? cycle_ds : std::lcm(lcm_ds, cycle_ds);
  }
  return static_cast<double>(lcm_ds) / 10.0;
}

PlanService::PlanService(core::VelocityPlanner planner,
                         std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                         CacheConfig cache)
    : planner_(std::move(planner)), arrivals_(std::move(arrivals)), cache_config_(cache),
      hyperperiod_s_(signal_hyperperiod(planner_.corridor().lights)) {
  if (cache_config_.capacity == 0) throw std::invalid_argument("PlanService: zero cache capacity");
  if (cache_config_.phase_quantum_s <= 0.0 || cache_config_.demand_quantum_veh_h <= 0.0)
    throw std::invalid_argument("PlanService: quanta must be positive");
  if (planner_.config().policy == core::SignalPolicy::kQueueAware && !arrivals_)
    throw std::invalid_argument("PlanService: queue-aware planning needs arrival rates");
}

PlanService::CacheKey PlanService::key_for(double depart_time_s) const {
  double phase = 0.0;
  if (hyperperiod_s_ > 0.0) {
    phase = std::fmod(depart_time_s, hyperperiod_s_);
    if (phase < 0.0) phase += hyperperiod_s_;
  }
  const double demand = arrivals_ ? arrivals_->arrival_rate_veh_h(depart_time_s) : 0.0;
  return CacheKey{std::lround(phase / cache_config_.phase_quantum_s),
                  std::lround(demand / cache_config_.demand_quantum_veh_h)};
}

PlanResponse PlanService::request_plan(const PlanRequest& request) {
  const CacheKey key = key_for(request.depart_time_s);
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      const double shift = request.depart_time_s - it->second.reference_depart;
      return PlanResponse{request.vehicle_id, it->second.profile.time_shifted(shift), true};
    }
  }

  // Solve outside the lock: planning dominates and requests for distinct keys
  // should proceed in parallel. A duplicate solve for the same key under
  // contention is tolerated (last writer wins).
  core::PlannedProfile profile = planner_.plan(request.depart_time_s, arrivals_);

  {
    std::lock_guard lock(mutex_);
    ++stats_.solver_runs;
    if (cache_.find(key) == cache_.end()) {
      lru_.push_front(key);
      cache_.emplace(key, CacheEntry{profile, request.depart_time_s, lru_.begin()});
      if (cache_.size() > cache_config_.capacity) {
        const CacheKey victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
        ++stats_.evictions;
        EVVO_LOG(kDebug, "plan-service") << "evicted phase bin " << victim.phase_bin;
      }
    }
  }
  return PlanResponse{request.vehicle_id, std::move(profile), false};
}

ServiceStats PlanService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace evvo::cloud
