#include "cloud/plan_service.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace evvo::cloud {

namespace {

/// Distinct telemetry namespace per service instance: tests and multi-
/// corridor fleets construct many services, and each one's counters must
/// start at zero for its stats() to mean anything.
int next_service_instance() {
  static std::atomic<int> next{0};
  // The ticket only names this instance's metrics; it orders no memory.
  // evvo-lint: allow(atomics-misuse)
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double signal_hyperperiod(const std::vector<road::TrafficLight>& lights) {
  long lcm_ds = 0;  // deciseconds
  for (const auto& light : lights) {
    const long cycle_ds = std::lround(light.cycle_duration() * 10.0);
    if (cycle_ds <= 0) throw std::invalid_argument("signal_hyperperiod: non-positive cycle");
    lcm_ds = lcm_ds == 0 ? cycle_ds : std::lcm(lcm_ds, cycle_ds);
  }
  return static_cast<double>(lcm_ds) / 10.0;
}

PlanService::PlanService(core::VelocityPlanner planner,
                         std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                         CacheConfig cache)
    : planner_(std::move(planner)), arrivals_(std::move(arrivals)), cache_config_(cache),
      hyperperiod_s_(signal_hyperperiod(planner_.corridor().lights)),
      route_hash_(hash_corridor(planner_.corridor())) {
  // Replan keys quantize position to the solver's own grid (the same
  // rounding solve_dp applies to ds_m).
  const double length = planner_.corridor().length();
  const double n_hops =
      std::max(1.0, std::round(length / planner_.config().resolution.ds_m));
  grid_ds_m_ = length / n_hops;
  if (cache_config_.capacity == 0) throw std::invalid_argument("PlanService: zero cache capacity");
  if (cache_config_.shards == 0) throw std::invalid_argument("PlanService: zero shards");
  if (cache_config_.phase_quantum_s <= 0.0 || cache_config_.demand_quantum_veh_h <= 0.0)
    throw std::invalid_argument("PlanService: quanta must be positive");
  if (cache_config_.ttl_s < 0.0) throw std::invalid_argument("PlanService: negative TTL");
  if (planner_.config().policy == core::SignalPolicy::kQueueAware && !arrivals_)
    throw std::invalid_argument("PlanService: queue-aware planning needs arrival rates");
  shards_.reserve(cache_config_.shards);
  const std::string prefix = "plan_service." + std::to_string(next_service_instance()) + ".";
  for (unsigned s = 0; s < cache_config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    const std::string sp = prefix + "shard" + std::to_string(s) + ".";
    shard->replans = &telemetry::counter(sp + "replans");
    shard->cache_hits = &telemetry::counter(sp + "cache_hits");
    shard->coalesced_hits = &telemetry::counter(sp + "coalesced_hits");
    shard->flight_waits = &telemetry::counter(sp + "flight_waits");
    shard->solver_runs = &telemetry::counter(sp + "solver_runs");
    shard->evictions = &telemetry::counter(sp + "evictions");
    shard->expirations = &telemetry::counter(sp + "expirations");
    shard->rejections = &telemetry::counter(sp + "rejections");
    shard->queue_depth = &telemetry::gauge(sp + "queue_depth");
    shards_.push_back(std::move(shard));
  }
  ticket_latency_ns_ = &telemetry::histogram(prefix + "ticket_ns", telemetry::Unit::kNanoseconds);
  batch_group_size_ = &telemetry::histogram(prefix + "batch_group_size", telemetry::Unit::kCount);
  batch_solve_ns_ =
      &telemetry::histogram(prefix + "batch_solve_ns", telemetry::Unit::kNanoseconds);
}

PlanService::~PlanService() = default;

ServiceStats PlanService::Shard::snapshot() const {
  ServiceStats out;
  out.replans = replans->value();
  out.cache_hits = cache_hits->value();
  out.coalesced_hits = coalesced_hits->value();
  out.solver_runs = solver_runs->value();
  out.evictions = evictions->value();
  out.expirations = expirations->value();
  out.rejections = rejections->value();
  out.queue_depth = queue_depth->value();
  // Derived, never counted: exact under concurrent readers by construction.
  out.requests = out.cache_hits + out.solver_runs + out.rejections;
  return out;
}

PlanService::CacheKey PlanService::key_for(Seconds depart_time) const {
  const double depart_time_s = depart_time.value();  // .value() seam
  double phase = 0.0;
  if (hyperperiod_s_ > 0.0) {
    phase = std::fmod(depart_time_s, hyperperiod_s_);
    if (phase < 0.0) phase += hyperperiod_s_;
  }
  const double demand =
      arrivals_ ? arrivals_->arrival_rate_veh_h(Seconds(depart_time_s)) : 0.0;
  return CacheKey{std::lround(phase / cache_config_.phase_quantum_s),
                  std::lround(demand / cache_config_.demand_quantum_veh_h)};
}

PlanService::CacheKey PlanService::replan_key_for(const ReplanRequest& request) const {
  if (request.position_m < 0.0 || request.position_m >= planner_.corridor().length())
    throw std::invalid_argument("PlanService::request_replan: position outside the corridor");

  // Segment-memo quantization: snap the state to its bin's grid point. Every
  // request in the bin is served the canonical state's plan (misses solve it,
  // hits time-shift it) - the same approximation the phase and demand bins
  // already make for departures.
  const double dv = planner_.config().resolution.dv_ms;
  const long n_hops = std::lround(planner_.corridor().length() / grid_ds_m_);
  const long layer =
      std::min(std::max(0L, std::lround(request.position_m / grid_ds_m_)), n_hops - 1);
  const long vlevel = std::max(0L, std::lround(request.speed_ms / dv));

  CacheKey key = key_for(Seconds(request.time_s));
  key.layer = layer;
  key.vlevel = vlevel;
  return key;
}

std::size_t PlanService::shard_of(const CacheKey& key) const {
  return shard_index(
      ShardKey{route_hash_, key.phase_bin, key.demand_bin, key.layer, key.vlevel},
      shards_.size());
}

PlanService::Shard& PlanService::shard_for(const CacheKey& key) const {
  return *shards_[shard_of(key)];
}

PlanService::RequestSlot PlanService::slot_for_plan(Seconds depart_time) const {
  const CacheKey key = key_for(depart_time);
  const ShardKey shard_key{route_hash_, key.phase_bin, key.demand_bin, key.layer, key.vlevel};
  return RequestSlot{shard_key, shard_index(shard_key, shards_.size())};
}

PlanService::RequestSlot PlanService::slot_for_replan(Meters position, MetersPerSecond speed,
                                                      Seconds request_time) const {
  const CacheKey key = replan_key_for(
      ReplanRequest{0, position.value(), speed.value(), request_time.value()});
  const ShardKey shard_key{route_hash_, key.phase_bin, key.demand_bin, key.layer, key.vlevel};
  return RequestSlot{shard_key, shard_index(shard_key, shards_.size())};
}

void PlanService::insert_into_cache_locked(Shard& shard, const CacheKey& key,
                                           std::shared_ptr<const core::PlannedProfile> profile,
                                           double reference_time) {
  if (shard.cache.find(key) != shard.cache.end()) return;
  shard.lru.push_front(key);
  shard.cache.emplace(key, CacheEntry{std::move(profile), reference_time, shard.lru.begin()});
  if (shard.cache.size() > cache_config_.capacity) {
    const CacheKey victim = shard.lru.back();
    shard.lru.pop_back();
    shard.cache.erase(victim);
    shard.evictions->add(1);
    EVVO_LOG(kDebug, "plan-service") << "evicted phase bin " << victim.phase_bin;
  }
}

PlanService::ServeState PlanService::begin_serve(const CacheKey& key, int vehicle_id,
                                                 Seconds request_time) {
  const double request_time_s = request_time.value();  // .value() seam
  ServeState state;
  state.shard = &shard_for(key);
  Shard& shard = *state.shard;
  if (key.layer >= 0) shard.replans->add(1);

  common::MutexLock lock(shard.shard_mutex);
  const auto it = shard.cache.find(key);
  if (it != shard.cache.end()) {
    const double age = request_time_s - it->second.reference_time;
    if (cache_config_.ttl_s > 0.0 && age > cache_config_.ttl_s) {
      // Logical-time TTL: the cached demand snapshot is too old to trust,
      // so this request re-solves and becomes the bin's fresh reference.
      shard.lru.erase(it->second.lru_pos);
      shard.cache.erase(it);
      shard.expirations->add(1);
      EVVO_LOG(kDebug, "plan-service") << "expired phase bin " << key.phase_bin;
    } else {
      shard.cache_hits->add(1);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      state.hit = PlanTicket{vehicle_id, it->second.profile, age, true};
      return state;
    }
  }
  const auto fit = shard.in_flight.find(key);
  if (fit != shard.in_flight.end()) {
    state.flight = fit->second;
    return state;
  }
  if (cache_config_.max_pending_per_shard != 0 &&
      shard.in_flight.size() >= cache_config_.max_pending_per_shard) {
    // Admission control: only would-be leaders are shed. Hits and
    // followers cost no solver time and are always served.
    shard.rejections->add(1);
    throw ServiceOverload("PlanService: shard at max_pending_per_shard, request shed");
  }
  state.flight = std::make_shared<InFlight>();
  shard.in_flight.emplace(key, state.flight);
  state.leader = true;
  // Counted at takeoff so the derived `requests` includes this request
  // even if the solve throws.
  shard.solver_runs->add(1);
  shard.queue_depth->add(1);
  return state;
}

PlanTicket PlanService::publish_leader_result(const CacheKey& key, ServeState& state,
                                              int vehicle_id, Seconds request_time,
                                              std::shared_ptr<const core::PlannedProfile> profile) {
  const double request_time_s = request_time.value();  // .value() seam
  Shard& shard = *state.shard;
  {
    // Publish to the cache and retire the flight atomically: any request
    // arriving from here on hits the cache instead of the flight.
    common::MutexLock lock(shard.shard_mutex);
    insert_into_cache_locked(shard, key, profile, request_time_s);
    shard.in_flight.erase(key);
  }
  shard.queue_depth->sub(1);
  {
    common::MutexLock flight_lock(state.flight->flight_mutex);
    state.flight->profile = profile;
    state.flight->reference_time = request_time_s;
    state.flight->done = true;
  }
  state.flight->completed.notify_all();
  return PlanTicket{vehicle_id, std::move(profile), 0.0, false};
}

void PlanService::publish_leader_error(const CacheKey& key, ServeState& state,
                                       std::exception_ptr error) {
  Shard& shard = *state.shard;
  {
    common::MutexLock lock(shard.shard_mutex);
    shard.in_flight.erase(key);
  }
  shard.queue_depth->sub(1);
  {
    common::MutexLock flight_lock(state.flight->flight_mutex);
    state.flight->error = std::move(error);
    state.flight->done = true;
  }
  state.flight->completed.notify_all();
}

PlanTicket PlanService::wait_follower(ServeState& state, int vehicle_id, Seconds request_time) {
  const double request_time_s = request_time.value();  // .value() seam
  Shard& shard = *state.shard;
  shard.flight_waits->add(1);
  std::optional<PlanTicket> ticket;
  {
    common::MutexLock flight_lock(state.flight->flight_mutex);
    while (!state.flight->done) state.flight->completed.wait(state.flight->flight_mutex);
    if (state.flight->error) std::rethrow_exception(state.flight->error);
    ticket.emplace(PlanTicket{vehicle_id, state.flight->profile,
                              request_time_s - state.flight->reference_time, true});
  }
  shard.cache_hits->add(1);
  shard.coalesced_hits->add(1);
  return std::move(*ticket);
}

PlanTicket PlanService::serve_ticket(const CacheKey& key, int vehicle_id, Seconds request_time,
                                     const std::function<core::PlannedProfile()>& solve) {
  const telemetry::TraceSpan ticket_span(*ticket_latency_ns_, "plan_service.ticket");
  ServeState state = begin_serve(key, vehicle_id, request_time);
  if (state.hit.has_value()) return std::move(*state.hit);

  if (state.leader) {
    try {
      auto profile = std::make_shared<const core::PlannedProfile>(solve());
      return publish_leader_result(key, state, vehicle_id, request_time, std::move(profile));
    } catch (...) {
      publish_leader_error(key, state, std::current_exception());
      throw;
    }
  }

  // Follower: coalesce onto the leader's solve.
  return wait_follower(state, vehicle_id, request_time);
}

core::PlannedProfile PlanService::solve_miss(const BatchItem& item) {
  if (!item.replan) return planner_.plan(Seconds(item.time_s), arrivals_);
  // The miss solves the bin's canonical grid state, not the raw request
  // state, so every member of the bin is served a consistent tail.
  const double dv = planner_.config().resolution.dv_ms;
  return planner_.replan(Meters(static_cast<double>(item.key.layer) * grid_ds_m_),
                         MetersPerSecond(static_cast<double>(item.key.vlevel) * dv),
                         Seconds(item.time_s), arrivals_);
}

PlanTicket PlanService::serve_item(const BatchItem& item) {
  return serve_ticket(item.key, item.vehicle_id, Seconds(item.time_s),
                      [&] { return solve_miss(item); });
}

std::vector<PlanTicket> PlanService::serve_batch(const std::vector<BatchItem>& items) {
  // Group same-key requests (first-occurrence order, so dispatch is
  // deterministic): each group takes one cache transaction, the group's
  // first member runs the single-flight path, every other member reuses its
  // reference profile with a per-request time shift.
  std::map<CacheKey, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, inserted] = group_of.emplace(items[i].key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  // Phase A - admission: every group's lead goes through the cache/TTL/
  // single-flight/admission-control step first, so the whole batch's misses
  // are known before any solving starts. A shed lead (ServiceOverload) fails
  // only its own group; the rest of the batch is still served and the first
  // error is rethrown at the end.
  std::vector<PlanTicket> out(items.size());
  std::vector<std::optional<PlanTicket>> lead_ticket(groups.size());
  struct PendingGroup {
    std::size_t group = 0;
    ServeState state;
  };
  std::vector<PendingGroup> leaders;
  std::vector<PendingGroup> followers;
  std::exception_ptr first_error;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    batch_group_size_->record(static_cast<long>(groups[g].size()));
    const BatchItem& lead = items[groups[g].front()];
    try {
      const telemetry::TraceSpan ticket_span(*ticket_latency_ns_, "plan_service.ticket");
      ServeState state = begin_serve(lead.key, lead.vehicle_id, Seconds(lead.time_s));
      if (state.hit.has_value()) {
        lead_ticket[g] = std::move(*state.hit);
      } else if (state.leader) {
        leaders.push_back(PendingGroup{g, std::move(state)});
      } else {
        followers.push_back(PendingGroup{g, std::move(state)});
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }

  // Phase B - leader solves. Two or more leaders dispatch as ONE batched
  // run: distinct keys mean distinct solver inputs, and solve_dp_batch packs
  // the compatible ones into SoA lanes (full-trip misses across phase bins
  // share a grid; replan misses from the same layer do too). A single leader
  // keeps the plain serve path, which warm-starts from the workspace pool.
  // Every elected leader reaches an epilogue here - publish or error - so
  // followers (ours in phase C, or in concurrent calls) can never hang.
  if (leaders.size() >= 2) {
    std::vector<core::PlanJob> jobs;
    jobs.reserve(leaders.size());
    const double dv = planner_.config().resolution.dv_ms;
    for (const PendingGroup& pending : leaders) {
      const BatchItem& lead = items[groups[pending.group].front()];
      core::PlanJob job;
      job.replan = lead.replan;
      job.depart_time_s = lead.time_s;
      if (lead.replan) {
        // The canonical grid state, exactly as solve_miss submits it.
        job.position_m = static_cast<double>(lead.key.layer) * grid_ds_m_;
        job.speed_ms = static_cast<double>(lead.key.vlevel) * dv;
      }
      jobs.push_back(job);
    }
    std::vector<core::PlanBatchResult> results;
    try {
      const telemetry::TraceSpan solve_span(*batch_solve_ns_, "plan_service.batch_solve");
      results = planner_.plan_batch(jobs, arrivals_);
    } catch (...) {
      // Batch infrastructure failure (not a per-job error): every leader's
      // flight gets the error so no follower hangs, then it propagates.
      for (PendingGroup& pending : leaders) {
        const BatchItem& lead = items[groups[pending.group].front()];
        publish_leader_error(lead.key, pending.state, std::current_exception());
      }
      throw;
    }
    for (std::size_t n = 0; n < leaders.size(); ++n) {
      PendingGroup& pending = leaders[n];
      const BatchItem& lead = items[groups[pending.group].front()];
      if (results[n].error) {
        publish_leader_error(lead.key, pending.state, results[n].error);
        if (!first_error) first_error = results[n].error;
      } else {
        lead_ticket[pending.group] = publish_leader_result(
            lead.key, pending.state, lead.vehicle_id, Seconds(lead.time_s),
            std::make_shared<const core::PlannedProfile>(std::move(*results[n].profile)));
      }
    }
  } else if (leaders.size() == 1) {
    PendingGroup& pending = leaders.front();
    const BatchItem& lead = items[groups[pending.group].front()];
    try {
      const telemetry::TraceSpan ticket_span(*ticket_latency_ns_, "plan_service.ticket");
      auto profile = std::make_shared<const core::PlannedProfile>(solve_miss(lead));
      lead_ticket[pending.group] = publish_leader_result(lead.key, pending.state,
                                                         lead.vehicle_id, Seconds(lead.time_s),
                                                         std::move(profile));
    } catch (...) {
      publish_leader_error(lead.key, pending.state, std::current_exception());
      if (!first_error) first_error = std::current_exception();
    }
  }

  // Phase C - followers: their leaders run in concurrent serve calls (our
  // own leaders already completed in phase B, so waiting here cannot
  // deadlock). A leader's failure fails just this group.
  for (PendingGroup& pending : followers) {
    const BatchItem& lead = items[groups[pending.group].front()];
    try {
      lead_ticket[pending.group] = wait_follower(pending.state, lead.vehicle_id, Seconds(lead.time_s));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }

  // Phase D - fan out: members derive their tickets from the group lead's.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!lead_ticket[g].has_value()) continue;
    const std::vector<std::size_t>& members = groups[g];
    const BatchItem& lead = items[members.front()];
    const PlanTicket& ticket = *lead_ticket[g];
    out[members.front()] = ticket;
    Shard& shard = shard_for(lead.key);
    for (std::size_t m = 1; m < members.size(); ++m) {
      const BatchItem& item = items[members[m]];
      if (item.replan) shard.replans->add(1);
      shard.cache_hits->add(1);
      shard.coalesced_hits->add(1);
      out[members[m]] =
          PlanTicket{item.vehicle_id, ticket.reference,
                     ticket.time_shift_s + (item.time_s - lead.time_s), true};
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

PlanTicket PlanService::request_plan_ticket(const PlanRequest& request) {
  return serve_item(BatchItem{key_for(Seconds(request.depart_time_s)), request.vehicle_id,
                              request.depart_time_s, false});
}

PlanTicket PlanService::request_replan_ticket(const ReplanRequest& request) {
  return serve_item(
      BatchItem{replan_key_for(request), request.vehicle_id, request.time_s, true});
}

std::vector<PlanTicket> PlanService::request_plan_tickets(std::span<const PlanRequest> requests) {
  std::vector<BatchItem> items;
  items.reserve(requests.size());
  for (const PlanRequest& request : requests) {
    items.push_back(BatchItem{key_for(Seconds(request.depart_time_s)), request.vehicle_id,
                              request.depart_time_s, false});
  }
  return serve_batch(items);
}

std::vector<PlanTicket> PlanService::request_replan_tickets(
    std::span<const ReplanRequest> requests) {
  std::vector<BatchItem> items;
  items.reserve(requests.size());
  for (const ReplanRequest& request : requests) {
    items.push_back(
        BatchItem{replan_key_for(request), request.vehicle_id, request.time_s, true});
  }
  return serve_batch(items);
}

PlanResponse PlanService::request_plan(const PlanRequest& request) {
  const PlanTicket ticket = request_plan_ticket(request);
  return PlanResponse{ticket.vehicle_id, ticket.materialize(), ticket.cache_hit};
}

PlanResponse PlanService::request_replan(const ReplanRequest& request) {
  const PlanTicket ticket = request_replan_ticket(request);
  return PlanResponse{ticket.vehicle_id, ticket.materialize(), ticket.cache_hit};
}

std::vector<PlanResponse> PlanService::materialize_all(std::vector<PlanTicket> tickets) {
  std::vector<std::optional<PlanResponse>> slots(tickets.size());
  const auto materialize = [&](std::size_t i) {
    slots[i] =
        PlanResponse{tickets[i].vehicle_id, tickets[i].materialize(), tickets[i].cache_hit};
  };
  common::ThreadPool* pool = batch_pool();
  if (pool && tickets.size() > 1) {
    pool->parallel_for(tickets.size(), materialize);
  } else {
    for (std::size_t i = 0; i < tickets.size(); ++i) materialize(i);
  }
  std::vector<PlanResponse> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

std::vector<PlanResponse> PlanService::request_plans(std::span<const PlanRequest> requests) {
  return materialize_all(request_plan_tickets(requests));
}

std::vector<PlanResponse> PlanService::request_replans(std::span<const ReplanRequest> requests) {
  return materialize_all(request_replan_tickets(requests));
}

common::ThreadPool* PlanService::batch_pool() {
  const unsigned want = common::ThreadPool::resolve_threads(cache_config_.batch_threads);
  if (want <= 1) return nullptr;
  common::MutexLock lock(pool_mutex_);
  if (!batch_pool_) batch_pool_ = std::make_unique<common::ThreadPool>(want);
  return batch_pool_.get();
}

ServiceStats PlanService::stats() const {
  ServiceStats total;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->snapshot();
    total.requests += s.requests;
    total.replans += s.replans;
    total.cache_hits += s.cache_hits;
    total.coalesced_hits += s.coalesced_hits;
    total.solver_runs += s.solver_runs;
    total.evictions += s.evictions;
    total.expirations += s.expirations;
    total.rejections += s.rejections;
    total.queue_depth += s.queue_depth;
  }
  return total;
}

std::vector<ServiceStats> PlanService::shard_stats() const {
  std::vector<ServiceStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->snapshot());
  return out;
}

}  // namespace evvo::cloud
