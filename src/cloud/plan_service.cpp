#include "cloud/plan_service.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace evvo::cloud {

double signal_hyperperiod(const std::vector<road::TrafficLight>& lights) {
  long lcm_ds = 0;  // deciseconds
  for (const auto& light : lights) {
    const long cycle_ds = std::lround(light.cycle_duration() * 10.0);
    if (cycle_ds <= 0) throw std::invalid_argument("signal_hyperperiod: non-positive cycle");
    lcm_ds = lcm_ds == 0 ? cycle_ds : std::lcm(lcm_ds, cycle_ds);
  }
  return static_cast<double>(lcm_ds) / 10.0;
}

PlanService::PlanService(core::VelocityPlanner planner,
                         std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
                         CacheConfig cache)
    : planner_(std::move(planner)), arrivals_(std::move(arrivals)), cache_config_(cache),
      hyperperiod_s_(signal_hyperperiod(planner_.corridor().lights)) {
  if (cache_config_.capacity == 0) throw std::invalid_argument("PlanService: zero cache capacity");
  if (cache_config_.phase_quantum_s <= 0.0 || cache_config_.demand_quantum_veh_h <= 0.0)
    throw std::invalid_argument("PlanService: quanta must be positive");
  if (planner_.config().policy == core::SignalPolicy::kQueueAware && !arrivals_)
    throw std::invalid_argument("PlanService: queue-aware planning needs arrival rates");
}

PlanService::~PlanService() = default;

PlanService::CacheKey PlanService::key_for(Seconds depart_time) const {
  const double depart_time_s = depart_time.value();  // .value() seam
  double phase = 0.0;
  if (hyperperiod_s_ > 0.0) {
    phase = std::fmod(depart_time_s, hyperperiod_s_);
    if (phase < 0.0) phase += hyperperiod_s_;
  }
  const double demand =
      arrivals_ ? arrivals_->arrival_rate_veh_h(Seconds(depart_time_s)) : 0.0;
  return CacheKey{std::lround(phase / cache_config_.phase_quantum_s),
                  std::lround(demand / cache_config_.demand_quantum_veh_h)};
}

void PlanService::insert_into_cache_locked(const CacheKey& key,
                                           const core::PlannedProfile& profile,
                                           double reference_depart) {
  if (cache_.find(key) != cache_.end()) return;
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{profile, reference_depart, lru_.begin()});
  if (cache_.size() > cache_config_.capacity) {
    const CacheKey victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
    EVVO_LOG(kDebug, "plan-service") << "evicted phase bin " << victim.phase_bin;
  }
}

PlanResponse PlanService::request_plan(const PlanRequest& request) {
  const CacheKey key = key_for(Seconds(request.depart_time_s));

  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    common::MutexLock lock(mutex_);
    ++stats_.requests;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      const double shift = request.depart_time_s - it->second.reference_depart;
      return PlanResponse{request.vehicle_id, it->second.profile.time_shifted(shift), true};
    }
    auto& slot = in_flight_[key];
    if (!slot) {
      slot = std::make_shared<InFlight>();
      leader = true;
      // Counted at takeoff so requests == cache_hits + solver_runs holds at
      // quiescence even if the solve throws.
      ++stats_.solver_runs;
    }
    flight = slot;
  }

  if (leader) {
    try {
      core::PlannedProfile profile = planner_.plan(Seconds(request.depart_time_s), arrivals_);
      {
        // Publish to the cache and retire the flight atomically: any request
        // arriving from here on hits the cache instead of the flight.
        common::MutexLock lock(mutex_);
        insert_into_cache_locked(key, profile, request.depart_time_s);
        in_flight_.erase(key);
      }
      {
        common::MutexLock flight_lock(flight->mutex);
        flight->profile = profile;
        flight->reference_depart = request.depart_time_s;
        flight->done = true;
      }
      flight->completed.notify_all();
      return PlanResponse{request.vehicle_id, std::move(profile), false};
    } catch (...) {
      {
        common::MutexLock lock(mutex_);
        in_flight_.erase(key);
      }
      {
        common::MutexLock flight_lock(flight->mutex);
        flight->error = std::current_exception();
        flight->done = true;
      }
      flight->completed.notify_all();
      throw;
    }
  }

  // Follower: coalesce onto the leader's solve.
  std::optional<PlanResponse> response;
  {
    common::MutexLock flight_lock(flight->mutex);
    while (!flight->done) flight->completed.wait(flight->mutex);
    if (flight->error) std::rethrow_exception(flight->error);
    const double shift = request.depart_time_s - flight->reference_depart;
    response.emplace(PlanResponse{request.vehicle_id, flight->profile->time_shifted(shift), true});
  }
  {
    common::MutexLock lock(mutex_);
    ++stats_.cache_hits;
    ++stats_.coalesced_hits;
  }
  return std::move(*response);
}

common::ThreadPool* PlanService::batch_pool() {
  const unsigned want = common::ThreadPool::resolve_threads(cache_config_.batch_threads);
  if (want <= 1) return nullptr;
  common::MutexLock lock(mutex_);
  if (!batch_pool_) batch_pool_ = std::make_unique<common::ThreadPool>(want);
  return batch_pool_.get();
}

std::vector<PlanResponse> PlanService::request_plans(std::span<const PlanRequest> requests) {
  std::vector<std::optional<PlanResponse>> slots(requests.size());
  common::ThreadPool* pool = batch_pool();
  if (pool && requests.size() > 1) {
    pool->parallel_for(requests.size(),
                       [&](std::size_t i) { slots[i] = request_plan(requests[i]); });
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) slots[i] = request_plan(requests[i]);
  }
  std::vector<PlanResponse> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

ServiceStats PlanService::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace evvo::cloud
