// Vehicular-cloud planning service (paper Sec. I, refs [6][7]): vehicles
// upload their state (departure time) and the cloud returns the optimal
// velocity profile, amortizing the DP across the fleet.
//
// Caching exploits the structure of the problem: with fixed-time signals the
// whole constraint set repeats with the signals' hyperperiod H (the lcm of
// the cycle durations), and the queue predictions depend on demand only
// through the (slowly varying) arrival rate. Two requests whose departure
// times are congruent mod H and whose demand falls in the same bin therefore
// receive the *same* plan, shifted in time. The cache key is
// (policy, departure phase bin, demand bin); hits are served by time-shifting
// the cached profile.
//
// Replanning (rolling horizon) extends the same idea to mid-route requests:
// the segment memo keys a cached plan *tail* by the quantized vehicle state -
// (grid layer of the position, velocity level, cycle offset of the request
// time, demand bin). Two vehicles at the same layer and speed whose clocks
// are congruent mod H face the same remaining problem, so the cached tail is
// served time-shifted; misses canonicalize the state to the bin's grid point
// and run VelocityPlanner::replan, which itself warm-starts the DP from the
// pooled previous solve (core/dp_replan.hpp).
//
// Sharding: the cache is partitioned into CacheConfig::shards independent
// shards, each with its own mutex, bounded LRU+TTL cache, in-flight table,
// and statistics. A request's cache identity - (corridor hash, phase bin,
// demand bin, layer, vlevel) - routes to its shard through the stable
// integer mix in cloud/shard.hpp, so the same identity always lands on the
// same shard and single-flight dedup stays global. shards = 1 reproduces the
// original single-mutex layout exactly.
//
// Concurrency: misses are deduplicated per key with a single-flight
// protocol. The first requester of a key becomes its leader and runs the
// solver outside every service lock; concurrent requesters of the same key
// wait on the leader's in-flight record and are served (as cache hits) from
// its result; requesters of distinct keys solve fully in parallel. Cache
// lookups only ever take the short shard lock, so hits never wait behind a
// solve. Statistics are per-shard registry-backed telemetry counters
// (common/telemetry.hpp, names "plan_service.<instance>.shard<i>.*");
// stats() aggregates relaxed reads without stopping the service. `requests`
// is not tracked separately: it is derived as
// cache_hits + solver_runs + rejections, so that identity holds at every
// instant — under concurrent readers, not just at quiescence. A request
// between arrival and outcome is counted nowhere yet (its in-flight window
// is visible on the queue_depth gauge instead).
//
// Serving is zero-copy: the cache stores immutable reference profiles behind
// shared_ptr, and the ticket APIs return {reference, time shift} without
// copying a node vector under any lock. The PlanResponse APIs materialize
// the shifted profile outside the locks; high-throughput callers (the batch
// fleet path, tools/evvo_load) keep the ticket and materialize lazily or
// never.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "cloud/shard.hpp"
#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "common/telemetry.hpp"
#include "common/thread_annotations.hpp"
#include "core/planner.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::cloud {

struct CacheConfig {
  std::size_t capacity = 256;        ///< cached plans per shard (LRU eviction)
  double phase_quantum_s = 1.0;      ///< departure-phase bin width
  double demand_quantum_veh_h = 50.0;///< arrival-rate bin width
  /// Worker threads for request_plans() batches; 0 = hardware_concurrency.
  unsigned batch_threads = 0;
  /// Cache shards (independent mutex + LRU + in-flight table each). 1 keeps
  /// the original single-mutex layout; fleet serving uses 8+.
  unsigned shards = 1;
  /// Logical-time TTL [s]: a hit whose request time is more than ttl_s past
  /// the entry's reference time is expired (re-solved) instead of served.
  /// Logical, not wall-clock, time keeps replays deterministic. 0 = no TTL.
  double ttl_s = 0.0;
  /// Admission control: a miss that would start a solve on a shard already
  /// running this many in-flight solves is rejected with ServiceOverload.
  /// Followers joining an existing flight and cache hits are never rejected.
  /// 0 = unbounded.
  std::size_t max_pending_per_shard = 0;
};

struct PlanRequest {
  int vehicle_id = 0;
  double depart_time_s = 0.0;
};

/// Mid-route replan: the vehicle's current state on the service's corridor.
struct ReplanRequest {
  int vehicle_id = 0;
  double position_m = 0.0;  ///< corridor coordinate, [0, corridor length)
  double speed_ms = 0.0;
  double time_s = 0.0;      ///< absolute time of the request
};

struct [[nodiscard]] PlanResponse {
  int vehicle_id = 0;
  core::PlannedProfile profile;
  bool cache_hit = false;
};

/// Zero-copy serving handle: the immutable cached reference profile plus the
/// time shift that maps it onto this request. materialize() performs the
/// node-vector copy the PlanResponse APIs would have done; callers that only
/// need a few nodes (or none) never pay it.
struct [[nodiscard]] PlanTicket {
  int vehicle_id = 0;
  std::shared_ptr<const core::PlannedProfile> reference;
  double time_shift_s = 0.0;
  bool cache_hit = false;

  core::PlannedProfile materialize() const { return reference->time_shifted(time_shift_s); }
};

struct [[nodiscard]] ServiceStats {
  /// Full-trip and replan requests combined. Derived, not counted:
  /// requests == cache_hits + solver_runs + rejections by construction, at
  /// every instant (see the header comment).
  long requests = 0;
  long replans = 0;         ///< subset of requests that were replans
  long cache_hits = 0;      ///< served from cache or a coalesced in-flight solve
  long coalesced_hits = 0;  ///< subset of cache_hits that waited on (or batch-
                            ///< grouped onto) a leader's solve
  long solver_runs = 0;
  long evictions = 0;       ///< LRU capacity evictions
  long expirations = 0;     ///< TTL expiries (count as misses, not evictions)
  long rejections = 0;      ///< admission-control rejections (ServiceOverload)
  long queue_depth = 0;     ///< in-flight solves at snapshot time (gauge)
};

/// Thrown by the request APIs when admission control turns a miss away
/// (CacheConfig::max_pending_per_shard). The request was counted but no
/// solve was started; the caller sheds or retries it.
class ServiceOverload : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class PlanService {
 public:
  /// The routing decision for one request: its full cache identity (the
  /// corridor hash plus every quantized bin) and the shard it lands on.
  /// Exposed for routing tests and workload harnesses; the same structure a
  /// distributed front-end would use to pick a rank (ShardRank::owns).
  struct [[nodiscard]] RequestSlot {
    ShardKey key;
    std::size_t shard = 0;
  };

  /// The service owns a planner (route + policy + energy model) and a demand
  /// source shared with the queue predictor.
  PlanService(core::VelocityPlanner planner,
              std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
              CacheConfig cache = {});
  ~PlanService();

  /// Computes or serves a plan. Thread-safe; see the single-flight notes in
  /// the header comment.
  PlanResponse request_plan(const PlanRequest& request);

  /// Serves a whole batch, fanning same-shard groups across the service's
  /// worker pool (CacheConfig::batch_threads). Responses are returned in
  /// request order. Same-key requests within the batch coalesce onto one
  /// cache lookup (and, on a miss, one solve).
  std::vector<PlanResponse> request_plans(std::span<const PlanRequest> requests);

  /// Computes or serves a replan for a mid-route vehicle state. The returned
  /// profile starts at the state's grid point in corridor coordinates.
  /// Throws std::invalid_argument for positions outside the corridor. Same
  /// single-flight and caching behavior as request_plan, over the segment
  /// memo keyed by quantized (position layer, velocity level, cycle offset,
  /// demand) - see the header comment.
  PlanResponse request_replan(const ReplanRequest& request);

  /// Batch replanning, the per-tick fleet path: responses in request order,
  /// same-state vehicles coalesce onto one warm solve.
  std::vector<PlanResponse> request_replans(std::span<const ReplanRequest> requests);

  /// Zero-copy variants: same caching, single-flight, and statistics as the
  /// PlanResponse APIs, but the returned tickets share the cached reference
  /// profile instead of copying it. The fleet serving path.
  PlanTicket request_plan_ticket(const PlanRequest& request);
  PlanTicket request_replan_ticket(const ReplanRequest& request);
  std::vector<PlanTicket> request_plan_tickets(std::span<const PlanRequest> requests);
  std::vector<PlanTicket> request_replan_tickets(std::span<const ReplanRequest> requests);

  /// Where a departure-time request routes. Pure function of the request and
  /// the service configuration (stable across processes and rebuilds).
  RequestSlot slot_for_plan(Seconds depart_time) const;

  /// Where a mid-route replan routes; performs the same position/speed
  /// quantization the serving path uses. Throws std::invalid_argument for
  /// positions outside the corridor.
  RequestSlot slot_for_replan(Meters position, MetersPerSecond speed, Seconds request_time) const;

  /// Signals' hyperperiod H [s]; 0 when the corridor has no lights (every
  /// departure is then equivalent and one plan serves all).
  double hyperperiod() const { return hyperperiod_s_; }

  /// Content hash of the service's corridor (the route_hash of every
  /// RequestSlot this service produces).
  std::uint64_t corridor_hash() const { return route_hash_; }

  std::size_t shard_count() const { return shards_.size(); }

  /// Aggregate counters across all shards (relaxed snapshot; exact once the
  /// service is quiescent).
  ServiceStats stats() const;

  /// Per-shard counters, indexed by shard. Fieldwise, their sum is stats().
  std::vector<ServiceStats> shard_stats() const;

  /// Group sizes recorded by the batch dispatch path: one sample per
  /// same-key group per request_*_tickets call (hit groups included).
  /// Workload harnesses report its percentiles; empty until the first batch
  /// call on this instance.
  const telemetry::Histogram& batch_group_sizes() const { return *batch_group_size_; }

 private:
  struct CacheKey {
    long phase_bin;
    long demand_bin;
    /// Replan quantization (the segment-memo half of the key): grid layer of
    /// the position and velocity level of the speed. Full-trip plans use
    /// (-1, -1) so they can never collide with a replan of the same phase.
    long layer = -1;
    long vlevel = -1;
    auto operator<=>(const CacheKey&) const = default;
  };
  struct CacheEntry {
    std::shared_ptr<const core::PlannedProfile> profile;  // planned at reference_time
    double reference_time;
    std::list<CacheKey>::iterator lru_pos;
  };
  /// One in-flight solve. The leader fills profile/reference_time (or
  /// error) and flips done under `mutex`; followers wait on `completed`.
  struct InFlight {
    common::Mutex flight_mutex{common::LockRank::kPlanFlight};
    common::CondVar completed;
    bool done EVVO_GUARDED_BY(flight_mutex) = false;
    std::shared_ptr<const core::PlannedProfile> profile EVVO_GUARDED_BY(flight_mutex);
    double reference_time EVVO_GUARDED_BY(flight_mutex) = 0.0;
    std::exception_ptr error EVVO_GUARDED_BY(flight_mutex);
  };
  /// One cache shard: its own lock, LRU+TTL cache, in-flight table, and
  /// statistics. Counters are registry-backed (common/telemetry.hpp,
  /// registered by the service constructor under
  /// "plan_service.<instance>.shard<i>."), so followers and the batch
  /// grouping path account lock-free, stats() reads without stopping
  /// traffic, and the same numbers surface in telemetry::snapshot().
  /// `requests` has no counter: snapshot() derives it as
  /// cache_hits + solver_runs + rejections, making the stats() identity
  /// exact under concurrent readers.
  struct Shard {
    mutable common::Mutex shard_mutex{common::LockRank::kPlanShard};
    std::map<CacheKey, CacheEntry> cache EVVO_GUARDED_BY(shard_mutex);
    std::list<CacheKey> lru EVVO_GUARDED_BY(shard_mutex);  // front = most recent
    std::map<CacheKey, std::shared_ptr<InFlight>> in_flight EVVO_GUARDED_BY(shard_mutex);

    telemetry::Counter* replans = nullptr;
    telemetry::Counter* cache_hits = nullptr;
    telemetry::Counter* coalesced_hits = nullptr;
    /// Followers that blocked on a leader's in-flight solve (a subset of
    /// coalesced_hits: batch-grouped members never wait). Telemetry-only;
    /// not part of ServiceStats.
    telemetry::Counter* flight_waits = nullptr;
    telemetry::Counter* solver_runs = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* expirations = nullptr;
    telemetry::Counter* rejections = nullptr;
    telemetry::Gauge* queue_depth = nullptr;

    ServiceStats snapshot() const;
  };

  CacheKey key_for(Seconds depart_time) const;
  CacheKey replan_key_for(const ReplanRequest& request) const;
  Shard& shard_for(const CacheKey& key) const;
  std::size_t shard_of(const CacheKey& key) const;
  /// Outcome of the single-flight admission step (begin_serve): served from
  /// cache (`hit`), elected leader of a fresh flight (`leader`, solve then
  /// publish), or follower of an existing flight (wait on it).
  struct ServeState {
    Shard* shard = nullptr;
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    std::optional<PlanTicket> hit;
  };
  /// The lookup/registration half of serve_ticket: cache probe (with TTL),
  /// flight join, admission control (throws ServiceOverload), or leader
  /// election (counts solver_runs/queue_depth at takeoff). Factored out so
  /// the batch path can admit a whole batch first and solve its leaders as
  /// one batched run.
  ServeState begin_serve(const CacheKey& key, int vehicle_id, Seconds request_time);
  /// Leader epilogue: publishes `profile` to the cache, retires the flight,
  /// wakes followers, and returns the leader's ticket.
  PlanTicket publish_leader_result(const CacheKey& key, ServeState& state, int vehicle_id,
                                   Seconds request_time,
                                   std::shared_ptr<const core::PlannedProfile> profile);
  /// Leader failure epilogue: retires the flight and wakes followers with
  /// `error`. Every elected leader must reach exactly one of the two
  /// epilogues or followers would wait forever.
  void publish_leader_error(const CacheKey& key, ServeState& state, std::exception_ptr error);
  /// Follower epilogue: waits out the leader's flight and derives a ticket
  /// (rethrows the leader's error).
  PlanTicket wait_follower(ServeState& state, int vehicle_id, Seconds request_time);
  /// Cache lookup + single-flight around an arbitrary solve (full plan or
  /// replan). `request_time` anchors the time shift cached hits are served
  /// with; `solve` runs outside every service lock on the leader.
  PlanTicket serve_ticket(const CacheKey& key, int vehicle_id, Seconds request_time,
                          const std::function<core::PlannedProfile()>& solve);
  void insert_into_cache_locked(Shard& shard, const CacheKey& key,
                                std::shared_ptr<const core::PlannedProfile> profile,
                                double reference_time) EVVO_REQUIRES(shard.shard_mutex);
  /// A request after quantization: its cache key plus what is needed to
  /// serve it (the solve closure is derived from `key`/`time_s`/`replan`).
  struct BatchItem {
    CacheKey key;
    int vehicle_id = 0;
    double time_s = 0.0;
    bool replan = false;
  };
  PlanTicket serve_item(const BatchItem& item);
  /// The solve a miss of `item` runs (full plan or canonical-grid replan).
  core::PlannedProfile solve_miss(const BatchItem& item);
  /// Cross-request batch dispatch: groups same-key items, admits each
  /// group's first member through the single-flight path, solves all
  /// admitted leaders as ONE batched run (core/dp_batch.hpp packs
  /// compatible solver runs into SoA lanes), then publishes results and
  /// derives every other member's ticket from its group leader's (one cache
  /// transaction per group).
  std::vector<PlanTicket> serve_batch(const std::vector<BatchItem>& items);
  std::vector<PlanResponse> materialize_all(std::vector<PlanTicket> tickets);
  common::ThreadPool* batch_pool();

  core::VelocityPlanner planner_;
  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals_;
  CacheConfig cache_config_;
  double hyperperiod_s_;
  double grid_ds_m_;  ///< layer spacing the solver will use on this corridor
  std::uint64_t route_hash_;

  /// Shards are heap-allocated because Mutex pins them in place; the vector
  /// itself is immutable after construction.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Service-level telemetry, registered alongside the shard counters:
  /// end-to-end serve_ticket latency (including the leader's solve) and the
  /// same-key group sizes the batch path coalesces.
  telemetry::Histogram* ticket_latency_ns_ = nullptr;
  telemetry::Histogram* batch_group_size_ = nullptr;
  /// Duration of the batched leader solve in serve_batch (covers the whole
  /// plan_batch call: grouping, SoA sweeps, ragged fallbacks).
  telemetry::Histogram* batch_solve_ns_ = nullptr;

  mutable common::Mutex pool_mutex_{common::LockRank::kServiceBatchPool};
  std::unique_ptr<common::ThreadPool> batch_pool_ EVVO_GUARDED_BY(pool_mutex_);
};

/// lcm of the signal cycle durations [s] (integer deciseconds internally);
/// returns 0 for an empty light set.
double signal_hyperperiod(const std::vector<road::TrafficLight>& lights);

}  // namespace evvo::cloud
