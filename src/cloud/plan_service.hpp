// Vehicular-cloud planning service (paper Sec. I, refs [6][7]): vehicles
// upload their state (departure time) and the cloud returns the optimal
// velocity profile, amortizing the DP across the fleet.
//
// Caching exploits the structure of the problem: with fixed-time signals the
// whole constraint set repeats with the signals' hyperperiod H (the lcm of
// the cycle durations), and the queue predictions depend on demand only
// through the (slowly varying) arrival rate. Two requests whose departure
// times are congruent mod H and whose demand falls in the same bin therefore
// receive the *same* plan, shifted in time. The cache key is
// (policy, departure phase bin, demand bin); hits are served by time-shifting
// the cached profile.
//
// Replanning (rolling horizon) extends the same idea to mid-route requests:
// the segment memo keys a cached plan *tail* by the quantized vehicle state -
// (grid layer of the position, velocity level, cycle offset of the request
// time, demand bin). Two vehicles at the same layer and speed whose clocks
// are congruent mod H face the same remaining problem, so the cached tail is
// served time-shifted; misses canonicalize the state to the bin's grid point
// and run VelocityPlanner::replan, which itself warm-starts the DP from the
// pooled previous solve (core/dp_replan.hpp).
//
// Concurrency: misses are deduplicated per key with a single-flight
// protocol. The first requester of a key becomes its leader and runs the
// solver outside every service lock; concurrent requesters of the same key
// wait on the leader's in-flight record and are served (as cache hits) from
// its result; requesters of distinct keys solve fully in parallel. Cache
// lookups only ever take the short service lock, so hits never wait behind a
// solve. At quiescence, requests == cache_hits + solver_runs.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "core/planner.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::cloud {

struct CacheConfig {
  std::size_t capacity = 256;        ///< cached plans (LRU eviction)
  double phase_quantum_s = 1.0;      ///< departure-phase bin width
  double demand_quantum_veh_h = 50.0;///< arrival-rate bin width
  /// Worker threads for request_plans() batches; 0 = hardware_concurrency.
  unsigned batch_threads = 0;
};

struct PlanRequest {
  int vehicle_id = 0;
  double depart_time_s = 0.0;
};

/// Mid-route replan: the vehicle's current state on the service's corridor.
struct ReplanRequest {
  int vehicle_id = 0;
  double position_m = 0.0;  ///< corridor coordinate, [0, corridor length)
  double speed_ms = 0.0;
  double time_s = 0.0;      ///< absolute time of the request
};

struct [[nodiscard]] PlanResponse {
  int vehicle_id = 0;
  core::PlannedProfile profile;
  bool cache_hit = false;
};

struct [[nodiscard]] ServiceStats {
  long requests = 0;        ///< full-trip and replan requests combined
  long replans = 0;         ///< subset of requests that were replans
  long cache_hits = 0;      ///< served from cache or a coalesced in-flight solve
  long coalesced_hits = 0;  ///< subset of cache_hits that waited on a leader
  long solver_runs = 0;
  long evictions = 0;
};

class PlanService {
 public:
  /// The service owns a planner (route + policy + energy model) and a demand
  /// source shared with the queue predictor.
  PlanService(core::VelocityPlanner planner,
              std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
              CacheConfig cache = {});
  ~PlanService();

  /// Computes or serves a plan. Thread-safe; see the single-flight notes in
  /// the header comment.
  PlanResponse request_plan(const PlanRequest& request) EVVO_EXCLUDES(mutex_);

  /// Serves a whole batch, fanning the requests across the service's worker
  /// pool (CacheConfig::batch_threads). Responses are returned in request
  /// order. Same-key requests within the batch coalesce onto one solve.
  std::vector<PlanResponse> request_plans(std::span<const PlanRequest> requests)
      EVVO_EXCLUDES(mutex_);

  /// Computes or serves a replan for a mid-route vehicle state. The returned
  /// profile starts at the state's grid point in corridor coordinates.
  /// Throws std::invalid_argument for positions outside the corridor. Same
  /// single-flight and caching behavior as request_plan, over the segment
  /// memo keyed by quantized (position layer, velocity level, cycle offset,
  /// demand) - see the header comment.
  PlanResponse request_replan(const ReplanRequest& request) EVVO_EXCLUDES(mutex_);

  /// Batch replanning, the per-tick fleet path: responses in request order,
  /// same-state vehicles coalesce onto one warm solve.
  std::vector<PlanResponse> request_replans(std::span<const ReplanRequest> requests)
      EVVO_EXCLUDES(mutex_);

  /// Signals' hyperperiod H [s]; 0 when the corridor has no lights (every
  /// departure is then equivalent and one plan serves all).
  double hyperperiod() const { return hyperperiod_s_; }

  ServiceStats stats() const EVVO_EXCLUDES(mutex_);

 private:
  struct CacheKey {
    long phase_bin;
    long demand_bin;
    /// Replan quantization (the segment-memo half of the key): grid layer of
    /// the position and velocity level of the speed. Full-trip plans use
    /// (-1, -1) so they can never collide with a replan of the same phase.
    long layer = -1;
    long vlevel = -1;
    auto operator<=>(const CacheKey&) const = default;
  };
  struct CacheEntry {
    core::PlannedProfile profile;          // planned at reference_time
    double reference_time;
    std::list<CacheKey>::iterator lru_pos;
  };
  /// One in-flight solve. The leader fills profile/reference_time (or
  /// error) and flips done under `mutex`; followers wait on `completed`.
  struct InFlight {
    common::Mutex mutex;
    common::CondVar completed;
    bool done EVVO_GUARDED_BY(mutex) = false;
    std::optional<core::PlannedProfile> profile EVVO_GUARDED_BY(mutex);
    double reference_time EVVO_GUARDED_BY(mutex) = 0.0;
    std::exception_ptr error EVVO_GUARDED_BY(mutex);
  };

  CacheKey key_for(Seconds depart_time) const EVVO_EXCLUDES(mutex_);
  /// Cache lookup + single-flight around an arbitrary solve (full plan or
  /// replan). `request_time` anchors the time shift cached hits are served
  /// with; `solve` runs outside every service lock on the leader.
  PlanResponse serve_cached(const CacheKey& key, int vehicle_id, Seconds request_time,
                            const std::function<core::PlannedProfile()>& solve)
      EVVO_EXCLUDES(mutex_);
  void insert_into_cache_locked(const CacheKey& key, const core::PlannedProfile& profile,
                                double reference_time) EVVO_REQUIRES(mutex_);
  common::ThreadPool* batch_pool() EVVO_EXCLUDES(mutex_);

  core::VelocityPlanner planner_;
  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals_;
  CacheConfig cache_config_;
  double hyperperiod_s_;
  double grid_ds_m_;  ///< layer spacing the solver will use on this corridor

  mutable common::Mutex mutex_;
  std::map<CacheKey, CacheEntry> cache_ EVVO_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ EVVO_GUARDED_BY(mutex_);  // front = most recent
  std::map<CacheKey, std::shared_ptr<InFlight>> in_flight_ EVVO_GUARDED_BY(mutex_);
  ServiceStats stats_ EVVO_GUARDED_BY(mutex_);
  std::unique_ptr<common::ThreadPool> batch_pool_ EVVO_GUARDED_BY(mutex_);  // lazily created
};

/// lcm of the signal cycle durations [s] (integer deciseconds internally);
/// returns 0 for an empty light set.
double signal_hyperperiod(const std::vector<road::TrafficLight>& lights);

}  // namespace evvo::cloud
