// Vehicular-cloud planning service (paper Sec. I, refs [6][7]): vehicles
// upload their state (departure time) and the cloud returns the optimal
// velocity profile, amortizing the DP across the fleet.
//
// Caching exploits the structure of the problem: with fixed-time signals the
// whole constraint set repeats with the signals' hyperperiod H (the lcm of
// the cycle durations), and the queue predictions depend on demand only
// through the (slowly varying) arrival rate. Two requests whose departure
// times are congruent mod H and whose demand falls in the same bin therefore
// receive the *same* plan, shifted in time. The cache key is
// (policy, departure phase bin, demand bin); hits are served by time-shifting
// the cached profile.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "core/planner.hpp"

namespace evvo::cloud {

struct CacheConfig {
  std::size_t capacity = 256;        ///< cached plans (LRU eviction)
  double phase_quantum_s = 1.0;      ///< departure-phase bin width
  double demand_quantum_veh_h = 50.0;///< arrival-rate bin width
};

struct PlanRequest {
  int vehicle_id = 0;
  double depart_time_s = 0.0;
};

struct PlanResponse {
  int vehicle_id = 0;
  core::PlannedProfile profile;
  bool cache_hit = false;
};

struct ServiceStats {
  long requests = 0;
  long cache_hits = 0;
  long solver_runs = 0;
  long evictions = 0;
};

class PlanService {
 public:
  /// The service owns a planner (route + policy + energy model) and a demand
  /// source shared with the queue predictor.
  PlanService(core::VelocityPlanner planner,
              std::shared_ptr<const traffic::ArrivalRateProvider> arrivals,
              CacheConfig cache = {});

  /// Computes or serves a plan. Thread-safe.
  PlanResponse request_plan(const PlanRequest& request);

  /// Signals' hyperperiod H [s]; 0 when the corridor has no lights (every
  /// departure is then equivalent and one plan serves all).
  double hyperperiod() const { return hyperperiod_s_; }

  ServiceStats stats() const;

 private:
  struct CacheKey {
    long phase_bin;
    long demand_bin;
    auto operator<=>(const CacheKey&) const = default;
  };
  struct CacheEntry {
    core::PlannedProfile profile;          // planned at reference_depart
    double reference_depart;
    std::list<CacheKey>::iterator lru_pos;
  };

  CacheKey key_for(double depart_time_s) const;

  core::VelocityPlanner planner_;
  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals_;
  CacheConfig cache_config_;
  double hyperperiod_s_;

  mutable std::mutex mutex_;
  std::map<CacheKey, CacheEntry> cache_;
  std::list<CacheKey> lru_;  // front = most recent
  ServiceStats stats_;
};

/// lcm of the signal cycle durations [s] (integer deciseconds internally);
/// returns 0 for an empty light set.
double signal_hyperperiod(const std::vector<road::TrafficLight>& lights);

}  // namespace evvo::cloud
