#include "cloud/shard.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "core/dp_common.hpp"

namespace evvo::cloud {

namespace {

/// FNV-1a continuation over a double's bit pattern, matching the byte order
/// core::detail::hash_route uses so corridor hashes extend route hashes.
std::uint64_t fnv_mix(std::uint64_t h, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (bits >> (8 * byte)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

#if defined(EVVO_DISTRIBUTED)
std::atomic<int> g_rank{0};
std::atomic<int> g_n_ranks{1};
#endif

}  // namespace

std::uint64_t hash_corridor(const road::Corridor& corridor) {
  std::uint64_t h = core::detail::hash_route(corridor.route);
  for (const road::TrafficLight& light : corridor.lights) {
    h = fnv_mix(h, light.position());
    h = fnv_mix(h, light.red_duration());
    h = fnv_mix(h, light.green_duration());
    h = fnv_mix(h, light.offset());
  }
  for (const road::StopSign& sign : corridor.stop_signs) {
    h = fnv_mix(h, sign.position_m);
    h = fnv_mix(h, sign.min_stop_s);
  }
  return h;
}

#if defined(EVVO_DISTRIBUTED)

int ShardRank::rank() { return g_rank.load(std::memory_order_relaxed); }
int ShardRank::n_ranks() { return g_n_ranks.load(std::memory_order_relaxed); }

void ShardRank::configure(int rank, int n_ranks) {
  if (n_ranks < 1 || rank < 0 || rank >= n_ranks)
    throw std::invalid_argument("ShardRank::configure: rank outside [0, n_ranks)");
  g_rank.store(rank, std::memory_order_relaxed);
  g_n_ranks.store(n_ranks, std::memory_order_relaxed);
}

#else

// Serial stub: one rank owning every shard. Kept out-of-line so the
// distributed build can swap the definition without touching call sites.
int ShardRank::rank() { return 0; }
int ShardRank::n_ranks() { return 1; }

#endif

}  // namespace evvo::cloud
