// Corridor sharding for the vehicular-cloud plan service.
//
// A fleet workload partitions naturally by corridor and signal-timing epoch:
// requests cluster on hot corridors, and within a corridor on the departure
// phase bins of its signal hyperperiod. The shard router maps the full cache
// identity of a request - (route content hash, phase bin, demand bin, replan
// layer, velocity level) - onto one of N shards with a pure integer mix, so
//  - the same identity always lands on the same shard: single-flight dedup
//    stays global even though every shard has its own lock, and
//  - the mapping depends on nothing but the key's value (no pointers, no
//    std::hash, no per-process salt), so it is stable across processes and
//    rebuilds and usable as a cross-process routing contract.
//
// ShardRank is the EVVO_DISTRIBUTED seam, following the master/worker-with-
// serial-stub shape of MPI-style frameworks: the serving layer only ever
// asks "is this shard mine?". The single-process build answers with a no-op
// stub (one rank owning every shard); a distributed build registers its
// rank/size from the transport at startup and routes non-local shards over
// RPC at a layer above PlanService.
#pragma once

#include <cstddef>
#include <cstdint>

#include "road/corridor.hpp"

namespace evvo::cloud {

/// The value identity of a cached plan, as seen by the shard router. Layer
/// and velocity level are -1 for full-trip plans (the same sentinel
/// PlanService uses, so routing and caching quantize identically).
struct ShardKey {
  std::uint64_t route_hash = 0;
  long phase_bin = 0;
  long demand_bin = 0;
  long layer = -1;
  long vlevel = -1;

  bool operator==(const ShardKey&) const = default;
};

/// splitmix64 finalizer: the standard invertible 64-bit mix. Chosen over
/// std::hash because its output is pinned by the algorithm, not the standard
/// library - the routing tests bake expected shard indices as constants.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-sensitive mix of every key field. Two keys differing in any single
/// field (route, epoch, or replan state) land on independent mixes.
constexpr std::uint64_t shard_mix(const ShardKey& key) {
  std::uint64_t h = mix64(key.route_hash);
  h = mix64(h ^ static_cast<std::uint64_t>(key.phase_bin));
  h = mix64(h ^ static_cast<std::uint64_t>(key.demand_bin));
  h = mix64(h ^ static_cast<std::uint64_t>(key.layer));
  h = mix64(h ^ static_cast<std::uint64_t>(key.vlevel));
  return h;
}

/// The shard a key routes to. Total over n_shards >= 1; n_shards = 1 is the
/// degenerate single-shard (single-mutex) layout.
constexpr std::size_t shard_index(const ShardKey& key, std::size_t n_shards) {
  return n_shards <= 1 ? 0 : static_cast<std::size_t>(shard_mix(key) % n_shards);
}

/// Content hash of a whole corridor: the route segments plus every
/// regulatory element (lights with their timing, stop signs). Two services
/// built over byte-identical corridors agree on it, which is what makes the
/// shard mapping a contract between processes rather than an implementation
/// detail of one.
std::uint64_t hash_corridor(const road::Corridor& corridor);

/// Process-wide shard ownership. The serial stub is a single rank owning
/// everything; EVVO_DISTRIBUTED builds register the transport's rank/size
/// once at startup. Methods are static because rank identity is a property
/// of the process, not of any one service instance.
class ShardRank {
 public:
  static int rank();
  static int n_ranks();
  static bool is_master() { return rank() == 0; }

  /// Block-cyclic ownership: shard s belongs to rank s mod n_ranks. In the
  /// serial stub this is constantly true.
  static bool owns(std::size_t shard) {
    return static_cast<int>(shard % static_cast<std::size_t>(n_ranks())) == rank();
  }

#if defined(EVVO_DISTRIBUTED)
  /// Registers this process's position in the fleet. Must be called before
  /// any PlanService is constructed; the single-process build has no such
  /// method, so call sites stay behind the same #if as the transport.
  static void configure(int rank, int n_ranks);
#endif
};

}  // namespace evvo::cloud
