#include "check/shrink.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

namespace evvo::check {

namespace {

/// Does the spec still trip `invariant` (by id) under `options`?
bool still_fails(const ScenarioSpec& spec, const CheckOptions& options,
                 const std::string& invariant) {
  const CheckReport report = check_scenario(spec, options);
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

using Transform = std::function<std::optional<ScenarioSpec>(const ScenarioSpec&)>;

/// One round of candidate simplifications, cheapest-win first. Index-based
/// drops are regenerated each round because earlier acceptances change the
/// element counts.
std::vector<Transform> candidate_transforms(const ScenarioSpec& spec) {
  std::vector<Transform> out;

  for (std::size_t i = 0; i < spec.lights.size(); ++i) {
    out.push_back([i](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
      if (i >= s.lights.size()) return std::nullopt;
      ScenarioSpec next = s;
      next.lights.erase(next.lights.begin() + static_cast<std::ptrdiff_t>(i));
      return next;
    });
  }
  for (std::size_t i = 0; i < spec.stop_signs.size(); ++i) {
    out.push_back([i](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
      if (i >= s.stop_signs.size()) return std::nullopt;
      ScenarioSpec next = s;
      next.stop_signs.erase(next.stop_signs.begin() + static_cast<std::ptrdiff_t>(i));
      return next;
    });
  }

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (std::all_of(s.segments.begin(), s.segments.end(),
                    [](const road::RoadSegment& seg) { return seg.grade_rad == 0.0; }))
      return std::nullopt;
    ScenarioSpec next = s;
    for (road::RoadSegment& seg : next.segments) seg.grade_rad = 0.0;
    return next;
  });

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (s.segments.size() <= 1) return std::nullopt;
    ScenarioSpec next = s;
    road::RoadSegment merged = next.segments.front();
    merged.end_m = next.segments.back().end_m;
    next.segments = {merged};
    return next;
  });

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (s.arrival_veh_h.size() <= 1) return std::nullopt;
    ScenarioSpec next = s;
    next.arrival_veh_h = {next.arrival_veh_h.front()};
    return next;
  });

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    if (s.depart_time_s == 0.0) return std::nullopt;
    ScenarioSpec next = s;
    next.depart_time_s = 0.0;
    return next;
  });

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    const ev::VehicleParams defaults{};
    ScenarioSpec next = s;
    next.vehicle = defaults;
    if (spec_to_text(next) == spec_to_text(s)) return std::nullopt;
    return next;
  });

  out.push_back([](const ScenarioSpec& s) -> std::optional<ScenarioSpec> {
    ScenarioSpec next = s;
    const core::DpResolution defaults{};
    next.planner.resolution.ds_m = defaults.ds_m;
    next.planner.resolution.dv_ms = defaults.dv_ms;
    next.planner.resolution.dt_s = defaults.dt_s;
    if (spec_to_text(next) == spec_to_text(s)) return std::nullopt;
    return next;
  });

  return out;
}

}  // namespace

ShrinkResult shrink_failure(const ScenarioSpec& failing, const CheckOptions& options,
                            std::size_t max_checks) {
  ShrinkResult result;
  result.spec = failing;

  const CheckReport initial = check_scenario(failing, options);
  ++result.checks_run;
  if (initial.ok()) return result;  // nothing to shrink
  result.invariant = initial.violations.front().invariant;

  bool progressed = true;
  while (progressed && result.checks_run < max_checks) {
    progressed = false;
    for (const Transform& transform : candidate_transforms(result.spec)) {
      if (result.checks_run >= max_checks) break;
      std::optional<ScenarioSpec> candidate = transform(result.spec);
      if (!candidate) continue;
      candidate->seed = 0;  // no longer reproducible from a seed
      ++result.checks_run;
      bool fails = false;
      try {
        fails = still_fails(*candidate, options, result.invariant);
      } catch (...) {
        fails = false;  // a transform that breaks materialization is not a shrink
      }
      if (fails) {
        result.spec = std::move(*candidate);
        result.changed = true;
        progressed = true;
        break;  // restart with fresh transforms against the smaller spec
      }
    }
  }
  return result;
}

}  // namespace evvo::check
