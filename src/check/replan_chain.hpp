// Perturbation-chain oracle for the incremental warm-start DP
// (core/dp_replan.hpp).
//
// One chain generates a scenario from its seed, solves it cold, then replays
// a seeded sequence of the perturbations a rolling-horizon replanner
// produces: single T_q window edits (the dirty-stripe path), identical
// resubmissions (the splice path), start-state advances along the previous
// plan (suffix corridor + new depart time), horizon rolls, and departure
// jitter (cold fingerprint changes). After every perturbation the problem is
// solved twice - warm through solve_dp_incremental() over one persistent
// workspace + previous-solve snapshot, and cold through solve_dp() over a
// separate workspace - and the results must agree bit-for-bit: feasibility,
// full state-table checksum, optimal cost, and every profile byte. The
// classification taken by the warm solver is also checked against the path
// the perturbation entitles it to (a window edit must re-relax exactly from
// the event's layer, a resubmission must splice, a fingerprint change must
// go cold), so the oracle fails both if warm-starting is ever wrong AND if
// it silently stops being incremental.
//
// `evvo_fuzz --replan` drives many chains; the tamper option corrupts one
// warm result so the harness can prove the oracle fires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"

namespace evvo::check {

struct ReplanChainOptions {
  /// Perturbation steps after the bootstrap solve.
  std::size_t steps = 8;
  /// Corrupt one warm profile node before comparison; the chain must then
  /// report a violation (oracle self-test, wired to `evvo_fuzz --inject`).
  bool tamper = false;
};

struct [[nodiscard]] ReplanChainReport {
  std::uint64_t seed = 0;
  std::size_t steps = 0;             ///< solves run (bootstrap + perturbations)
  std::size_t spliced_steps = 0;     ///< warm solves served verbatim
  std::size_t striped_steps = 0;     ///< warm solves that re-relaxed a suffix
  std::size_t cold_steps = 0;        ///< warm solves that degraded to cold
  std::size_t relaxed_layers = 0;    ///< layer relaxations the warm side ran
  std::size_t total_layers = 0;      ///< layer relaxations the cold side ran
  std::size_t infeasible_steps = 0;  ///< steps where both sides found no plan
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Replays one perturbation chain. Deterministic in (seed, options). Never
/// throws for scenario-content problems; solver preconditions violated by
/// the chain itself would be programming errors and escape.
ReplanChainReport check_replan_chain(std::uint64_t seed, const ReplanChainOptions& options = {});

/// Multi-line human-readable rendering (one line per violation).
std::string replan_report_to_string(const ReplanChainReport& report);

}  // namespace evvo::check
