#include "check/replan_chain.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "common/random.hpp"
#include "core/dp_replan.hpp"
#include "core/dp_solver.hpp"
#include "road/corridor.hpp"

namespace evvo::check {

namespace {

using core::DpSolution;
using core::ReplanDelta;

/// What one chain step did to the problem; determines the classification the
/// warm solver must take.
struct Applied {
  enum class Kind { kBootstrap, kNoop, kWindow, kAdvance, kJitter, kHorizon };
  Kind kind = Kind::kBootstrap;
  std::size_t layer = 0;  ///< kWindow: grid layer of the edited event

  const char* name() const {
    switch (kind) {
      case Kind::kBootstrap: return "bootstrap";
      case Kind::kNoop: return "noop";
      case Kind::kWindow: return "window";
      case Kind::kAdvance: return "advance";
      case Kind::kJitter: return "jitter";
      case Kind::kHorizon: return "horizon";
    }
    return "?";
  }
};

const char* path_name(ReplanDelta::Path path) {
  switch (path) {
    case ReplanDelta::Path::kSpliced: return "spliced";
    case ReplanDelta::Path::kStripes: return "stripes";
    case ReplanDelta::Path::kCold: return "cold";
  }
  return "?";
}

/// The evolving problem. The corridor is owned here (advances replace it
/// with its own suffix) and prob.route always points into it.
struct ChainState {
  road::Corridor corridor;
  core::DpProblem prob;

  explicit ChainState(road::Corridor c) : corridor(std::move(c)) {}

  std::size_t n_hops() const {
    return static_cast<std::size_t>(
        std::max(1.0, std::round(corridor.length() / prob.resolution.ds_m)));
  }
};

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// Nudges one bound of one T_q window on an enforced signal, staying inside
/// the neighboring windows so the list remains ordered and disjoint. Returns
/// the event's layer, or nullopt when the problem has no editable window or
/// the draw landed on the old value (the step is then a no-op resubmission).
std::optional<std::size_t> nudge_window(ChainState& state, Rng& rng) {
  std::vector<std::size_t> cands;
  for (std::size_t i = 0; i < state.prob.events.size(); ++i) {
    const core::LayerEvent& e = state.prob.events[i];
    if (e.type == core::LayerEvent::Type::kSignal && e.enforce_windows && !e.windows.empty())
      cands.push_back(i);
  }
  if (cands.empty()) return std::nullopt;
  core::LayerEvent& event =
      state.prob.events[cands[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cands.size()) - 1))]];
  const std::size_t wi = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(event.windows.size()) - 1));
  road::TimeWindow& w = event.windows[wi];
  const bool move_start = rng.bernoulli(0.5);
  double lo, hi;
  if (move_start) {
    lo = wi > 0 ? event.windows[wi - 1].end_s + 0.1 : w.start_s - 8.0;
    hi = w.end_s - 0.5;
  } else {
    lo = w.start_s + 0.5;
    hi = wi + 1 < event.windows.size() ? event.windows[wi + 1].start_s - 0.1 : w.end_s + 8.0;
  }
  if (hi <= lo) return std::nullopt;
  double& bound = move_start ? w.start_s : w.end_s;
  const double picked = rng.uniform(lo, hi);
  if (bits_equal(picked, bound)) return std::nullopt;
  bound = picked;
  return event.layer;
}

/// Advances the start state along the previous plan to a mid-route grid node:
/// suffix corridor, events rebased by the passed layer count, new depart time
/// and initial speed. ds is rescaled so the solver's round() reproduces
/// exactly n_hops - k hops on the suffix (the grid stays aligned with the
/// rebased event layers). The old plan's tail remains feasible for the new
/// problem, so the chain does not starve itself. Returns false when the plan
/// has no usable interior node.
bool advance_start(ChainState& state, const core::PlannedProfile& last_plan, Rng& rng) {
  const std::size_t n_hops = state.n_hops();
  if (n_hops < 3) return false;
  const double length = state.corridor.length();
  const double ds = length / static_cast<double>(n_hops);
  const std::vector<core::PlanNode>& nodes = last_plan.nodes();
  std::vector<std::size_t> cands;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto k = static_cast<std::size_t>(std::llround(nodes[i].position_m / ds));
    if (k >= 1 && k + 2 <= n_hops) cands.push_back(i);
  }
  if (cands.empty()) return false;
  const core::PlanNode& node =
      nodes[cands[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(cands.size()) - 1))]];
  const auto k = static_cast<std::size_t>(std::llround(node.position_m / ds));

  road::Corridor rest = road::corridor_suffix(state.corridor, node.position_m);
  std::vector<core::LayerEvent> events;
  for (const core::LayerEvent& e : state.prob.events) {
    if (e.layer <= k) continue;  // passed (or standing at) it already
    core::LayerEvent moved = e;
    moved.layer = e.layer - k;
    events.push_back(std::move(moved));
  }
  state.corridor = std::move(rest);
  state.prob.route = &state.corridor.route;
  state.prob.events = std::move(events);
  state.prob.resolution.ds_m =
      state.corridor.length() / static_cast<double>(n_hops - k);
  state.prob.depart_time = Seconds(node.time_s);
  state.prob.initial_speed = MetersPerSecond(
      std::clamp(node.speed_ms, 0.0, state.corridor.route.speed_limit_at(0.0)));
  return true;
}

DpSolution tampered(const DpSolution& solution) {
  std::vector<core::PlanNode> nodes = solution.profile.nodes();
  nodes[nodes.size() / 2].speed_ms += 0.25;
  return DpSolution{core::PlannedProfile(std::move(nodes)), solution.stats};
}

}  // namespace

ReplanChainReport check_replan_chain(std::uint64_t seed, const ReplanChainOptions& options) {
  ReplanChainReport report;
  report.seed = seed;

  const ScenarioSpec spec = generate_scenario(seed);
  const Scenario scen(spec);  // owns the energy model prob.energy points at

  ChainState state(scen.corridor());
  state.prob = scen.problem();
  state.prob.route = &state.corridor.route;
  state.prob.checksum_tables = true;  // every step asserts table identity

  Rng rng(seed ^ 0xC4A1'5EED'0F2B'7A93ULL);
  core::DpWorkspace warm_ws, cold_ws;
  core::DpPrevSolution prev;
  bool warm_available = false;
  std::optional<core::PlannedProfile> last_plan;
  bool tamper_pending = options.tamper;

  const auto fail = [&](std::size_t step, const Applied& applied, const char* invariant,
                        const std::string& detail) {
    std::ostringstream what;
    what << "step " << step << " (" << applied.name() << "): " << detail;
    report.violations.push_back(Violation{std::string("replan.") + invariant, what.str()});
  };

  for (std::size_t step = 0; step <= options.steps; ++step) {
    // Mutate (step 0 is the bootstrap solve of the scenario as generated).
    // Steps 1 and 2 deterministically exercise the splice and stripe paths
    // so every chain covers them; later steps draw from the full mix.
    Applied applied;
    if (step == 0) {
      applied.kind = Applied::Kind::kBootstrap;
    } else {
      int pick;
      if (step == 1) pick = 0;       // resubmission -> splice
      else if (step == 2) pick = 1;  // window edit -> stripes
      else {
        const double r = rng.uniform();
        pick = r < 0.10 ? 0 : r < 0.50 ? 1 : r < 0.70 ? 2 : r < 0.85 ? 3 : 4;
      }
      switch (pick) {
        case 0:
          applied.kind = Applied::Kind::kNoop;
          break;
        case 1: {
          const std::optional<std::size_t> layer = nudge_window(state, rng);
          if (layer.has_value()) {
            applied.kind = Applied::Kind::kWindow;
            applied.layer = *layer;
          } else {
            applied.kind = Applied::Kind::kNoop;  // nothing editable
          }
          break;
        }
        case 2:
          if (last_plan.has_value() && advance_start(state, *last_plan, rng)) {
            applied.kind = Applied::Kind::kAdvance;
            break;
          }
          [[fallthrough]];  // no plan to advance along: jitter instead
        case 3: {
          applied.kind = Applied::Kind::kJitter;
          double delta = 0.0;
          while (delta == 0.0) delta = rng.uniform(-3.0, 3.0);
          state.prob.depart_time = Seconds(state.prob.depart_time.value() + delta);
          break;
        }
        default:
          applied.kind = Applied::Kind::kHorizon;
          state.prob.resolution.horizon_s +=
              state.prob.resolution.dt_s * rng.uniform_int(1, 30);
          break;
      }
    }

    // Solve warm and cold, independently.
    core::DpReplanStats rstats;
    std::optional<DpSolution> warm =
        core::solve_dp_incremental(state.prob, prev, warm_ws, nullptr, &rstats);
    const std::optional<DpSolution> cold = core::solve_dp(state.prob, cold_ws, nullptr);
    ++report.steps;
    report.relaxed_layers += rstats.relaxed_layers;
    report.total_layers += rstats.total_layers;
    switch (rstats.path) {
      case ReplanDelta::Path::kSpliced: ++report.spliced_steps; break;
      case ReplanDelta::Path::kStripes: ++report.striped_steps; break;
      case ReplanDelta::Path::kCold: ++report.cold_steps; break;
    }

    // The warm path must be exactly as incremental as the perturbation
    // allows: resubmissions splice, a window edit re-relaxes from exactly
    // the event's layer, everything else (and any step without a usable warm
    // state) goes cold.
    ReplanDelta::Path expected = ReplanDelta::Path::kCold;
    if (warm_available && applied.kind == Applied::Kind::kNoop)
      expected = ReplanDelta::Path::kSpliced;
    else if (warm_available && applied.kind == Applied::Kind::kWindow)
      expected = ReplanDelta::Path::kStripes;
    if (rstats.path != expected) {
      std::ostringstream detail;
      detail << "took " << path_name(rstats.path) << ", entitled to " << path_name(expected);
      if (rstats.path == ReplanDelta::Path::kCold) detail << " (" << rstats.cold_reason << ")";
      fail(step, applied, "path", detail.str());
    } else if (expected == ReplanDelta::Path::kStripes && rstats.first_relax != applied.layer) {
      std::ostringstream detail;
      detail << "re-relaxed from layer " << rstats.first_relax << ", edit was at layer "
             << applied.layer;
      fail(step, applied, "path", detail.str());
    }

    // Identity: a warm solve must be indistinguishable from the cold one.
    if (warm.has_value() && tamper_pending) {
      warm = tampered(*warm);
      tamper_pending = false;
    }
    if (warm.has_value() != cold.has_value()) {
      fail(step, applied, "feasible",
           warm.has_value() ? "warm found a plan, cold did not" : "cold found a plan, warm did not");
      warm_available = false;
      last_plan.reset();
      continue;
    }
    if (!warm.has_value()) {
      ++report.infeasible_steps;
      warm_available = false;
      last_plan.reset();
      continue;
    }
    const core::DpStats& ws = warm->stats;
    const core::DpStats& cs = cold->stats;
    if (ws.layers != cs.layers || ws.velocity_levels != cs.velocity_levels ||
        ws.time_bins != cs.time_bins) {
      std::ostringstream detail;
      detail << "grid " << ws.layers << "x" << ws.velocity_levels << "x" << ws.time_bins
             << " vs " << cs.layers << "x" << cs.velocity_levels << "x" << cs.time_bins;
      fail(step, applied, "geometry", detail.str());
    }
    if (ws.table_checksum != cs.table_checksum) {
      std::ostringstream detail;
      detail << "table checksum " << ws.table_checksum << " vs " << cs.table_checksum;
      fail(step, applied, "checksum", detail.str());
    }
    if (!bits_equal(ws.best_cost_mah, cs.best_cost_mah)) {
      std::ostringstream detail;
      detail.precision(17);
      detail << "best cost " << ws.best_cost_mah << " vs " << cs.best_cost_mah;
      fail(step, applied, "cost", detail.str());
    }
    const std::vector<core::PlanNode>& wn = warm->profile.nodes();
    const std::vector<core::PlanNode>& cn = cold->profile.nodes();
    if (wn.size() != cn.size() ||
        std::memcmp(wn.data(), cn.data(), wn.size() * sizeof(core::PlanNode)) != 0) {
      std::ostringstream detail;
      detail << "profiles differ (" << wn.size() << " vs " << cn.size() << " nodes)";
      fail(step, applied, "profile", detail.str());
    }
    warm_available = true;
    last_plan = cold->profile;
  }
  return report;
}

std::string replan_report_to_string(const ReplanChainReport& report) {
  std::ostringstream out;
  out << "chain seed " << report.seed << ": " << report.steps << " steps ("
      << report.spliced_steps << " spliced, " << report.striped_steps << " striped, "
      << report.cold_steps << " cold, " << report.infeasible_steps << " infeasible), warm relaxed "
      << report.relaxed_layers << "/" << report.total_layers << " layers";
  if (report.ok()) {
    out << ": OK\n";
  } else {
    out << ": " << report.violations.size() << " violation(s)\n";
    for (const Violation& v : report.violations)
      out << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace evvo::check
