#include "check/batch_identity.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "check/scenario.hpp"
#include "common/random.hpp"
#include "core/dp_batch.hpp"
#include "core/dp_solver.hpp"
#include "core/workspace_pool.hpp"

namespace evvo::check {

namespace {

using core::DpProblem;
using core::DpSolution;

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// Applies the per-lane freedoms DpBatchKey grants: departure time, window
/// contents (rigid shift keeps the list ordered and disjoint), and boundary
/// speed (snapped to the velocity grid). The event skeleton, grid shape, and
/// penalty config stay untouched so the lane remains groupable with its base.
void perturb_lane(DpProblem& prob, Rng& rng) {
  prob.depart_time = Seconds(prob.depart_time.value() + rng.uniform(-30.0, 30.0));
  if (rng.bernoulli(0.5)) {
    std::vector<std::size_t> cands;
    for (std::size_t i = 0; i < prob.events.size(); ++i) {
      const core::LayerEvent& e = prob.events[i];
      if (e.type == core::LayerEvent::Type::kSignal && e.enforce_windows && !e.windows.empty())
        cands.push_back(i);
    }
    if (!cands.empty()) {
      core::LayerEvent& event = prob.events[cands[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cands.size()) - 1))]];
      const double shift = rng.uniform(-6.0, 6.0);
      for (road::TimeWindow& w : event.windows) {
        w.start_s += shift;
        w.end_s += shift;
      }
    }
  }
  if (rng.bernoulli(0.3)) {
    const double dv = prob.resolution.dv_ms;
    const int max_level = static_cast<int>(std::floor(prob.route->max_speed_limit() / dv));
    prob.initial_speed =
        MetersPerSecond(static_cast<double>(rng.uniform_int(0, max_level)) * dv);
  }
}

DpSolution tampered(const DpSolution& solution) {
  std::vector<core::PlanNode> nodes = solution.profile.nodes();
  nodes[nodes.size() / 2].speed_ms += 0.25;
  return DpSolution{core::PlannedProfile(std::move(nodes)), solution.stats};
}

}  // namespace

BatchIdentityReport check_batch_identity(std::uint64_t seed,
                                         const BatchIdentityOptions& options) {
  BatchIdentityReport report;
  report.seed = seed;

  Rng rng(seed ^ 0xC4A1'5EED'0F2B'7A93ULL);
  const std::size_t k = core::dp_batch_lanes();

  // Group A is the seed's scenario; with probability 1/2 a second scenario's
  // lanes are interleaved so the key-grouping and input-order scatter paths
  // are exercised, not just the single-group fast path. Sizes span 1..2K, so
  // over the fuzz run every dispatch shape appears: pure ragged fallback
  // (< K), exactly one SoA chunk, and chunk-plus-remainder.
  const Scenario scen_a(generate_scenario(seed));
  const std::size_t n_a = 1 + static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<int>(2 * k) - 1));
  std::optional<Scenario> scen_b;
  std::size_t n_b = 0;
  if (rng.bernoulli(0.5)) {
    scen_b.emplace(generate_scenario(seed ^ 0x7B5E'D41A'3C96'0FD1ULL));
    n_b = 1 + static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(2 * k) - 1));
  }

  std::vector<DpProblem> problems;
  problems.reserve(n_a + n_b);
  for (std::size_t i = 0; i < std::max(n_a, n_b); ++i) {
    if (i < n_a) {
      DpProblem prob = scen_a.problem();
      prob.checksum_tables = true;
      if (i > 0) perturb_lane(prob, rng);  // lane 0 is the unmodified base
      problems.push_back(std::move(prob));
    }
    if (i < n_b) {
      DpProblem prob = scen_b->problem();
      prob.checksum_tables = true;
      if (i > 0) perturb_lane(prob, rng);
      problems.push_back(std::move(prob));
    }
  }
  report.lanes = problems.size();

  core::WorkspacePool pool;
  core::DpBatchStats stats;
  std::vector<std::optional<DpSolution>> batch =
      core::solve_dp_batch(problems, pool, nullptr, &stats);
  report.groups = stats.groups;
  report.batched_lanes = stats.batched_lanes;
  report.fallback_lanes = stats.fallback_lanes;

  const auto fail = [&](const char* invariant, const std::string& detail) {
    report.violations.push_back(Violation{std::string("batch.") + invariant, detail});
  };

  // Dispatch accounting must cover every lane exactly once, and the group
  // count must match the distinct keys submitted (2 scenarios -> 2 groups;
  // distinct corridors cannot share a route hash in practice).
  if (stats.batched_lanes + stats.fallback_lanes != problems.size()) {
    std::ostringstream detail;
    detail << "dispatch covered " << stats.batched_lanes << "+" << stats.fallback_lanes
           << " lanes, submitted " << problems.size();
    fail("dispatch", detail.str());
  }
  const std::size_t want_groups = scen_b.has_value() ? 2 : 1;
  if (stats.groups != want_groups) {
    std::ostringstream detail;
    detail << "grouped into " << stats.groups << " groups, expected " << want_groups;
    fail("dispatch", detail.str());
  }

  bool tamper_pending = options.tamper;
  core::DpWorkspace solo_ws;
  for (std::size_t lane = 0; lane < problems.size(); ++lane) {
    const std::optional<DpSolution> solo = core::solve_dp(problems[lane], solo_ws, nullptr);
    std::optional<DpSolution>& batched = batch[lane];
    if (batched.has_value() && tamper_pending) {
      batched = tampered(*batched);
      tamper_pending = false;
    }
    const auto lane_fail = [&](const char* invariant, const std::string& detail) {
      std::ostringstream what;
      what << "lane " << lane << ": " << detail;
      fail(invariant, what.str());
    };
    if (batched.has_value() != solo.has_value()) {
      lane_fail("feasible", batched.has_value() ? "batch found a plan, standalone did not"
                                                : "standalone found a plan, batch did not");
      continue;
    }
    if (!batched.has_value()) {
      ++report.infeasible_lanes;
      continue;
    }
    const core::DpStats& bs = batched->stats;
    const core::DpStats& ss = solo->stats;
    if (bs.layers != ss.layers || bs.velocity_levels != ss.velocity_levels ||
        bs.time_bins != ss.time_bins) {
      std::ostringstream detail;
      detail << "grid " << bs.layers << "x" << bs.velocity_levels << "x" << bs.time_bins
             << " vs " << ss.layers << "x" << ss.velocity_levels << "x" << ss.time_bins;
      lane_fail("geometry", detail.str());
    }
    if (bs.relaxations != ss.relaxations || bs.frontier_states != ss.frontier_states ||
        bs.pruned_states != ss.pruned_states) {
      std::ostringstream detail;
      detail << "work " << bs.relaxations << "/" << bs.frontier_states << "/"
             << bs.pruned_states << " vs " << ss.relaxations << "/" << ss.frontier_states
             << "/" << ss.pruned_states << " (relax/frontier/pruned)";
      lane_fail("work", detail.str());
    }
    if (bs.table_checksum != ss.table_checksum) {
      std::ostringstream detail;
      detail << "table checksum " << bs.table_checksum << " vs " << ss.table_checksum;
      lane_fail("checksum", detail.str());
    }
    if (!bits_equal(bs.best_cost_mah, ss.best_cost_mah)) {
      std::ostringstream detail;
      detail.precision(17);
      detail << "best cost " << bs.best_cost_mah << " vs " << ss.best_cost_mah;
      lane_fail("cost", detail.str());
    }
    const std::vector<core::PlanNode>& bn = batched->profile.nodes();
    const std::vector<core::PlanNode>& sn = solo->profile.nodes();
    if (bn.size() != sn.size() ||
        std::memcmp(bn.data(), sn.data(), bn.size() * sizeof(core::PlanNode)) != 0) {
      std::ostringstream detail;
      detail << "profiles differ (" << bn.size() << " vs " << sn.size() << " nodes)";
      lane_fail("profile", detail.str());
    }
  }
  return report;
}

std::string batch_report_to_string(const BatchIdentityReport& report) {
  std::ostringstream out;
  out << "batch seed " << report.seed << ": " << report.lanes << " lanes in " << report.groups
      << " group(s) (" << report.batched_lanes << " batched, " << report.fallback_lanes
      << " fallback, " << report.infeasible_lanes << " infeasible)";
  if (report.ok()) {
    out << ": OK\n";
  } else {
    out << ": " << report.violations.size() << " violation(s)\n";
    for (const Violation& v : report.violations)
      out << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace evvo::check
