// Greedy minimization of a violating scenario.
//
// When the fuzzer finds a spec that trips an invariant, the raw scenario is
// usually cluttered: several lights, rolling grades, a varying arrival
// profile, odd vehicle parameters. The shrinker repeatedly applies
// simplifying transformations (drop a light, flatten the grades, collapse the
// arrival profile, restore default vehicle/resolution, zero the departure
// time...) and keeps a transformation whenever the *same* invariant still
// fires, until no transformation makes progress. The result is the smallest
// scenario this greedy pass can reach, which is what gets printed for humans
// along with the replay command.
#pragma once

#include <cstddef>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace evvo::check {

struct [[nodiscard]] ShrinkResult {
  ScenarioSpec spec;           ///< minimized spec (== input when nothing helped)
  std::string invariant;       ///< the invariant id the shrink preserved
  std::size_t checks_run = 0;  ///< check_scenario() calls spent shrinking
  bool changed = false;
};

/// Minimizes `failing`, a spec for which check_scenario(spec, options)
/// reports at least one violation. `max_checks` bounds the work (each
/// candidate costs one full check_scenario run). If the spec does not
/// actually fail under `options`, it is returned unchanged.
ShrinkResult shrink_failure(const ScenarioSpec& failing, const CheckOptions& options,
                            std::size_t max_checks = 120);

}  // namespace evvo::check
