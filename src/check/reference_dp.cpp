#include "check/reference_dp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/units.hpp"
#include "core/dp_common.hpp"
#include "core/penalty.hpp"

namespace evvo::check {

namespace {

using core::detail::checksum_state_tables;
using core::detail::kDpInf;
using core::detail::kNoPred;
using core::detail::pack_pred;
using core::detail::pred_is_dwell;
using core::detail::pred_j;
using core::detail::pred_k;

/// One feasible constant-acceleration hop leaving velocity level j.
struct Hop {
  std::size_t j_to = 0;
  float dt = 0.0f;     // stored as float: the production solver rounds here
  float accel = 0.0f;
};

}  // namespace

std::vector<double> bucketed_layer_grades(const road::Route& route, std::size_t n_hops,
                                          double ds_m) {
  std::vector<double> layer_grade(n_hops);
  std::vector<long> keys;
  std::vector<double> representative;
  for (std::size_t i = 0; i < n_hops; ++i) {
    const double g = route.grade_at((static_cast<double>(i) + 0.5) * ds_m);
    const long key = std::lround(g * 1e9);
    std::size_t cls = 0;
    while (cls < keys.size() && keys[cls] != key) ++cls;
    if (cls == keys.size()) {
      keys.push_back(key);
      representative.push_back(g);
    }
    layer_grade[i] = representative[cls];
  }
  return layer_grade;
}

std::optional<ReferenceSolution> solve_reference_dp(const core::DpProblem& problem) {
  problem.validate();
  const road::Route& route = *problem.route;
  const ev::EnergyModel& energy = *problem.energy;
  const core::DpResolution& res = problem.resolution;

  // Grid geometry (identical formulas to the production solver).
  const auto n_hops =
      static_cast<std::size_t>(std::max(1.0, std::round(route.length() / res.ds_m)));
  const double ds = route.length() / static_cast<double>(n_hops);
  const std::size_t n_layers = n_hops + 1;
  const auto n_v = static_cast<std::size_t>(std::floor(route.max_speed_limit() / res.dv_ms)) + 1;
  const auto n_t = static_cast<std::size_t>(std::ceil(res.horizon_s / res.dt_s)) + 1;
  const std::size_t layer_size = n_v * n_t;
  if (n_v >= (1u << 11) || n_t >= (1u << 20))
    throw std::invalid_argument("solve_reference_dp: grid too large for backpointer packing");

  std::vector<const core::LayerEvent*> event_at(n_layers, nullptr);
  for (const core::LayerEvent& e : problem.events) {
    if (e.layer >= n_layers)
      throw std::invalid_argument("solve_reference_dp: event layer out of range");
    event_at[e.layer] = &e;
  }

  const double lambda = problem.time_weight_mah_per_s;
  const double smooth = problem.smoothness_weight_mah_per_ms;
  const double idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a())) + lambda;
  const auto idle_step_cost = static_cast<float>(idle_mah_s * res.dt_s);

  int dt_exp = 0;
  const double inv_dt = std::frexp(res.dt_s, &dt_exp) == 0.5 ? 1.0 / res.dt_s : 0.0;

  const auto snap_level = [&](double v) {
    const auto j = static_cast<std::size_t>(std::lround(v / res.dv_ms));
    if (j >= n_v)
      throw std::invalid_argument("solve_reference_dp: boundary speed above the velocity grid");
    return j;
  };
  const std::size_t j_source = snap_level(problem.initial_speed.value());
  const std::size_t j_dest = snap_level(problem.final_speed.value());

  // Feasible hops per source level: the acceleration to go from v to v2 over
  // one distance step must lie in the comfort envelope (Eq. 7b).
  const ev::VehicleParams& vp = energy.params();
  std::vector<std::vector<Hop>> hops(n_v);
  for (std::size_t j = 0; j < n_v; ++j) {
    const double v = static_cast<double>(j) * res.dv_ms;
    for (std::size_t j2 = 0; j2 < n_v; ++j2) {
      const double v2 = static_cast<double>(j2) * res.dv_ms;
      const double v_mid = 0.5 * (v + v2);
      if (v_mid <= 1e-9) continue;  // no movement; dwells handle waiting
      const double a = (v2 * v2 - v * v) / (2.0 * ds);
      if (a < vp.min_acceleration - 1e-9 || a > vp.max_acceleration + 1e-9) continue;
      hops[j].push_back(Hop{j2, static_cast<float>(ds / v_mid), static_cast<float>(a)});
    }
  }

  const std::vector<double> layer_grade = bucketed_layer_grades(route, n_hops, ds);

  // Dense, fully initialized state. Unlike the production workspace there is
  // no lazy row reset to reason about: every cell starts at +inf / 0 / none.
  std::vector<float> cost(n_layers * layer_size, kDpInf);
  std::vector<float> time(n_layers * layer_size, 0.0f);
  std::vector<std::uint32_t> back(n_layers * layer_size, kNoPred);
  const auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
    return i * layer_size + j * n_t + k;
  };

  cost[at(0, j_source, 0)] = 0.0f;
  time[at(0, j_source, 0)] = static_cast<float>(problem.depart_time.value());

  ReferenceSolution out{core::PlannedProfile({core::PlanNode{}, core::PlanNode{}}), 0.0, 0, 0};

  for (std::size_t i = 0; i + 1 < n_layers; ++i) {
    const core::LayerEvent* event = event_at[i];
    const bool is_sign = event && event->type == core::LayerEvent::Type::kStopSign;
    const bool check_windows =
        event && event->type == core::LayerEvent::Type::kSignal && event->enforce_windows;

    // Waiting in place at v = 0 (time bins ascending so wait chains build up).
    for (std::size_t k = 0; k + 1 < n_t; ++k) {
      const std::size_t id = at(i, 0, k);
      if (cost[id] >= kDpInf) continue;
      const float new_cost = cost[id] + idle_step_cost;
      if (new_cost < cost[id + 1]) {
        cost[id + 1] = new_cost;
        time[id + 1] = time[id] + static_cast<float>(res.dt_s);
        back[id + 1] = pack_pred(0, k, /*dwell=*/true);
      }
    }

    const float dwell_f = is_sign ? static_cast<float>(event->dwell_s) : 0.0f;
    const float extra_f = is_sign ? static_cast<float>(idle_mah_s * event->dwell_s) : 0.0f;
    const core::LayerEvent* next_event = event_at[i + 1];
    const bool next_is_sign = next_event && next_event->type == core::LayerEvent::Type::kStopSign;
    const bool next_is_dest = (i + 1 == n_layers - 1);
    const double next_limit = route.speed_limit_at(static_cast<double>(i + 1) * ds);
    const double grade = layer_grade[i];

    // Forward relaxation, plain (j, k, hop) loop order. Per destination cell
    // this visits candidates in (j, k)-lexicographic order - the same order
    // the production gather uses - so with strict-< improvement both solvers
    // keep the same winner on exact cost ties.
    bool any_source = false;
    for (std::size_t j = 0; j < (is_sign ? std::size_t{1} : n_v); ++j) {
      const double v = static_cast<double>(j) * res.dv_ms;
      for (std::size_t k = 0; k < n_t; ++k) {
        const std::size_t id = at(i, j, k);
        const float c0 = cost[id];
        if (c0 >= kDpInf) continue;
        any_source = true;
        float t0 = time[id];
        if (is_sign) t0 += dwell_f;  // mandatory standstill before proceeding
        const float src_cost = c0 + extra_f;
        const bool inside =
            !check_windows || core::in_any_window(event->windows, static_cast<double>(t0));
        const std::uint32_t pred = pack_pred(j, k, /*dwell=*/false);

        for (const Hop& hop : hops[j]) {
          const std::size_t j2 = hop.j_to;
          const double v2 = static_cast<double>(j2) * res.dv_ms;
          if (v2 > next_limit + 1e-9) continue;
          if (next_is_sign && j2 != 0) continue;
          if (next_is_dest && j2 != j_dest) continue;
          const float arrive_t = t0 + hop.dt;
          const double elapsed = static_cast<double>(arrive_t) - problem.depart_time.value();
          if (elapsed >= res.horizon_s) continue;

          // Transition cost, term by term, with the exact float rounding the
          // production solver bakes into its fused tables: energy rounded to
          // float first, then += lambda * dt, then += the smoothness term.
          const double v_mid = 0.5 * (v + v2);
          const auto raw = static_cast<float>(ah_to_mah(
              as_to_ah(energy.current_a(MetersPerSecond(v_mid),
                                        MetersPerSecondSquared(hop.accel), grade) *
                     hop.dt)));
          float hop_cost;
          if (check_windows) {
            hop_cost = static_cast<float>(
                core::penalized_cost(problem.penalty, static_cast<double>(raw), inside));
            if (!std::isfinite(hop_cost)) continue;
          } else {
            hop_cost = raw;
          }
          hop_cost += static_cast<float>(lambda * hop.dt);
          hop_cost += static_cast<float>(
              smooth * std::abs(static_cast<double>(j2) - static_cast<double>(j)) * res.dv_ms);

          const auto k2 =
              static_cast<std::size_t>(inv_dt != 0.0 ? elapsed * inv_dt : elapsed / res.dt_s);
          const std::size_t to = at(i + 1, j2, k2);
          const float new_cost = src_cost + hop_cost;
          ++out.relaxations;
          if (new_cost < cost[to]) {
            cost[to] = new_cost;
            time[to] = arrive_t;
            back[to] = pred;
          }
        }
      }
    }
    if (!any_source) return std::nullopt;  // a dead layer can never recover
  }

  // Destination selection: cheapest cell of the terminal-speed row, earliest
  // arrival among near-ties (same epsilons as production).
  std::size_t best_k = n_t;
  float best_cost = kDpInf;
  float best_time = 0.0f;
  for (std::size_t k = 0; k < n_t; ++k) {
    const std::size_t id = at(n_layers - 1, j_dest, k);
    const float c = cost[id];
    if (c >= kDpInf) continue;
    if (best_k == n_t || c < best_cost - 1e-9f ||
        (std::abs(c - best_cost) <= 1e-9f && time[id] < best_time)) {
      best_cost = c;
      best_k = k;
      best_time = time[id];
    }
  }
  if (best_k == n_t) return std::nullopt;
  out.best_cost_mah = static_cast<double>(best_cost);
  out.table_checksum =
      checksum_state_tables(n_layers, n_v, n_t, cost.data(), time.data(), back.data());

  // Backtrack and materialize the plan exactly as the production extractor
  // does (explicit stop-sign wait nodes, physical energy annotation).
  struct RawNode {
    std::size_t i, j, k;
  };
  std::vector<RawNode> chain;
  std::size_t ci = n_layers - 1, cj = j_dest, ck = best_k;
  while (true) {
    chain.push_back(RawNode{ci, cj, ck});
    const std::uint32_t p = back[at(ci, cj, ck)];
    if (p == kNoPred) break;
    const bool dwell = pred_is_dwell(p);
    const std::size_t pj = pred_j(p);
    const std::size_t pk = pred_k(p);
    if (!dwell) {
      if (ci == 0) break;
      --ci;
    }
    cj = pj;
    ck = pk;
  }
  std::reverse(chain.begin(), chain.end());

  std::vector<core::PlanNode> nodes;
  nodes.reserve(chain.size() + problem.events.size());
  for (std::size_t n = 0; n < chain.size(); ++n) {
    const RawNode& r = chain[n];
    core::PlanNode node;
    node.position_m = static_cast<double>(r.i) * ds;
    node.speed_ms = static_cast<double>(r.j) * res.dv_ms;
    node.time_s = static_cast<double>(time[at(r.i, r.j, r.k)]);
    if (n > 0 && !nodes.empty()) {
      const RawNode& prev = chain[n - 1];
      const core::LayerEvent* pe = event_at[prev.i];
      if (pe && pe->type == core::LayerEvent::Type::kStopSign && prev.i != r.i &&
          pe->dwell_s > 0.0) {
        core::PlanNode wait = nodes.back();
        wait.time_s += pe->dwell_s;
        nodes.push_back(wait);
      }
    }
    nodes.push_back(node);
  }

  const double phys_idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a()));
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    core::PlanNode& cur = nodes[n];
    const core::PlanNode& prev = nodes[n - 1];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    double delta = 0.0;
    if (dist < 1e-9) {
      delta = phys_idle_mah_s * dt;
    } else {
      const double v_mid = 0.5 * (prev.speed_ms + cur.speed_ms);
      const double a =
          (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * dist);
      const double g = route.grade_at(prev.position_m + 0.5 * dist);
      delta = ah_to_mah(as_to_ah(
          energy.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(a), g) * dt));
    }
    cur.energy_mah = prev.energy_mah + delta;
  }

  out.profile = core::PlannedProfile(std::move(nodes));
  return out;
}

}  // namespace evvo::check
