#include "check/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/random.hpp"

namespace evvo::check {

namespace {

/// Piecewise-constant arrival rate over fixed-width time blocks (the last
/// block extends forever). Exercises time-varying queue predictions without
/// needing a full hourly volume series.
class BlockArrivalRate final : public traffic::ArrivalRateProvider {
 public:
  BlockArrivalRate(std::vector<double> veh_h, double block_s)
      : veh_h_(std::move(veh_h)), block_s_(block_s) {}

  double arrival_rate_veh_h(Seconds t) const override {
    if (veh_h_.empty()) return 0.0;
    const auto block =
        static_cast<std::size_t>(std::max(0.0, std::floor(t.value() / block_s_)));
    return veh_h_[std::min(block, veh_h_.size() - 1)];
  }

 private:
  std::vector<double> veh_h_;
  double block_s_;
};

/// Grid-cell count of the spec's DP problem (memory/time proxy).
std::size_t grid_cells(const ScenarioSpec& spec) {
  const double length = spec.corridor_length_m();
  const auto& res = spec.planner.resolution;
  const auto n_hops = static_cast<std::size_t>(std::max(1.0, std::round(length / res.ds_m)));
  double max_limit = 0.0;
  for (const road::RoadSegment& seg : spec.segments) max_limit = std::max(max_limit, seg.speed_limit_ms);
  const auto n_v = static_cast<std::size_t>(std::floor(max_limit / res.dv_ms)) + 1;
  const auto n_t = static_cast<std::size_t>(std::ceil(res.horizon_s / res.dt_s)) + 1;
  return (n_hops + 1) * n_v * n_t;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed, const ScenarioBounds& b) {
  // Seeds are mixed so neighbouring fuzz seeds do not produce correlated
  // corridors (Rng streams from adjacent raw seeds share structure).
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  ScenarioSpec spec;
  spec.seed = seed;

  const double length = rng.uniform(b.min_length_m, b.max_length_m);

  // Road segments: 1-4 stretches with independent limits; half the scenarios
  // are flat (the paper's experiments), the rest get per-segment grades.
  const int n_segments = rng.uniform_int(1, 4);
  const bool flat = rng.bernoulli(0.5);
  double cursor = 0.0;
  for (int i = 0; i < n_segments; ++i) {
    road::RoadSegment seg;
    seg.start_m = cursor;
    seg.end_m = i + 1 == n_segments
                    ? length
                    : cursor + (length - cursor) / static_cast<double>(n_segments - i);
    seg.speed_limit_ms = rng.uniform(b.min_speed_limit_ms, b.max_speed_limit_ms);
    seg.grade_rad = flat ? 0.0 : rng.uniform(-b.max_grade_rad, b.max_grade_rad);
    spec.segments.push_back(seg);
    cursor = seg.end_m;
  }

  // Regulatory elements with generous spacing and an interior margin, so
  // every element snaps to a distinct non-boundary grid layer.
  const int n_lights = rng.uniform_int(b.min_lights, b.max_lights);
  const int n_signs = rng.uniform_int(0, b.max_stop_signs);
  std::vector<double> positions;
  int attempts = 0;
  while (static_cast<int>(positions.size()) < n_lights + n_signs && attempts < 10000) {
    ++attempts;
    const double candidate = rng.uniform(b.min_element_gap_m, length - b.min_element_gap_m);
    bool ok = true;
    for (const double p : positions) ok &= std::abs(p - candidate) >= b.min_element_gap_m;
    if (ok) positions.push_back(candidate);
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (static_cast<int>(i) < n_lights) {
      ScenarioSpec::SpecLight light;
      light.position_m = positions[i];
      light.red_s = rng.uniform(b.min_phase_s, b.max_phase_s);
      light.green_s = rng.uniform(b.min_phase_s, b.max_phase_s);
      light.offset_s = rng.uniform(0.0, light.red_s + light.green_s);
      spec.lights.push_back(light);
    } else {
      spec.stop_signs.push_back(road::StopSign{positions[i], rng.uniform(1.5, 3.0)});
    }
  }
  std::sort(spec.lights.begin(), spec.lights.end(),
            [](const auto& a, const auto& c) { return a.position_m < c.position_m; });
  std::sort(spec.stop_signs.begin(), spec.stop_signs.end(),
            [](const auto& a, const auto& c) { return a.position_m < c.position_m; });

  spec.depart_time_s = rng.uniform(0.0, b.max_depart_s);
  spec.planner.resolution.horizon_s = std::round(length / 10.0 + 240.0);

  // Arrival-rate profile covering departure through horizon, one draw per
  // block; a third of the scenarios ramp (rush-hour onset) instead of jumping.
  const double span = spec.depart_time_s + spec.planner.resolution.horizon_s;
  const auto n_blocks = static_cast<std::size_t>(std::ceil(span / spec.arrival_block_s)) + 1;
  const bool ramp = rng.bernoulli(1.0 / 3.0);
  double level = rng.uniform(b.min_arrival_veh_h, b.max_arrival_veh_h);
  spec.arrival_veh_h.clear();
  for (std::size_t i = 0; i < n_blocks; ++i) {
    spec.arrival_veh_h.push_back(level);
    level = ramp ? std::min(b.max_arrival_veh_h, level * rng.uniform(1.05, 1.35))
                 : rng.uniform(b.min_arrival_veh_h, b.max_arrival_veh_h);
  }

  if (b.vary_vehicle) {
    spec.vehicle.mass_kg = rng.uniform(1000.0, 1900.0);
    spec.vehicle.frontal_area_m2 = rng.uniform(1.9, 2.8);
    spec.vehicle.drag_coefficient = rng.uniform(0.24, 0.38);
    spec.vehicle.rolling_resistance = rng.uniform(0.008, 0.022);
    spec.vehicle.max_acceleration = rng.uniform(1.8, 2.8);
    spec.vehicle.min_acceleration = rng.uniform(-2.2, -1.2);
    spec.vehicle.accessory_power_w = rng.uniform(200.0, 900.0);
    spec.vehicle.regen_efficiency = rng.bernoulli(0.3) ? rng.uniform(0.6, 1.0) : 1.0;
  }
  spec.vehicle.validate();

  if (b.vary_policy) {
    const double draw = rng.uniform();
    spec.planner.policy = draw < 0.70   ? core::SignalPolicy::kQueueAware
                          : draw < 0.85 ? core::SignalPolicy::kGreenWindow
                                        : core::SignalPolicy::kIgnoreSignals;
  }
  if (b.vary_penalty) {
    const double draw = rng.uniform();
    spec.planner.penalty.mode = draw < 0.70   ? core::PenaltyMode::kMultiplicative
                                : draw < 0.85 ? core::PenaltyMode::kAdditive
                                              : core::PenaltyMode::kHard;
    spec.planner.penalty.m = rng.uniform(200.0, 2000.0);
  }
  if (b.vary_resolution) {
    const double draw = rng.uniform();
    // dt = 0.8 exercises the solver's non-power-of-two time-binning path
    // (division instead of the reciprocal multiply).
    if (draw < 0.15) spec.planner.resolution.dt_s = 0.5;
    else if (draw < 0.25) spec.planner.resolution.dt_s = 0.8;
    if (rng.bernoulli(0.2)) spec.planner.resolution.dv_ms = 1.0;
    if (rng.bernoulli(0.15)) spec.planner.resolution.ds_m = rng.uniform(8.0, 14.0);
  }
  if (rng.bernoulli(0.15)) {
    spec.planner.window_start_margin_s = 0.0;
    spec.planner.window_end_margin_s = 0.0;
  }
  spec.planner.time_weight_mah_per_s = rng.uniform(2.0, 8.0);

  // Keep one scenario's DP grid within a fixed cell budget so fuzz runs have
  // predictable memory and wall-clock: coarsen the grid deterministically
  // until it fits.
  // Every scenario runs ~10 full DP solves (reference oracle, thread sweep in
  // both pruning modes, hard-mode cross-solve), so the budget is what keeps
  // "200 scenarios in a CI minute" honest.
  constexpr std::size_t kMaxCells = 1'200'000;
  if (grid_cells(spec) > kMaxCells) spec.planner.resolution.dt_s = 1.0;
  if (grid_cells(spec) > kMaxCells) spec.planner.resolution.dv_ms = std::max(spec.planner.resolution.dv_ms, 1.0);
  if (grid_cells(spec) > kMaxCells) spec.planner.resolution.ds_m = std::max(spec.planner.resolution.ds_m, 14.0);
  if (grid_cells(spec) > kMaxCells) spec.planner.resolution.ds_m = std::max(spec.planner.resolution.ds_m, 18.0);

  return spec;
}

std::string spec_to_text(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "evvo-scenario v1\n";
  out << "seed " << spec.seed << "\n";
  for (const road::RoadSegment& s : spec.segments) {
    out << "segment " << s.start_m << " " << s.end_m << " " << s.speed_limit_ms << " "
        << s.min_speed_ms << " " << s.grade_rad << "\n";
  }
  for (const ScenarioSpec::SpecLight& l : spec.lights) {
    out << "light " << l.position_m << " " << l.red_s << " " << l.green_s << " " << l.offset_s
        << "\n";
  }
  for (const road::StopSign& s : spec.stop_signs) {
    out << "sign " << s.position_m << " " << s.min_stop_s << "\n";
  }
  out << "arrivals " << spec.arrival_block_s;
  for (const double rate : spec.arrival_veh_h) out << " " << rate;
  out << "\n";
  const ev::VehicleParams& v = spec.vehicle;
  out << "vehicle " << v.mass_kg << " " << v.frontal_area_m2 << " " << v.drag_coefficient << " "
      << v.rolling_resistance << " " << v.battery_efficiency << " " << v.powertrain_efficiency
      << " " << v.min_acceleration << " " << v.max_acceleration << " " << v.accessory_power_w
      << " " << v.regen_efficiency << "\n";
  out << "depart " << spec.depart_time_s << "\n";
  const core::DpResolution& r = spec.planner.resolution;
  out << "resolution " << r.ds_m << " " << r.dv_ms << " " << r.dt_s << " " << r.horizon_s << "\n";
  const core::PenaltyConfig& p = spec.planner.penalty;
  out << "penalty " << static_cast<int>(p.mode) << " " << p.m << " " << p.additive_mah << " "
      << p.min_cost_mah << "\n";
  out << "policy " << static_cast<int>(spec.planner.policy) << "\n";
  out << "weights " << spec.planner.time_weight_mah_per_s << " "
      << spec.planner.smoothness_weight_mah_per_ms << "\n";
  out << "margins " << spec.planner.window_start_margin_s << " "
      << spec.planner.window_end_margin_s << "\n";
  out << "pruning " << (spec.planner.dominance_pruning ? 1 : 0) << "\n";
  return out.str();
}

ScenarioSpec spec_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "evvo-scenario v1")
    throw std::runtime_error("spec_from_text: unrecognized header '" + header + "'");
  ScenarioSpec spec;
  spec.segments.clear();
  spec.arrival_veh_h.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    const auto fail = [&](const char* what) {
      throw std::runtime_error(std::string("spec_from_text: bad '") + key + "' line: " + what);
    };
    if (key == "seed") {
      if (!(fields >> spec.seed)) fail("seed value");
    } else if (key == "segment") {
      road::RoadSegment s;
      if (!(fields >> s.start_m >> s.end_m >> s.speed_limit_ms >> s.min_speed_ms >> s.grade_rad))
        fail("5 numbers expected");
      spec.segments.push_back(s);
    } else if (key == "light") {
      ScenarioSpec::SpecLight l;
      if (!(fields >> l.position_m >> l.red_s >> l.green_s >> l.offset_s)) fail("4 numbers expected");
      spec.lights.push_back(l);
    } else if (key == "sign") {
      road::StopSign s;
      if (!(fields >> s.position_m >> s.min_stop_s)) fail("2 numbers expected");
      spec.stop_signs.push_back(s);
    } else if (key == "arrivals") {
      if (!(fields >> spec.arrival_block_s)) fail("block width expected");
      double rate = 0.0;
      while (fields >> rate) spec.arrival_veh_h.push_back(rate);
      if (spec.arrival_veh_h.empty()) fail("at least one rate expected");
    } else if (key == "vehicle") {
      ev::VehicleParams& v = spec.vehicle;
      if (!(fields >> v.mass_kg >> v.frontal_area_m2 >> v.drag_coefficient >> v.rolling_resistance >>
            v.battery_efficiency >> v.powertrain_efficiency >> v.min_acceleration >>
            v.max_acceleration >> v.accessory_power_w >> v.regen_efficiency))
        fail("10 numbers expected");
    } else if (key == "depart") {
      if (!(fields >> spec.depart_time_s)) fail("time expected");
    } else if (key == "resolution") {
      core::DpResolution& r = spec.planner.resolution;
      if (!(fields >> r.ds_m >> r.dv_ms >> r.dt_s >> r.horizon_s)) fail("4 numbers expected");
    } else if (key == "penalty") {
      int mode = 0;
      core::PenaltyConfig& p = spec.planner.penalty;
      if (!(fields >> mode >> p.m >> p.additive_mah >> p.min_cost_mah)) fail("4 numbers expected");
      p.mode = static_cast<core::PenaltyMode>(mode);
    } else if (key == "policy") {
      int policy = 0;
      if (!(fields >> policy)) fail("policy index expected");
      spec.planner.policy = static_cast<core::SignalPolicy>(policy);
    } else if (key == "weights") {
      if (!(fields >> spec.planner.time_weight_mah_per_s >>
            spec.planner.smoothness_weight_mah_per_ms))
        fail("2 numbers expected");
    } else if (key == "margins") {
      if (!(fields >> spec.planner.window_start_margin_s >> spec.planner.window_end_margin_s))
        fail("2 numbers expected");
    } else if (key == "pruning") {
      int on = 1;
      if (!(fields >> on)) fail("0/1 expected");
      spec.planner.dominance_pruning = on != 0;
    } else {
      throw std::runtime_error("spec_from_text: unknown key '" + key + "'");
    }
  }
  if (spec.segments.empty()) throw std::runtime_error("spec_from_text: no segments");
  if (spec.arrival_veh_h.empty()) spec.arrival_veh_h.push_back(0.0);
  return spec;
}

void save_spec(const std::filesystem::path& path, const ScenarioSpec& spec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_spec: cannot open " + path.string());
  out << spec_to_text(spec);
}

ScenarioSpec load_spec(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_spec: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return spec_from_text(buffer.str());
}

namespace {

road::Corridor materialize_corridor(const ScenarioSpec& spec) {
  road::Corridor corridor{road::Route(spec.segments), {}, {}};
  for (const ScenarioSpec::SpecLight& l : spec.lights) {
    corridor.lights.emplace_back(l.position_m, l.red_s, l.green_s, l.offset_s);
  }
  corridor.stop_signs = spec.stop_signs;
  return corridor;
}

}  // namespace

Scenario::Scenario(ScenarioSpec spec)
    : spec_(std::move(spec)),
      corridor_(materialize_corridor(spec_)),
      energy_(spec_.vehicle, /*pack_voltage=*/399.0),
      arrivals_(std::make_shared<BlockArrivalRate>(spec_.arrival_veh_h, spec_.arrival_block_s)) {
  const core::VelocityPlanner planner(corridor_, energy_, spec_.planner);
  events_ = planner.build_events(Seconds(spec_.depart_time_s), arrivals_);
}

double Scenario::grid_ds() const {
  const double length = corridor_.length();
  const auto n_hops = static_cast<std::size_t>(
      std::max(1.0, std::round(length / spec_.planner.resolution.ds_m)));
  return length / static_cast<double>(n_hops);
}

core::DpProblem Scenario::problem() const {
  core::DpProblem problem;
  problem.route = &corridor_.route;
  problem.energy = &energy_;
  problem.depart_time = Seconds(spec_.depart_time_s);
  problem.resolution = spec_.planner.resolution;
  problem.resolution.threads = 1;
  problem.penalty = spec_.planner.penalty;
  problem.time_weight_mah_per_s = spec_.planner.time_weight_mah_per_s;
  problem.smoothness_weight_mah_per_ms = spec_.planner.smoothness_weight_mah_per_ms;
  problem.dominance_pruning = spec_.planner.dominance_pruning;
  problem.events = events_;
  return problem;
}

}  // namespace evvo::check
