// Differential oracle for the batched SoA multi-scenario DP
// (core/dp_batch.hpp).
//
// One check generates a scenario from its seed and fans it into a batch of
// compatible lane variants (departure jitter, shifted signal windows,
// different boundary speeds - exactly the per-lane freedoms DpBatchKey
// grants), optionally interleaved with a second scenario's batch so the
// grouping logic is exercised. The whole set is solved once through
// solve_dp_batch() and once more lane-by-lane through the standalone
// solve_dp(); every lane must agree bit-for-bit: feasibility, full
// state-table checksum, optimal cost, work counters (relaxations, frontier,
// pruned), and every profile byte. The dispatch accounting is also checked:
// every lane must be either batched or a ragged-remainder fallback, and the
// group count must match the distinct keys submitted.
//
// `evvo_fuzz --batch` drives many checks; the tamper option corrupts one
// batched result so the harness can prove the oracle fires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"

namespace evvo::check {

struct BatchIdentityOptions {
  /// Corrupt one batched profile node before comparison; the check must then
  /// report a violation (oracle self-test, wired to `evvo_fuzz --inject`).
  bool tamper = false;
};

struct [[nodiscard]] BatchIdentityReport {
  std::uint64_t seed = 0;
  std::size_t lanes = 0;             ///< scenarios submitted to the batch
  std::size_t groups = 0;            ///< distinct compatibility groups
  std::size_t batched_lanes = 0;     ///< lanes the SoA sweep solved
  std::size_t fallback_lanes = 0;    ///< ragged-remainder standalone solves
  std::size_t infeasible_lanes = 0;  ///< lanes both sides found infeasible
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Solves one seeded batch both ways and compares. Deterministic in
/// (seed, options).
BatchIdentityReport check_batch_identity(std::uint64_t seed,
                                         const BatchIdentityOptions& options = {});

/// Multi-line human-readable rendering (one line per violation).
std::string batch_report_to_string(const BatchIdentityReport& report);

}  // namespace evvo::check
