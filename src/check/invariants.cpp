#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "check/reference_dp.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/penalty.hpp"
#include "core/profile_eval.hpp"
#include "sim/microsim.hpp"
#include "sim/traci.hpp"
#include "traffic/queue_model.hpp"

namespace evvo::check {

namespace {

using core::DpProblem;
using core::DpSolution;
using core::LayerEvent;
using core::PlanNode;
using core::PlannedProfile;

/// Accumulates violations with printf-free formatted details.
class Reporter {
 public:
  explicit Reporter(CheckReport& report) : report_(report) {}

  std::ostringstream& add(const std::string& invariant) {
    report_.violations.push_back(Violation{invariant, {}});
    detail_.str({});
    detail_.clear();
    detail_.precision(12);
    return detail_;
  }
  /// Must be called after streaming into the stream add() returned.
  void commit() { report_.violations.back().detail = detail_.str(); }

  void note(const std::string& invariant, const std::string& detail) {
    report_.violations.push_back(Violation{invariant, detail});
  }

 private:
  CheckReport& report_;
  std::ostringstream detail_;
};

bool profiles_bit_identical(const PlannedProfile& a, const PlannedProfile& b) {
  const auto& na = a.nodes();
  const auto& nb = b.nodes();
  if (na.size() != nb.size()) return false;
  return na.empty() || std::memcmp(na.data(), nb.data(), na.size() * sizeof(PlanNode)) == 0;
}

/// Recomputes the solver's objective by walking the extracted profile with
/// the true events, reproducing the float-add sequence of the inner loop.
/// Diverges from the reported best cost only when the solver mis-accounted a
/// transition - e.g. it believed a crossing was inside T_q when it was not.
/// Returns +inf when a crossing is hard-infeasible under the true windows.
std::optional<double> recost_profile(const Scenario& scenario, const PlannedProfile& profile) {
  const road::Route& route = scenario.corridor().route;
  const ev::EnergyModel& energy = scenario.energy();
  const core::PlannerConfig& cfg = scenario.spec().planner;
  const double ds = scenario.grid_ds();
  const auto n_hops = static_cast<std::size_t>(std::llround(route.length() / ds));
  const std::vector<double> grades = bucketed_layer_grades(route, n_hops, ds);

  std::vector<const LayerEvent*> event_at(n_hops + 1, nullptr);
  for (const LayerEvent& e : scenario.events()) event_at[e.layer] = &e;

  const double lambda = cfg.time_weight_mah_per_s;
  const double idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a())) + lambda;
  const double dv = cfg.resolution.dv_ms;

  float cost = 0.0f;
  const auto& nodes = profile.nodes();
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    const PlanNode& prev = nodes[n - 1];
    const PlanNode& cur = nodes[n];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    if (dist < 1e-9) {
      cost += static_cast<float>(idle_mah_s * dt);  // dwell bin or stop-sign wait
      continue;
    }
    const auto layer = static_cast<std::size_t>(std::llround(prev.position_m / ds));
    if (layer >= n_hops) return std::nullopt;  // off-grid node: not recostable
    const double v_mid = 0.5 * (prev.speed_ms + cur.speed_ms);
    if (v_mid <= 1e-9) return std::nullopt;
    const auto hop_dt = static_cast<float>(ds / v_mid);
    const auto accel = static_cast<float>(
        (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * ds));
    const auto raw = static_cast<float>(
        ah_to_mah(as_to_ah(energy.current_a(MetersPerSecond(v_mid), MetersPerSecondSquared(accel), grades[layer]) * hop_dt)));

    const LayerEvent* event = event_at[layer];
    float hop_cost;
    if (event && event->type == LayerEvent::Type::kSignal && event->enforce_windows) {
      const bool inside = core::in_any_window(event->windows, prev.time_s);
      hop_cost = static_cast<float>(
          core::penalized_cost(cfg.penalty, static_cast<double>(raw), inside));
      if (!std::isfinite(hop_cost)) return std::numeric_limits<double>::infinity();
    } else {
      hop_cost = raw;
    }
    hop_cost += static_cast<float>(lambda * hop_dt);
    const double j_prev = std::lround(prev.speed_ms / dv);
    const double j_cur = std::lround(cur.speed_ms / dv);
    hop_cost += static_cast<float>(cfg.smoothness_weight_mah_per_ms * std::abs(j_cur - j_prev) * dv);
    cost += hop_cost;
  }
  return static_cast<double>(cost);
}

/// Independent energy integration: each inter-node segment is constant-
/// acceleration motion; sub-sample it instead of trusting the single
/// mid-speed evaluation the solver's annotation uses.
double integrate_profile_energy(const road::Route& route, const ev::EnergyModel& energy,
                                const PlannedProfile& profile) {
  const double idle_mah_s = ah_to_mah(as_to_ah(energy.accessory_current_a()));
  double total = 0.0;
  const auto& nodes = profile.nodes();
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    const PlanNode& prev = nodes[n - 1];
    const PlanNode& cur = nodes[n];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    if (dt <= 0.0) continue;
    if (dist < 1e-9) {
      total += idle_mah_s * dt;
      continue;
    }
    const double a = (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * dist);
    constexpr int kSub = 8;
    for (int s = 0; s < kSub; ++s) {
      const double tm = (static_cast<double>(s) + 0.5) / kSub * dt;
      const double v = prev.speed_ms + a * tm;
      const double pos = prev.position_m + prev.speed_ms * tm + 0.5 * a * tm * tm;
      total += ah_to_mah(
          as_to_ah(energy.current_a(MetersPerSecond(v), MetersPerSecondSquared(a), route.grade_at(pos)) * (dt / kSub)));
    }
  }
  return total;
}

struct SolveSet {
  std::optional<DpSolution> serial;                 ///< threads = 1, with checksum
  std::vector<std::optional<DpSolution>> threaded;  ///< one per requested count
};

SolveSet solve_all(const DpProblem& base, core::DpWorkspace& ws, common::ThreadPool* pool,
                   const std::vector<unsigned>& thread_counts) {
  SolveSet out;
  DpProblem p = base;
  p.checksum_tables = true;
  p.resolution.threads = 1;
  out.serial = core::solve_dp(p, ws, nullptr);
  for (const unsigned tc : thread_counts) {
    p.resolution.threads = tc;
    out.threaded.push_back(core::solve_dp(p, ws, pool));
  }
  return out;
}

/// Asserts every threaded solve is bit-identical to the serial baseline.
void check_thread_identity(Reporter& rep, const char* mode, const SolveSet& set,
                           const std::vector<unsigned>& thread_counts) {
  for (std::size_t t = 0; t < set.threaded.size(); ++t) {
    const auto& threaded = set.threaded[t];
    const unsigned tc = thread_counts[t];
    if (threaded.has_value() != set.serial.has_value()) {
      rep.add("threads.feasibility")
          << mode << ": threads=" << tc << " feasible=" << threaded.has_value()
          << " but serial feasible=" << set.serial.has_value();
      rep.commit();
      continue;
    }
    if (!threaded) continue;
    if (threaded->stats.table_checksum != set.serial->stats.table_checksum) {
      rep.add("threads.checksum")
          << mode << ": threads=" << tc << " table checksum " << std::hex
          << threaded->stats.table_checksum << " != serial " << set.serial->stats.table_checksum;
      rep.commit();
    }
    if (threaded->stats.best_cost_mah != set.serial->stats.best_cost_mah) {
      rep.add("threads.cost") << mode << ": threads=" << tc << " best cost "
                              << threaded->stats.best_cost_mah << " != serial "
                              << set.serial->stats.best_cost_mah;
      rep.commit();
    }
    if (!profiles_bit_identical(threaded->profile, set.serial->profile)) {
      rep.add("threads.profile") << mode << ": threads=" << tc
                                 << " extracted profile differs from the serial profile";
      rep.commit();
    }
  }
}

/// Asserts a scalar-kernel solve (DpResolution::simd off, serial) is
/// bit-identical to the vectorized serial baseline. The SIMD layer promises
/// lane-exact IEEE arithmetic and scalar tie-breaking (common/simd.hpp); this
/// is the oracle that holds it to that promise on every generated scenario.
void check_simd_identity(Reporter& rep, const DpProblem& base, core::DpWorkspace& ws,
                         const SolveSet& un) {
  DpProblem p = base;
  p.checksum_tables = true;
  p.resolution.threads = 1;
  p.resolution.simd = false;
  const std::optional<DpSolution> scalar = core::solve_dp(p, ws, nullptr);
  if (scalar.has_value() != un.serial.has_value()) {
    rep.add("simd.feasibility") << "simd-off feasible=" << scalar.has_value()
                                << " but simd-on feasible=" << un.serial.has_value();
    rep.commit();
    return;
  }
  if (!scalar) return;
  if (scalar->stats.table_checksum != un.serial->stats.table_checksum) {
    rep.add("simd.checksum") << std::hex << "simd-off table checksum "
                             << scalar->stats.table_checksum << " != simd-on "
                             << un.serial->stats.table_checksum;
    rep.commit();
  }
  if (scalar->stats.best_cost_mah != un.serial->stats.best_cost_mah) {
    rep.add("simd.cost") << "simd-off best cost " << scalar->stats.best_cost_mah
                         << " != simd-on " << un.serial->stats.best_cost_mah;
    rep.commit();
  }
  if (!profiles_bit_identical(scalar->profile, un.serial->profile)) {
    rep.add("simd.profile") << "simd-off extracted profile differs from the simd-on profile";
    rep.commit();
  }
}

void check_queue_model(Reporter& rep, const Scenario& scenario) {
  const ScenarioSpec& spec = scenario.spec();
  const double t0 = spec.depart_time_s;
  const double t1 = t0 + spec.planner.resolution.horizon_s;
  const traffic::QueueModel model(spec.planner.vm, spec.planner.discharge);
  for (std::size_t li = 0; li < scenario.corridor().lights.size(); ++li) {
    const road::TrafficLight& light = scenario.corridor().lights[li];
    const traffic::QueuePredictor predictor(light, model, scenario.arrivals());

    const auto windows = predictor.zero_queue_windows(Seconds(t0), Seconds(t1));
    double prev_end = -1e18;
    for (const road::TimeWindow& w : windows) {
      if (!(w.duration() > 0.0)) {
        rep.add("queue.window-empty") << "light " << li << ": window [" << w.start_s << ", "
                                      << w.end_s << ") has non-positive duration";
        rep.commit();
      }
      if (w.start_s < prev_end) {
        rep.add("queue.window-order")
            << "light " << li << ": window starting " << w.start_s
            << " overlaps or precedes the previous window ending " << prev_end;
        rep.commit();
      }
      prev_end = w.end_s;
      // T_q must lie inside a green phase: a zero-queue crossing at red is a
      // contradiction (Eq. 11 windows open during discharge or later).
      const double probes[] = {w.start_s + 1e-6, 0.5 * (w.start_s + w.end_s), w.end_s - 1e-6};
      for (const double t : probes) {
        if (!light.is_green(t)) {
          rep.add("queue.window-red") << "light " << li << ": T_q [" << w.start_s << ", "
                                      << w.end_s << ") contains red time " << t;
          rep.commit();
          break;
        }
      }
    }

    const double step = std::max(1.0, (t1 - t0) / 64.0);
    for (double t = t0; t <= t1; t += step) {
      const double q = predictor.queue_length_m_at(Seconds(t));
      if (!(q >= -1e-9) || !std::isfinite(q)) {
        rep.add("queue.negative") << "light " << li << ": queue length " << q << " m at t=" << t;
        rep.commit();
        break;
      }
    }
  }

  // The events the planner actually enforces must also sit inside green (the
  // margin trimming may only shrink windows, never spill them into red).
  std::size_t signal_index = 0;
  for (const LayerEvent& e : scenario.events()) {
    if (e.type != LayerEvent::Type::kSignal) continue;
    const road::TrafficLight& light = scenario.corridor().lights.at(signal_index++);
    if (!e.enforce_windows) continue;
    for (const road::TimeWindow& w : e.windows) {
      if (w.duration() <= 0.0 || !light.is_green(w.start_s + 1e-6) ||
          !light.is_green(w.end_s - 1e-6)) {
        rep.add("events.window-red") << "event layer " << e.layer << ": enforced window ["
                                     << w.start_s << ", " << w.end_s << ") not fully green";
        rep.commit();
      }
    }
  }
}

void check_feasibility(Reporter& rep, const Scenario& scenario, const PlannedProfile& profile) {
  const road::Route& route = scenario.corridor().route;
  const ev::VehicleParams& vp = scenario.energy().params();
  const core::DpResolution& res = scenario.spec().planner.resolution;
  const auto& nodes = profile.nodes();

  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const PlanNode& node = nodes[n];
    if (node.position_m < -1e-6 || node.position_m > route.length() + 1e-6) {
      rep.add("plan.position") << "node " << n << " at " << node.position_m
                               << " m is outside the corridor [0, " << route.length() << "]";
      rep.commit();
    }
    if (node.speed_ms < -1e-9) {
      rep.add("plan.speed-negative") << "node " << n << " speed " << node.speed_ms;
      rep.commit();
    }
    const double limit = route.speed_limit_at(node.position_m);
    if (node.speed_ms > limit + 1e-6) {
      rep.add("plan.speed-limit") << "node " << n << " at " << node.position_m << " m: speed "
                                  << node.speed_ms << " > limit " << limit;
      rep.commit();
    }
  }
  if (!nodes.empty()) {
    if (std::abs(nodes.front().speed_ms) > 1e-9 || std::abs(nodes.back().speed_ms) > 1e-9) {
      rep.add("plan.boundary-speed") << "trip must start and end at rest; got "
                                     << nodes.front().speed_ms << " and " << nodes.back().speed_ms;
      rep.commit();
    }
  }
  if (profile.trip_time() > res.horizon_s + 1e-6) {
    rep.add("plan.horizon") << "trip time " << profile.trip_time() << " s exceeds the horizon "
                            << res.horizon_s << " s";
    rep.commit();
  }

  for (std::size_t n = 1; n < nodes.size(); ++n) {
    const PlanNode& prev = nodes[n - 1];
    const PlanNode& cur = nodes[n];
    const double dt = cur.time_s - prev.time_s;
    const double dist = cur.position_m - prev.position_m;
    if (dist < -1e-9 || dt < -1e-9) {
      rep.add("plan.monotone") << "node " << n << ": position/time step (" << dist << " m, " << dt
                               << " s) goes backwards";
      rep.commit();
      continue;
    }
    if (dist < 1e-9) {
      if (std::abs(prev.speed_ms) > 1e-9 || std::abs(cur.speed_ms) > 1e-9) {
        rep.add("plan.dwell-moving") << "node " << n << ": dwell with nonzero speed "
                                     << prev.speed_ms << " -> " << cur.speed_ms;
        rep.commit();
      }
      continue;
    }
    const double a = (cur.speed_ms * cur.speed_ms - prev.speed_ms * prev.speed_ms) / (2.0 * dist);
    if (a < vp.min_acceleration - 1e-6 || a > vp.max_acceleration + 1e-6) {
      rep.add("plan.accel") << "node " << n << ": acceleration " << a << " outside ["
                            << vp.min_acceleration << ", " << vp.max_acceleration << "]";
      rep.commit();
    }
  }

  // Stop signs: the plan must reach v = 0 at the sign layer and hold at
  // least the mandatory dwell before moving on.
  const double ds = scenario.grid_ds();
  for (const LayerEvent& e : scenario.events()) {
    if (e.type != LayerEvent::Type::kStopSign) continue;
    const double pos = static_cast<double>(e.layer) * ds;
    if (profile.speed_at_position(pos) > 1e-9) {
      rep.add("plan.sign-speed") << "stop sign at " << pos << " m crossed at speed "
                                 << profile.speed_at_position(pos);
      rep.commit();
    }
    // Node times are floats; at t ~ 500 s a float ulp is ~3e-5 s, so the
    // measured dwell (a difference of two accumulated node times) can fall
    // short of the double-precision mandate by a few ulps.
    const double held = profile.departure_time_at(pos) - profile.time_at_position(pos);
    if (held < e.dwell_s - 1e-3) {
      rep.add("plan.sign-dwell") << "stop sign at " << pos << " m held " << held
                                 << " s < mandatory " << e.dwell_s << " s";
      rep.commit();
    }
  }
}

}  // namespace

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return "none";
    case Fault::kWindowShift:
      return "window-shift";
    case Fault::kAccelTamper:
      return "accel-tamper";
    case Fault::kEnergyTamper:
      return "energy-tamper";
    case Fault::kCostTamper:
      return "cost-tamper";
  }
  return "?";
}

Fault fault_from_name(const std::string& name) {
  for (const Fault f : {Fault::kNone, Fault::kWindowShift, Fault::kAccelTamper,
                        Fault::kEnergyTamper, Fault::kCostTamper}) {
    if (name == fault_name(f)) return f;
  }
  throw std::invalid_argument("unknown fault '" + name + "'");
}

CheckReport check_scenario(const ScenarioSpec& spec, const CheckOptions& options) {
  CheckReport report;
  report.seed = spec.seed;
  Reporter rep(report);

  // Serialization must round-trip exactly (the shrinker and --replay-spec
  // depend on it).
  try {
    const std::string text = spec_to_text(spec);
    if (spec_to_text(spec_from_text(text)) != text) {
      rep.note("spec.roundtrip", "spec_to_text(spec_from_text(text)) != text");
    }
  } catch (const std::exception& e) {
    rep.note("spec.roundtrip", e.what());
  }

  std::optional<Scenario> scenario;
  try {
    scenario.emplace(spec);
  } catch (const std::exception& e) {
    rep.note("scenario.materialize", e.what());
    return report;
  }

  check_queue_model(rep, *scenario);

  // The problems under test. kWindowShift models a planner running on stale
  // window predictions: the solver sees shifted T_q while the checkers judge
  // against the true ones - the objective re-coster must notice.
  DpProblem base = scenario->problem();
  if (options.inject == Fault::kWindowShift) {
    for (LayerEvent& e : base.events) {
      if (e.type != LayerEvent::Type::kSignal || !e.enforce_windows) continue;
      for (road::TimeWindow& w : e.windows) {
        w.start_s += 13.0;
        w.end_s += 13.0;
      }
    }
  }

  std::unique_ptr<common::ThreadPool> local_pool;
  common::ThreadPool* pool = options.pool;
  unsigned max_tc = 1;
  for (const unsigned tc : options.thread_counts) max_tc = std::max(max_tc, tc);
  if (!pool && max_tc > 1) {
    local_pool = std::make_unique<common::ThreadPool>(max_tc);
    pool = local_pool.get();
  }

  core::DpWorkspace ws;  // shared across every production solve below

  // --- solver identity: unpruned ---
  DpProblem unpruned = base;
  unpruned.dominance_pruning = false;
  const SolveSet un = solve_all(unpruned, ws, pool, options.thread_counts);

  // --- differential oracle ---
  if (options.run_reference) {
    std::optional<ReferenceSolution> ref = solve_reference_dp(unpruned);
    if (ref && options.inject == Fault::kCostTamper) {
      ref->best_cost_mah += 1.0;
      ref->table_checksum ^= 0xDEADBEEFull;
    }
    if (ref.has_value() != un.serial.has_value()) {
      rep.add("differential.feasibility")
          << "reference feasible=" << ref.has_value()
          << " but production feasible=" << un.serial.has_value();
      rep.commit();
    } else if (ref) {
      if (ref->table_checksum != un.serial->stats.table_checksum) {
        rep.add("differential.checksum")
            << std::hex << "reference table checksum " << ref->table_checksum
            << " != production " << un.serial->stats.table_checksum;
        rep.commit();
      }
      if (ref->best_cost_mah != un.serial->stats.best_cost_mah) {
        rep.add("differential.cost") << "reference best cost " << ref->best_cost_mah
                                     << " != production " << un.serial->stats.best_cost_mah;
        rep.commit();
      }
      if (!profiles_bit_identical(ref->profile, un.serial->profile)) {
        rep.add("differential.profile") << "reference profile differs from production";
        rep.commit();
      }
    }
  }

  check_thread_identity(rep, "unpruned", un, options.thread_counts);

  // --- solver identity: vectorized vs scalar kernel ---
  if (options.run_simd_identity) check_simd_identity(rep, unpruned, ws, un);

  // --- solver identity: pruned (forced on, whatever the spec says) ---
  DpProblem pruned = base;
  pruned.dominance_pruning = true;
  const SolveSet pr = solve_all(pruned, ws, pool, options.thread_counts);
  check_thread_identity(rep, "pruned", pr, options.thread_counts);

  if (pr.serial.has_value() != un.serial.has_value()) {
    rep.add("pruning.feasibility") << "pruned feasible=" << pr.serial.has_value()
                                   << " but unpruned feasible=" << un.serial.has_value();
    rep.commit();
  } else if (pr.serial) {
    const double cp = pr.serial->stats.best_cost_mah;
    const double cu = un.serial->stats.best_cost_mah;
    if (std::abs(cp - cu) > 1e-4 + 1e-6 * std::abs(cu)) {
      rep.add("pruning.cost") << "pruned best cost " << cp << " != unpruned " << cu;
      rep.commit();
    }
  }

  const std::optional<DpSolution>& spec_sol = base.dominance_pruning ? pr.serial : un.serial;
  if (!spec_sol) {
    report.feasible = false;
    return report;
  }
  report.feasible = true;
  report.best_cost_mah = spec_sol->stats.best_cost_mah;
  report.trip_time_s = spec_sol->profile.trip_time();

  // --- objective re-costing against the true events ---
  {
    const std::optional<double> recost = recost_profile(*scenario, spec_sol->profile);
    if (!recost) {
      rep.note("objective.recost", "profile not walkable on the solver grid");
    } else if (std::abs(*recost - spec_sol->stats.best_cost_mah) >
               0.5 + 1e-4 * std::abs(spec_sol->stats.best_cost_mah)) {
      rep.add("objective.recost") << "replayed objective " << *recost
                                  << " mAh != reported best cost "
                                  << spec_sol->stats.best_cost_mah << " mAh";
      rep.commit();
    }
  }

  // Profile under test for the plan-level checks; tampered copies let the
  // harness prove those checks can fire.
  PlannedProfile profile = spec_sol->profile;
  if (options.inject == Fault::kAccelTamper || options.inject == Fault::kEnergyTamper) {
    std::vector<PlanNode> nodes = profile.nodes();
    if (nodes.size() > 2) {
      if (options.inject == Fault::kAccelTamper) {
        nodes[nodes.size() / 2].speed_ms += 4.0;
      } else {
        for (std::size_t n = nodes.size() / 2; n < nodes.size(); ++n) {
          nodes[n].energy_mah += 120.0;
        }
      }
    }
    profile = PlannedProfile(std::move(nodes));
  }

  check_feasibility(rep, *scenario, profile);

  // --- signal-window compliance (against the true events) ---
  bool all_compliant = true;
  bool any_enforced = false;
  const double ds = scenario->grid_ds();
  for (const LayerEvent& e : scenario->events()) {
    if (e.type != LayerEvent::Type::kSignal || !e.enforce_windows) continue;
    any_enforced = true;
    const double pos = static_cast<double>(e.layer) * ds;
    const double t_cross = profile.departure_time_at(pos);
    if (!core::in_any_window(e.windows, t_cross)) {
      all_compliant = false;
      if (spec.planner.penalty.mode == core::PenaltyMode::kHard) {
        rep.add("compliance.hard") << "hard-penalty plan crosses layer " << e.layer << " at "
                                   << t_cross << " s outside every enforced window";
        rep.commit();
      }
    }
  }
  if (any_enforced) {
    // Cross-solve with hard windows: if the plan is compliant its cost must
    // match the compliant optimum; if not, violating must have been no more
    // expensive than complying.
    DpProblem hard = scenario->problem();
    hard.penalty.mode = core::PenaltyMode::kHard;
    hard.checksum_tables = false;
    hard.resolution.threads = pool ? max_tc : 1;
    const std::optional<DpSolution> hard_sol = core::solve_dp(hard, ws, pool);
    const double c = spec_sol->stats.best_cost_mah;
    if (!hard_sol) {
      if (all_compliant && options.inject == Fault::kNone) {
        rep.add("compliance.hard-agreement")
            << "plan is window-compliant but the hard-mode solve found no compliant trajectory";
        rep.commit();
      }
    } else if (all_compliant && options.inject == Fault::kNone) {
      if (std::abs(c - hard_sol->stats.best_cost_mah) > 1e-3 + 1e-6 * std::abs(c)) {
        rep.add("compliance.cost-equality")
            << "compliant plan cost " << c << " mAh != hard-mode optimum "
            << hard_sol->stats.best_cost_mah << " mAh";
        rep.commit();
      }
    } else if (!all_compliant && spec.planner.penalty.mode != core::PenaltyMode::kHard &&
               options.inject == Fault::kNone) {
      if (c > hard_sol->stats.best_cost_mah + 1e-3) {
        rep.add("compliance.penalty-worth")
            << "non-compliant plan cost " << c << " mAh exceeds the compliant optimum "
            << hard_sol->stats.best_cost_mah << " mAh: the penalty was not worth paying";
        rep.commit();
      }
    }
  }

  // --- energy accounting ---
  {
    const road::Route& route = scenario->corridor().route;
    const double annotated = profile.total_energy_mah();
    const double integrated = integrate_profile_energy(route, scenario->energy(), profile);
    if (std::abs(annotated - integrated) > 10.0 + 0.03 * std::abs(integrated)) {
      rep.add("energy.integration") << "annotated trip energy " << annotated
                                    << " mAh vs sub-sampled integration " << integrated << " mAh";
      rep.commit();
    }
    const core::ProfileEvaluation eval =
        core::evaluate_cycle(scenario->energy(), route, profile.to_drive_cycle(0.5));
    if (std::abs(annotated - eval.energy.charge_mah) > 30.0 + 0.12 * std::abs(annotated)) {
      rep.add("energy.cycle-eval") << "annotated trip energy " << annotated
                                   << " mAh vs drive-cycle evaluation " << eval.energy.charge_mah
                                   << " mAh";
      rep.commit();
    }
    if (std::abs(eval.trip_time_s - profile.trip_time()) > 2.0) {
      rep.add("energy.cycle-duration") << "drive-cycle duration " << eval.trip_time_s
                                       << " s vs planned trip time " << profile.trip_time() << " s";
      rep.commit();
    }
  }

  // --- closed-loop microsim replay on an empty road ---
  if (options.run_replay) {
    sim::MicrosimConfig cfg;
    cfg.seed = spec.seed | 1;
    sim::Microsim msim(scenario->corridor(), cfg,
                       std::make_shared<traffic::ConstantArrivalRate>(VehiclesPerSecond(0.0)));
    msim.run_until(spec.depart_time_s);

    const ev::VehicleParams& vp = scenario->energy().params();
    sim::DriverParams ego;
    ego.desired_speed_ms = scenario->corridor().route.max_speed_limit();
    ego.accel_ms2 = vp.max_acceleration;
    ego.decel_ms2 = std::max(1.0, -vp.min_acceleration);
    ego.sigma = 0.0;

    const double timeout =
        2.0 * profile.trip_time() + 90.0 * static_cast<double>(scenario->corridor().lights.size()) +
        120.0;
    const sim::ExecutionResult run =
        sim::execute_planned_profile(msim, profile.target_speed_fn(), 0.0,
                                     scenario->corridor().length(), timeout, ego);
    if (msim.has_collision()) {
      rep.note("replay.collision", "vehicles overlap after executing the plan");
    }
    if (!run.completed) {
      rep.add("replay.incomplete") << "ego did not reach the corridor end within " << timeout
                                   << " s of sim time";
      rep.commit();
    } else if (any_enforced && all_compliant && options.inject == Fault::kNone) {
      const double replay_time = run.finish_time_s - run.start_time_s;
      if (std::abs(replay_time - profile.trip_time()) > 0.35 * profile.trip_time() + 60.0) {
        rep.add("replay.trip-time") << "replayed trip took " << replay_time << " s vs planned "
                                    << profile.trip_time() << " s";
        rep.commit();
      }
      const core::ProfileEvaluation eval =
          core::evaluate_cycle(scenario->energy(), scenario->corridor().route, run.cycle);
      const double planned = profile.total_energy_mah();
      if (std::abs(eval.energy.charge_mah - planned) > 100.0 + 0.30 * std::abs(planned)) {
        rep.add("replay.energy") << "replayed trip energy " << eval.energy.charge_mah
                                 << " mAh vs planned " << planned << " mAh";
        rep.commit();
      }
    }
  }

  return report;
}

std::string report_to_string(const CheckReport& report) {
  std::ostringstream out;
  out.precision(12);
  out << "seed " << report.seed << ": ";
  if (!report.feasible) {
    out << "infeasible";
  } else {
    out << "cost " << report.best_cost_mah << " mAh, trip " << report.trip_time_s << " s";
  }
  if (report.ok()) {
    out << ", ok\n";
  } else {
    out << ", " << report.violations.size() << " violation(s)\n";
    for (const Violation& v : report.violations) {
      out << "  [" << v.invariant << "] " << v.detail << "\n";
    }
  }
  return out.str();
}

}  // namespace evvo::check
