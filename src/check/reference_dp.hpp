// Naive reference implementation of the time-expanded DP (differential
// oracle).
//
// This solver is deliberately simple: dense fully-initialized state tables, a
// forward relaxation sweep in plain loop order, no frontier gather, no
// dominance pruning, no fused cost tables, no threads. It exists to check the
// production solver, so it must be *obviously* a transcription of the
// recurrence - every optimization the production solver layers on top
// (stripes, pruning, lazy resets, precomputed tables) is something this file
// does not do.
//
// The one thing it shares with production is the float rounding sequence of
// the transition costs and the (j, k)-lexicographic candidate order per
// destination cell. Those are contracts of the production solver (documented
// in dp_solver.hpp: "bit-identical at every thread count", "fused tables with
// the same float rounding sequence"), and the differential test asserts them
// at table granularity: identical cost, continuous-time, and backpointer
// tables, compared by checksum (dp_common.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dp_solver.hpp"

namespace evvo::check {

struct [[nodiscard]] ReferenceSolution {
  core::PlannedProfile profile;
  double best_cost_mah = 0.0;
  /// Checksum of the final state tables (same scheme as
  /// DpStats::table_checksum). Must equal the production solver's checksum
  /// when the latter runs with dominance_pruning off.
  std::uint64_t table_checksum = 0;
  std::size_t relaxations = 0;
};

/// Solves `problem` with the naive dense sweep. Ignores
/// problem.dominance_pruning (never prunes), problem.resolution.threads
/// (always serial), and problem.checksum_tables (always checksums). Returns
/// std::nullopt exactly when the production solver would: no feasible
/// trajectory reaches the destination within the horizon.
std::optional<ReferenceSolution> solve_reference_dp(const core::DpProblem& problem);

/// The per-hop-layer gradient the solvers cost transitions at. The production
/// solver buckets layers by gradient quantized to 1e-9 rad and uses the first
/// bucket member's exact grade for the whole bucket; the reference solver and
/// the objective re-coster must replicate that to stay bit-compatible.
std::vector<double> bucketed_layer_grades(const road::Route& route, std::size_t n_hops,
                                          double ds_m);

}  // namespace evvo::check
