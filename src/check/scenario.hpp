// Seed-reproducible scenario generation for the correctness harness.
//
// A ScenarioSpec is a fully explicit, serializable description of one
// planning problem: corridor geometry (segments with limits and grades),
// signal timings, stop signs, a time-varying arrival-rate profile, vehicle
// parameters, and the planner configuration. Specs come from two places:
//  - generate_scenario(seed): samples everything within physical bounds, so
//    `evvo_fuzz --seed N` reproduces a scenario exactly from its seed;
//  - spec_from_text / load_spec: replays a spec the failure shrinker wrote,
//    which no longer corresponds to any seed.
//
// Scenario materializes a spec into the objects the planner and the checkers
// consume (Corridor, EnergyModel, ArrivalRateProvider, LayerEvents) and wires
// up the DpProblem the solvers run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"
#include "traffic/queue_predictor.hpp"

namespace evvo::check {

/// Sampling bounds for generate_scenario. Defaults are sized so one scenario
/// checks in well under a second (the fuzz smoke runs hundreds); widen them
/// for overnight soaks.
struct ScenarioBounds {
  double min_length_m = 900.0;
  double max_length_m = 1800.0;
  int min_lights = 1;
  int max_lights = 3;
  int max_stop_signs = 1;
  double min_element_gap_m = 350.0;  ///< spacing between elements and from both ends
  double min_phase_s = 18.0;
  double max_phase_s = 42.0;
  double min_speed_limit_ms = 12.0;
  double max_speed_limit_ms = 22.0;
  double max_grade_rad = 0.03;            ///< ~3 % rolling grades (half the draws are flat)
  double min_arrival_veh_h = 80.0;
  double max_arrival_veh_h = 1400.0;
  double max_depart_s = 400.0;
  bool vary_vehicle = true;    ///< sample mass/drag/accel envelope/accessory/regen
  bool vary_policy = true;     ///< occasionally green-window or signal-oblivious
  bool vary_penalty = true;    ///< occasionally additive or hard penalty mode
  bool vary_resolution = true; ///< occasionally off-default dv/dt (incl. non-pow2 dt)
};

/// One generated scenario, explicit enough to rebuild without the seed.
struct ScenarioSpec {
  /// Generator provenance: the seed this spec was sampled from, or 0 for
  /// specs edited by hand or by the shrinker.
  std::uint64_t seed = 0;

  std::vector<road::RoadSegment> segments;
  struct SpecLight {
    double position_m = 0.0;
    double red_s = 30.0;
    double green_s = 30.0;
    double offset_s = 0.0;
  };
  std::vector<SpecLight> lights;
  std::vector<road::StopSign> stop_signs;

  /// Piecewise-constant arrival rate [veh/h]: block i applies to absolute
  /// times [i * arrival_block_s, (i+1) * arrival_block_s); the last block
  /// extends forever. Never empty.
  std::vector<double> arrival_veh_h{500.0};
  double arrival_block_s = 600.0;

  ev::VehicleParams vehicle{};
  double depart_time_s = 0.0;

  /// Planner configuration under test (resolution, penalty, policy, weights,
  /// window margins, pruning). resolution.threads is ignored; the checkers
  /// control thread counts explicitly.
  core::PlannerConfig planner{};

  double corridor_length_m() const { return segments.empty() ? 0.0 : segments.back().end_m; }
};

/// Samples a well-formed spec from a seed. Same seed + same bounds => same
/// spec, bit for bit.
ScenarioSpec generate_scenario(std::uint64_t seed, const ScenarioBounds& bounds = {});

/// Text round-trip (shrinker output / --replay-spec input). The format is
/// line-based `key values...` with full double precision, so
/// spec_from_text(spec_to_text(s)) reproduces s exactly.
std::string spec_to_text(const ScenarioSpec& spec);
ScenarioSpec spec_from_text(const std::string& text);
void save_spec(const std::filesystem::path& path, const ScenarioSpec& spec);
ScenarioSpec load_spec(const std::filesystem::path& path);

/// A spec materialized into planner inputs. The DpProblem returned by
/// problem() points into this object; keep the Scenario alive while solving.
class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);

  const ScenarioSpec& spec() const { return spec_; }
  const road::Corridor& corridor() const { return corridor_; }
  const ev::EnergyModel& energy() const { return energy_; }
  const std::shared_ptr<const traffic::ArrivalRateProvider>& arrivals() const { return arrivals_; }
  /// Layer events exactly as VelocityPlanner would build them (margins and
  /// queue-aware T_q windows applied).
  const std::vector<core::LayerEvent>& events() const { return events_; }

  /// Grid distance step the solver will use (layers divide the length exactly).
  double grid_ds() const;

  /// The DpProblem the solvers run; mirrors VelocityPlanner's wiring.
  core::DpProblem problem() const;

 private:
  ScenarioSpec spec_;
  road::Corridor corridor_;
  ev::EnergyModel energy_;
  std::shared_ptr<const traffic::ArrivalRateProvider> arrivals_;
  std::vector<core::LayerEvent> events_;
};

}  // namespace evvo::check
