// Invariant checkers for one generated scenario: the heart of the
// correctness harness.
//
// check_scenario() runs the full battery against a ScenarioSpec:
//  - spec serialization round-trips exactly;
//  - QL-model sanity: predicted zero-queue windows T_q lie inside green
//    phases, are ordered and disjoint, and queue lengths are never negative;
//  - solver identity: the DP cost/time/backpointer tables (compared by
//    checksum) and the extracted profile are bit-identical across thread
//    counts, for both pruning modes, and the unpruned tables match the naive
//    reference solver (differential oracle);
//  - pruning soundness: pruned and unpruned solves agree on the optimal cost;
//  - plan feasibility: speed limits, the acceleration envelope, boundary
//    speeds, stop-sign dwells, horizon;
//  - signal-window compliance: crossings outside T_q only when a hard-mode
//    cross-solve proves compliance is costlier (or infeasible);
//  - energy accounting: the profile's annotated energy matches an independent
//    sub-sampled integration and the drive-cycle evaluator;
//  - closed-loop replay: the plan executes in the microsimulator on an empty
//    road, completing near the planned trip time.
//
// Fault injection flips one of these invariants on purpose so the harness
// can prove it would notice (tests + `evvo_fuzz --inject`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace evvo::common {
class ThreadPool;
}

namespace evvo::check {

/// Deliberate defects for harness self-tests: each targets one invariant
/// family, which must report at least one violation.
enum class Fault {
  kNone,
  kWindowShift,   ///< shift T_q after planning -> compliance must fire
  kAccelTamper,   ///< corrupt a profile speed -> feasibility must fire
  kEnergyTamper,  ///< corrupt the energy annotation -> accounting must fire
  kCostTamper,    ///< corrupt the reference cost -> differential must fire
};

const char* fault_name(Fault fault);
/// Parses a fault_name(); throws std::invalid_argument on unknown names.
Fault fault_from_name(const std::string& name);

struct CheckOptions {
  /// Thread counts for the table-identity checks (serial is always run and is
  /// the baseline the others must match bit-for-bit).
  std::vector<unsigned> thread_counts{2, 4, 8};
  /// Run the naive reference solver (the expensive differential oracle).
  bool run_reference = true;
  /// Run the closed-loop microsim replay oracle.
  bool run_replay = true;
  /// Re-solve with DpResolution::simd off and require the tables, cost, and
  /// profile to match the vectorized solve bit-for-bit. Trivially true on
  /// scalar-backend builds, where both paths compile to the same code.
  bool run_simd_identity = true;
  /// Pool for the threaded solves. Null creates one on demand per call; the
  /// fuzz driver shares one pool across all scenarios instead.
  common::ThreadPool* pool = nullptr;
  Fault inject = Fault::kNone;
};

struct Violation {
  std::string invariant;  ///< dotted id, e.g. "differential.checksum"
  std::string detail;     ///< human-readable specifics (values, positions)
};

struct [[nodiscard]] CheckReport {
  std::uint64_t seed = 0;
  bool feasible = false;       ///< production solver found a trajectory
  double best_cost_mah = 0.0;  ///< spec-config solve (when feasible)
  double trip_time_s = 0.0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs every applicable invariant against the scenario. Never throws for
/// scenario-content problems (those become violations); only programming
/// errors (bad options) escape.
CheckReport check_scenario(const ScenarioSpec& spec, const CheckOptions& options = {});

/// Multi-line human-readable rendering (one line per violation).
std::string report_to_string(const CheckReport& report);

}  // namespace evvo::check
