// Human driving trace synthesis: the "mild" and "fast" collected velocity
// profiles of paper Fig. 7(a), reproduced by driving a human-parameterized
// vehicle through the microsimulator (so stops at signals, queues, and the
// stop sign emerge naturally rather than being scripted).
#pragma once

#include <memory>

#include "ev/drive_cycle.hpp"
#include "road/corridor.hpp"
#include "sim/microsim.hpp"

namespace evvo::data {

/// A recorded human-style drive over a corridor.
struct [[nodiscard]] TraceResult {
  ev::DriveCycle cycle{std::vector<double>{}, 1.0};
  std::vector<double> positions;
  double depart_time_s = 0.0;
  double trip_time_s = 0.0;
  bool completed = false;
};

/// "Mild driving": follows limits conservatively, accelerates gently
/// (paper: "follow minimum velocity limit and accelerate gradually").
sim::DriverParams mild_driver();

/// "Fast driving": drives at the limit without breaking rules, accelerates
/// and brakes hard.
sim::DriverParams fast_driver();

/// Drives a human-parameterized ego through the corridor with background
/// traffic; records the resulting velocity profile. The simulator is warmed
/// up until `depart_time_s` before the ego enters at position 0.
TraceResult record_human_trace(const road::Corridor& corridor, const sim::MicrosimConfig& sim_config,
                               std::shared_ptr<const traffic::ArrivalRateProvider> demand,
                               const sim::DriverParams& human, double depart_time_s,
                               double timeout_s = 1200.0);

}  // namespace evvo::data
