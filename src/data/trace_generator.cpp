#include "data/trace_generator.hpp"

#include <stdexcept>

namespace evvo::data {

sim::DriverParams mild_driver() {
  sim::DriverParams d;
  d.desired_speed_ms = 19.0;
  d.speed_factor = 0.9;   // sits below the limit
  d.accel_ms2 = 0.9;      // gradual acceleration
  d.decel_ms2 = 2.0;
  d.reaction_time_s = 1.1;
  d.sigma = 0.15;
  return d;
}

sim::DriverParams fast_driver() {
  sim::DriverParams d;
  d.desired_speed_ms = 25.0;  // capped by the limit via speed_factor
  d.speed_factor = 1.0;       // at the limit, "without breaking traffic rules"
  d.accel_ms2 = 2.4;          // accelerates quickly
  d.decel_ms2 = 3.5;          // brakes late and hard
  d.reaction_time_s = 0.8;
  d.sigma = 0.05;
  return d;
}

TraceResult record_human_trace(const road::Corridor& corridor, const sim::MicrosimConfig& sim_config,
                               std::shared_ptr<const traffic::ArrivalRateProvider> demand,
                               const sim::DriverParams& human, double depart_time_s,
                               double timeout_s) {
  sim::Microsim simulator(corridor, sim_config, std::move(demand));
  simulator.run_until(depart_time_s);
  const int ego_id = simulator.spawn_ego(0.0, human);
  TraceResult result;
  result.depart_time_s = simulator.time();
  std::vector<double> speeds{0.0};
  result.positions.push_back(0.0);
  const double end = corridor.length();
  const double deadline = simulator.time() + timeout_s;
  while (simulator.time() < deadline) {
    simulator.step();
    const sim::SimVehicle* ego = simulator.find(ego_id);
    if (!ego) throw std::logic_error("record_human_trace: ego vanished");
    speeds.push_back(ego->speed_ms);
    result.positions.push_back(ego->position_m);
    if (ego->position_m >= end) {
      result.completed = true;
      break;
    }
  }
  result.trip_time_s = simulator.time() - result.depart_time_s;
  result.cycle = ev::DriveCycle(std::move(speeds), sim_config.step_s);
  simulator.remove_ego();
  return result;
}

}  // namespace evvo::data
