// Synthetic hourly traffic volumes standing in for the SCDoT loop-detector
// feed the paper trains its SAE on (3 months train + 1 week test).
//
// The generator produces a realistic weekly demand pattern: weekday AM/PM
// commute peaks, a midday plateau, low overnight volumes, a flatter weekend
// hump, multiplicative sampling noise, and occasional incident days with
// globally perturbed demand. All stochastic draws are seeded.
#pragma once

#include <cstdint>

#include "traffic/volume_series.hpp"

namespace evvo::data {

struct VolumePatternConfig {
  double night_base_veh_h = 120.0;
  double morning_peak_veh_h = 1400.0;
  double evening_peak_veh_h = 1600.0;
  double midday_veh_h = 850.0;
  double weekend_scale = 0.7;
  double noise_fraction = 0.05;             ///< stddev of multiplicative noise
  double incident_probability_per_day = 0.04;
  double incident_scale_low = 0.6;          ///< incident days scale demand by U(low, high)
  double incident_scale_high = 1.35;
  std::uint64_t seed = 7;
};

/// Deterministic expected volume [veh/h] for a calendar slot (the noiseless
/// component; exposed so tests can check the sampled series tracks it).
double expected_volume(const VolumePatternConfig& config, int hour_of_day, int day_of_week);

/// Generates `weeks` whole weeks of hourly volumes starting Monday 00:00.
traffic::HourlyVolumeSeries generate_hourly_volumes(const VolumePatternConfig& config, int weeks);

/// The paper's experimental protocol: 13 training weeks (~3 months,
/// 3/1-5/31/2016) + 1 test week (June 6-12, 2016).
struct VolumeDataset {
  traffic::HourlyVolumeSeries train;
  traffic::HourlyVolumeSeries test;
};

VolumeDataset make_us25_dataset(const VolumePatternConfig& config = {}, int train_weeks = 13,
                                int test_weeks = 1);

}  // namespace evvo::data
