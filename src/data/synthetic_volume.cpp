#include "data/synthetic_volume.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/random.hpp"
#include "common/units.hpp"

namespace evvo::data {

namespace {
/// Gaussian bump centered at `center` hours with width `sigma` hours.
double bump(double hour, double center, double sigma) {
  const double d = (hour - center) / sigma;
  return std::exp(-0.5 * d * d);
}
}  // namespace

double expected_volume(const VolumePatternConfig& c, int hour_of_day, int day_of_week) {
  if (hour_of_day < 0 || hour_of_day >= kHoursPerDay)
    throw std::invalid_argument("expected_volume: hour out of range");
  if (day_of_week < 0 || day_of_week >= kDaysPerWeek)
    throw std::invalid_argument("expected_volume: day out of range");
  const double h = hour_of_day + 0.5;  // bucket midpoint
  const bool weekend = day_of_week >= 5;
  if (weekend) {
    // Single broad midday hump.
    const double peak = c.weekend_scale * 0.5 * (c.morning_peak_veh_h + c.evening_peak_veh_h);
    return c.night_base_veh_h + (peak - c.night_base_veh_h) * bump(h, 14.0, 4.5);
  }
  const double am = (c.morning_peak_veh_h - c.night_base_veh_h) * bump(h, 7.5, 1.6);
  const double pm = (c.evening_peak_veh_h - c.night_base_veh_h) * bump(h, 17.5, 1.9);
  const double midday = (c.midday_veh_h - c.night_base_veh_h) * bump(h, 12.5, 3.5);
  // Peaks dominate where they overlap the midday plateau.
  return c.night_base_veh_h + std::max({am, pm, midday});
}

traffic::HourlyVolumeSeries generate_hourly_volumes(const VolumePatternConfig& c, int weeks) {
  if (weeks <= 0) throw std::invalid_argument("generate_hourly_volumes: weeks must be positive");
  if (c.noise_fraction < 0.0) throw std::invalid_argument("generate_hourly_volumes: negative noise");
  Rng rng(c.seed);
  std::vector<double> volumes;
  volumes.reserve(static_cast<std::size_t>(weeks) * kHoursPerWeek);
  for (int week = 0; week < weeks; ++week) {
    for (int day = 0; day < kDaysPerWeek; ++day) {
      const bool incident = rng.bernoulli(c.incident_probability_per_day);
      const double day_scale =
          incident ? rng.uniform(c.incident_scale_low, c.incident_scale_high) : 1.0;
      for (int hour = 0; hour < kHoursPerDay; ++hour) {
        const double mean = expected_volume(c, hour, day) * day_scale;
        const double noisy = mean * (1.0 + c.noise_fraction * rng.normal());
        volumes.push_back(std::max(0.0, noisy));
      }
    }
  }
  return traffic::HourlyVolumeSeries(std::move(volumes), 0);
}

VolumeDataset make_us25_dataset(const VolumePatternConfig& config, int train_weeks, int test_weeks) {
  if (train_weeks <= 0 || test_weeks <= 0)
    throw std::invalid_argument("make_us25_dataset: week counts must be positive");
  const traffic::HourlyVolumeSeries all = generate_hourly_volumes(config, train_weeks + test_weeks);
  auto [train, test] = all.split(static_cast<std::size_t>(train_weeks) * kHoursPerWeek);
  return VolumeDataset{std::move(train), std::move(test)};
}

}  // namespace evvo::data
