// Small numeric helpers shared by every module.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace evvo {

/// Clamps `x` into [lo, hi]. Requires lo <= hi.
double clamp(double x, double lo, double hi);

/// Linear interpolation between a and b at fraction t in [0, 1].
double lerp(double a, double b, double t);

/// True if |a - b| <= tol (absolute tolerance).
bool nearly_equal(double a, double b, double tol = 1e-9);

/// Rounds `x` to the nearest multiple of `step` (step > 0).
double quantize(double x, double step);

/// Index of the grid cell nearest to x on {0, step, 2*step, ...}.
std::size_t nearest_index(double x, double step);

/// Trapezoidal integral of samples y spaced dt apart.
double trapezoid(std::span<const double> y, double dt);

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> values);

/// Population standard deviation. Returns 0 for fewer than 2 samples.
double stddev(std::span<const double> values);

/// Root-mean-square error between two equal-length spans.
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Mean relative error sum(|p-a|/max(|a|, floor)) / n, guarding tiny actuals.
double mean_relative_error(std::span<const double> predicted, std::span<const double> actual,
                           double denominator_floor = 1.0);

/// Mean absolute error.
double mean_absolute_error(std::span<const double> predicted, std::span<const double> actual);

/// Evenly spaced values from lo to hi inclusive (count >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Solves a*x^2 + b*x + c = 0 for the largest real root; returns false if none.
bool largest_real_root(double a, double b, double c, double& root);

}  // namespace evvo
