#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace evvo {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row.at(idx));
  return out;
}

void CsvTable::add_row(std::vector<double> row) {
  if (row.size() != columns.size()) throw std::invalid_argument("CsvTable::add_row: width mismatch");
  rows.push_back(std::move(row));
}

void write_csv(const std::filesystem::path& path, const CsvTable& table) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    if (i > 0) out << ',';
    out << table.columns[i];
  }
  out << '\n';
  out.precision(10);
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

CsvTable read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path.string());
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("read_csv: empty file " + path.string());
  {
    std::stringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) table.columns.push_back(cell);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw std::runtime_error("read_csv: non-numeric cell '" + cell + "' in " + path.string());
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace evvo
