#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace evvo {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("TextTable::add_row: width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int filled = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace evvo
