// Minimal leveled logger.
//
// Long-running components (the cloud service, the adaptive pilot, multi-hour
// simulations) want progress visibility without std::cout sprinkled through
// library code. One global sink, level-filtered, timestamped with sim-agnostic
// wall time; silent at kWarn by default so tests stay quiet.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace evvo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output (default: stderr). Pass nullptr to restore stderr.
/// The sink receives fully formatted lines without the trailing newline.
void set_log_sink(std::function<void(const std::string&)> sink);

/// Emits one formatted line: "[LEVEL] component: message".
void log_message(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: EVVO_LOG(kInfo, "pilot") << "replanned at " << pos;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_message(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace evvo

#define EVVO_LOG(level, component) ::evvo::LogStream(::evvo::LogLevel::level, component)
