// Process-wide metrics registry: lock-free counters/gauges, log-linear
// latency histograms, and RAII trace spans, with JSON / Prometheus export.
//
// Design (DESIGN.md section 14 has the full treatment):
//
//   - Counters are sharded over a small fixed array of cache-line-padded
//     atomic cells; each thread hashes to a cell, so hot-path increments are
//     one relaxed fetch_add with no false sharing. value() sums the cells.
//   - Histograms use a fixed log-linear (HDR-style) bucket layout: values
//     0..15 get exact unit buckets, then 16 sub-buckets per power of two up
//     to 2^38 (~4.6 min in ns). The layout is a pure function of the value,
//     so percentiles are deterministic given the recorded multiset, and two
//     histograms merge (or diff) bucket-wise — evvo_stat relies on both.
//     Relative bucket width is 1/16 (6.25%), the error bound the
//     histogram-vs-sorted-vector property test asserts.
//   - TraceSpan is an RAII scope: constructed it stamps common::now_ns() and
//     pushes onto a thread-local span stack; destructed it records the
//     duration into its histogram and appends to the optional global trace
//     ring (disabled until set_trace_capacity()). With EVVO_TELEMETRY=OFF
//     spans compile to empty objects — no clock reads anywhere in the tree.
//   - The registry maps names to metrics under a common::Mutex at
//     LockRank::kTelemetryRegistry. Only registration and snapshot take the
//     lock; every update on a registered metric is atomic. Call sites cache
//     the returned reference (valid for the process lifetime), so steady
//     state never touches the registry map.
//
// What EVVO_TELEMETRY=OFF removes: every TraceSpan (and with it every
// clock read) and the trace ring. Counters, gauges, and the Histogram class
// itself stay live in OFF builds because they double as service statistics —
// cloud::PlanService's stats() identity is behavior, not optional telemetry —
// and their cost is a relaxed add. The expensive part of observability is
// timing, and that is what the switch deletes.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"

#if !defined(EVVO_TELEMETRY_ENABLED)
#define EVVO_TELEMETRY_ENABLED 1
#endif

namespace evvo::telemetry {

/// True when the build compiled the timing layer (EVVO_TELEMETRY=ON).
inline constexpr bool kEnabled = EVVO_TELEMETRY_ENABLED != 0;

/// What a histogram's values measure; drives exporter unit labels and the
/// bench_compare unit column ("ns" vs "count").
enum class Unit { kNanoseconds, kCount };

constexpr const char* unit_name(Unit unit) {
  return unit == Unit::kNanoseconds ? "ns" : "count";
}

namespace detail {

/// Stable small thread index for counter cell selection. Assigned once per
/// thread from a global ticket; reused threads (pools) keep their index.
std::size_t thread_cell(std::size_t n_cells);

}  // namespace detail

/// Monotone event counter. Thread-safe, lock-free; add() is a relaxed
/// fetch_add on this thread's cell. value() is a relaxed sum over the cells:
/// exact at quiescence, momentarily behind in-flight increments otherwise.
class Counter {
 public:
  static constexpr std::size_t kCells = 8;

  void add(long n = 1) noexcept {
    cells_[detail::thread_cell(kCells)].v.fetch_add(n, std::memory_order_relaxed);
  }
  long value() const noexcept {
    long total = 0;
    for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<long> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

/// Instantaneous level (queue depths, pool sizes). A single atomic: set()
/// must be coherent, so gauges are not sharded; add()/sub() are relaxed.
class Gauge {
 public:
  void set(long v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(long n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(long n = 1) noexcept { value_.fetch_sub(n, std::memory_order_relaxed); }
  long value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

 private:
  std::atomic<long> value_{0};
};

/// Log-linear fixed-layout histogram (see the header comment). record() is
/// three relaxed atomic adds plus bit math; readers (count/percentile) see a
/// relaxed snapshot — exact at quiescence.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                      ///< 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBits;       ///< == 16, also the unit range
  static constexpr int kMaxMsb = 37;                      ///< top tracked power of two
  /// Unit buckets 0..15, then 16 per octave for msb 4..37; larger values
  /// clamp into the last bucket.
  static constexpr int kBucketCount = kSubBuckets + (kMaxMsb - kSubBits + 1) * kSubBuckets;

  explicit Histogram(Unit unit = Unit::kNanoseconds) : unit_(unit) {}

  Unit unit() const { return unit_; }

  /// Bucket holding `v`: exact for v < 16, otherwise the top kSubBits bits
  /// below the leading one select the sub-bucket within v's octave.
  static int bucket_index(std::uint64_t v) {
    if (v < static_cast<std::uint64_t>(kSubBuckets)) return static_cast<int>(v);
    if (v > kMaxValue) v = kMaxValue;
    const int msb = 63 - std::countl_zero(v);
    const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kSubBuckets - 1));
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }

  /// Smallest value mapping into bucket `idx`.
  static std::uint64_t bucket_lower(int idx) {
    if (idx < kSubBuckets) return static_cast<std::uint64_t>(idx);
    const int octave = idx >> kSubBits;  // 1-based: msb == octave + kSubBits - 1
    const int sub = idx & (kSubBuckets - 1);
    return static_cast<std::uint64_t>(kSubBuckets + sub) << (octave - 1);
  }

  /// Width of bucket `idx` (the one-bucket error bound of percentile()).
  static std::uint64_t bucket_width(int idx) {
    return idx < kSubBuckets ? 1 : std::uint64_t{1} << ((idx >> kSubBits) - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed,
                                                   std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int idx) const noexcept {
    return buckets_[static_cast<std::size_t>(idx)].load(std::memory_order_relaxed);
  }

  /// Lower bound of the bucket holding the rank-ceil(p * count) sample,
  /// p in [0, 1]. The true sample lies within bucket_width() above the
  /// returned value. 0 when empty.
  std::uint64_t percentile(double p) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kMaxValue = (std::uint64_t{1} << (kMaxMsb + 1)) - 1;

  Unit unit_;
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// --- Registry -------------------------------------------------------------

/// Looks up (registering on first use) the named metric. References stay
/// valid for the process lifetime; call sites cache them so the registry
/// lock is a registration-time cost only. Names are dot-separated paths
/// ("plan_service.0.shard0.cache_hits"); exporters mangle as needed.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, Unit unit = Unit::kNanoseconds);

/// Zeroes every registered metric (names stay registered). Test fixtures and
/// harness warmup use this to scope measurements.
void reset_all();

// --- Snapshot & exporters -------------------------------------------------

struct [[nodiscard]] Snapshot {
  struct CounterValue {
    std::string name;
    long value = 0;
  };
  struct GaugeValue {
    std::string name;
    long value = 0;
  };
  struct HistogramValue {
    std::string name;
    Unit unit = Unit::kNanoseconds;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    /// Sparse nonzero (bucket index, count) pairs, index-ascending; the full
    /// distribution, so snapshots merge and diff exactly.
    std::vector<std::pair<int, std::uint64_t>> buckets;
  };

  std::vector<CounterValue> counters;      // name-sorted
  std::vector<GaugeValue> gauges;          // name-sorted
  std::vector<HistogramValue> histograms;  // name-sorted
};

/// Consistent-enough snapshot of every registered metric (each value is a
/// relaxed read; the set of names is taken under the registry lock).
Snapshot snapshot();

/// The snapshot as a single JSON object ({"counters": {...}, "gauges":
/// {...}, "histograms": {...}}). tools/evvo_stat pretty-prints and diffs
/// this format; evvo_load --telemetry-dump writes it.
std::string to_json(const Snapshot& snap);

/// Prometheus text exposition format (names mangled to [a-z0-9_], "evvo_"
/// prefixed; histograms as cumulative _bucket{le=...} series).
std::string to_prometheus(const Snapshot& snap);

// --- Trace spans ----------------------------------------------------------

/// One completed span, as read back from the trace ring.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int depth = 0;  ///< nesting depth on its thread (0 = outermost)
};

#if EVVO_TELEMETRY_ENABLED

namespace detail {
int span_enter();
void span_exit(const char* name, std::uint64_t start_ns, std::uint64_t duration_ns, int depth);
}  // namespace detail

/// RAII scope: stamps the clock on entry, records the elapsed ns into
/// `hist` on exit, and appends to the trace ring when one is enabled.
/// `name` must outlive the ring (string literals; registry-owned names).
class TraceSpan {
 public:
  TraceSpan(Histogram& hist, const char* name) noexcept
      : hist_(&hist), name_(name), start_(common::now_ns()), depth_(detail::span_enter()) {}
  ~TraceSpan() {
    const std::uint64_t duration = common::now_ns() - start_;
    hist_->record(duration);
    detail::span_exit(name_, start_, duration, depth_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Histogram* hist_;
  const char* name_;
  std::uint64_t start_;
  int depth_;
};

/// Sizes (n > 0) or disables (n == 0) the global trace ring. Not
/// thread-safe against concurrent spans: call while quiescent (startup,
/// test fixtures). The ring keeps the most recent `n` completed spans.
void set_trace_capacity(std::size_t n);

/// The ring's completed spans, oldest first. Relaxed per-field reads: an
/// event racing a writer may mix fields, exact once writers are quiescent.
std::vector<TraceEvent> trace_events();

#else  // EVVO_TELEMETRY_ENABLED

/// No-op span: no clock read, no record, optimizes away entirely.
class TraceSpan {
 public:
  TraceSpan(Histogram&, const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void set_trace_capacity(std::size_t) {}
inline std::vector<TraceEvent> trace_events() { return {}; }

#endif  // EVVO_TELEMETRY_ENABLED

}  // namespace evvo::telemetry
