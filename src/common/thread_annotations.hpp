// Clang Thread Safety Analysis annotation macros (no-ops off clang).
//
// These wrap clang's `-Wthread-safety` attributes so the concurrency
// invariants PR 1 documented in comments ("guarded by mutex_", "leader fills
// X under the flight mutex") become compiler-checked contracts: a read of a
// guarded member without the lock, a missing unlock on an exit path, or a
// REQUIRES-violating call fails the dedicated `-Werror=thread-safety` CI
// build instead of waiting for TSan to catch the interleaving at runtime.
//
// Use them through the `common::Mutex` / `common::CondVar` wrappers in
// common/mutex.hpp — the libstdc++ `std::mutex` carries no capability
// attributes, so the analysis can only track locks of an annotated type.
// Under g++ (or any non-clang compiler) every macro expands to nothing and
// the wrappers compile to the bare std primitives.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define EVVO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EVVO_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability (goes on the class).
#define EVVO_CAPABILITY(name) EVVO_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define EVVO_SCOPED_CAPABILITY EVVO_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given mutex; every access must hold it.
#define EVVO_GUARDED_BY(x) EVVO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define EVVO_PT_GUARDED_BY(x) EVVO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define EVVO_REQUIRES(...) EVVO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (guards
/// against self-deadlock on a non-recursive mutex).
#define EVVO_EXCLUDES(...) EVVO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define EVVO_ACQUIRE(...) EVVO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define EVVO_RELEASE(...) EVVO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the capability; holds it iff the return value equals
/// the first argument.
#define EVVO_TRY_ACQUIRE(...) EVVO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability (lets accessors
/// expose a member mutex to the analysis).
#define EVVO_RETURN_CAPABILITY(x) EVVO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must carry a comment saying why.
#define EVVO_NO_THREAD_SAFETY_ANALYSIS EVVO_THREAD_ANNOTATION(no_thread_safety_analysis)
