// Minimal fixed-size worker pool with a caller-participating parallel_for.
//
// Design constraints, in order:
//  1. Deterministic decomposition: parallel_for(n, body) always invokes
//     body(0..n-1) exactly once each; which thread runs which index is
//     unspecified, so bodies must own disjoint data per index (the DP solver
//     assigns each worker a disjoint stripe of destination-velocity rows).
//  2. No deadlock under nesting or pool sharing: the calling thread drains
//     indices alongside the workers, so a parallel_for completes even when
//     every worker is busy with someone else's batch (PlanService batches and
//     DP solves share pools freely).
//  3. Cheap dispatch: one heap allocation per batch, lock-free index claim;
//     per-layer dispatch inside the DP solver runs hundreds of times per
//     solve and must stay in the microseconds.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace evvo::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller of parallel_for is the
  /// remaining thread). `threads <= 1` spawns none and parallel_for runs
  /// inline, bit-for-bit the serial loop.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n). Blocks until all indices finished.
  /// The first exception thrown by any body is rethrown on the caller after
  /// the batch drains. Safe to call concurrently from multiple threads.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// `hint` if positive, else hardware_concurrency (min 1).
  static unsigned resolve_threads(unsigned hint);

 private:
  struct Batch;
  void worker_loop();
  static void run_batch(const std::shared_ptr<Batch>& batch);

  Mutex queue_mutex_{LockRank::kThreadPoolQueue};
  CondVar work_available_;
  std::deque<std::shared_ptr<Batch>> pending_ EVVO_GUARDED_BY(queue_mutex_);
  bool shutdown_ EVVO_GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;  // written only in the ctor/dtor
};

}  // namespace evvo::common
