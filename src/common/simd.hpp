// Portable SIMD kernel layer: the only file in the tree allowed to touch
// vendor intrinsics (the `raw-intrinsics` lint rule bans them everywhere
// else). Backends: AVX2 (8 float / 4 double lanes), SSE2 (4 / 2), NEON on
// AArch64 (4 / 2), and a scalar fallback (1 / 1) used when EVVO_SIMD is OFF
// or the target has no supported vector ISA. The backend is fixed at compile
// time; kernels written against this API compile unchanged on every backend.
//
// Bit-identity contract (what makes SIMD-on vs scalar solves comparable
// bit-for-bit in the DP solver and the microsim):
//  - Lane arithmetic (+, -, *, /, sqrt, float<->double conversion, truncating
//    double->int32) uses the IEEE-754 instructions, which produce exactly the
//    scalar result per lane. No fused-multiply-add is ever emitted: kernels
//    spell products and sums separately and the build compiles with
//    -ffp-contract=off (see the top-level CMakeLists).
//  - min_std/max_std replicate std::min/std::max *operand ordering*, not the
//    machine min/max instruction semantics: std::min(a, b) returns a when the
//    operands compare equal (e.g. -0.0 vs +0.0), so the lane-wise form is
//    select(b < a, b, a). This keeps even zero signs identical to scalar code.
//  - argmin_first breaks value ties toward the lowest index (scalar scan
//    order): per lane a strict < keeps the earliest element, and the final
//    horizontal reduction prefers the smallest index among equal lanes.
//
// NaN handling: kernels must keep NaNs out of comparisons they rely on
// (masked lanes may hold NaN transients - e.g. sqrt of a negative radicand -
// only if a later select discards them).
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(EVVO_SIMD_ENABLED)
#if defined(__AVX2__)
#define EVVO_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define EVVO_SIMD_BACKEND_SSE2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define EVVO_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define EVVO_SIMD_BACKEND_SCALAR 1
#endif
#else
#define EVVO_SIMD_BACKEND_SCALAR 1
#endif

namespace evvo::common::simd {

#if defined(EVVO_SIMD_BACKEND_AVX2)
inline constexpr const char* kBackendName = "avx2";
#elif defined(EVVO_SIMD_BACKEND_SSE2)
inline constexpr const char* kBackendName = "sse2";
#elif defined(EVVO_SIMD_BACKEND_NEON)
inline constexpr const char* kBackendName = "neon";
#else
inline constexpr const char* kBackendName = "scalar";
#endif

// ---------------------------------------------------------------------------
// AVX2: 8 x float, 4 x double
// ---------------------------------------------------------------------------
#if defined(EVVO_SIMD_BACKEND_AVX2)

struct MaskF {
  __m256 m;
};
struct MaskD {
  __m256d m;
};

struct VecF {
  static constexpr std::size_t kWidth = 8;
  __m256 v;

  static VecF load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecF load_partial(const float* p, std::size_t n, float fill) {
    alignas(32) float tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {_mm256_load_ps(tmp)};
  }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend VecF operator+(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
};

struct VecD {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  static VecD load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecD load_partial(const double* p, std::size_t n, double fill) {
    alignas(32) double tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {_mm256_load_pd(tmp)};
  }
  static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
};

struct VecI32 {
  static constexpr std::size_t kWidth = 8;
  __m256i v;
  static VecI32 load(const std::int32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static VecI32 broadcast(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
  static VecI32 iota() { return {_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7)}; }
  void store(std::int32_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  friend VecI32 operator+(VecI32 a, VecI32 b) { return {_mm256_add_epi32(a.v, b.v)}; }
};

inline MaskF cmp_lt(VecF a, VecF b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)}; }
inline MaskF cmp_ge(VecF a, VecF b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)}; }
inline MaskD cmp_ge(VecD a, VecD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
inline MaskD cmp_lt(VecD a, VecD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
inline MaskD cmp_le(VecD a, VecD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }

inline VecF select(MaskF m, VecF if_true, VecF if_false) {
  return {_mm256_blendv_ps(if_false.v, if_true.v, m.m)};
}
inline VecD select(MaskD m, VecD if_true, VecD if_false) {
  return {_mm256_blendv_pd(if_false.v, if_true.v, m.m)};
}
inline VecI32 select(MaskF m, VecI32 if_true, VecI32 if_false) {
  return {_mm256_blendv_epi8(if_false.v, if_true.v, _mm256_castps_si256(m.m))};
}

inline int movemask(MaskF m) { return _mm256_movemask_ps(m.m); }
inline int movemask(MaskD m) { return _mm256_movemask_pd(m.m); }

/// Lane-wise integer equality, returned as a float-shaped mask: the all-ones
/// lane pattern of an integer compare is a valid blendv/select mask, so
/// integer predicates (e.g. destination-bin matching in the batched DP
/// scatter) compose with float compares without a cast zoo at call sites.
inline MaskF cmp_eq(VecI32 a, VecI32 b) {
  return {_mm256_castsi256_ps(_mm256_cmpeq_epi32(a.v, b.v))};
}

/// Bitwise mask combinators. mask_andnot(a, b) is a & ~b (NOT the andnot
/// instruction's operand order, which negates the first operand).
inline MaskF mask_and(MaskF a, MaskF b) { return {_mm256_and_ps(a.m, b.m)}; }
inline MaskF mask_or(MaskF a, MaskF b) { return {_mm256_or_ps(a.m, b.m)}; }
inline MaskF mask_andnot(MaskF a, MaskF b) { return {_mm256_andnot_ps(b.m, a.m)}; }

/// Inverse of movemask(MaskF): lane l is all-ones iff bit l of `bits` is set.
/// Lets kernels that track lane liveness as an integer bitmask (cheap scalar
/// branches) rejoin the vector select path.
inline MaskF mask_from_bits(unsigned bits) {
  const __m256i lane = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i sel = _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(bits)), lane);
  return {_mm256_castsi256_ps(_mm256_cmpeq_epi32(sel, lane))};
}

inline VecD widen_low(VecF x) { return {_mm256_cvtps_pd(_mm256_castps256_ps128(x.v))}; }
inline VecD widen_high(VecF x) { return {_mm256_cvtps_pd(_mm256_extractf128_ps(x.v, 1))}; }

/// Truncating double -> int32 (the `(std::size_t)double` cast per lane, for
/// in-range nonnegative values). Writes VecD::kWidth lanes.
inline void trunc_store_i32(VecD x, std::int32_t* p) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm256_cvttpd_epi32(x.v));
}

/// Truncating double -> int32 entirely in registers: lanes [0, VecD::kWidth)
/// of the result come from `lo`, the upper lanes from `hi` - one full VecI32,
/// with the same per-lane semantics as trunc_store_i32 but no store/reload
/// round trip. For backends where VecI32::kWidth == 2 * VecD::kWidth.
inline VecI32 trunc_concat_i32(VecD lo, VecD hi) {
  return {_mm256_inserti128_si256(_mm256_castsi128_si256(_mm256_cvttpd_epi32(lo.v)),
                                  _mm256_cvttpd_epi32(hi.v), 1)};
}

/// Register form of trunc_store_i32 for backends where VecI32 and VecD have
/// equal width; here only the low VecD::kWidth lanes are meaningful (upper
/// lanes zero), so kernels must consume it only when the widths match.
inline VecI32 trunc_i32(VecD x) {
  return {_mm256_zextsi128_si256(_mm256_cvttpd_epi32(x.v))};
}

/// Read one int32 lane at a runtime index (0 <= lane < VecI32::kWidth).
inline std::int32_t extract_lane_i32(VecI32 x, unsigned lane) {
  const __m256i rot =
      _mm256_permutevar8x32_epi32(x.v, _mm256_set1_epi32(static_cast<int>(lane)));
  return _mm_cvtsi128_si32(_mm256_castsi256_si128(rot));
}

inline VecD sqrt(VecD a) { return {_mm256_sqrt_pd(a.v)}; }

/// Round to nearest, ties to even (std::nearbyint under the default rounding
/// mode), per lane.
inline VecD nearbyint(VecD a) {
  return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}

/// 2^k for integral-valued lanes with |k| <= 1022: build the IEEE-754 double
/// (k + bias) << 52 directly in the exponent field.
inline VecD pow2i(VecD k) {
  const __m128i k32 = _mm256_cvttpd_epi32(k.v);  // exact: lanes are integral
  __m256i k64 = _mm256_cvtepi32_epi64(k32);
  k64 = _mm256_add_epi64(k64, _mm256_set1_epi64x(1023));
  return {_mm256_castsi256_pd(_mm256_slli_epi64(k64, 52))};
}

// ---------------------------------------------------------------------------
// SSE2: 4 x float, 2 x double
// ---------------------------------------------------------------------------
#elif defined(EVVO_SIMD_BACKEND_SSE2)

struct MaskF {
  __m128 m;
};
struct MaskD {
  __m128d m;
};

struct VecF {
  static constexpr std::size_t kWidth = 4;
  __m128 v;

  static VecF load(const float* p) { return {_mm_loadu_ps(p)}; }
  static VecF load_partial(const float* p, std::size_t n, float fill) {
    alignas(16) float tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {_mm_load_ps(tmp)};
  }
  static VecF broadcast(float x) { return {_mm_set1_ps(x)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }

  friend VecF operator+(VecF a, VecF b) { return {_mm_add_ps(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {_mm_mul_ps(a.v, b.v)}; }
};

struct VecD {
  static constexpr std::size_t kWidth = 2;
  __m128d v;

  static VecD load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecD load_partial(const double* p, std::size_t n, double fill) {
    alignas(16) double tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {_mm_load_pd(tmp)};
  }
  static VecD broadcast(double x) { return {_mm_set1_pd(x)}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }
};

struct VecI32 {
  static constexpr std::size_t kWidth = 4;
  __m128i v;
  static VecI32 load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VecI32 broadcast(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  static VecI32 iota() { return {_mm_setr_epi32(0, 1, 2, 3)}; }
  void store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  friend VecI32 operator+(VecI32 a, VecI32 b) { return {_mm_add_epi32(a.v, b.v)}; }
};

inline MaskF cmp_lt(VecF a, VecF b) { return {_mm_cmplt_ps(a.v, b.v)}; }
inline MaskF cmp_ge(VecF a, VecF b) { return {_mm_cmpge_ps(a.v, b.v)}; }
inline MaskD cmp_ge(VecD a, VecD b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline MaskD cmp_lt(VecD a, VecD b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline MaskD cmp_le(VecD a, VecD b) { return {_mm_cmple_pd(a.v, b.v)}; }

inline VecF select(MaskF m, VecF if_true, VecF if_false) {
  return {_mm_or_ps(_mm_and_ps(m.m, if_true.v), _mm_andnot_ps(m.m, if_false.v))};
}
inline VecD select(MaskD m, VecD if_true, VecD if_false) {
  return {_mm_or_pd(_mm_and_pd(m.m, if_true.v), _mm_andnot_pd(m.m, if_false.v))};
}
inline VecI32 select(MaskF m, VecI32 if_true, VecI32 if_false) {
  const __m128i mi = _mm_castps_si128(m.m);
  return {_mm_or_si128(_mm_and_si128(mi, if_true.v), _mm_andnot_si128(mi, if_false.v))};
}

inline int movemask(MaskF m) { return _mm_movemask_ps(m.m); }
inline int movemask(MaskD m) { return _mm_movemask_pd(m.m); }

/// Lane-wise integer equality as a float-shaped mask (see the AVX2 backend).
inline MaskF cmp_eq(VecI32 a, VecI32 b) {
  return {_mm_castsi128_ps(_mm_cmpeq_epi32(a.v, b.v))};
}

/// Bitwise mask combinators; mask_andnot(a, b) is a & ~b.
inline MaskF mask_and(MaskF a, MaskF b) { return {_mm_and_ps(a.m, b.m)}; }
inline MaskF mask_or(MaskF a, MaskF b) { return {_mm_or_ps(a.m, b.m)}; }
inline MaskF mask_andnot(MaskF a, MaskF b) { return {_mm_andnot_ps(b.m, a.m)}; }

/// Inverse of movemask(MaskF): lane l is all-ones iff bit l of `bits` is set.
inline MaskF mask_from_bits(unsigned bits) {
  const __m128i lane = _mm_setr_epi32(1, 2, 4, 8);
  const __m128i sel = _mm_and_si128(_mm_set1_epi32(static_cast<int>(bits)), lane);
  return {_mm_castsi128_ps(_mm_cmpeq_epi32(sel, lane))};
}

inline VecD widen_low(VecF x) { return {_mm_cvtps_pd(x.v)}; }
inline VecD widen_high(VecF x) {
  return {_mm_cvtps_pd(_mm_movehl_ps(x.v, x.v))};
}

inline void trunc_store_i32(VecD x, std::int32_t* p) {
  const __m128i k = _mm_cvttpd_epi32(x.v);  // lanes 0..1 valid
  p[0] = _mm_cvtsi128_si32(k);
  p[1] = _mm_cvtsi128_si32(_mm_shuffle_epi32(k, 1));
}

/// In-register truncating concat (see the AVX2 backend): cvttpd leaves each
/// pair in lanes 0..1, so a 64-bit unpack interleaves lo|hi into all four.
inline VecI32 trunc_concat_i32(VecD lo, VecD hi) {
  return {_mm_unpacklo_epi64(_mm_cvttpd_epi32(lo.v), _mm_cvttpd_epi32(hi.v))};
}

/// Register form of trunc_store_i32; low VecD::kWidth lanes valid, rest zero.
inline VecI32 trunc_i32(VecD x) { return {_mm_cvttpd_epi32(x.v)}; }

/// Read one int32 lane at a runtime index (0 <= lane < VecI32::kWidth).
inline std::int32_t extract_lane_i32(VecI32 x, unsigned lane) {
  alignas(16) std::int32_t lanes[VecI32::kWidth];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), x.v);
  return lanes[lane];
}

inline VecD sqrt(VecD a) { return {_mm_sqrt_pd(a.v)}; }

/// Round to nearest, ties to even. SSE2 lacks roundpd; cvtpd_epi32 rounds per
/// MXCSR (nearest-even by default) and is exact for |x| < 2^31 - far beyond
/// the clamped exp() argument range this is used for.
inline VecD nearbyint(VecD a) { return {_mm_cvtepi32_pd(_mm_cvtpd_epi32(a.v))}; }

/// 2^k for integral-valued lanes with |k| <= 1022 (exponent-field construction).
inline VecD pow2i(VecD k) {
  alignas(16) double lanes[VecD::kWidth];
  _mm_store_pd(lanes, k.v);
  for (double& l : lanes)
    l = std::bit_cast<double>((static_cast<std::int64_t>(l) + 1023) << 52);
  return {_mm_load_pd(lanes)};
}

// ---------------------------------------------------------------------------
// NEON (AArch64): 4 x float, 2 x double
// ---------------------------------------------------------------------------
#elif defined(EVVO_SIMD_BACKEND_NEON)

struct MaskF {
  uint32x4_t m;
};
struct MaskD {
  uint64x2_t m;
};

struct VecF {
  static constexpr std::size_t kWidth = 4;
  float32x4_t v;

  static VecF load(const float* p) { return {vld1q_f32(p)}; }
  static VecF load_partial(const float* p, std::size_t n, float fill) {
    float tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {vld1q_f32(tmp)};
  }
  static VecF broadcast(float x) { return {vdupq_n_f32(x)}; }
  void store(float* p) const { vst1q_f32(p, v); }

  friend VecF operator+(VecF a, VecF b) { return {vaddq_f32(a.v, b.v)}; }
  friend VecF operator-(VecF a, VecF b) { return {vsubq_f32(a.v, b.v)}; }
  friend VecF operator*(VecF a, VecF b) { return {vmulq_f32(a.v, b.v)}; }
};

struct VecD {
  static constexpr std::size_t kWidth = 2;
  float64x2_t v;

  static VecD load(const double* p) { return {vld1q_f64(p)}; }
  static VecD load_partial(const double* p, std::size_t n, double fill) {
    double tmp[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) tmp[i] = i < n ? p[i] : fill;
    return {vld1q_f64(tmp)};
  }
  static VecD broadcast(double x) { return {vdupq_n_f64(x)}; }
  void store(double* p) const { vst1q_f64(p, v); }

  friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
  friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
  friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
  friend VecD operator/(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }
};

struct VecI32 {
  static constexpr std::size_t kWidth = 4;
  int32x4_t v;
  static VecI32 load(const std::int32_t* p) { return {vld1q_s32(p)}; }
  static VecI32 broadcast(std::int32_t x) { return {vdupq_n_s32(x)}; }
  static VecI32 iota() {
    const std::int32_t init[4] = {0, 1, 2, 3};
    return {vld1q_s32(init)};
  }
  void store(std::int32_t* p) const { vst1q_s32(p, v); }
  friend VecI32 operator+(VecI32 a, VecI32 b) { return {vaddq_s32(a.v, b.v)}; }
};

inline MaskF cmp_lt(VecF a, VecF b) { return {vcltq_f32(a.v, b.v)}; }
inline MaskF cmp_ge(VecF a, VecF b) { return {vcgeq_f32(a.v, b.v)}; }
inline MaskD cmp_ge(VecD a, VecD b) { return {vcgeq_f64(a.v, b.v)}; }
inline MaskD cmp_lt(VecD a, VecD b) { return {vcltq_f64(a.v, b.v)}; }
inline MaskD cmp_le(VecD a, VecD b) { return {vcleq_f64(a.v, b.v)}; }

inline VecF select(MaskF m, VecF if_true, VecF if_false) {
  return {vbslq_f32(m.m, if_true.v, if_false.v)};
}
inline VecD select(MaskD m, VecD if_true, VecD if_false) {
  return {vbslq_f64(m.m, if_true.v, if_false.v)};
}
inline VecI32 select(MaskF m, VecI32 if_true, VecI32 if_false) {
  return {vbslq_s32(m.m, if_true.v, if_false.v)};
}

inline int movemask(MaskF m) {
  int bits = 0;
  if (vgetq_lane_u32(m.m, 0)) bits |= 1;
  if (vgetq_lane_u32(m.m, 1)) bits |= 2;
  if (vgetq_lane_u32(m.m, 2)) bits |= 4;
  if (vgetq_lane_u32(m.m, 3)) bits |= 8;
  return bits;
}
inline int movemask(MaskD m) {
  int bits = 0;
  if (vgetq_lane_u64(m.m, 0)) bits |= 1;
  if (vgetq_lane_u64(m.m, 1)) bits |= 2;
  return bits;
}

/// Lane-wise integer equality as a float-shaped mask (see the AVX2 backend).
inline MaskF cmp_eq(VecI32 a, VecI32 b) { return {vceqq_s32(a.v, b.v)}; }

/// Bitwise mask combinators; mask_andnot(a, b) is a & ~b (vbic operand order).
inline MaskF mask_and(MaskF a, MaskF b) { return {vandq_u32(a.m, b.m)}; }
inline MaskF mask_or(MaskF a, MaskF b) { return {vorrq_u32(a.m, b.m)}; }
inline MaskF mask_andnot(MaskF a, MaskF b) { return {vbicq_u32(a.m, b.m)}; }

/// Inverse of movemask(MaskF): lane l is all-ones iff bit l of `bits` is set.
inline MaskF mask_from_bits(unsigned bits) {
  const std::uint32_t lane_bits[4] = {1, 2, 4, 8};
  const uint32x4_t lane = vld1q_u32(lane_bits);
  return {vceqq_u32(vandq_u32(vdupq_n_u32(bits), lane), lane)};
}

inline VecD widen_low(VecF x) { return {vcvt_f64_f32(vget_low_f32(x.v))}; }
inline VecD widen_high(VecF x) { return {vcvt_f64_f32(vget_high_f32(x.v))}; }

inline void trunc_store_i32(VecD x, std::int32_t* p) {
  p[0] = static_cast<std::int32_t>(vgetq_lane_f64(x.v, 0));
  p[1] = static_cast<std::int32_t>(vgetq_lane_f64(x.v, 1));
}

/// In-register truncating concat (see the AVX2 backend): fcvtzs truncates
/// toward zero exactly like the scalar cast; narrow and join the halves.
inline VecI32 trunc_concat_i32(VecD lo, VecD hi) {
  return {vcombine_s32(vmovn_s64(vcvtq_s64_f64(lo.v)),
                       vmovn_s64(vcvtq_s64_f64(hi.v)))};
}

/// Register form of trunc_store_i32; low VecD::kWidth lanes valid, rest zero.
inline VecI32 trunc_i32(VecD x) {
  return {vcombine_s32(vmovn_s64(vcvtq_s64_f64(x.v)), vdup_n_s32(0))};
}

/// Read one int32 lane at a runtime index (0 <= lane < VecI32::kWidth).
inline std::int32_t extract_lane_i32(VecI32 x, unsigned lane) {
  std::int32_t lanes[VecI32::kWidth];
  vst1q_s32(lanes, x.v);
  return lanes[lane];
}

inline VecD sqrt(VecD a) { return {vsqrtq_f64(a.v)}; }

/// Round to nearest, ties to even (frintn).
inline VecD nearbyint(VecD a) { return {vrndnq_f64(a.v)}; }

/// 2^k for integral-valued lanes with |k| <= 1022 (exponent-field construction).
inline VecD pow2i(VecD k) {
  int64x2_t k64 = vcvtq_s64_f64(k.v);  // truncation is exact: lanes are integral
  k64 = vaddq_s64(k64, vdupq_n_s64(1023));
  return {vreinterpretq_f64_s64(vshlq_n_s64(k64, 52))};
}

// ---------------------------------------------------------------------------
// Scalar fallback: 1 x float, 1 x double (lane ops are the plain scalar ops,
// so kernels written against this API degrade to the original scalar code).
// ---------------------------------------------------------------------------
#else

struct MaskF {
  bool m;
};
struct MaskD {
  bool m;
};

struct VecF {
  static constexpr std::size_t kWidth = 1;
  float v;

  static VecF load(const float* p) { return {*p}; }
  static VecF load_partial(const float* p, std::size_t n, float fill) {
    return {n > 0 ? *p : fill};
  }
  static VecF broadcast(float x) { return {x}; }
  void store(float* p) const { *p = v; }

  friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
  friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }
  friend VecF operator*(VecF a, VecF b) { return {a.v * b.v}; }
};

struct VecD {
  static constexpr std::size_t kWidth = 1;
  double v;

  static VecD load(const double* p) { return {*p}; }
  static VecD load_partial(const double* p, std::size_t n, double fill) {
    return {n > 0 ? *p : fill};
  }
  static VecD broadcast(double x) { return {x}; }
  void store(double* p) const { *p = v; }

  friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }
};

struct VecI32 {
  static constexpr std::size_t kWidth = 1;
  std::int32_t v;
  static VecI32 load(const std::int32_t* p) { return {*p}; }
  static VecI32 broadcast(std::int32_t x) { return {x}; }
  static VecI32 iota() { return {0}; }
  void store(std::int32_t* p) const { *p = v; }
  friend VecI32 operator+(VecI32 a, VecI32 b) { return {a.v + b.v}; }
};

inline MaskF cmp_lt(VecF a, VecF b) { return {a.v < b.v}; }
inline MaskF cmp_ge(VecF a, VecF b) { return {a.v >= b.v}; }
inline MaskD cmp_ge(VecD a, VecD b) { return {a.v >= b.v}; }
inline MaskD cmp_lt(VecD a, VecD b) { return {a.v < b.v}; }
inline MaskD cmp_le(VecD a, VecD b) { return {a.v <= b.v}; }

inline VecF select(MaskF m, VecF if_true, VecF if_false) { return m.m ? if_true : if_false; }
inline VecD select(MaskD m, VecD if_true, VecD if_false) { return m.m ? if_true : if_false; }
inline VecI32 select(MaskF m, VecI32 if_true, VecI32 if_false) {
  return m.m ? if_true : if_false;
}

inline int movemask(MaskF m) { return m.m ? 1 : 0; }
inline int movemask(MaskD m) { return m.m ? 1 : 0; }

/// Lane-wise integer equality as a float-shaped mask (see the AVX2 backend).
inline MaskF cmp_eq(VecI32 a, VecI32 b) { return {a.v == b.v}; }

/// Bitwise mask combinators; mask_andnot(a, b) is a & ~b.
inline MaskF mask_and(MaskF a, MaskF b) { return {a.m && b.m}; }
inline MaskF mask_or(MaskF a, MaskF b) { return {a.m || b.m}; }
inline MaskF mask_andnot(MaskF a, MaskF b) { return {a.m && !b.m}; }

/// Inverse of movemask(MaskF): the single lane follows bit 0 of `bits`.
inline MaskF mask_from_bits(unsigned bits) { return {(bits & 1u) != 0}; }

inline VecD widen_low(VecF x) { return {static_cast<double>(x.v)}; }
/// Width 1 has no high half; defined (as the sole lane) so generic kernels
/// compile, but kernels must consume it only when VecF::kWidth > 1.
inline VecD widen_high(VecF x) { return {static_cast<double>(x.v)}; }

inline void trunc_store_i32(VecD x, std::int32_t* p) {
  *p = static_cast<std::int32_t>(x.v);
}

/// Width 1 has no high half to concat; defined (truncating the sole `lo`
/// lane) so generic kernels compile, but kernels must consume it only when
/// VecI32::kWidth > VecD::kWidth.
inline VecI32 trunc_concat_i32(VecD lo, VecD /*hi*/) {
  return {static_cast<std::int32_t>(lo.v)};
}

/// Register form of trunc_store_i32 (widths match on this backend).
inline VecI32 trunc_i32(VecD x) { return {static_cast<std::int32_t>(x.v)}; }

/// Read one int32 lane at a runtime index (only lane 0 exists here).
inline std::int32_t extract_lane_i32(VecI32 x, unsigned /*lane*/) { return x.v; }

inline VecD sqrt(VecD a) { return {std::sqrt(a.v)}; }

/// Round to nearest, ties to even (default rounding mode assumed, as
/// everywhere in the tree).
inline VecD nearbyint(VecD a) { return {std::nearbyint(a.v)}; }

/// 2^k for an integral-valued lane with |k| <= 1022 (exponent-field
/// construction, matching the vector backends bit-for-bit).
inline VecD pow2i(VecD k) {
  return {std::bit_cast<double>((static_cast<std::int64_t>(k.v) + 1023) << 52)};
}

#endif

/// True when the compiled backend has real vector lanes. Kernels with a
/// hand-kept scalar twin (the DP relaxation) use this to skip the vector path
/// entirely on the scalar backend.
inline constexpr bool kHasSimd = VecF::kWidth > 1;

/// std::min/std::max operand-order semantics per lane (NOT minps/minpd
/// semantics): std::min(a, b) == (b < a) ? b : a, so ties - including
/// -0.0/+0.0 - resolve to the FIRST operand, exactly as scalar code does.
inline VecD min_std(VecD a, VecD b) { return select(cmp_lt(b, a), b, a); }
inline VecD max_std(VecD a, VecD b) { return select(cmp_lt(a, b), b, a); }
inline VecF min_std(VecF a, VecF b) { return select(cmp_lt(b, a), b, a); }
inline VecF max_std(VecF a, VecF b) { return select(cmp_lt(a, b), b, a); }

struct ArgMin {
  float value = 0.0f;
  std::size_t index = 0;
};

/// First-minimum scan: returns the smallest element and the lowest index
/// attaining it (the exact result of the scalar `for` scan with a strict <).
/// n must be >= 1. Vectorized per lane with a strict-< update so each lane
/// keeps its earliest minimum; the horizontal step prefers the smallest index
/// among lanes tied on the value.
inline ArgMin argmin_first(const float* x, std::size_t n) {
  constexpr std::size_t W = VecF::kWidth;
  constexpr float kFill = __builtin_huge_valf();
  VecF best = VecF::load_partial(x, n, kFill);
  VecI32 best_idx = VecI32::iota();
  VecI32 idx = best_idx;
  const VecI32 step = VecI32::broadcast(static_cast<std::int32_t>(W));
  for (std::size_t i = W; i < n; i += W) {
    idx = idx + step;
    const std::size_t left = n - i;
    const VecF v = left >= W ? VecF::load(x + i) : VecF::load_partial(x + i, left, kFill);
    const MaskF lt = cmp_lt(v, best);
    best = select(lt, v, best);
    best_idx = select(lt, idx, best_idx);
  }
  float vals[W];
  std::int32_t idxs[W];
  best.store(vals);
  best_idx.store(idxs);
  ArgMin out{vals[0], static_cast<std::size_t>(idxs[0])};
  for (std::size_t l = 1; l < W; ++l) {
    const auto li = static_cast<std::size_t>(idxs[l]);
    if (vals[l] < out.value || (vals[l] == out.value && li < out.index)) {
      out.value = vals[l];
      out.index = li;
    }
  }
  return out;
}

/// Horizontal sum in ascending-lane order (deterministic for a given
/// backend; lane count differs across backends, so cross-backend sums may
/// round differently - fine for the learn/ kernels, never used where
/// bit-identity is promised).
inline double hsum(VecD a) {
  double lanes[VecD::kWidth];
  a.store(lanes);
  double s = lanes[0];
  for (std::size_t l = 1; l < VecD::kWidth; ++l) s += lanes[l];
  return s;
}

/// exp() per lane, Cephes-style: split x = k*ln2 + r with k = nearbyint(
/// x*log2(e)) and |r| <= ln2/2, evaluate exp(r) as the Cephes rational
/// P/Q approximant, and scale by 2^k built straight into the exponent field.
/// Accuracy is ~1 ulp relative - NOT promised equal to std::exp - but every
/// operation is an IEEE lane op in a fixed order, so all backends (including
/// the width-1 scalar fallback) produce bit-identical results for the same
/// input: SIMD-on and SIMD-off builds agree exactly wherever this is used.
/// Arguments are clamped to [-708, 708]; beyond that exp over/underflows
/// double anyway and the callers (sigmoid) have long since saturated.
inline VecD exp(VecD x) {
  x = min_std(max_std(x, VecD::broadcast(-708.0)), VecD::broadcast(708.0));
  const VecD k = nearbyint(x * VecD::broadcast(1.4426950408889634073599));  // log2(e)
  // r = x - k*ln2 in two steps (Cody-Waite): ln2 = C1 + C2 exactly.
  VecD r = x - k * VecD::broadcast(6.93145751953125e-1);
  r = r - k * VecD::broadcast(1.42860682030941723212e-6);
  const VecD rr = r * r;
  VecD p = VecD::broadcast(1.26177193074810590878e-4);
  p = p * rr + VecD::broadcast(3.02994407707441961300e-2);
  p = p * rr + VecD::broadcast(9.99999999999999999910e-1);
  p = p * r;
  VecD q = VecD::broadcast(3.00198505138664455042e-6);
  q = q * rr + VecD::broadcast(2.52448340349684104192e-3);
  q = q * rr + VecD::broadcast(2.27265548208155028766e-1);
  q = q * rr + VecD::broadcast(2.0);
  const VecD e = p / (q - p);
  return (VecD::broadcast(1.0) + (e + e)) * pow2i(k);
}

}  // namespace evvo::common::simd
