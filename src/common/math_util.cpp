#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evvo {

double clamp(double x, double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("clamp: lo > hi");
  return std::min(std::max(x, lo), hi);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

bool nearly_equal(double a, double b, double tol) { return std::abs(a - b) <= tol; }

double quantize(double x, double step) {
  if (step <= 0.0) throw std::invalid_argument("quantize: step must be positive");
  return std::round(x / step) * step;
}

std::size_t nearest_index(double x, double step) {
  if (step <= 0.0) throw std::invalid_argument("nearest_index: step must be positive");
  const double idx = std::round(x / step);
  return idx <= 0.0 ? 0 : static_cast<std::size_t>(idx);
}

double trapezoid(std::span<const double> y, double dt) {
  if (y.size() < 2) return 0.0;
  double sum = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) sum += y[i];
  return sum * dt;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double sq = 0.0;
  for (const double v : values) sq += (v - mu) * (v - mu);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

namespace {
void require_same_size(std::span<const double> a, std::span<const double> b, const char* who) {
  if (a.size() != b.size() || a.empty()) throw std::invalid_argument(std::string(who) + ": size mismatch or empty");
}
}  // namespace

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "rmse");
  double sq = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(predicted.size()));
}

double mean_relative_error(std::span<const double> predicted, std::span<const double> actual,
                           double denominator_floor) {
  require_same_size(predicted, actual, "mean_relative_error");
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double denom = std::max(std::abs(actual[i]), denominator_floor);
    sum += std::abs(predicted[i] - actual[i]) / denom;
  }
  return sum / static_cast<double>(predicted.size());
}

double mean_absolute_error(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "mean_absolute_error");
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) sum += std::abs(predicted[i] - actual[i]);
  return sum / static_cast<double>(predicted.size());
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count < 2) throw std::invalid_argument("linspace: count must be >= 2");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

bool largest_real_root(double a, double b, double c, double& root) {
  constexpr double kTiny = 1e-12;
  if (std::abs(a) < kTiny) {
    if (std::abs(b) < kTiny) return false;
    root = -c / b;
    return true;
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return false;
  const double sq = std::sqrt(disc);
  root = std::max((-b + sq) / (2.0 * a), (-b - sq) / (2.0 * a));
  return true;
}

}  // namespace evvo
