// Runtime half of the lock-rank deadlock validator (common/mutex.hpp).
//
// A thread-local stack records every Mutex the thread currently holds, with
// its declared LockRank and the source location of the acquisition. A
// blocking acquisition whose rank is <= the highest ranked lock already held
// violates the global order in common/lock_ranks.hpp and aborts immediately
// with both sites — catching the inversion deterministically on its first
// execution, instead of waiting for the adversarial interleaving to wedge a
// production fleet. try_lock successes are recorded but not validated (a
// failed try_lock backs off, so it cannot close a waits-for cycle), and
// unranked mutexes (tests, scratch tools) participate in bookkeeping only.
//
// The whole translation unit compiles away unless EVVO_DEADLOCK_CHECK is
// defined; the TSan CI leg turns it on.
#if defined(EVVO_DEADLOCK_CHECK)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/mutex.hpp"

namespace evvo::common::deadlock {

namespace {

struct Held {
  const void* mutex = nullptr;
  LockRank rank = LockRank::kUnranked;
  std::source_location site;
};

/// Plain vector, not a fancier structure: nesting depth is tiny (2-3 locks)
/// and the validator must not itself allocate under contention-sensitive
/// paths more than necessary.
thread_local std::vector<Held> t_held;

/// The most recently acquired *ranked* hold, or nullptr. Unranked holds are
/// transparent to the order check.
const Held* top_ranked() {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->rank != LockRank::kUnranked) return &*it;
  }
  return nullptr;
}

[[noreturn]] void die_on_inversion(const Held& held, LockRank rank,
                                   const std::source_location& site) {
  std::fprintf(stderr,
               "evvo deadlock check: lock-rank inversion (acquisitions must be "
               "strictly rank-increasing; see common/lock_ranks.hpp)\n"
               "  holding   %s (rank %d), acquired at %s:%u\n"
               "  acquiring %s (rank %d) at %s:%u\n",
               lock_rank_name(held.rank), static_cast<int>(held.rank),
               held.site.file_name(), static_cast<unsigned>(held.site.line()),
               lock_rank_name(rank), static_cast<int>(rank), site.file_name(),
               static_cast<unsigned>(site.line()));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockRank rank, std::source_location site) {
  if (rank != LockRank::kUnranked) {
    if (const Held* held = top_ranked(); held && held->rank >= rank) {
      die_on_inversion(*held, rank, site);
    }
  }
  t_held.push_back(Held{mutex, rank, site});
}

void note_acquire_unchecked(const void* mutex, LockRank rank, std::source_location site) {
  t_held.push_back(Held{mutex, rank, site});
}

void note_release(const void* mutex) {
  // Most recent matching hold: scoped locks release LIFO, but out-of-order
  // release of distinct mutexes is legal and must not corrupt the stack.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t held_count() { return t_held.size(); }

}  // namespace evvo::common::deadlock

#endif  // EVVO_DEADLOCK_CHECK
