// The process-wide monotonic clock seam.
//
// Every duration measurement in the tree funnels through now_ns(): the
// telemetry spans (common/telemetry.hpp), the fuzz harness's shrink budget,
// and the load harness's latency samples all read the same source. That
// matters for two reasons:
//
//   1. Tests can fake time. ScopedFakeClock pins now_ns() to a settable
//      value, so a span's recorded duration is exactly the ticks the test
//      advanced — histogram bucket tests assert precise placements instead
//      of sleeping and hoping.
//   2. The linter can enforce the funnel. evvo_lint's `raw-clock` rule bans
//      std::chrono::*_clock::now() everywhere except this header (and
//      telemetry.cpp), so a new timing site cannot silently bypass the seam
//      and become untestable.
//
// The seam costs one relaxed atomic load and a predictable branch on top of
// the raw clock read; the fake path is test-only and never taken in
// production processes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace evvo::common {

namespace clock_detail {
/// < 0 means "real clock"; >= 0 is the faked now_ns() value. A single global
/// is enough: faking time is a test-fixture affair, never concurrent with
/// another fixture.
inline std::atomic<std::int64_t> g_fake_now_ns{-1};
}  // namespace clock_detail

/// Monotonic nanoseconds since an arbitrary process-local epoch. Only
/// differences are meaningful.
inline std::uint64_t now_ns() {
  const std::int64_t fake = clock_detail::g_fake_now_ns.load(std::memory_order_relaxed);
  if (fake >= 0) return static_cast<std::uint64_t>(fake);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Seconds between two now_ns() readings (`b` after `a`).
inline double seconds_between_ns(std::uint64_t a, std::uint64_t b) {
  return static_cast<double>(b - a) * 1e-9;
}

/// Test fixture: pins now_ns() to a virtual clock for this scope. Not for
/// use outside tests; the fake value is process-global.
class ScopedFakeClock {
 public:
  explicit ScopedFakeClock(std::uint64_t start_ns = 0) {
    clock_detail::g_fake_now_ns.store(static_cast<std::int64_t>(start_ns),
                                      std::memory_order_relaxed);
  }
  ~ScopedFakeClock() { clock_detail::g_fake_now_ns.store(-1, std::memory_order_relaxed); }
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

  void set_ns(std::uint64_t t) {
    clock_detail::g_fake_now_ns.store(static_cast<std::int64_t>(t), std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta) {
    clock_detail::g_fake_now_ns.fetch_add(static_cast<std::int64_t>(delta),
                                          std::memory_order_relaxed);
  }
};

}  // namespace evvo::common
