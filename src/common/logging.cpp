#include "common/logging.hpp"

#include <iostream>

#include "common/mutex.hpp"

namespace evvo {

namespace {
// Logging is a leaf lock: any subsystem may log while holding its own locks,
// so kLogging is the highest rank in common/lock_ranks.hpp.
common::Mutex g_log_mutex{common::LockRank::kLogging};
LogLevel g_level EVVO_GUARDED_BY(g_log_mutex) = LogLevel::kWarn;
std::function<void(const std::string&)> g_sink EVVO_GUARDED_BY(g_log_mutex);
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  common::MutexLock lock(g_log_mutex);
  g_level = level;
}

LogLevel log_level() {
  common::MutexLock lock(g_log_mutex);
  return g_level;
}

void set_log_sink(std::function<void(const std::string&)> sink) {
  common::MutexLock lock(g_log_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& component, const std::string& message) {
  common::MutexLock lock(g_log_mutex);
  if (level < g_level || g_level == LogLevel::kOff) return;
  const std::string line = std::string("[") + log_level_name(level) + "] " + component + ": " + message;
  if (g_sink) {
    g_sink(line);
  } else {
    std::cerr << line << '\n';
  }
}

}  // namespace evvo
