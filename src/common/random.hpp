// Deterministic pseudo-random number generation for simulations and training.
//
// Every stochastic component in evvo takes an explicit seed so experiments
// are reproducible run-to-run; nothing reads global entropy.
#pragma once

#include <cstdint>
#include <vector>

namespace evvo {

/// Small, fast, seedable PRNG (xoshiro256** core) with the distributions the
/// simulator and the learner need. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller (no cached spare: stateless per call pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Poisson-distributed count with given mean (Knuth for small, normal approx for large).
  int poisson(double mean);

  /// Exponentially distributed inter-arrival time with given rate (events/s).
  double exponential(double rate);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
};

}  // namespace evvo
