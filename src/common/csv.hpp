// Minimal CSV reading/writing for experiment outputs and cached datasets.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace evvo {

/// A rectangular table of doubles with named columns.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;  // each row has columns.size() entries

  /// Index of a named column; throws std::out_of_range if absent.
  std::size_t column_index(const std::string& name) const;

  /// All values of one named column.
  std::vector<double> column(const std::string& name) const;

  void add_row(std::vector<double> row);
};

/// Writes the table to `path` (parent directories are created).
void write_csv(const std::filesystem::path& path, const CsvTable& table);

/// Reads a numeric CSV with a header line. Throws std::runtime_error on parse failure.
CsvTable read_csv(const std::filesystem::path& path);

}  // namespace evvo
