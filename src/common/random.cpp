#include "common/random.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace evvo {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  // Box-Muller; reject u1 == 0 to keep log finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

int Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean > 30.0) {
    // Normal approximation with continuity correction; adequate for traffic volumes.
    const int k = static_cast<int>(std::lround(normal(mean, std::sqrt(mean))));
    return k < 0 ? 0 : k;
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_u64() % i;
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace evvo
