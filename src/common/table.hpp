// ASCII table rendering for benchmark harness output.
//
// The figure-reproduction binaries print paper series as aligned text tables
// so "the same rows/series the paper reports" are readable in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace evvo {

/// Collects rows of formatted cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row of already-formatted cells (must match header count).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  void add_numeric_row(const std::vector<double>& values, int precision = 3);

  /// Renders the table with a rule under the header.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string format_double(double value, int precision = 3);

/// Renders a compact horizontal bar (for quick-look terminal "plots").
std::string ascii_bar(double value, double max_value, int width = 40);

}  // namespace evvo
