#include "common/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace evvo::telemetry {

namespace detail {

std::size_t thread_cell(std::size_t n_cells) {
  static std::atomic<unsigned> next_ticket{0};
  // Ticket assignment only picks a cell; no memory is ordered by it.
  // evvo-lint: allow(atomics-misuse)
  thread_local const unsigned ticket = next_ticket.fetch_add(1, std::memory_order_relaxed);
  return ticket % n_cells;
}

}  // namespace detail

std::uint64_t Histogram::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the percentile sample, 1-based, matching the sorted-vector
  // convention idx = round(p * (n - 1)): rank = idx + 1.
  const auto rank = static_cast<std::uint64_t>(
                        std::llround(p * static_cast<double>(total - 1))) +
                    1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_lower(i);
  }
  // Concurrent recording moved count() past the bucket sum; the last
  // nonempty bucket is the best answer available.
  for (int i = kBucketCount; i-- > 0;) {
    if (bucket_count(i) != 0) return bucket_lower(i);
  }
  return 0;
}

// --- Registry -------------------------------------------------------------

namespace {

/// Name-keyed metric maps. Metrics are never erased (references handed out
/// are process-lifetime), only reset. The mutex guards the maps, not the
/// metrics: updates on registered metrics are atomic and lock-free.
class Registry {
 public:
  static Registry& instance() {
    static Registry* registry = new Registry();  // never destroyed: metrics outlive main
    return *registry;
  }

  Counter& counter(std::string_view name) EVVO_EXCLUDES(registry_mutex_) {
    common::MutexLock lock(registry_mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
  }

  Gauge& gauge(std::string_view name) EVVO_EXCLUDES(registry_mutex_) {
    common::MutexLock lock(registry_mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
  }

  Histogram& histogram(std::string_view name, Unit unit) EVVO_EXCLUDES(registry_mutex_) {
    common::MutexLock lock(registry_mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(unit)).first;
    }
    return *it->second;
  }

  void reset_all() EVVO_EXCLUDES(registry_mutex_) {
    common::MutexLock lock(registry_mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

  Snapshot snapshot() EVVO_EXCLUDES(registry_mutex_) {
    Snapshot snap;
    common::MutexLock lock(registry_mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.push_back({name, c->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.push_back({name, g->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      Snapshot::HistogramValue hv;
      hv.name = name;
      hv.unit = h->unit();
      hv.count = h->count();
      hv.sum = h->sum();
      hv.max = h->max();
      hv.p50 = h->percentile(0.50);
      hv.p90 = h->percentile(0.90);
      hv.p99 = h->percentile(0.99);
      for (int i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t n = h->bucket_count(i);
        if (n != 0) hv.buckets.emplace_back(i, n);
      }
      snap.histograms.push_back(std::move(hv));
    }
    return snap;  // std::map iteration is name-sorted already
  }

 private:
  Registry() = default;

  common::Mutex registry_mutex_{common::LockRank::kTelemetryRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      EVVO_GUARDED_BY(registry_mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      EVVO_GUARDED_BY(registry_mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      EVVO_GUARDED_BY(registry_mutex_);
};

}  // namespace

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name, Unit unit) {
  return Registry::instance().histogram(name, unit);
}
void reset_all() { Registry::instance().reset_all(); }
Snapshot snapshot() { return Registry::instance().snapshot(); }

// --- Exporters ------------------------------------------------------------

std::string to_json(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << snap.counters[i].name
        << "\": " << snap.counters[i].value;
  }
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << snap.gauges[i].name
        << "\": " << snap.gauges[i].value;
  }
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i ? ",\n    " : "\n    ") << '"' << h.name << "\": {\"unit\": \""
        << unit_name(h.unit) << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"max\": " << h.max << ", \"p50\": " << h.p50 << ", \"p90\": " << h.p90
        << ", \"p99\": " << h.p99 << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b ? ", " : "") << '[' << h.buckets[b].first << ", " << h.buckets[b].second
          << ']';
    }
    out << "]}";
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

namespace {

/// Prometheus metric name: [a-zA-Z0-9_] with an evvo_ prefix; every other
/// character becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out = "evvo_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream out;
  for (const auto& c : snap.counters) {
    const std::string name = prom_name(c.name);
    out << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prom_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prom_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (const auto& [idx, n] : h.buckets) {
      cum += n;
      // Upper bound of the bucket = lower bound of the next one.
      out << name << "_bucket{le=\"" << Histogram::bucket_lower(idx) + Histogram::bucket_width(idx)
          << "\"} " << cum << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << name << "_sum " << h.sum << "\n"
        << name << "_count " << h.count << "\n";
  }
  return out.str();
}

// --- Trace spans ----------------------------------------------------------

#if EVVO_TELEMETRY_ENABLED

namespace {

/// The global trace ring. Slots are per-field relaxed atomics so writers
/// stay lock-free and readers race benignly (a torn event mixes fields but
/// is never undefined behavior). next_slot hands out positions modulo size.
struct TraceRing {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<int> depth{0};
  };
  explicit TraceRing(std::size_t n) : slots(n) {}
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> next_slot{0};
};

/// Swapped only while quiescent (set_trace_capacity's contract); the old
/// ring is intentionally leaked so a straggling span can never touch freed
/// memory.
std::atomic<TraceRing*> g_trace_ring{nullptr};

thread_local int t_span_depth = 0;

}  // namespace

namespace detail {

int span_enter() { return t_span_depth++; }

void span_exit(const char* name, std::uint64_t start_ns, std::uint64_t duration_ns, int depth) {
  --t_span_depth;
  TraceRing* ring = g_trace_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  // The slot index orders nothing; it only spreads writers over the ring.
  // evvo-lint: allow(atomics-misuse)
  const std::uint64_t ticket = ring->next_slot.fetch_add(1, std::memory_order_relaxed);
  TraceRing::Slot& slot = ring->slots[ticket % ring->slots.size()];
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_release);  // name != nullptr marks the slot live
}

}  // namespace detail

void set_trace_capacity(std::size_t n) {
  g_trace_ring.store(n == 0 ? nullptr : new TraceRing(n), std::memory_order_release);
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  TraceRing* ring = g_trace_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return out;
  const std::uint64_t end = ring->next_slot.load(std::memory_order_relaxed);
  const std::uint64_t size = ring->slots.size();
  const std::uint64_t begin = end > size ? end - size : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t t = begin; t < end; ++t) {
    const TraceRing::Slot& slot = ring->slots[t % size];
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;  // claimed but not yet written
    out.push_back(TraceEvent{name, slot.start_ns.load(std::memory_order_relaxed),
                             slot.duration_ns.load(std::memory_order_relaxed),
                             slot.depth.load(std::memory_order_relaxed)});
  }
  return out;
}

#endif  // EVVO_TELEMETRY_ENABLED

}  // namespace evvo::telemetry
