// The library-wide lock acquisition order.
//
// Every common::Mutex in src/ declares one of these ranks at its construction
// site, and nested acquisitions on one thread must be *strictly increasing*
// in rank. That single global order makes deadlock impossible by
// construction: a cycle in the waits-for graph would need some thread to
// acquire a rank <= one it already holds, which the two validators reject —
//
//   static   tools/evvo_lint `lock-order` resolves every nested MutexLock
//            pair against this map and fails CI on any non-increasing pair
//            (and on any src/ mutex declared without a rank);
//   runtime  under -DEVVO_DEADLOCK_CHECK=ON (the TSan CI leg),
//            common::Mutex keeps a thread-local stack of held ranks and
//            aborts with both acquisition sites on the first out-of-order
//            lock, whether or not the interleaving actually deadlocks.
//
// Ordering rationale (low ranks are acquired first, high ranks are leaves):
// the serving path enters through a PlanService shard, may touch its flight
// records and lazily-built pools, hands work to the thread pool, and logs
// from anywhere — so logging is the highest (leaf) rank, service-entry locks
// are the lowest, and the pool internals sit in between. Gaps are deliberate:
// new locks slot in without renumbering.
#pragma once

namespace evvo::common {

enum class LockRank : int {
  /// Default for Mutex(): exempt from both validators. Only test fixtures
  /// and scratch tools may leave a mutex unranked; evvo_lint `lock-order`
  /// rejects unranked declarations anywhere under src/.
  kUnranked = 0,

  /// cloud::PlanService::Shard::shard_mutex — the serving entry point; held
  /// across cache lookup/publish (which logs, rank kLogging).
  kPlanShard = 10,

  /// cloud::PlanService::InFlight::flight_mutex — leader/follower handoff
  /// for one single-flight solve.
  kPlanFlight = 20,

  /// cloud::PlanService::pool_mutex_ — lazy construction of the batch pool.
  kServiceBatchPool = 30,

  /// core::WorkspacePool::free_mutex_ — solver-context checkout.
  kWorkspacePool = 40,

  /// core::VelocityPlanner Runtime::runtime_mutex — lazy construction of the
  /// relaxation pool.
  kPlannerRuntime = 50,

  /// common::ThreadPool::queue_mutex_ — batch queue and shutdown flag.
  kThreadPoolQueue = 60,

  /// common::ThreadPool::Batch::batch_mutex — per-batch completion handoff.
  kPoolBatch = 70,

  /// The telemetry registry (common/telemetry.cpp registry_mutex_): metric
  /// registration and snapshot only — hot-path metric updates are atomic and
  /// never lock. Near-leaf so any subsystem may register its metrics while
  /// holding its own locks; only logging nests inside it.
  kTelemetryRegistry = 80,

  /// The logging sink (common/logging.cpp g_log_mutex): a leaf every
  /// subsystem may enter while holding any other lock.
  kLogging = 90,
};

/// Name for diagnostics ("kPlanShard"); "?" for values outside the enum.
constexpr const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kPlanShard: return "kPlanShard";
    case LockRank::kPlanFlight: return "kPlanFlight";
    case LockRank::kServiceBatchPool: return "kServiceBatchPool";
    case LockRank::kWorkspacePool: return "kWorkspacePool";
    case LockRank::kPlannerRuntime: return "kPlannerRuntime";
    case LockRank::kThreadPoolQueue: return "kThreadPoolQueue";
    case LockRank::kPoolBatch: return "kPoolBatch";
    case LockRank::kTelemetryRegistry: return "kTelemetryRegistry";
    case LockRank::kLogging: return "kLogging";
  }
  return "?";
}

}  // namespace evvo::common
