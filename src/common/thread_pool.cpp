#include "common/thread_pool.hpp"

#include <atomic>

namespace evvo::common {

/// One parallel_for invocation. Workers (and the caller) claim indices from
/// `next` until exhausted; the last finisher flips `done` under the batch
/// mutex so the caller's wait is race-free.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};

  Mutex batch_mutex{LockRank::kPoolBatch};
  CondVar completed;
  bool done EVVO_GUARDED_BY(batch_mutex) = false;
  std::exception_ptr error EVVO_GUARDED_BY(batch_mutex);
};

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(queue_mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::resolve_threads(unsigned hint) {
  if (hint > 0) return hint;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::run_batch(const std::shared_ptr<Batch>& batch) {
  std::size_t ran = 0;
  // The claimed index only selects work (bodies own disjoint data per index);
  // the acq_rel `finished` counter below is what publishes the batch, so the
  // relaxed claim is not a synchronization edge.
  // evvo-lint: allow(atomics-misuse)
  for (std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed); i < batch->n;
       i = batch->next.fetch_add(1, std::memory_order_relaxed)) {  // evvo-lint: allow(atomics-misuse)
    try {
      (*batch->body)(i);
    } catch (...) {
      MutexLock lock(batch->batch_mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    ++ran;
  }
  if (ran == 0) return;
  if (batch->finished.fetch_add(ran, std::memory_order_acq_rel) + ran == batch->n) {
    {
      MutexLock lock(batch->batch_mutex);
      batch->done = true;
    }
    batch->completed.notify_all();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(queue_mutex_);
      while (!shutdown_ && pending_.empty()) work_available_.wait(queue_mutex_);
      if (pending_.empty()) return;  // shutdown with no work left
      batch = pending_.front();
      // Leave the batch queued until its indices are exhausted so every idle
      // worker can join it; the claimer whose fetch_add runs past n pops it.
      if (batch->next.load(std::memory_order_relaxed) >= batch->n) {
        pending_.pop_front();
        continue;
      }
    }
    run_batch(batch);
    MutexLock lock(queue_mutex_);
    if (!pending_.empty() && pending_.front() == batch) pending_.pop_front();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;
  {
    MutexLock lock(queue_mutex_);
    pending_.push_back(batch);
  }
  work_available_.notify_all();
  run_batch(batch);  // the caller participates, guaranteeing progress
  std::exception_ptr error;
  {
    MutexLock lock(batch->batch_mutex);
    while (!batch->done) batch->completed.wait(batch->batch_mutex);
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace evvo::common
