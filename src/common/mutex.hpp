// Annotated synchronization primitives for clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so clang's `-Wthread-safety` cannot see through them. These thin wrappers
// add the attributes and nothing else: Mutex is a std::mutex with an
// EVVO_CAPABILITY tag, MutexLock is a scoped lock the analysis tracks, and
// CondVar waits on a held Mutex (adopting its underlying std::mutex for the
// duration of the wait, so a plain std::condition_variable does the actual
// blocking). Zero overhead: every method is a one-line forward.
//
// Project rule (enforced by evvo_lint `raw-sync`): library code declares
// Mutex/CondVar, never raw std::mutex/std::condition_variable, so every
// mutex-protected structure participates in the static analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace evvo::common {

class CondVar;

/// std::mutex with a thread-safety capability attribute.
class EVVO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EVVO_ACQUIRE() { inner_.lock(); }
  void unlock() EVVO_RELEASE() { inner_.unlock(); }
  bool try_lock() EVVO_TRY_ACQUIRE(true) { return inner_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex inner_;
};

/// Scoped lock over Mutex, visible to the analysis (std::lock_guard over an
/// annotated mutex would acquire the capability inside an unannotated
/// constructor, which the analysis rejects).
class EVVO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EVVO_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() EVVO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a held Mutex.
///
/// wait() requires the capability: the caller provably holds the lock, and
/// the analysis treats it as still held across the call (the wait reacquires
/// before returning, so guarded reads in the caller's wait loop stay legal).
/// There is no predicate overload on purpose — a predicate lambda would be
/// analyzed as a separate function that reads guarded state without visibly
/// holding the lock. Write the standard loop instead:
///
///   MutexLock lock(mutex_);
///   while (!condition) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
  void wait(Mutex& mutex) EVVO_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.inner_, std::adopt_lock);
    inner_.wait(adopted);
    adopted.release();  // the caller's MutexLock keeps ownership
  }

  void notify_one() { inner_.notify_one(); }
  void notify_all() { inner_.notify_all(); }

 private:
  std::condition_variable inner_;
};

}  // namespace evvo::common
