// Annotated synchronization primitives for clang Thread Safety Analysis,
// with an optional compile-in lock-rank deadlock validator.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so clang's `-Wthread-safety` cannot see through them. These thin wrappers
// add the attributes and nothing else: Mutex is a std::mutex with an
// EVVO_CAPABILITY tag, MutexLock is a scoped lock the analysis tracks, and
// CondVar waits on a held Mutex (adopting its underlying std::mutex for the
// duration of the wait, so a plain std::condition_variable does the actual
// blocking). Zero overhead in the default build: every method is a one-line
// forward and the rank argument compiles away.
//
// Deadlock validation: TSA proves each mutex is *held* where required but
// says nothing about acquisition *order*. Every library mutex therefore
// declares a LockRank (common/lock_ranks.hpp) at construction, and under
// -DEVVO_DEADLOCK_CHECK=ON each acquisition is checked against a
// thread-local stack of held ranks: acquiring a rank <= the highest ranked
// lock already held aborts immediately, printing both acquisition sites —
// the held lock's and the offending one's — whether or not the interleaving
// would have deadlocked this run. The TSan CI leg builds with the validator
// on; tools/evvo_lint `lock-order` enforces the same order statically.
//
// Project rule (enforced by evvo_lint `raw-sync`): library code declares
// Mutex/CondVar, never raw std::mutex/std::condition_variable, so every
// mutex-protected structure participates in the static analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/lock_ranks.hpp"
#include "common/thread_annotations.hpp"

#if defined(EVVO_DEADLOCK_CHECK)
#include <source_location>

namespace evvo::common::deadlock {
/// Validates `rank` against the calling thread's held-lock stack (aborting
/// with both sites on a non-increasing acquisition), then records the hold.
void note_acquire(const void* mutex, LockRank rank, std::source_location site);
/// Records the hold without validating (try_lock success cannot deadlock).
void note_acquire_unchecked(const void* mutex, LockRank rank, std::source_location site);
/// Removes the most recent hold of `mutex` from the thread's stack.
void note_release(const void* mutex);
/// Held-stack depth of the calling thread (diagnostics/tests).
std::size_t held_count();
}  // namespace evvo::common::deadlock
#endif

namespace evvo::common {

class CondVar;

/// std::mutex with a thread-safety capability attribute and a deadlock rank.
class EVVO_CAPABILITY("mutex") Mutex {
 public:
  /// Unranked: exempt from the deadlock validator. Library code declares a
  /// rank instead (evvo_lint `lock-order` rejects unranked mutexes in src/).
  Mutex() = default;
  explicit Mutex(LockRank rank) noexcept
#if defined(EVVO_DEADLOCK_CHECK)
      : rank_(rank)
#endif
  {
    (void)rank;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(EVVO_DEADLOCK_CHECK)
  void lock(std::source_location site = std::source_location::current()) EVVO_ACQUIRE() {
    // Validate before blocking: the inversion is reported even on the lucky
    // interleavings where the lock happens to be free.
    deadlock::note_acquire(this, rank_, site);
    inner_.lock();
  }
  void unlock() EVVO_RELEASE() {
    inner_.unlock();
    deadlock::note_release(this);
  }
  bool try_lock(std::source_location site = std::source_location::current())
      EVVO_TRY_ACQUIRE(true) {
    const bool acquired = inner_.try_lock();
    if (acquired) deadlock::note_acquire_unchecked(this, rank_, site);
    return acquired;
  }
  LockRank rank() const noexcept { return rank_; }
#else
  void lock() EVVO_ACQUIRE() { inner_.lock(); }
  void unlock() EVVO_RELEASE() { inner_.unlock(); }
  bool try_lock() EVVO_TRY_ACQUIRE(true) { return inner_.try_lock(); }
  LockRank rank() const noexcept { return LockRank::kUnranked; }
#endif

 private:
  friend class CondVar;
  std::mutex inner_;
#if defined(EVVO_DEADLOCK_CHECK)
  LockRank rank_ = LockRank::kUnranked;
#endif
};

/// Scoped lock over Mutex, visible to the analysis (std::lock_guard over an
/// annotated mutex would acquire the capability inside an unannotated
/// constructor, which the analysis rejects).
class EVVO_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(EVVO_DEADLOCK_CHECK)
  explicit MutexLock(Mutex& mutex,
                     std::source_location site = std::source_location::current())
      EVVO_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mutex) EVVO_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
#endif
  ~MutexLock() EVVO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a held Mutex.
///
/// wait() requires the capability: the caller provably holds the lock, and
/// the analysis treats it as still held across the call (the wait reacquires
/// before returning, so guarded reads in the caller's wait loop stay legal).
/// There is no predicate overload on purpose — a predicate lambda would be
/// analyzed as a separate function that reads guarded state without visibly
/// holding the lock. Write the standard loop instead (evvo_lint
/// `wait-predicate` rejects a wait outside one):
///
///   MutexLock lock(mutex_);
///   while (!condition) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before returning.
#if defined(EVVO_DEADLOCK_CHECK)
  void wait(Mutex& mutex, std::source_location site = std::source_location::current())
      EVVO_REQUIRES(mutex) {
    // The wait releases and reacquires the mutex, so mirror that on the
    // held-rank stack: the reacquisition is re-validated against whatever
    // else the thread still holds.
    deadlock::note_release(&mutex);
    std::unique_lock<std::mutex> adopted(mutex.inner_, std::adopt_lock);
    inner_.wait(adopted);
    adopted.release();  // the caller's MutexLock keeps ownership
    deadlock::note_acquire(&mutex, mutex.rank_, site);
  }
#else
  void wait(Mutex& mutex) EVVO_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.inner_, std::adopt_lock);
    inner_.wait(adopted);
    adopted.release();  // the caller's MutexLock keeps ownership
  }
#endif

  void notify_one() { inner_.notify_one(); }
  void notify_all() { inner_.notify_all(); }

 private:
  std::condition_variable inner_;
};

}  // namespace evvo::common
