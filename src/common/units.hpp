// Physical constants, unit conversions, and dimension-checked quantities.
//
// Convention: every quantity inside the library is SI unless the name says
// otherwise (meters, seconds, kilograms, m/s, m/s^2, watts, volts, amperes).
// Charge is tracked in ampere-hours (Ah) because the paper reports EV energy
// consumption as electrical charge (Eq. (3) yields a current).
//
// The strong types below make that convention compiler-enforced at the
// public API boundaries (planner, DP problem, GLOSA, queue model/predictor,
// energy model): a km/h value, a vehicles-per-hour flow, or a plain double
// cannot be passed where an SI quantity is expected without an explicit
// construction naming the unit. Internals stay on raw double behind a
// single `.value()` seam, so the DP hot loop and its golden checksums are
// byte-identical to the unmigrated code.
#pragma once

#include <compare>
#include <type_traits>

namespace evvo {

/// Standard gravity [m/s^2].
inline constexpr double kGravity = 9.80665;

/// Average air density at sea level, 15 C [kg/m^3].
inline constexpr double kAirDensity = 1.225;

/// Seconds per hour.
inline constexpr double kSecondsPerHour = 3600.0;

/// Hours per day / days per week, for calendar-indexed series.
inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerWeek = 7;
inline constexpr int kHoursPerWeek = kHoursPerDay * kDaysPerWeek;

/// Converts kilometers per hour to meters per second.
constexpr double kmh_to_ms(double kmh) { return kmh / 3.6; }

/// Converts meters per second to kilometers per hour.
constexpr double ms_to_kmh(double ms) { return ms * 3.6; }

/// Converts miles per hour to meters per second.
constexpr double mph_to_ms(double mph) { return mph * 0.44704; }

/// Converts vehicles-per-hour flow to vehicles-per-second.
constexpr double per_hour_to_per_second(double per_hour) { return per_hour / kSecondsPerHour; }

/// Converts vehicles-per-second flow to vehicles-per-hour.
constexpr double per_second_to_per_hour(double per_second) { return per_second * kSecondsPerHour; }

/// Converts ampere-seconds (coulombs) to ampere-hours.
constexpr double as_to_ah(double ampere_seconds) { return ampere_seconds / kSecondsPerHour; }

/// Converts ampere-hours to milliampere-hours.
constexpr double ah_to_mah(double ah) { return ah * 1000.0; }

/// Converts watt-seconds (joules) to kilowatt-hours.
constexpr double joule_to_kwh(double joules) { return joules / 3.6e6; }

// ---------------------------------------------------------------------------
// Dimension-checked quantities
// ---------------------------------------------------------------------------

/// A double tagged with its physical dimension, expressed as integer
/// exponents over the library's base units (meter, second, vehicle,
/// ampere-hour). The stored value is ALWAYS in the SI-convention unit of its
/// dimension (m, s, m/s, veh/s, Ah, ...); constructors taking other scales
/// are spelled out as named factories (`MetersPerSecond::from_kmh`, via the
/// free helpers below).
///
/// Only dimensionally valid operators exist: same-dimension add/subtract/
/// compare, scalar scale, and multiply/divide that add/subtract exponents
/// (collapsing to a plain double when every exponent cancels). Construction
/// from double is explicit — the one place a unit assumption is made is the
/// place it is named.
///
/// Zero overhead by construction: trivially copyable, sizeof(double), every
/// operation a constexpr one-liner. static_asserts below pin that down.
template <int MeterExp, int SecondExp, int VehicleExp, int AmpereHourExp>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// The raw SI-convention magnitude: the single seam between the strongly
  /// typed API boundary and raw-double internals.
  constexpr double value() const { return value_; }

  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double scale) {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(double scale) {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity(a.value_ + b.value_); }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity(a.value_ - b.value_); }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity(a.value_ * s); }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity(s * a.value_); }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity(a.value_ / s); }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

/// quantity * quantity adds dimension exponents; a fully cancelled result
/// decays to double (e.g. speed * time / distance).
template <int M1, int S1, int V1, int A1, int M2, int S2, int V2, int A2>
constexpr auto operator*(Quantity<M1, S1, V1, A1> a, Quantity<M2, S2, V2, A2> b) {
  if constexpr (M1 + M2 == 0 && S1 + S2 == 0 && V1 + V2 == 0 && A1 + A2 == 0) {
    return a.value() * b.value();
  } else {
    return Quantity<M1 + M2, S1 + S2, V1 + V2, A1 + A2>(a.value() * b.value());
  }
}

/// quantity / quantity subtracts dimension exponents; a same-dimension ratio
/// decays to double.
template <int M1, int S1, int V1, int A1, int M2, int S2, int V2, int A2>
constexpr auto operator/(Quantity<M1, S1, V1, A1> a, Quantity<M2, S2, V2, A2> b) {
  if constexpr (M1 == M2 && S1 == S2 && V1 == V2 && A1 == A2) {
    return a.value() / b.value();
  } else {
    return Quantity<M1 - M2, S1 - S2, V1 - V2, A1 - A2>(a.value() / b.value());
  }
}

/// double / quantity inverts the dimension (e.g. 1.0 / Seconds).
template <int M, int S, int V, int A>
constexpr Quantity<-M, -S, -V, -A> operator/(double s, Quantity<M, S, V, A> q) {
  return Quantity<-M, -S, -V, -A>(s / q.value());
}

using Meters = Quantity<1, 0, 0, 0>;
using Seconds = Quantity<0, 1, 0, 0>;
using MetersPerSecond = Quantity<1, -1, 0, 0>;
using MetersPerSecondSquared = Quantity<1, -2, 0, 0>;
using Vehicles = Quantity<0, 0, 1, 0>;
using VehiclesPerSecond = Quantity<0, -1, 1, 0>;
using AmpereHours = Quantity<0, 0, 0, 1>;

static_assert(std::is_trivially_copyable_v<MetersPerSecond> && sizeof(MetersPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Seconds> && sizeof(Seconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Meters> && sizeof(Meters) == sizeof(double));
static_assert(std::is_trivially_copyable_v<VehiclesPerSecond> && sizeof(VehiclesPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<AmpereHours> && sizeof(AmpereHours) == sizeof(double));
static_assert(std::is_same_v<decltype(Meters(1.0) / Seconds(1.0)), MetersPerSecond>);
static_assert(std::is_same_v<decltype(MetersPerSecond(1.0) / Seconds(1.0)), MetersPerSecondSquared>);
static_assert(std::is_same_v<decltype(MetersPerSecond(2.0) * Seconds(3.0)), Meters>);
static_assert(std::is_same_v<decltype(Meters(6.0) / Meters(3.0)), double>);

/// Named off-SI constructors: the scale conversion happens exactly where the
/// foreign unit is named.
constexpr MetersPerSecond speed_from_kmh(double kmh) { return MetersPerSecond(kmh_to_ms(kmh)); }
constexpr MetersPerSecond speed_from_mph(double mph) { return MetersPerSecond(mph_to_ms(mph)); }
constexpr double to_kmh(MetersPerSecond v) { return ms_to_kmh(v.value()); }
constexpr VehiclesPerSecond flow_from_veh_h(double veh_h) {
  return VehiclesPerSecond(per_hour_to_per_second(veh_h));
}
constexpr double to_veh_h(VehiclesPerSecond flow) { return per_second_to_per_hour(flow.value()); }

}  // namespace evvo
