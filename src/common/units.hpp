// Physical constants and unit conversions used throughout evvo.
//
// Convention: every quantity inside the library is SI unless the name says
// otherwise (meters, seconds, kilograms, m/s, m/s^2, watts, volts, amperes).
// Charge is tracked in ampere-hours (Ah) because the paper reports EV energy
// consumption as electrical charge (Eq. (3) yields a current).
#pragma once

namespace evvo {

/// Standard gravity [m/s^2].
inline constexpr double kGravity = 9.80665;

/// Average air density at sea level, 15 C [kg/m^3].
inline constexpr double kAirDensity = 1.225;

/// Seconds per hour.
inline constexpr double kSecondsPerHour = 3600.0;

/// Hours per day / days per week, for calendar-indexed series.
inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerWeek = 7;
inline constexpr int kHoursPerWeek = kHoursPerDay * kDaysPerWeek;

/// Converts kilometers per hour to meters per second.
constexpr double kmh_to_ms(double kmh) { return kmh / 3.6; }

/// Converts meters per second to kilometers per hour.
constexpr double ms_to_kmh(double ms) { return ms * 3.6; }

/// Converts miles per hour to meters per second.
constexpr double mph_to_ms(double mph) { return mph * 0.44704; }

/// Converts vehicles-per-hour flow to vehicles-per-second.
constexpr double per_hour_to_per_second(double per_hour) { return per_hour / kSecondsPerHour; }

/// Converts vehicles-per-second flow to vehicles-per-hour.
constexpr double per_second_to_per_hour(double per_second) { return per_second * kSecondsPerHour; }

/// Converts ampere-seconds (coulombs) to ampere-hours.
constexpr double as_to_ah(double ampere_seconds) { return ampere_seconds / kSecondsPerHour; }

/// Converts ampere-hours to milliampere-hours.
constexpr double ah_to_mah(double ah) { return ah * 1000.0; }

/// Converts watt-seconds (joules) to kilowatt-hours.
constexpr double joule_to_kwh(double joules) { return joules / 3.6e6; }

}  // namespace evvo
