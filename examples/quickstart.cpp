// Quickstart: plan an energy-optimal, queue-aware velocity profile for a pure
// EV over the US-25 experimental corridor and compare it with the
// queue-oblivious baseline planner.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/profile_eval.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"

int main() {
  using namespace evvo;

  // 1. The world: the 4.2 km US-25 section (stop sign + two signals).
  const road::Corridor corridor = road::make_us25_corridor();

  // 2. The vehicle: Chevrolet Spark EV over a 399 V pack (paper defaults).
  const ev::EnergyModel energy;

  // 3. Traffic: a steady 1530 veh/h approaching each signal (the paper's
  //    probed arrival rate); per-lane demand feeds the queue-length model.
  const auto arrivals = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(1530.0 / 2.0));

  // 4. Plan with the proposed queue-aware policy and the baseline.
  core::PlannerConfig config;
  config.policy = core::SignalPolicy::kQueueAware;
  const core::VelocityPlanner proposed(corridor, energy, config);

  config.policy = core::SignalPolicy::kGreenWindow;
  const core::VelocityPlanner baseline(corridor, energy, config);

  const double depart = 0.0;
  const core::PlannedProfile plan_ours = proposed.plan(Seconds(depart), arrivals);
  const core::PlannedProfile plan_base = baseline.plan(Seconds(depart), arrivals);

  // 5. Account both plans with the same energy model.
  const auto eval = [&](const core::PlannedProfile& p) {
    return core::evaluate_cycle(energy, corridor.route, p.to_drive_cycle(0.5));
  };
  const core::ProfileEvaluation ours = eval(plan_ours);
  const core::ProfileEvaluation base = eval(plan_base);

  TextTable table({"planner", "energy [mAh]", "trip time [s]", "stops", "max speed [km/h]"});
  table.add_row({"queue-aware (proposed)", format_double(ours.energy.charge_mah, 1),
                 format_double(ours.trip_time_s, 1), std::to_string(ours.stops),
                 format_double(ms_to_kmh(ours.max_speed_ms), 1)});
  table.add_row({"green-window (current DP)", format_double(base.energy.charge_mah, 1),
                 format_double(base.trip_time_s, 1), std::to_string(base.stops),
                 format_double(ms_to_kmh(base.max_speed_ms), 1)});
  table.print(std::cout);

  std::cout << "\nqueue-aware saving vs current DP: "
            << format_double(core::percent_saving(base.energy.charge_mah, ours.energy.charge_mah), 1)
            << " %\n";
  std::cout << "planned zero-queue crossings: light windows targeted at ";
  for (const auto& light : corridor.lights) {
    std::cout << plan_ours.time_at_position(light.position()) << " s  ";
  }
  std::cout << "\n";
  return 0;
}
