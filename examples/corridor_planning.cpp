// Full corridor study: plan the US-25 trip under all three signal policies,
// execute each plan among simulated traffic, and compare against human
// driving - the complete Sec. III evaluation in one program.
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/profile_eval.hpp"
#include "data/trace_generator.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"
#include "sim/calibration.hpp"
#include "sim/traci.hpp"

int main() {
  using namespace evvo;

  const road::Corridor corridor = road::make_us25_corridor();
  const ev::EnergyModel energy;
  const double demand_veh_h = 1530.0;  // the paper's probed demand
  const double depart = 600.0;         // enter warmed-up traffic

  sim::MicrosimConfig sim_config;
  const auto demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(demand_veh_h));
  const auto lane_demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(demand_veh_h / sim_config.lane_equivalent_count));

  const auto execute = [&](const core::PlannedProfile& plan) {
    sim::Microsim simulator(corridor, sim_config, demand);
    simulator.run_until(plan.depart_time());
    sim::DriverParams ego;
    ego.accel_ms2 = energy.params().max_acceleration;
    ego.decel_ms2 = -energy.params().min_acceleration * 2.0;
    return sim::execute_planned_profile(simulator, plan.target_speed_fn(), 0.0, corridor.length(),
                                        600.0, ego);
  };
  const auto evaluate = [&](const ev::DriveCycle& cycle) {
    return core::evaluate_cycle(energy, corridor.route, cycle);
  };

  TextTable table({"profile", "energy [mAh]", "trip [s]", "stops", "regen [mAh]", "mAh/km"});
  const auto add_row = [&](const std::string& name, const core::ProfileEvaluation& e) {
    table.add_row({name, format_double(e.energy.charge_mah, 1), format_double(e.trip_time_s, 1),
                   std::to_string(e.stops), format_double(e.energy.regenerated_mah, 1),
                   format_double(e.energy.mah_per_km(), 1)});
  };

  // Human references driving in the same traffic.
  for (const auto& [name, driver] :
       {std::pair{"mild driving", data::mild_driver()}, {"fast driving", data::fast_driver()}}) {
    const auto trace = data::record_human_trace(corridor, sim_config, demand, driver, depart);
    add_row(name, evaluate(trace.cycle));
  }

  // The three planners.
  for (const auto policy : {core::SignalPolicy::kIgnoreSignals, core::SignalPolicy::kGreenWindow,
                            core::SignalPolicy::kQueueAware}) {
    core::PlannerConfig cfg;
    cfg.policy = policy;
    cfg.vm = sim::calibrated_vm_params(sim_config.background_driver, 13.4,
                                       sim_config.straight_ratio);
    const core::VelocityPlanner planner(corridor, energy, cfg);
    const core::PlannedProfile plan =
        planner.plan(Seconds(depart), policy == core::SignalPolicy::kQueueAware ? lane_demand : nullptr);
    const auto exec = execute(plan);
    if (!exec.completed) {
      std::cout << core::signal_policy_name(policy) << ": execution timed out\n";
      continue;
    }
    add_row(std::string(core::signal_policy_name(policy)) + " (executed)", evaluate(exec.cycle));
  }
  table.print(std::cout);

  std::cout << "\nNote: the signal-oblivious plan ignores lights entirely, so the simulator\n"
               "stops it at reds; the green-window plan hits green phases but meets the\n"
               "queues; the queue-aware plan crosses inside the zero-queue windows T_q.\n";
  return 0;
}
