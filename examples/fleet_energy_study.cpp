// Fleet study: how much energy does queue-aware planning save across a whole
// day of departures? For each departure hour, plan with the SAE-forecast
// arrival rates, execute in traffic of matching intensity, and aggregate the
// savings against the queue-oblivious baseline - the deployment view of the
// paper's system (vehicular-cloud service planning many trips).
#include <iostream>
#include <memory>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/profile_eval.hpp"
#include "data/synthetic_volume.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"
#include "sim/calibration.hpp"
#include "sim/traci.hpp"
#include "traffic/traffic_predictor.hpp"

int main() {
  using namespace evvo;

  const road::Corridor corridor = road::make_us25_corridor();
  const ev::EnergyModel energy;
  sim::MicrosimConfig sim_config;

  // Forecast the test Monday with the SAE model.
  const data::VolumeDataset ds = data::make_us25_dataset();
  traffic::PredictorConfig predictor_cfg;
  predictor_cfg.sae.pretrain_epochs = 10;
  predictor_cfg.sae.finetune_epochs = 80;
  traffic::SaeVolumePredictor sae(predictor_cfg);
  std::cout << "training SAE forecaster...\n";
  sae.fit(ds.train);
  const auto forecast = traffic::predict_series(sae, ds.train, ds.test);

  TextTable table({"depart", "demand [veh/h]", "ours [mAh]", "baseline [mAh]", "saving [%]"});
  std::vector<double> savings;
  for (int hour = 5; hour <= 21; hour += 2) {
    // Traffic of that hour's actual intensity; planner uses the forecast.
    const double actual_veh_h = ds.test.at(static_cast<std::size_t>(hour));
    const double forecast_veh_h = forecast[static_cast<std::size_t>(hour)];
    const auto demand = std::make_shared<traffic::ConstantArrivalRate>(actual_veh_h);
    const auto lane_forecast = std::make_shared<traffic::ConstantArrivalRate>(
        forecast_veh_h / sim_config.lane_equivalent_count);

    const auto run = [&](core::SignalPolicy policy) {
      core::PlannerConfig cfg;
      cfg.policy = policy;
      cfg.vm = sim::calibrated_vm_params(sim_config.background_driver, 13.4,
                                         sim_config.straight_ratio);
      const core::VelocityPlanner planner(corridor, energy, cfg);
      const core::PlannedProfile plan = planner.plan(600.0, lane_forecast);
      sim::MicrosimConfig run_cfg = sim_config;
      run_cfg.seed = 100 + static_cast<std::uint64_t>(hour);
      sim::Microsim simulator(corridor, run_cfg, demand);
      simulator.run_until(plan.depart_time());
      sim::DriverParams ego;
      ego.accel_ms2 = energy.params().max_acceleration;
      ego.decel_ms2 = -energy.params().min_acceleration * 2.0;
      const auto exec = sim::execute_planned_profile(simulator, plan.target_speed_fn(), 0.0,
                                                     corridor.length(), 600.0, ego);
      return exec.completed
                 ? core::evaluate_cycle(energy, corridor.route, exec.cycle).energy.charge_mah
                 : -1.0;
    };

    const double ours = run(core::SignalPolicy::kQueueAware);
    const double base = run(core::SignalPolicy::kGreenWindow);
    if (ours < 0.0 || base < 0.0) {
      table.add_row({std::to_string(hour) + ":00", format_double(actual_veh_h, 0), "timeout",
                     "timeout", "-"});
      continue;
    }
    const double saving = core::percent_saving(base, ours);
    savings.push_back(saving);
    table.add_row({std::to_string(hour) + ":00", format_double(actual_veh_h, 0),
                   format_double(ours, 1), format_double(base, 1), format_double(saving, 1)});
  }
  table.print(std::cout);

  std::cout << "\nfleet summary over " << savings.size()
            << " departures: mean saving " << format_double(mean(savings), 1) << " %, best "
            << format_double(*std::max_element(savings.begin(), savings.end()), 1)
            << " %, worst " << format_double(*std::min_element(savings.begin(), savings.end()), 1)
            << " %\n";
  return 0;
}
