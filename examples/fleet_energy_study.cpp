// Fleet study: how much energy does queue-aware planning save across a whole
// day of departures? The day's trips are planned through the vehicular-cloud
// PlanService (paper Sec. I): one batch request per policy fans the
// departures across the service's worker pool, and departures whose
// (signal phase, demand bin) coincide are served from cache instead of
// re-running the DP. Each plan is then executed in traffic of the hour's
// actual intensity and the savings are aggregated against the
// queue-oblivious baseline - the deployment view of the paper's system.
#include <iostream>
#include <memory>

#include "cloud/plan_service.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/profile_eval.hpp"
#include "data/synthetic_volume.hpp"
#include "ev/energy_model.hpp"
#include "road/corridor.hpp"
#include "sim/calibration.hpp"
#include "sim/traci.hpp"
#include "traffic/traffic_predictor.hpp"

int main() {
  using namespace evvo;

  const road::Corridor corridor = road::make_us25_corridor();
  const ev::EnergyModel energy;
  sim::MicrosimConfig sim_config;

  // Forecast the test Monday with the SAE model.
  const data::VolumeDataset ds = data::make_us25_dataset();
  traffic::PredictorConfig predictor_cfg;
  predictor_cfg.sae.pretrain_epochs = 10;
  predictor_cfg.sae.finetune_epochs = 80;
  traffic::SaeVolumePredictor sae(predictor_cfg);
  std::cout << "training SAE forecaster...\n";
  sae.fit(ds.train);
  const auto forecast = traffic::predict_series(sae, ds.train, ds.test);

  // The cloud service plans against the forecast arrival rates, addressed by
  // absolute departure time (test-day hour h lives at t = h * 3600 s).
  std::vector<double> lane_forecast(forecast);
  for (double& v : lane_forecast) v /= sim_config.lane_equivalent_count;
  const auto forecast_rate = std::make_shared<traffic::SeriesArrivalRate>(
      traffic::HourlyVolumeSeries(lane_forecast, ds.test.start_hour_of_week()));

  const auto make_service = [&](core::SignalPolicy policy) {
    core::PlannerConfig cfg;
    cfg.policy = policy;
    cfg.vm = sim::calibrated_vm_params(sim_config.background_driver, 13.4,
                                       sim_config.straight_ratio);
    return cloud::PlanService(core::VelocityPlanner(corridor, energy, cfg), forecast_rate);
  };
  cloud::PlanService ours_service = make_service(core::SignalPolicy::kQueueAware);
  cloud::PlanService base_service = make_service(core::SignalPolicy::kGreenWindow);

  // One batch of departures per policy: ten minutes past every studied hour.
  std::vector<int> hours;
  std::vector<cloud::PlanRequest> requests;
  for (int hour = 5; hour <= 21; hour += 2) {
    hours.push_back(hour);
    requests.push_back({hour, hour * 3600.0 + 600.0});
  }
  std::cout << "planning " << requests.size() << " departures per policy via the cloud service\n";
  const std::vector<cloud::PlanResponse> ours_plans = ours_service.request_plans(requests);
  const std::vector<cloud::PlanResponse> base_plans = base_service.request_plans(requests);

  TextTable table({"depart", "demand [veh/h]", "ours [mAh]", "baseline [mAh]", "saving [%]"});
  std::vector<double> savings;
  for (std::size_t i = 0; i < hours.size(); ++i) {
    const int hour = hours[i];
    // Traffic of that hour's actual intensity; the plans used the forecast.
    const double actual_veh_h = ds.test.at(static_cast<std::size_t>(hour));
    const auto demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(actual_veh_h));

    const auto run = [&](const core::PlannedProfile& profile) {
      // Execute at simulator time 600 s: the absolute departure differs from
      // it by a whole number of signal hyperperiods, so the shifted plan's
      // crossings stay aligned with the lights.
      const core::PlannedProfile plan = profile.time_shifted(600.0 - profile.depart_time());
      sim::MicrosimConfig run_cfg = sim_config;
      run_cfg.seed = 100 + static_cast<std::uint64_t>(hour);
      sim::Microsim simulator(corridor, run_cfg, demand);
      simulator.run_until(plan.depart_time());
      sim::DriverParams ego;
      ego.accel_ms2 = energy.params().max_acceleration;
      ego.decel_ms2 = -energy.params().min_acceleration * 2.0;
      const auto exec = sim::execute_planned_profile(simulator, plan.target_speed_fn(), 0.0,
                                                     corridor.length(), 600.0, ego);
      return exec.completed
                 ? core::evaluate_cycle(energy, corridor.route, exec.cycle).energy.charge_mah
                 : -1.0;
    };

    const double ours = run(ours_plans[i].profile);
    const double base = run(base_plans[i].profile);
    if (ours < 0.0 || base < 0.0) {
      table.add_row({std::to_string(hour) + ":00", format_double(actual_veh_h, 0), "timeout",
                     "timeout", "-"});
      continue;
    }
    const double saving = core::percent_saving(base, ours);
    savings.push_back(saving);
    table.add_row({std::to_string(hour) + ":00", format_double(actual_veh_h, 0),
                   format_double(ours, 1), format_double(base, 1), format_double(saving, 1)});
  }
  table.print(std::cout);

  const auto print_stats = [](const char* name, const cloud::ServiceStats& stats) {
    std::cout << name << " service: " << stats.requests << " requests, " << stats.solver_runs
              << " solver runs, " << stats.cache_hits << " cache hits\n";
  };
  std::cout << '\n';
  print_stats("queue-aware", ours_service.stats());
  print_stats("baseline", base_service.stats());

  std::cout << "\nfleet summary over " << savings.size()
            << " departures: mean saving " << format_double(mean(savings), 1) << " %, best "
            << format_double(*std::max_element(savings.begin(), savings.end()), 1)
            << " %, worst " << format_double(*std::min_element(savings.begin(), savings.end()), 1)
            << " %\n";
  return 0;
}
