// evvo_cli: command-line driver for the velocity-optimization stack.
//
//   evvo_cli [--policy queue|green|none] [--demand VEH_PER_H] [--depart S]
//            [--corridor us25|random:SEED] [--coordinate SPEED_MS]
//            [--lambda MAH_PER_S] [--execute] [--csv PATH]
//
// Plans a trip over the chosen corridor, optionally executes it among
// simulated traffic, prints a summary, and can export the planned profile as
// a time,speed CSV (loadable with ev::load_cycle_csv).
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/profile_eval.hpp"
#include "ev/cycle_io.hpp"
#include "road/coordination.hpp"
#include "road/corridor.hpp"
#include "sim/calibration.hpp"
#include "sim/traci.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--policy queue|green|none] [--demand VEH_PER_H] [--depart S]\n"
               "        [--corridor us25|random:SEED] [--coordinate SPEED_MS]\n"
               "        [--lambda MAH_PER_S] [--execute] [--csv PATH]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace evvo;

  core::SignalPolicy policy = core::SignalPolicy::kQueueAware;
  double demand_veh_h = 1530.0;
  double depart_s = 600.0;
  std::string corridor_spec = "us25";
  double coordinate_speed = 0.0;
  double lambda = -1.0;
  bool execute = false;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--policy") {
      const std::string p = next();
      if (p == "queue") {
        policy = core::SignalPolicy::kQueueAware;
      } else if (p == "green") {
        policy = core::SignalPolicy::kGreenWindow;
      } else if (p == "none") {
        policy = core::SignalPolicy::kIgnoreSignals;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--demand") {
      demand_veh_h = std::stod(next());
    } else if (arg == "--depart") {
      depart_s = std::stod(next());
    } else if (arg == "--corridor") {
      corridor_spec = next();
    } else if (arg == "--coordinate") {
      coordinate_speed = std::stod(next());
    } else if (arg == "--lambda") {
      lambda = std::stod(next());
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }

  road::Corridor corridor = road::make_us25_corridor();
  if (corridor_spec.rfind("random:", 0) == 0) {
    corridor = road::make_random_corridor(std::stoull(corridor_spec.substr(7)));
  } else if (corridor_spec != "us25") {
    usage(argv[0]);
  }
  if (coordinate_speed > 0.0) {
    corridor = road::coordinate_for_progression(corridor, coordinate_speed, depart_s);
  }

  const ev::EnergyModel energy;
  sim::MicrosimConfig sim_config;
  core::PlannerConfig cfg;
  cfg.policy = policy;
  cfg.vm = sim::calibrated_vm_params(sim_config.background_driver, 13.4,
                                     sim_config.straight_ratio);
  cfg.resolution.horizon_s = std::max(450.0, corridor.length() / 8.0);
  if (lambda >= 0.0) cfg.time_weight_mah_per_s = lambda;

  const core::VelocityPlanner planner(corridor, energy, cfg);
  const auto lane_demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(demand_veh_h / sim_config.lane_equivalent_count));

  std::cout << "corridor: " << corridor_spec << " (" << corridor.length() << " m, "
            << corridor.lights.size() << " lights, " << corridor.stop_signs.size()
            << " stop signs)\npolicy: " << core::signal_policy_name(policy) << ", demand "
            << demand_veh_h << " veh/h, depart " << depart_s << " s\n\n";

  const core::PlannedProfile plan = planner.plan(Seconds(depart_s), lane_demand);
  const auto plan_eval = core::evaluate_cycle(energy, corridor.route, plan.to_drive_cycle(0.5));

  TextTable table({"stage", "energy [mAh]", "trip [s]", "stops", "max speed [km/h]"});
  table.add_row({"plan", format_double(plan_eval.energy.charge_mah, 1),
                 format_double(plan.trip_time(), 1), std::to_string(plan.planned_stops()),
                 format_double(ms_to_kmh(plan_eval.max_speed_ms), 1)});

  if (execute) {
    sim::Microsim simulator(corridor, sim_config,
                            std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(demand_veh_h)));
    simulator.run_until(depart_s);
    sim::DriverParams ego;
    ego.accel_ms2 = energy.params().max_acceleration;
    ego.decel_ms2 = -energy.params().min_acceleration * 2.0;
    const auto result = sim::execute_planned_profile(simulator, plan.target_speed_fn(), 0.0,
                                                     corridor.length(), 900.0, ego);
    if (result.completed) {
      const auto exec_eval = core::evaluate_cycle(energy, corridor.route, result.cycle);
      table.add_row({"executed", format_double(exec_eval.energy.charge_mah, 1),
                     format_double(result.cycle.duration(), 1), std::to_string(exec_eval.stops),
                     format_double(ms_to_kmh(exec_eval.max_speed_ms), 1)});
    } else {
      table.add_row({"executed", "timeout", "-", "-", "-"});
    }
  }
  table.print(std::cout);

  if (!csv_path.empty()) {
    ev::save_cycle_csv(csv_path, plan.to_drive_cycle(0.5));
    std::cout << "\nplanned profile written to " << csv_path << "\n";
  }
  return 0;
}
