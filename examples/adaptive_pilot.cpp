// Closed-loop deployment demo: a vehicular-cloud service hands out cached
// optimal profiles, and an adaptive pilot drives them through traffic,
// replanning mid-route when the road disagrees with the plan.
#include <iostream>
#include <memory>

#include "cloud/plan_service.hpp"
#include "common/table.hpp"
#include "core/profile_eval.hpp"
#include "ev/soc_trace.hpp"
#include "pilot/pilot.hpp"
#include "road/corridor.hpp"
#include "sim/calibration.hpp"

int main() {
  using namespace evvo;

  const road::Corridor corridor = road::make_us25_corridor();
  const ev::EnergyModel energy;
  sim::MicrosimConfig sim_config;
  const auto demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(1530.0));
  const auto lane_demand = std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(765.0));

  core::PlannerConfig cfg;
  cfg.vm = sim::calibrated_vm_params(sim_config.background_driver, 13.4,
                                     sim_config.straight_ratio);
  core::VelocityPlanner planner(corridor, energy, cfg);

  // The cloud service: many vehicles, few DP solves.
  cloud::PlanService service(planner, lane_demand);
  std::cout << "cloud service up; signal hyperperiod H = " << service.hyperperiod() << " s\n\n";

  TextTable fleet({"vehicle", "depart [s]", "cache", "energy [mAh]", "trip [s]", "replans",
                   "final SoC [%]"});
  for (int vehicle = 0; vehicle < 6; ++vehicle) {
    const double depart = 600.0 + vehicle * 120.0;  // all phase-congruent (120 = 2H)
    const cloud::PlanResponse response = service.request_plan({vehicle, depart});

    // Each vehicle drives its plan with the adaptive pilot in its own traffic.
    sim::MicrosimConfig run_cfg = sim_config;
    run_cfg.seed = 40 + static_cast<std::uint64_t>(vehicle);
    sim::Microsim simulator(corridor, run_cfg, demand);
    simulator.run_until(depart);
    const pilot::PilotResult result =
        pilot::drive_with_replanning(simulator, planner, lane_demand);

    const auto eval = core::evaluate_cycle(energy, corridor.route, result.cycle);
    ev::BatteryPack pack;
    pack.reset(0.8);
    const ev::SocTrace soc = ev::run_battery(energy, pack, result.cycle,
                                             [&](double s) { return corridor.route.grade_at(s); });
    fleet.add_row({std::to_string(vehicle), format_double(depart, 0),
                   response.cache_hit ? "hit" : "miss", format_double(eval.energy.charge_mah, 1),
                   format_double(result.trip_time(), 1), std::to_string(result.replans),
                   format_double(soc.final_soc() * 100.0, 2)});
  }
  fleet.print(std::cout);

  const cloud::ServiceStats stats = service.stats();
  std::cout << "\nservice stats: " << stats.requests << " requests, " << stats.cache_hits
            << " cache hits, " << stats.solver_runs << " DP solves\n";
  return 0;
}
