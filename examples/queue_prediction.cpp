// Queue prediction walkthrough: train the SAE traffic-volume predictor on
// synthetic detector data, feed its hourly forecasts into the QL model, and
// print the zero-queue windows T_q an approaching EV should aim for.
//
// Pipeline (paper Sec. II-B): SAE arrival forecast -> VM discharge model ->
// QL queue dynamics -> T_q windows.
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "common/units.hpp"
#include "data/synthetic_volume.hpp"
#include "road/corridor.hpp"
#include "traffic/queue_predictor.hpp"
#include "traffic/traffic_predictor.hpp"

int main() {
  using namespace evvo;

  // 1. Thirteen weeks of hourly volumes to learn from, one week held out.
  const data::VolumeDataset ds = data::make_us25_dataset();

  // 2. Train the SAE predictor (smaller config than the Fig. 4 bench for a
  //    snappy example; see bench_fig4_sae_prediction for the full protocol).
  traffic::PredictorConfig cfg;
  cfg.sae.pretrain_epochs = 10;
  cfg.sae.finetune_epochs = 80;
  traffic::SaeVolumePredictor sae(cfg);
  std::cout << "training SAE on " << ds.train.size() << " hourly samples...\n";
  sae.fit(ds.train);

  // 3. One-step-ahead forecasts over the Monday of the test week.
  const auto forecast = traffic::predict_series(sae, ds.train, ds.test);
  TextTable volumes({"hour", "actual [veh/h]", "SAE forecast [veh/h]"});
  for (int h = 6; h <= 20; h += 2) {
    volumes.add_row({std::to_string(h) + ":00", format_double(ds.test.at(h), 0),
                     format_double(forecast[h], 0)});
  }
  volumes.print(std::cout);

  // 4. Zero-queue windows at the first US-25 signal during the morning peak,
  //    driven by the forecast series. Demand is split per lane.
  const road::Corridor corridor = road::make_us25_corridor();
  std::vector<double> lane_forecast;
  for (const double v : forecast) lane_forecast.push_back(v / 2.0);
  const auto arrivals = std::make_shared<traffic::SeriesArrivalRate>(
      traffic::HourlyVolumeSeries(lane_forecast, ds.test.start_hour_of_week()));
  const traffic::QueuePredictor predictor(corridor.lights[0],
                                          traffic::QueueModel(traffic::VmParams{}), arrivals);

  const double am_peak = 7.5 * 3600.0;  // 07:30
  std::cout << "\nzero-queue windows at light 1 around 07:30 (morning peak):\n";
  TextTable windows({"window start", "window end", "usable [s]"});
  for (const auto& w : predictor.zero_queue_windows(Seconds(am_peak), Seconds(am_peak + 5.0 * 60.0))) {
    windows.add_row({format_double(w.start_s - am_peak, 1) + " s",
                     format_double(w.end_s - am_peak, 1) + " s", format_double(w.duration(), 1)});
  }
  windows.print(std::cout);

  const double night = 3.0 * 3600.0;  // 03:00
  double peak_usable = 0.0;
  double night_usable = 0.0;
  for (const auto& w : predictor.zero_queue_windows(Seconds(am_peak), Seconds(am_peak + 600.0)))
    peak_usable += w.duration();
  for (const auto& w : predictor.zero_queue_windows(Seconds(night), Seconds(night + 600.0)))
    night_usable += w.duration();
  std::cout << "\nusable crossing time per 10 min: " << format_double(night_usable, 0)
            << " s at 03:00 vs " << format_double(peak_usable, 0)
            << " s at 07:30 - queues eat into the green time as demand rises.\n";
  return 0;
}
