# Empty compiler generated dependencies file for corridor_planning.
# This may be replaced when dependencies are built.
