file(REMOVE_RECURSE
  "CMakeFiles/corridor_planning.dir/corridor_planning.cpp.o"
  "CMakeFiles/corridor_planning.dir/corridor_planning.cpp.o.d"
  "corridor_planning"
  "corridor_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corridor_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
