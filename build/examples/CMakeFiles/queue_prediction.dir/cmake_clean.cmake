file(REMOVE_RECURSE
  "CMakeFiles/queue_prediction.dir/queue_prediction.cpp.o"
  "CMakeFiles/queue_prediction.dir/queue_prediction.cpp.o.d"
  "queue_prediction"
  "queue_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
