# Empty compiler generated dependencies file for queue_prediction.
# This may be replaced when dependencies are built.
