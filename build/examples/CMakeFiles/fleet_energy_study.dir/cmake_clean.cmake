file(REMOVE_RECURSE
  "CMakeFiles/fleet_energy_study.dir/fleet_energy_study.cpp.o"
  "CMakeFiles/fleet_energy_study.dir/fleet_energy_study.cpp.o.d"
  "fleet_energy_study"
  "fleet_energy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_energy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
