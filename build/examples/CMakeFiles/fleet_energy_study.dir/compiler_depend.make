# Empty compiler generated dependencies file for fleet_energy_study.
# This may be replaced when dependencies are built.
