# Empty dependencies file for adaptive_pilot.
# This may be replaced when dependencies are built.
