file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pilot.dir/adaptive_pilot.cpp.o"
  "CMakeFiles/adaptive_pilot.dir/adaptive_pilot.cpp.o.d"
  "adaptive_pilot"
  "adaptive_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
