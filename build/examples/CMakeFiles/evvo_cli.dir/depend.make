# Empty dependencies file for evvo_cli.
# This may be replaced when dependencies are built.
