file(REMOVE_RECURSE
  "CMakeFiles/evvo_cli.dir/evvo_cli.cpp.o"
  "CMakeFiles/evvo_cli.dir/evvo_cli.cpp.o.d"
  "evvo_cli"
  "evvo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
