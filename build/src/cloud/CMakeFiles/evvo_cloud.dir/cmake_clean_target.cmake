file(REMOVE_RECURSE
  "libevvo_cloud.a"
)
