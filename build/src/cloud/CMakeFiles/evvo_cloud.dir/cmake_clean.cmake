file(REMOVE_RECURSE
  "CMakeFiles/evvo_cloud.dir/plan_service.cpp.o"
  "CMakeFiles/evvo_cloud.dir/plan_service.cpp.o.d"
  "libevvo_cloud.a"
  "libevvo_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
