# Empty dependencies file for evvo_cloud.
# This may be replaced when dependencies are built.
