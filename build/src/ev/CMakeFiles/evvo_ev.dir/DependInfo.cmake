
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ev/battery.cpp" "src/ev/CMakeFiles/evvo_ev.dir/battery.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/battery.cpp.o.d"
  "/root/repo/src/ev/cycle_io.cpp" "src/ev/CMakeFiles/evvo_ev.dir/cycle_io.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/cycle_io.cpp.o.d"
  "/root/repo/src/ev/degradation.cpp" "src/ev/CMakeFiles/evvo_ev.dir/degradation.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/degradation.cpp.o.d"
  "/root/repo/src/ev/drive_cycle.cpp" "src/ev/CMakeFiles/evvo_ev.dir/drive_cycle.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/drive_cycle.cpp.o.d"
  "/root/repo/src/ev/efficiency_map.cpp" "src/ev/CMakeFiles/evvo_ev.dir/efficiency_map.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/efficiency_map.cpp.o.d"
  "/root/repo/src/ev/energy_model.cpp" "src/ev/CMakeFiles/evvo_ev.dir/energy_model.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/energy_model.cpp.o.d"
  "/root/repo/src/ev/longitudinal.cpp" "src/ev/CMakeFiles/evvo_ev.dir/longitudinal.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/longitudinal.cpp.o.d"
  "/root/repo/src/ev/soc_trace.cpp" "src/ev/CMakeFiles/evvo_ev.dir/soc_trace.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/soc_trace.cpp.o.d"
  "/root/repo/src/ev/vehicle_params.cpp" "src/ev/CMakeFiles/evvo_ev.dir/vehicle_params.cpp.o" "gcc" "src/ev/CMakeFiles/evvo_ev.dir/vehicle_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
