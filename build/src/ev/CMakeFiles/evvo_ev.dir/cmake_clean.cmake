file(REMOVE_RECURSE
  "CMakeFiles/evvo_ev.dir/battery.cpp.o"
  "CMakeFiles/evvo_ev.dir/battery.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/cycle_io.cpp.o"
  "CMakeFiles/evvo_ev.dir/cycle_io.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/degradation.cpp.o"
  "CMakeFiles/evvo_ev.dir/degradation.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/drive_cycle.cpp.o"
  "CMakeFiles/evvo_ev.dir/drive_cycle.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/efficiency_map.cpp.o"
  "CMakeFiles/evvo_ev.dir/efficiency_map.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/energy_model.cpp.o"
  "CMakeFiles/evvo_ev.dir/energy_model.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/longitudinal.cpp.o"
  "CMakeFiles/evvo_ev.dir/longitudinal.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/soc_trace.cpp.o"
  "CMakeFiles/evvo_ev.dir/soc_trace.cpp.o.d"
  "CMakeFiles/evvo_ev.dir/vehicle_params.cpp.o"
  "CMakeFiles/evvo_ev.dir/vehicle_params.cpp.o.d"
  "libevvo_ev.a"
  "libevvo_ev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_ev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
