file(REMOVE_RECURSE
  "libevvo_ev.a"
)
