# Empty compiler generated dependencies file for evvo_ev.
# This may be replaced when dependencies are built.
