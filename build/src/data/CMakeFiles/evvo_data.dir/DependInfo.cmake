
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/synthetic_volume.cpp" "src/data/CMakeFiles/evvo_data.dir/synthetic_volume.cpp.o" "gcc" "src/data/CMakeFiles/evvo_data.dir/synthetic_volume.cpp.o.d"
  "/root/repo/src/data/trace_generator.cpp" "src/data/CMakeFiles/evvo_data.dir/trace_generator.cpp.o" "gcc" "src/data/CMakeFiles/evvo_data.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/evvo_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/evvo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/evvo_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/evvo_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/evvo_road.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
