# Empty dependencies file for evvo_data.
# This may be replaced when dependencies are built.
