file(REMOVE_RECURSE
  "libevvo_data.a"
)
