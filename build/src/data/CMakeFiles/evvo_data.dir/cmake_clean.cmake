file(REMOVE_RECURSE
  "CMakeFiles/evvo_data.dir/synthetic_volume.cpp.o"
  "CMakeFiles/evvo_data.dir/synthetic_volume.cpp.o.d"
  "CMakeFiles/evvo_data.dir/trace_generator.cpp.o"
  "CMakeFiles/evvo_data.dir/trace_generator.cpp.o.d"
  "libevvo_data.a"
  "libevvo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
