# Empty compiler generated dependencies file for evvo_pilot.
# This may be replaced when dependencies are built.
