file(REMOVE_RECURSE
  "libevvo_pilot.a"
)
