file(REMOVE_RECURSE
  "CMakeFiles/evvo_pilot.dir/pilot.cpp.o"
  "CMakeFiles/evvo_pilot.dir/pilot.cpp.o.d"
  "libevvo_pilot.a"
  "libevvo_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
