file(REMOVE_RECURSE
  "CMakeFiles/evvo_road.dir/coordination.cpp.o"
  "CMakeFiles/evvo_road.dir/coordination.cpp.o.d"
  "CMakeFiles/evvo_road.dir/corridor.cpp.o"
  "CMakeFiles/evvo_road.dir/corridor.cpp.o.d"
  "CMakeFiles/evvo_road.dir/route.cpp.o"
  "CMakeFiles/evvo_road.dir/route.cpp.o.d"
  "CMakeFiles/evvo_road.dir/signals.cpp.o"
  "CMakeFiles/evvo_road.dir/signals.cpp.o.d"
  "libevvo_road.a"
  "libevvo_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
