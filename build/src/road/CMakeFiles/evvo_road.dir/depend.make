# Empty dependencies file for evvo_road.
# This may be replaced when dependencies are built.
