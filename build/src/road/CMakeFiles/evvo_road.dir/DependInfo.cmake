
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/road/coordination.cpp" "src/road/CMakeFiles/evvo_road.dir/coordination.cpp.o" "gcc" "src/road/CMakeFiles/evvo_road.dir/coordination.cpp.o.d"
  "/root/repo/src/road/corridor.cpp" "src/road/CMakeFiles/evvo_road.dir/corridor.cpp.o" "gcc" "src/road/CMakeFiles/evvo_road.dir/corridor.cpp.o.d"
  "/root/repo/src/road/route.cpp" "src/road/CMakeFiles/evvo_road.dir/route.cpp.o" "gcc" "src/road/CMakeFiles/evvo_road.dir/route.cpp.o.d"
  "/root/repo/src/road/signals.cpp" "src/road/CMakeFiles/evvo_road.dir/signals.cpp.o" "gcc" "src/road/CMakeFiles/evvo_road.dir/signals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
