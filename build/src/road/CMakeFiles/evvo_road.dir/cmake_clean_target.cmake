file(REMOVE_RECURSE
  "libevvo_road.a"
)
