file(REMOVE_RECURSE
  "libevvo_sim.a"
)
