# Empty compiler generated dependencies file for evvo_sim.
# This may be replaced when dependencies are built.
