file(REMOVE_RECURSE
  "CMakeFiles/evvo_sim.dir/calibration.cpp.o"
  "CMakeFiles/evvo_sim.dir/calibration.cpp.o.d"
  "CMakeFiles/evvo_sim.dir/detectors.cpp.o"
  "CMakeFiles/evvo_sim.dir/detectors.cpp.o.d"
  "CMakeFiles/evvo_sim.dir/idm.cpp.o"
  "CMakeFiles/evvo_sim.dir/idm.cpp.o.d"
  "CMakeFiles/evvo_sim.dir/krauss.cpp.o"
  "CMakeFiles/evvo_sim.dir/krauss.cpp.o.d"
  "CMakeFiles/evvo_sim.dir/microsim.cpp.o"
  "CMakeFiles/evvo_sim.dir/microsim.cpp.o.d"
  "CMakeFiles/evvo_sim.dir/traci.cpp.o"
  "CMakeFiles/evvo_sim.dir/traci.cpp.o.d"
  "libevvo_sim.a"
  "libevvo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
