
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/calibration.cpp" "src/sim/CMakeFiles/evvo_sim.dir/calibration.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/calibration.cpp.o.d"
  "/root/repo/src/sim/detectors.cpp" "src/sim/CMakeFiles/evvo_sim.dir/detectors.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/detectors.cpp.o.d"
  "/root/repo/src/sim/idm.cpp" "src/sim/CMakeFiles/evvo_sim.dir/idm.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/idm.cpp.o.d"
  "/root/repo/src/sim/krauss.cpp" "src/sim/CMakeFiles/evvo_sim.dir/krauss.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/krauss.cpp.o.d"
  "/root/repo/src/sim/microsim.cpp" "src/sim/CMakeFiles/evvo_sim.dir/microsim.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/microsim.cpp.o.d"
  "/root/repo/src/sim/traci.cpp" "src/sim/CMakeFiles/evvo_sim.dir/traci.cpp.o" "gcc" "src/sim/CMakeFiles/evvo_sim.dir/traci.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/evvo_road.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/evvo_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/evvo_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/evvo_learn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
