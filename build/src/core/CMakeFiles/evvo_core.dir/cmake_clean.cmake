file(REMOVE_RECURSE
  "CMakeFiles/evvo_core.dir/dp_solver.cpp.o"
  "CMakeFiles/evvo_core.dir/dp_solver.cpp.o.d"
  "CMakeFiles/evvo_core.dir/glosa.cpp.o"
  "CMakeFiles/evvo_core.dir/glosa.cpp.o.d"
  "CMakeFiles/evvo_core.dir/penalty.cpp.o"
  "CMakeFiles/evvo_core.dir/penalty.cpp.o.d"
  "CMakeFiles/evvo_core.dir/plan_io.cpp.o"
  "CMakeFiles/evvo_core.dir/plan_io.cpp.o.d"
  "CMakeFiles/evvo_core.dir/planned_profile.cpp.o"
  "CMakeFiles/evvo_core.dir/planned_profile.cpp.o.d"
  "CMakeFiles/evvo_core.dir/planner.cpp.o"
  "CMakeFiles/evvo_core.dir/planner.cpp.o.d"
  "CMakeFiles/evvo_core.dir/profile_eval.cpp.o"
  "CMakeFiles/evvo_core.dir/profile_eval.cpp.o.d"
  "libevvo_core.a"
  "libevvo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
