
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dp_solver.cpp" "src/core/CMakeFiles/evvo_core.dir/dp_solver.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/dp_solver.cpp.o.d"
  "/root/repo/src/core/glosa.cpp" "src/core/CMakeFiles/evvo_core.dir/glosa.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/glosa.cpp.o.d"
  "/root/repo/src/core/penalty.cpp" "src/core/CMakeFiles/evvo_core.dir/penalty.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/penalty.cpp.o.d"
  "/root/repo/src/core/plan_io.cpp" "src/core/CMakeFiles/evvo_core.dir/plan_io.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/plan_io.cpp.o.d"
  "/root/repo/src/core/planned_profile.cpp" "src/core/CMakeFiles/evvo_core.dir/planned_profile.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/planned_profile.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/evvo_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/profile_eval.cpp" "src/core/CMakeFiles/evvo_core.dir/profile_eval.cpp.o" "gcc" "src/core/CMakeFiles/evvo_core.dir/profile_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/evvo_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/evvo_road.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/evvo_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/evvo_learn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
