file(REMOVE_RECURSE
  "libevvo_core.a"
)
