# Empty dependencies file for evvo_core.
# This may be replaced when dependencies are built.
