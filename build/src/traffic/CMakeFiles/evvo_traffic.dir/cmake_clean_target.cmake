file(REMOVE_RECURSE
  "libevvo_traffic.a"
)
