
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/delay.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/delay.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/delay.cpp.o.d"
  "/root/repo/src/traffic/queue_model.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/queue_model.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/queue_model.cpp.o.d"
  "/root/repo/src/traffic/queue_predictor.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/queue_predictor.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/queue_predictor.cpp.o.d"
  "/root/repo/src/traffic/traffic_predictor.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/traffic_predictor.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/traffic_predictor.cpp.o.d"
  "/root/repo/src/traffic/vm_model.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/vm_model.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/vm_model.cpp.o.d"
  "/root/repo/src/traffic/volume_series.cpp" "src/traffic/CMakeFiles/evvo_traffic.dir/volume_series.cpp.o" "gcc" "src/traffic/CMakeFiles/evvo_traffic.dir/volume_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/evvo_road.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/evvo_learn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
