file(REMOVE_RECURSE
  "CMakeFiles/evvo_traffic.dir/delay.cpp.o"
  "CMakeFiles/evvo_traffic.dir/delay.cpp.o.d"
  "CMakeFiles/evvo_traffic.dir/queue_model.cpp.o"
  "CMakeFiles/evvo_traffic.dir/queue_model.cpp.o.d"
  "CMakeFiles/evvo_traffic.dir/queue_predictor.cpp.o"
  "CMakeFiles/evvo_traffic.dir/queue_predictor.cpp.o.d"
  "CMakeFiles/evvo_traffic.dir/traffic_predictor.cpp.o"
  "CMakeFiles/evvo_traffic.dir/traffic_predictor.cpp.o.d"
  "CMakeFiles/evvo_traffic.dir/vm_model.cpp.o"
  "CMakeFiles/evvo_traffic.dir/vm_model.cpp.o.d"
  "CMakeFiles/evvo_traffic.dir/volume_series.cpp.o"
  "CMakeFiles/evvo_traffic.dir/volume_series.cpp.o.d"
  "libevvo_traffic.a"
  "libevvo_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
