# Empty dependencies file for evvo_traffic.
# This may be replaced when dependencies are built.
