
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/activations.cpp" "src/learn/CMakeFiles/evvo_learn.dir/activations.cpp.o" "gcc" "src/learn/CMakeFiles/evvo_learn.dir/activations.cpp.o.d"
  "/root/repo/src/learn/dense_layer.cpp" "src/learn/CMakeFiles/evvo_learn.dir/dense_layer.cpp.o" "gcc" "src/learn/CMakeFiles/evvo_learn.dir/dense_layer.cpp.o.d"
  "/root/repo/src/learn/matrix.cpp" "src/learn/CMakeFiles/evvo_learn.dir/matrix.cpp.o" "gcc" "src/learn/CMakeFiles/evvo_learn.dir/matrix.cpp.o.d"
  "/root/repo/src/learn/sae.cpp" "src/learn/CMakeFiles/evvo_learn.dir/sae.cpp.o" "gcc" "src/learn/CMakeFiles/evvo_learn.dir/sae.cpp.o.d"
  "/root/repo/src/learn/scaler.cpp" "src/learn/CMakeFiles/evvo_learn.dir/scaler.cpp.o" "gcc" "src/learn/CMakeFiles/evvo_learn.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
