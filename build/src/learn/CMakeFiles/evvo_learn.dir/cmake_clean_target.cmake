file(REMOVE_RECURSE
  "libevvo_learn.a"
)
