# Empty compiler generated dependencies file for evvo_learn.
# This may be replaced when dependencies are built.
