# Empty dependencies file for evvo_learn.
# This may be replaced when dependencies are built.
