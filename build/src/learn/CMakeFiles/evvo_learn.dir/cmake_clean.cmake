file(REMOVE_RECURSE
  "CMakeFiles/evvo_learn.dir/activations.cpp.o"
  "CMakeFiles/evvo_learn.dir/activations.cpp.o.d"
  "CMakeFiles/evvo_learn.dir/dense_layer.cpp.o"
  "CMakeFiles/evvo_learn.dir/dense_layer.cpp.o.d"
  "CMakeFiles/evvo_learn.dir/matrix.cpp.o"
  "CMakeFiles/evvo_learn.dir/matrix.cpp.o.d"
  "CMakeFiles/evvo_learn.dir/sae.cpp.o"
  "CMakeFiles/evvo_learn.dir/sae.cpp.o.d"
  "CMakeFiles/evvo_learn.dir/scaler.cpp.o"
  "CMakeFiles/evvo_learn.dir/scaler.cpp.o.d"
  "libevvo_learn.a"
  "libevvo_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
