# Empty dependencies file for evvo_common.
# This may be replaced when dependencies are built.
