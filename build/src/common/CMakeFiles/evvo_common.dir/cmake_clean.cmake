file(REMOVE_RECURSE
  "CMakeFiles/evvo_common.dir/csv.cpp.o"
  "CMakeFiles/evvo_common.dir/csv.cpp.o.d"
  "CMakeFiles/evvo_common.dir/logging.cpp.o"
  "CMakeFiles/evvo_common.dir/logging.cpp.o.d"
  "CMakeFiles/evvo_common.dir/math_util.cpp.o"
  "CMakeFiles/evvo_common.dir/math_util.cpp.o.d"
  "CMakeFiles/evvo_common.dir/random.cpp.o"
  "CMakeFiles/evvo_common.dir/random.cpp.o.d"
  "CMakeFiles/evvo_common.dir/table.cpp.o"
  "CMakeFiles/evvo_common.dir/table.cpp.o.d"
  "libevvo_common.a"
  "libevvo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evvo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
