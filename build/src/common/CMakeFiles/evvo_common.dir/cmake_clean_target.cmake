file(REMOVE_RECURSE
  "libevvo_common.a"
)
