file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_velocity_profiles.dir/bench_fig6_velocity_profiles.cpp.o"
  "CMakeFiles/bench_fig6_velocity_profiles.dir/bench_fig6_velocity_profiles.cpp.o.d"
  "bench_fig6_velocity_profiles"
  "bench_fig6_velocity_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_velocity_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
