# Empty dependencies file for bench_fig6_velocity_profiles.
# This may be replaced when dependencies are built.
