file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sae_prediction.dir/bench_fig4_sae_prediction.cpp.o"
  "CMakeFiles/bench_fig4_sae_prediction.dir/bench_fig4_sae_prediction.cpp.o.d"
  "bench_fig4_sae_prediction"
  "bench_fig4_sae_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sae_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
