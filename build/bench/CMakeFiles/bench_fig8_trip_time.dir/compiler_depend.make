# Empty compiler generated dependencies file for bench_fig8_trip_time.
# This may be replaced when dependencies are built.
