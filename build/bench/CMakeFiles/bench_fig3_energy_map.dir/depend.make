# Empty dependencies file for bench_fig3_energy_map.
# This may be replaced when dependencies are built.
