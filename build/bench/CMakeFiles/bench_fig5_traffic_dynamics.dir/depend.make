# Empty dependencies file for bench_fig5_traffic_dynamics.
# This may be replaced when dependencies are built.
