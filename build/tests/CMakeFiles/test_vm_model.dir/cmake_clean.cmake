file(REMOVE_RECURSE
  "CMakeFiles/test_vm_model.dir/test_vm_model.cpp.o"
  "CMakeFiles/test_vm_model.dir/test_vm_model.cpp.o.d"
  "test_vm_model"
  "test_vm_model.pdb"
  "test_vm_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
