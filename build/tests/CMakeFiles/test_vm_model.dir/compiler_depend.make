# Empty compiler generated dependencies file for test_vm_model.
# This may be replaced when dependencies are built.
