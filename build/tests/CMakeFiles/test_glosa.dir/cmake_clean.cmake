file(REMOVE_RECURSE
  "CMakeFiles/test_glosa.dir/test_glosa.cpp.o"
  "CMakeFiles/test_glosa.dir/test_glosa.cpp.o.d"
  "test_glosa"
  "test_glosa.pdb"
  "test_glosa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glosa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
