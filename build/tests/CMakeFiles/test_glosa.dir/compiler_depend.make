# Empty compiler generated dependencies file for test_glosa.
# This may be replaced when dependencies are built.
