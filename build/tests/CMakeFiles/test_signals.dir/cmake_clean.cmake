file(REMOVE_RECURSE
  "CMakeFiles/test_signals.dir/test_signals.cpp.o"
  "CMakeFiles/test_signals.dir/test_signals.cpp.o.d"
  "test_signals"
  "test_signals.pdb"
  "test_signals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
