file(REMOVE_RECURSE
  "CMakeFiles/test_microsim.dir/test_microsim.cpp.o"
  "CMakeFiles/test_microsim.dir/test_microsim.cpp.o.d"
  "test_microsim"
  "test_microsim.pdb"
  "test_microsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
