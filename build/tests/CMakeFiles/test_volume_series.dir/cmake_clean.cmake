file(REMOVE_RECURSE
  "CMakeFiles/test_volume_series.dir/test_volume_series.cpp.o"
  "CMakeFiles/test_volume_series.dir/test_volume_series.cpp.o.d"
  "test_volume_series"
  "test_volume_series.pdb"
  "test_volume_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volume_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
