# Empty compiler generated dependencies file for test_volume_series.
# This may be replaced when dependencies are built.
