file(REMOVE_RECURSE
  "CMakeFiles/test_replanning.dir/test_replanning.cpp.o"
  "CMakeFiles/test_replanning.dir/test_replanning.cpp.o.d"
  "test_replanning"
  "test_replanning.pdb"
  "test_replanning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
