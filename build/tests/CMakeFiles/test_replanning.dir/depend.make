# Empty dependencies file for test_replanning.
# This may be replaced when dependencies are built.
