# Empty compiler generated dependencies file for test_queue_predictor.
# This may be replaced when dependencies are built.
