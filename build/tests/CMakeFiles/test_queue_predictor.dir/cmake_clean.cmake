file(REMOVE_RECURSE
  "CMakeFiles/test_queue_predictor.dir/test_queue_predictor.cpp.o"
  "CMakeFiles/test_queue_predictor.dir/test_queue_predictor.cpp.o.d"
  "test_queue_predictor"
  "test_queue_predictor.pdb"
  "test_queue_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
