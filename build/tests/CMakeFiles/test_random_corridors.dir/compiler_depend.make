# Empty compiler generated dependencies file for test_random_corridors.
# This may be replaced when dependencies are built.
