file(REMOVE_RECURSE
  "CMakeFiles/test_random_corridors.dir/test_random_corridors.cpp.o"
  "CMakeFiles/test_random_corridors.dir/test_random_corridors.cpp.o.d"
  "test_random_corridors"
  "test_random_corridors.pdb"
  "test_random_corridors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_corridors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
