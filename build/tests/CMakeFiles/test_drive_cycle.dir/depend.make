# Empty dependencies file for test_drive_cycle.
# This may be replaced when dependencies are built.
