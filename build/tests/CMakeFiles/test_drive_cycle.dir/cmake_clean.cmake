file(REMOVE_RECURSE
  "CMakeFiles/test_drive_cycle.dir/test_drive_cycle.cpp.o"
  "CMakeFiles/test_drive_cycle.dir/test_drive_cycle.cpp.o.d"
  "test_drive_cycle"
  "test_drive_cycle.pdb"
  "test_drive_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drive_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
