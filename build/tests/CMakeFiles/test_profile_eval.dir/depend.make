# Empty dependencies file for test_profile_eval.
# This may be replaced when dependencies are built.
