file(REMOVE_RECURSE
  "CMakeFiles/test_profile_eval.dir/test_profile_eval.cpp.o"
  "CMakeFiles/test_profile_eval.dir/test_profile_eval.cpp.o.d"
  "test_profile_eval"
  "test_profile_eval.pdb"
  "test_profile_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
