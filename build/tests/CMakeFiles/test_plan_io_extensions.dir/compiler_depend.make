# Empty compiler generated dependencies file for test_plan_io_extensions.
# This may be replaced when dependencies are built.
