file(REMOVE_RECURSE
  "CMakeFiles/test_plan_io_extensions.dir/test_plan_io_extensions.cpp.o"
  "CMakeFiles/test_plan_io_extensions.dir/test_plan_io_extensions.cpp.o.d"
  "test_plan_io_extensions"
  "test_plan_io_extensions.pdb"
  "test_plan_io_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_io_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
