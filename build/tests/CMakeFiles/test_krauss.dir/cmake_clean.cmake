file(REMOVE_RECURSE
  "CMakeFiles/test_krauss.dir/test_krauss.cpp.o"
  "CMakeFiles/test_krauss.dir/test_krauss.cpp.o.d"
  "test_krauss"
  "test_krauss.pdb"
  "test_krauss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_krauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
