# Empty compiler generated dependencies file for test_krauss.
# This may be replaced when dependencies are built.
