# Empty dependencies file for test_penalty.
# This may be replaced when dependencies are built.
