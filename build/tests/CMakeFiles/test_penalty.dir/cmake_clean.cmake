file(REMOVE_RECURSE
  "CMakeFiles/test_penalty.dir/test_penalty.cpp.o"
  "CMakeFiles/test_penalty.dir/test_penalty.cpp.o.d"
  "test_penalty"
  "test_penalty.pdb"
  "test_penalty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
