file(REMOVE_RECURSE
  "CMakeFiles/test_planned_profile.dir/test_planned_profile.cpp.o"
  "CMakeFiles/test_planned_profile.dir/test_planned_profile.cpp.o.d"
  "test_planned_profile"
  "test_planned_profile.pdb"
  "test_planned_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planned_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
