# Empty compiler generated dependencies file for test_planned_profile.
# This may be replaced when dependencies are built.
