
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/test_csv_table.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/test_csv_table.dir/test_csv_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/evvo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pilot/CMakeFiles/evvo_pilot.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/evvo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/evvo_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/evvo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/evvo_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/evvo_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/evvo_road.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/evvo_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evvo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
