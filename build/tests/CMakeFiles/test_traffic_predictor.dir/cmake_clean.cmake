file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_predictor.dir/test_traffic_predictor.cpp.o"
  "CMakeFiles/test_traffic_predictor.dir/test_traffic_predictor.cpp.o.d"
  "test_traffic_predictor"
  "test_traffic_predictor.pdb"
  "test_traffic_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
