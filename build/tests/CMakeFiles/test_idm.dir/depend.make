# Empty dependencies file for test_idm.
# This may be replaced when dependencies are built.
