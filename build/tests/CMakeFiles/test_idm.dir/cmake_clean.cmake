file(REMOVE_RECURSE
  "CMakeFiles/test_idm.dir/test_idm.cpp.o"
  "CMakeFiles/test_idm.dir/test_idm.cpp.o.d"
  "test_idm"
  "test_idm.pdb"
  "test_idm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
