# Empty compiler generated dependencies file for test_soc_cycle_io.
# This may be replaced when dependencies are built.
