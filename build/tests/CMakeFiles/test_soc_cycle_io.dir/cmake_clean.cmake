file(REMOVE_RECURSE
  "CMakeFiles/test_soc_cycle_io.dir/test_soc_cycle_io.cpp.o"
  "CMakeFiles/test_soc_cycle_io.dir/test_soc_cycle_io.cpp.o.d"
  "test_soc_cycle_io"
  "test_soc_cycle_io.pdb"
  "test_soc_cycle_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc_cycle_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
