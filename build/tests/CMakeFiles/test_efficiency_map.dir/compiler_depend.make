# Empty compiler generated dependencies file for test_efficiency_map.
# This may be replaced when dependencies are built.
