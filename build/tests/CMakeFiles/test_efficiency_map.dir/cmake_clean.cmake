file(REMOVE_RECURSE
  "CMakeFiles/test_efficiency_map.dir/test_efficiency_map.cpp.o"
  "CMakeFiles/test_efficiency_map.dir/test_efficiency_map.cpp.o.d"
  "test_efficiency_map"
  "test_efficiency_map.pdb"
  "test_efficiency_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efficiency_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
