file(REMOVE_RECURSE
  "CMakeFiles/test_traci_traces.dir/test_traci_traces.cpp.o"
  "CMakeFiles/test_traci_traces.dir/test_traci_traces.cpp.o.d"
  "test_traci_traces"
  "test_traci_traces.pdb"
  "test_traci_traces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traci_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
