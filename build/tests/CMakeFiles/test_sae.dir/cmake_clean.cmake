file(REMOVE_RECURSE
  "CMakeFiles/test_sae.dir/test_sae.cpp.o"
  "CMakeFiles/test_sae.dir/test_sae.cpp.o.d"
  "test_sae"
  "test_sae.pdb"
  "test_sae[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
