# Empty compiler generated dependencies file for test_sae.
# This may be replaced when dependencies are built.
