file(REMOVE_RECURSE
  "CMakeFiles/test_data_loop.dir/test_data_loop.cpp.o"
  "CMakeFiles/test_data_loop.dir/test_data_loop.cpp.o.d"
  "test_data_loop"
  "test_data_loop.pdb"
  "test_data_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
