# Empty dependencies file for test_data_loop.
# This may be replaced when dependencies are built.
