file(REMOVE_RECURSE
  "CMakeFiles/test_coordination.dir/test_coordination.cpp.o"
  "CMakeFiles/test_coordination.dir/test_coordination.cpp.o.d"
  "test_coordination"
  "test_coordination.pdb"
  "test_coordination[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
