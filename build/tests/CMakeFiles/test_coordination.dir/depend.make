# Empty dependencies file for test_coordination.
# This may be replaced when dependencies are built.
