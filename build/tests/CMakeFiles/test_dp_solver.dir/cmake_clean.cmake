file(REMOVE_RECURSE
  "CMakeFiles/test_dp_solver.dir/test_dp_solver.cpp.o"
  "CMakeFiles/test_dp_solver.dir/test_dp_solver.cpp.o.d"
  "test_dp_solver"
  "test_dp_solver.pdb"
  "test_dp_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
