# Empty dependencies file for test_dp_solver.
# This may be replaced when dependencies are built.
