file(REMOVE_RECURSE
  "CMakeFiles/test_dense_layer.dir/test_dense_layer.cpp.o"
  "CMakeFiles/test_dense_layer.dir/test_dense_layer.cpp.o.d"
  "test_dense_layer"
  "test_dense_layer.pdb"
  "test_dense_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
