# Empty compiler generated dependencies file for test_dense_layer.
# This may be replaced when dependencies are built.
