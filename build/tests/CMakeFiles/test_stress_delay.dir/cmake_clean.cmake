file(REMOVE_RECURSE
  "CMakeFiles/test_stress_delay.dir/test_stress_delay.cpp.o"
  "CMakeFiles/test_stress_delay.dir/test_stress_delay.cpp.o.d"
  "test_stress_delay"
  "test_stress_delay.pdb"
  "test_stress_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
