# Empty dependencies file for test_stress_delay.
# This may be replaced when dependencies are built.
