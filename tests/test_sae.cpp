// Stacked-autoencoder training behaviour: reconstruction during pretraining,
// regression accuracy after fine-tuning, config validation, and the scaler.
#include "learn/sae.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "learn/scaler.hpp"

namespace evvo::learn {
namespace {

/// Toy dataset: y = smooth function of a 4-dim input in [0, 1].
void make_toy(Matrix& x, Matrix& y, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(n, 4);
  y = Matrix(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = x.row(i);
    for (auto& v : row) v = rng.uniform();
    y(i, 0) = 0.5 * std::sin(2.0 * std::numbers::pi * row[0]) * 0.5 + 0.3 * row[1] + 0.2 * row[2] * row[3];
  }
}

SaeConfig small_config() {
  SaeConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden_dims = {16, 8};
  cfg.pretrain_epochs = 15;
  cfg.finetune_epochs = 80;
  cfg.batch_size = 16;
  cfg.adam.learning_rate = 3e-3;
  cfg.seed = 3;
  return cfg;
}

TEST(SaeConfig, Validation) {
  SaeConfig cfg = small_config();
  cfg.input_dim = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.hidden_dims = {};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.hidden_dims = {8, 0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.batch_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.denoise_probability = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Sae, DepthMatchesHiddenDims) {
  const StackedAutoencoder sae(small_config());
  EXPECT_EQ(sae.depth(), 2u);
  EXPECT_FALSE(sae.pretrained());
  EXPECT_FALSE(sae.trained());
}

TEST(Sae, PretrainingReducesReconstructionLoss) {
  Matrix x, y;
  make_toy(x, y, 256, 11);
  StackedAutoencoder sae(small_config());
  const auto histories = sae.pretrain(x);
  ASSERT_EQ(histories.size(), 2u);
  for (const auto& h : histories) {
    ASSERT_GE(h.epoch_loss.size(), 2u);
    EXPECT_LT(h.final_loss(), h.epoch_loss.front());
  }
  EXPECT_TRUE(sae.pretrained());
}

TEST(Sae, EncodeProducesTopLayerWidth) {
  Matrix x, y;
  make_toy(x, y, 32, 1);
  StackedAutoencoder sae(small_config());
  const Matrix code = sae.encode(x);
  EXPECT_EQ(code.rows(), 32u);
  EXPECT_EQ(code.cols(), 8u);
  for (const double v : code.flat()) {
    EXPECT_GE(v, 0.0);  // sigmoid codes
    EXPECT_LE(v, 1.0);
  }
}

TEST(Sae, PredictBeforeFinetuneThrows) {
  Matrix x, y;
  make_toy(x, y, 8, 2);
  const StackedAutoencoder sae(small_config());
  EXPECT_THROW(sae.predict(x), std::logic_error);
}

TEST(Sae, FinetuneFitsToyFunction) {
  Matrix x, y;
  make_toy(x, y, 512, 21);
  StackedAutoencoder sae(small_config());
  sae.pretrain(x);
  const TrainHistory h = sae.finetune(x, y, 200);
  EXPECT_TRUE(sae.trained());
  EXPECT_LT(h.final_loss(), 0.01);

  // Generalization on fresh samples from the same process.
  Matrix xt, yt;
  make_toy(xt, yt, 128, 77);
  const Matrix pred = sae.predict(xt);
  EXPECT_LT(mse(pred, yt), 0.02);
}

TEST(Sae, FinetuneWithoutPretrainStillLearns) {
  Matrix x, y;
  make_toy(x, y, 512, 21);
  StackedAutoencoder sae(small_config());
  const TrainHistory h = sae.finetune(x, y);
  EXPECT_LT(h.final_loss(), 0.05);
}

TEST(Sae, DeterministicForSameSeed) {
  Matrix x, y;
  make_toy(x, y, 128, 5);
  StackedAutoencoder a(small_config());
  StackedAutoencoder b(small_config());
  a.pretrain(x);
  b.pretrain(x);
  a.finetune(x, y, 10);
  b.finetune(x, y, 10);
  const Matrix pa = a.predict(x);
  const Matrix pb = b.predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.flat()[i], pb.flat()[i]);
  }
}

TEST(Sae, InputWidthMismatchThrows) {
  StackedAutoencoder sae(small_config());
  EXPECT_THROW(sae.pretrain(Matrix(4, 7)), std::invalid_argument);
  EXPECT_THROW(sae.encode(Matrix(4, 7)), std::invalid_argument);
  EXPECT_THROW(sae.finetune(Matrix(4, 7), Matrix(4, 1)), std::invalid_argument);
  EXPECT_THROW(sae.finetune(Matrix(4, 4), Matrix(3, 1)), std::invalid_argument);
}

TEST(Sae, TargetWidthChangeBetweenFinetunesThrows) {
  Matrix x, y;
  make_toy(x, y, 64, 9);
  StackedAutoencoder sae(small_config());
  sae.finetune(x, y, 2);
  EXPECT_THROW(sae.finetune(x, Matrix(64, 2), 2), std::invalid_argument);
}

TEST(MinMaxScaler, RoundTrip) {
  Matrix x(3, 2, std::vector<double>{0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  MinMaxScaler scaler;
  scaler.fit(x);
  const Matrix t = scaler.transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 0.5);
  const Matrix back = scaler.inverse_transform(t);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back.flat()[i], x.flat()[i], 1e-12);
}

TEST(MinMaxScaler, ConstantColumnSafe) {
  Matrix x(2, 1, std::vector<double>{5.0, 5.0});
  MinMaxScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.transform(x)(0, 0), 0.0);
}

TEST(MinMaxScaler, UnfittedThrows) {
  const MinMaxScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(1, 1)), std::logic_error);
}

TEST(MinMaxScaler, WidthMismatchThrows) {
  Matrix x(2, 2);
  MinMaxScaler scaler;
  scaler.fit(x);
  EXPECT_THROW(scaler.transform(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace evvo::learn
