// Telemetry layer: counter sharding, log-linear histogram bucket math, the
// percentile-vs-sorted-vector error bound, fake-clock trace spans, the trace
// ring, the registry, and both exporters. The span tests drive time through
// ScopedFakeClock so recorded durations are exact, not sleep-and-hope.
#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "log_capture.hpp"

namespace evvo {
namespace {

using telemetry::Histogram;
using telemetry::Unit;

TEST(TelemetryCounter, SumsExactlyAcrossRacingThreads) {
  telemetry::Counter ctr;
  constexpr int kThreads = 8;
  constexpr long kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctr] {
      for (long i = 0; i < kPerThread; ++i) ctr.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ctr.value(), kThreads * kPerThread);
  ctr.reset();
  EXPECT_EQ(ctr.value(), 0);
  ctr.add(-3);
  ctr.add(5);
  EXPECT_EQ(ctr.value(), 2);
}

TEST(TelemetryGauge, SetAddSub) {
  telemetry::Gauge g;
  g.set(10);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 13);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(TelemetryHistogram, BucketMathRoundTrips) {
  // Unit buckets are exact below 16.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::bucket_width(static_cast<int>(v)), 1u);
  }
  // Every bucket's lower bound maps back to that bucket, and lower bounds
  // are strictly increasing — the layout is a partition.
  for (int idx = 0; idx < Histogram::kBucketCount; ++idx) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(idx)), idx);
    if (idx > 0) {
      EXPECT_EQ(Histogram::bucket_lower(idx),
                Histogram::bucket_lower(idx - 1) + Histogram::bucket_width(idx - 1));
    }
  }
  // Arbitrary values land inside [lower, lower + width).
  for (std::uint64_t v : {17ull, 100ull, 1023ull, 1024ull, 1025ull, 999999ull,
                          123456789ull, 98765432101ull}) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kBucketCount);
    EXPECT_LE(Histogram::bucket_lower(idx), v);
    EXPECT_LT(v, Histogram::bucket_lower(idx) + Histogram::bucket_width(idx));
    // Relative bucket width is 1/16 above the unit range.
    EXPECT_LE(static_cast<double>(Histogram::bucket_width(idx)),
              static_cast<double>(Histogram::bucket_lower(idx)) / 16.0 + 1.0);
  }
  // Values beyond the tracked range clamp into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBucketCount - 1);
}

TEST(TelemetryHistogram, CountSumMaxAndReset) {
  Histogram h(Unit::kCount);
  EXPECT_EQ(h.unit(), Unit::kCount);
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty -> 0
  h.record(3);
  h.record(40);
  h.record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 50u);
  EXPECT_EQ(h.max(), 40u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(TelemetryHistogram, PercentileMatchesSortedVectorWithinOneBucket) {
  // Property: for any recorded multiset and any p, percentile(p) is the
  // lower bound of the bucket holding the sample a sorted vector would
  // return at idx = round(p * (n - 1)) — the identical rank convention
  // evvo_load migrated from. The true sample therefore lies within one
  // bucket width (<= 6.25% relative) above the histogram's answer.
  Histogram h;
  std::vector<std::uint64_t> sorted;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;  // deterministic; no global PRNG
  for (int i = 0; i < 5000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Spread samples over ~6 decades the way latencies spread.
    const std::uint64_t v = (lcg >> 33) % (std::uint64_t{1} << (10 + i % 21));
    h.record(v);
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        std::llround(p * static_cast<double>(sorted.size() - 1)));
    const std::uint64_t exact = sorted[idx];
    const std::uint64_t est = h.percentile(p);
    EXPECT_EQ(est, Histogram::bucket_lower(Histogram::bucket_index(exact)))
        << "p=" << p << " exact=" << exact;
    EXPECT_LE(est, exact);
    EXPECT_LT(exact - est, Histogram::bucket_width(Histogram::bucket_index(est)))
        << "p=" << p;
  }
}

TEST(TelemetryRegistry, SameNameSameMetricAndUnitSticks) {
  EXPECT_EQ(&telemetry::counter("tst.reg.ctr"), &telemetry::counter("tst.reg.ctr"));
  EXPECT_EQ(&telemetry::gauge("tst.reg.g"), &telemetry::gauge("tst.reg.g"));
  Histogram& h = telemetry::histogram("tst.reg.h", Unit::kCount);
  // Re-lookup with a different (default) unit returns the original metric.
  EXPECT_EQ(&telemetry::histogram("tst.reg.h"), &h);
  EXPECT_EQ(h.unit(), Unit::kCount);
}

TEST(TelemetryRegistry, ResetAllZeroesButKeepsNames) {
  telemetry::counter("tst.reset.ctr").add(7);
  telemetry::histogram("tst.reset.h").record(42);
  telemetry::reset_all();
  EXPECT_EQ(telemetry::counter("tst.reset.ctr").value(), 0);
  EXPECT_EQ(telemetry::histogram("tst.reset.h").count(), 0u);
  const telemetry::Snapshot snap = telemetry::snapshot();
  const bool ctr_present =
      std::any_of(snap.counters.begin(), snap.counters.end(),
                  [](const auto& c) { return c.name == "tst.reset.ctr"; });
  EXPECT_TRUE(ctr_present);
}

TEST(TelemetryRegistry, ConcurrentRegistrationIsSafe) {
  std::vector<std::thread> threads;
  std::array<telemetry::Counter*, 8> seen{};
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&seen, t] {
      telemetry::Counter& c = telemetry::counter("tst.race.ctr");
      c.add();
      seen[t] = &c;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const telemetry::Counter* p : seen) EXPECT_EQ(p, seen[0]);
  EXPECT_EQ(seen[0]->value(), 8);
}

TEST(TelemetrySpan, FakeClockMakesDurationsExact) {
  Histogram& h = telemetry::histogram("tst.span.exact_ns");
  h.reset();
  common::ScopedFakeClock clock(1000);
  {
    const telemetry::TraceSpan span(h, "tst.exact");
    clock.advance_ns(12345);
  }
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 12345u);
    EXPECT_EQ(h.bucket_count(Histogram::bucket_index(12345)), 1u);
    EXPECT_EQ(h.percentile(1.0),
              Histogram::bucket_lower(Histogram::bucket_index(12345)));
  } else {
    EXPECT_EQ(h.count(), 0u);  // OFF builds: spans are no-ops
  }
}

TEST(TelemetrySpan, TraceRingRecordsDepthAndWraps) {
  if constexpr (!telemetry::kEnabled) GTEST_SKIP() << "telemetry OFF build";
  Histogram& h = telemetry::histogram("tst.span.ring_ns");
  common::ScopedFakeClock clock(0);
  telemetry::set_trace_capacity(4);

  {
    const telemetry::TraceSpan outer(h, "tst.outer");
    clock.advance_ns(10);
    {
      const telemetry::TraceSpan inner(h, "tst.inner");
      clock.advance_ns(5);
    }
    clock.advance_ns(10);
  }
  std::vector<telemetry::TraceEvent> events = telemetry::trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes (and lands in the ring) first; depth counts nesting.
  EXPECT_STREQ(events[0].name, "tst.inner");
  EXPECT_EQ(events[0].duration_ns, 5u);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "tst.outer");
  EXPECT_EQ(events[1].duration_ns, 25u);
  EXPECT_EQ(events[1].depth, 0);

  // Six more spans through a capacity-4 ring keep only the latest four.
  for (int i = 0; i < 6; ++i) {
    const telemetry::TraceSpan span(h, "tst.wrap");
    clock.advance_ns(static_cast<std::uint64_t>(i) + 1);
  }
  events = telemetry::trace_events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_STREQ(events[i].name, "tst.wrap");
    EXPECT_EQ(events[i].duration_ns, i + 3);  // oldest first: durations 3..6
  }

  telemetry::set_trace_capacity(0);
  EXPECT_TRUE(telemetry::trace_events().empty());
}

TEST(TelemetryExport, JsonShape) {
  telemetry::Counter& c = telemetry::counter("tst.json.ctr");
  c.reset();
  c.add(42);
  telemetry::gauge("tst.json.g").set(-7);
  Histogram& h = telemetry::histogram("tst.json.h", Unit::kCount);
  h.reset();
  h.record(3);
  h.record(300);
  const std::string json = telemetry::to_json(telemetry::snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"tst.json.ctr\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"tst.json.g\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"tst.json.h\": {\"unit\": \"count\", \"count\": 2, \"sum\": 303"),
            std::string::npos);
  // Sparse buckets carry the full distribution: [idx, n] pairs.
  const std::string b3 = "[3, 1]";
  std::string b300 = "[";
  b300 += std::to_string(Histogram::bucket_index(300));
  b300 += ", 1]";
  EXPECT_NE(json.find(b3), std::string::npos);
  EXPECT_NE(json.find(b300), std::string::npos);
}

TEST(TelemetryExport, PrometheusShape) {
  telemetry::Counter& c = telemetry::counter("tst.prom.ctr");
  c.reset();
  c.add(5);
  Histogram& h = telemetry::histogram("tst.prom.h");
  h.reset();
  h.record(10);
  h.record(10);
  h.record(200);
  const std::string prom = telemetry::to_prometheus(telemetry::snapshot());
  EXPECT_NE(prom.find("# TYPE evvo_tst_prom_ctr counter\nevvo_tst_prom_ctr 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE evvo_tst_prom_h histogram\n"), std::string::npos);
  // Cumulative buckets: the unit bucket at 10 has both samples, le bounds
  // are the next bucket's lower edge, and +Inf carries the total.
  EXPECT_NE(prom.find("evvo_tst_prom_h_bucket{le=\"11\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("evvo_tst_prom_h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("evvo_tst_prom_h_sum 220\n"), std::string::npos);
  EXPECT_NE(prom.find("evvo_tst_prom_h_count 3\n"), std::string::npos);
}

using TelemetryWithLogsTest = evvo::testing::LogCaptureTest;

TEST_F(TelemetryWithLogsTest, LoggingInsideSpansComposes) {
  // Logging is the highest lock rank, telemetry registration sits below it,
  // so emitting a log inside a span (the common "slow request" pattern) is
  // rank-legal and both subsystems observe the event.
  Histogram& h = telemetry::histogram("tst.log.span_ns");
  h.reset();
  common::ScopedFakeClock clock(0);
  {
    const telemetry::TraceSpan span(h, "tst.log");
    clock.advance_ns(99);
    EVVO_LOG(kWarn, "telemetry") << "slow request, " << 99 << " ns";
  }
  EXPECT_EQ(count_containing("slow request, 99 ns"), 1u);
  if constexpr (telemetry::kEnabled) {
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 99u);
  }
}

}  // namespace
}  // namespace evvo
