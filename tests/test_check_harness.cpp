// End-to-end tests of the correctness harness itself: the scenario generator
// is deterministic and bounded, spec text round-trips losslessly, clean seeds
// produce clean reports, every injectable fault is actually detected (a
// harness that cannot catch a planted bug is worthless), and the shrinker
// minimizes a failing scenario while preserving the violated invariant.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/scenario.hpp"
#include "check/shrink.hpp"

namespace evvo::check {
namespace {

bool has_violation(const CheckReport& report, const std::string& invariant) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

/// Replay/reference toggles for cheap targeted checks (the fault-injection
/// paths under test do not involve the microsim).
CheckOptions fast_options() {
  CheckOptions options;
  options.run_replay = false;
  return options;
}

TEST(ScenarioGenerator, DeterministicPerSeed) {
  EXPECT_EQ(spec_to_text(generate_scenario(7)), spec_to_text(generate_scenario(7)));
  EXPECT_NE(spec_to_text(generate_scenario(7)), spec_to_text(generate_scenario(8)));
}

TEST(ScenarioGenerator, StaysWithinPhysicalBounds) {
  const ScenarioBounds bounds;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const double length = spec.corridor_length_m();
    EXPECT_GE(length, bounds.min_length_m) << "seed " << seed;
    EXPECT_LE(length, bounds.max_length_m) << "seed " << seed;
    EXPECT_LE(spec.lights.size(), static_cast<std::size_t>(bounds.max_lights)) << "seed " << seed;
    EXPECT_LE(spec.stop_signs.size(), static_cast<std::size_t>(bounds.max_stop_signs))
        << "seed " << seed;
    EXPECT_NO_THROW(spec.vehicle.validate()) << "seed " << seed;
    for (const auto& seg : spec.segments) {
      EXPECT_GE(seg.speed_limit_ms, bounds.min_speed_limit_ms) << "seed " << seed;
      EXPECT_LE(seg.speed_limit_ms, bounds.max_speed_limit_ms) << "seed " << seed;
    }
    // Every element must sit strictly inside the corridor.
    for (const auto& light : spec.lights) {
      EXPECT_GT(light.position_m, 0.0) << "seed " << seed;
      EXPECT_LT(light.position_m, length) << "seed " << seed;
    }
  }
}

TEST(ScenarioGenerator, SpecTextRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    const std::string text = spec_to_text(spec);
    EXPECT_EQ(spec_to_text(spec_from_text(text)), text) << "seed " << seed;
  }
}

TEST(ScenarioGenerator, RejectsMalformedText) {
  EXPECT_THROW(spec_from_text("not-a-scenario\n"), std::runtime_error);
  EXPECT_THROW(spec_from_text("evvo-scenario v1\nsegment 0 100\n"), std::runtime_error);
  EXPECT_THROW(spec_from_text("evvo-scenario v1\nunknown-key 1 2 3\n"), std::runtime_error);
}

TEST(CheckHarness, CleanSeedsProduceCleanReports) {
  for (const std::uint64_t seed : {11ull, 12ull}) {
    const CheckReport report = check_scenario(generate_scenario(seed));
    EXPECT_TRUE(report.ok()) << report_to_string(report);
    EXPECT_TRUE(report.feasible) << "seed " << seed;
  }
}

// Fault injection: each planted bug must be caught by the invariant designed
// for it. Seeds are pinned to scenarios where the fault is observable (e.g.
// window-shift needs enforced signal windows on the optimal path).

TEST(FaultInjection, CostTamperCaughtByDifferentialOracle) {
  CheckOptions options = fast_options();
  options.inject = Fault::kCostTamper;
  const CheckReport report = check_scenario(generate_scenario(1), options);
  EXPECT_TRUE(has_violation(report, "differential.checksum")) << report_to_string(report);
  EXPECT_TRUE(has_violation(report, "differential.cost")) << report_to_string(report);
}

TEST(FaultInjection, AccelTamperCaughtByFeasibilityChecks) {
  CheckOptions options = fast_options();
  options.inject = Fault::kAccelTamper;
  const CheckReport report = check_scenario(generate_scenario(4), options);
  EXPECT_TRUE(has_violation(report, "plan.accel")) << report_to_string(report);
}

TEST(FaultInjection, EnergyTamperCaughtByIntegration) {
  CheckOptions options = fast_options();
  options.inject = Fault::kEnergyTamper;
  const CheckReport report = check_scenario(generate_scenario(1), options);
  EXPECT_TRUE(has_violation(report, "energy.integration")) << report_to_string(report);
}

TEST(FaultInjection, StaleWindowsCaughtByObjectiveRecost) {
  CheckOptions options = fast_options();
  options.inject = Fault::kWindowShift;
  const CheckReport report = check_scenario(generate_scenario(2), options);
  EXPECT_TRUE(has_violation(report, "objective.recost")) << report_to_string(report);
}

TEST(Shrinker, MinimizesWhilePreservingTheInvariant) {
  CheckOptions options = fast_options();
  options.inject = Fault::kWindowShift;
  options.run_reference = false;  // the violation under shrink is recost-only
  const ScenarioSpec failing = generate_scenario(2);
  const ShrinkResult result = shrink_failure(failing, options, /*max_checks=*/30);

  EXPECT_EQ(result.invariant, "objective.recost");
  EXPECT_GT(result.checks_run, 0u);
  // Whatever the shrinker produced must still fail the same way...
  const CheckReport replay = check_scenario(result.spec, options);
  EXPECT_TRUE(has_violation(replay, result.invariant)) << report_to_string(replay);
  // ...and must still serialize/parse (that text is what gets handed to a
  // human along with the replay command).
  EXPECT_EQ(spec_to_text(spec_from_text(spec_to_text(result.spec))), spec_to_text(result.spec));
}

TEST(Shrinker, LeavesPassingSpecsAlone) {
  const ScenarioSpec passing = generate_scenario(11);
  CheckOptions options = fast_options();
  const ShrinkResult result = shrink_failure(passing, options, /*max_checks=*/5);
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(spec_to_text(result.spec), spec_to_text(passing));
}

}  // namespace
}  // namespace evvo::check
