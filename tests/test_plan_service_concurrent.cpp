// Single-flight PlanService under contention: same-key misses coalesce onto
// one solver run, distinct-key misses proceed in parallel, profiles are
// never torn, and the stats identity requests == cache_hits + solver_runs +
// rejections holds exactly on every read, including reads that race the
// serving threads (requests is derived per snapshot). Run under TSan in CI.
#include "cloud/plan_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "ev/energy_model.hpp"
#include "road/corridor.hpp"

namespace evvo::cloud {
namespace {

std::shared_ptr<traffic::ConstantArrivalRate> demand(double veh_h) {
  return std::make_shared<traffic::ConstantArrivalRate>(flow_from_veh_h(veh_h));
}

/// A small corridor so each solve is fast enough to hammer from many
/// threads; one light gives a 60 s hyperperiod, so distinct phase bins are
/// easy to construct.
core::VelocityPlanner make_planner() {
  road::Corridor corridor{road::Route({{0.0, 350.0, 14.0, 0.0, 0.0},
                                       {350.0, 600.0, 12.0, 0.0, 0.01}}),
                          {road::TrafficLight(300.0, 27.0, 33.0)},
                          {}};
  core::PlannerConfig cfg;
  cfg.policy = core::SignalPolicy::kGreenWindow;
  cfg.resolution.horizon_s = 200.0;
  return core::VelocityPlanner(std::move(corridor), ev::EnergyModel{}, cfg);
}

/// A profile must be internally consistent (monotone time, contiguous
/// positions, final node at the destination) - a torn read would violate it.
void expect_well_formed(const core::PlannedProfile& profile, double expected_depart) {
  const auto& nodes = profile.nodes();
  ASSERT_FALSE(nodes.empty());
  EXPECT_DOUBLE_EQ(nodes.front().time_s, expected_depart);
  EXPECT_DOUBLE_EQ(nodes.front().position_m, 0.0);
  EXPECT_NEAR(nodes.back().position_m, 600.0, 1e-6);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(nodes[i].time_s, nodes[i - 1].time_s);
    EXPECT_GE(nodes[i].position_m, nodes[i - 1].position_m);
  }
}

TEST(PlanServiceConcurrent, SameKeyMissesCoalesceOntoOneSolve) {
  PlanService service(make_planner(), demand(500.0));
  constexpr int kThreads = 8;
  // All congruent mod the 60 s hyperperiod: one cache key.
  std::vector<std::thread> threads;
  std::vector<std::optional<PlanResponse>> responses(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { responses[t] = service.request_plan({t, 30.0 + 60.0 * t}); });
  }
  for (auto& thread : threads) thread.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_EQ(stats.solver_runs, 1);  // single-flight: exactly one leader
  EXPECT_EQ(stats.cache_hits, kThreads - 1);
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(responses[t].has_value());
    expect_well_formed(responses[t]->profile, 30.0 + 60.0 * t);
  }
}

TEST(PlanServiceConcurrent, StatsIdentityUnderMixedContention) {
  PlanService service(make_planner(), demand(500.0));
  constexpr int kThreads = 6;
  constexpr int kRequestsPerThread = 8;
  constexpr int kDistinctKeys = 4;  // phases 5, 15, 25, 35 within one cycle

  std::atomic<int> next_id{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const int id = next_id.fetch_add(1);
        const double phase = 5.0 + 10.0 * (id % kDistinctKeys);
        const PlanResponse response =
            service.request_plan({id, phase + 60.0 * (id / kDistinctKeys)});
        expect_well_formed(response.profile, phase + 60.0 * (id / kDistinctKeys));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs);
  // Single-flight bounds the solves by the number of distinct keys.
  EXPECT_EQ(stats.solver_runs, kDistinctKeys);
  EXPECT_GE(stats.cache_hits, stats.coalesced_hits);
}

TEST(PlanServiceConcurrent, BatchApiCoalescesAndPreservesOrder) {
  CacheConfig cache;
  cache.batch_threads = 4;
  PlanService service(make_planner(), demand(500.0), cache);

  std::vector<PlanRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back({100 + i, 5.0 + 10.0 * (i % 3) + 60.0 * (i / 3)});
  }
  const std::vector<PlanResponse> responses = service.request_plans(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].vehicle_id, requests[i].vehicle_id);
    expect_well_formed(responses[i].profile, requests[i].depart_time_s);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<long>(requests.size()));
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs);
  EXPECT_EQ(stats.solver_runs, 3);  // three distinct phase bins in the batch

  // A second identical batch is pure cache hits.
  const auto again = service.request_plans(requests);
  ASSERT_EQ(again.size(), requests.size());
  const ServiceStats stats2 = service.stats();
  EXPECT_EQ(stats2.solver_runs, 3);
  EXPECT_EQ(stats2.requests, stats2.cache_hits + stats2.solver_runs);
}

TEST(PlanServiceConcurrent, HitsServeWhileSolveInFlight) {
  // Prime one key, then hammer it while a different key's solve is running;
  // hits must complete without waiting for the in-flight solve.
  PlanService service(make_planner(), demand(500.0));
  (void)service.request_plan({0, 5.0});  // prime key A

  std::thread slow([&] { (void)service.request_plan({1, 40.0}); });  // key B (miss)
  for (int i = 0; i < 16; ++i) {
    const PlanResponse hit = service.request_plan({2 + i, 5.0 + 60.0 * (i + 1)});
    EXPECT_TRUE(hit.cache_hit);
  }
  slow.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 18);
  EXPECT_EQ(stats.solver_runs, 2);
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs);
}

TEST(PlanServiceConcurrent, MixedStormAcrossShardsNoDuplicateSolvesPerKey) {
  // A hot-key-skewed storm of plans and replans over 8 shards, with a
  // concurrent stats() reader (the per-shard counters are relaxed atomics -
  // TSan must see no race between serving threads and the reader). With no
  // eviction or TTL, global single-flight means every distinct key solves
  // exactly once no matter how many threads race it across shards.
  CacheConfig cache;
  cache.shards = 8;
  PlanService service(make_planner(), demand(500.0), cache);

  // The key universe: 3 plan phase bins and 4 quantized replan states. The
  // modulus skews ~2/3 of all traffic onto the first plan key (hot key).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const ServiceStats snapshot = service.stats();
      // `requests` is derived from the outcome counters inside each shard
      // snapshot, so the accounting identity is exact on every concurrent
      // read — not just at quiescence. A separately-incremented requests
      // counter would race ahead of the outcome counters and fail here.
      EXPECT_EQ(snapshot.requests,
                snapshot.cache_hits + snapshot.solver_runs + snapshot.rejections);
      for (const ServiceStats& shard : service.shard_stats()) {
        EXPECT_EQ(shard.requests,
                  shard.cache_hits + shard.solver_runs + shard.rejections);
      }
    }
  });
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int pick = (t * 7 + i) % 12;
        const double cycle = 60.0 * (t * kPerThread + i);
        try {
          if (pick < 8) {  // hot plan key
            (void)service.request_plan({t, 5.0 + cycle});
          } else if (pick < 10) {
            (void)service.request_plan({t, 5.0 + 10.0 * (pick - 7) + cycle});
          } else {
            (void)service.request_replan(
                {t, 200.0 * (pick - 9), 10.0 + 2.0 * (pick - 10), 30.0 + cycle});
          }
        } catch (...) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.solver_runs, 5);  // 3 plan bins + 2 replan states, once each
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs + stats.rejections);
  EXPECT_EQ(stats.rejections, 0);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GE(stats.cache_hits, stats.coalesced_hits);

  // Per-shard identity holds too, and the storm exercised several shards.
  int populated = 0;
  for (const ServiceStats& s : service.shard_stats()) {
    EXPECT_EQ(s.requests, s.cache_hits + s.solver_runs + s.rejections);
    if (s.requests > 0) ++populated;
  }
  EXPECT_GE(populated, 2);
}

TEST(PlanServiceConcurrent, TicketBatchMissStormSolvesBatchedPerCaller) {
  // Four threads fire one ticket-batch each into a cold 8-shard service:
  // three plan batches (six distinct phase bins apiece, one in-batch repeat)
  // and one replan batch (six distinct quantized states). Every batch is all
  // misses, so each caller drives serve_batch's grouped admission and the
  // batched SoA solver run concurrently with the others - the pooled
  // workspaces, batch telemetry histograms, and shard counters all see
  // cross-thread traffic under TSan. Single-flight still bounds the solves
  // to one per distinct key, and the in-batch repeat must coalesce onto its
  // group leader, never a second solve.
  CacheConfig cache;
  cache.shards = 8;
  cache.batch_threads = 1;
  PlanService service(make_planner(), demand(500.0), cache);

  constexpr int kPlanThreads = 3;
  constexpr int kPhasesPerThread = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kPlanThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<PlanRequest> batch;
      for (int j = 0; j < kPhasesPerThread; ++j) {
        batch.push_back({t * 100 + j, 0.5 + 2.0 * (t * kPhasesPerThread + j)});
      }
      // Same phase bin as the batch's first entry, one hyperperiod later:
      // a same-key group of two inside one tick.
      batch.push_back({t * 100 + 99, batch.front().depart_time_s + 60.0});
      const std::vector<PlanTicket> tickets = service.request_plan_tickets(batch);
      if (tickets.size() != batch.size()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (tickets[i].vehicle_id != batch[i].vehicle_id || !tickets[i].reference) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const core::PlannedProfile profile = tickets[i].materialize();
        if (profile.nodes().empty() ||
            profile.nodes().front().time_s != batch[i].depart_time_s) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    std::vector<ReplanRequest> batch;
    for (int j = 0; j < kPhasesPerThread; ++j) {
      batch.push_back({400 + j, 100.0 + 50.0 * j, 8.0, 30.0 + 1.0 * j});
    }
    const std::vector<PlanTicket> tickets = service.request_replan_tickets(batch);
    if (tickets.size() != batch.size()) {
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (const PlanTicket& ticket : tickets) {
      if (!ticket.reference) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const core::PlannedProfile profile = ticket.materialize();
      const auto& nodes = profile.nodes();
      if (nodes.empty() || std::abs(nodes.back().position_m - 600.0) > 1e-6) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.stats();
  constexpr long kDistinctKeys = (kPlanThreads + 1) * kPhasesPerThread;
  EXPECT_EQ(stats.requests, kPlanThreads * (kPhasesPerThread + 1) + kPhasesPerThread);
  EXPECT_EQ(stats.solver_runs, kDistinctKeys);
  EXPECT_EQ(stats.cache_hits, kPlanThreads);  // the in-batch repeats, coalesced
  EXPECT_EQ(stats.requests, stats.cache_hits + stats.solver_runs + stats.rejections);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GE(service.batch_group_sizes().count(), static_cast<std::uint64_t>(kDistinctKeys));
}

TEST(PlanServiceConcurrent, OneVsEightShardsAreByteIdentical) {
  // Sharding is a pure partitioning of the cache: replaying one schedule on
  // a single-mutex service and an 8-shard service must produce bit-equal
  // profiles and identical aggregate statistics.
  CacheConfig one;
  one.shards = 1;
  CacheConfig eight;
  eight.shards = 8;
  PlanService service1(make_planner(), demand(500.0), one);
  PlanService service8(make_planner(), demand(500.0), eight);

  for (int i = 0; i < 30; ++i) {
    const double cycle = 60.0 * (i / 5);
    if (i % 3 == 0) {
      const ReplanRequest request{i, 150.0 + 50.0 * (i % 5), 8.0 + (i % 4), 30.0 + cycle};
      const PlanResponse a = service1.request_replan(request);
      const PlanResponse b = service8.request_replan(request);
      ASSERT_EQ(a.profile.nodes().size(), b.profile.nodes().size());
      EXPECT_EQ(a.cache_hit, b.cache_hit);
      for (std::size_t n = 0; n < a.profile.nodes().size(); ++n) {
        EXPECT_EQ(a.profile.nodes()[n].position_m, b.profile.nodes()[n].position_m);
        EXPECT_EQ(a.profile.nodes()[n].speed_ms, b.profile.nodes()[n].speed_ms);
        EXPECT_EQ(a.profile.nodes()[n].time_s, b.profile.nodes()[n].time_s);
        EXPECT_EQ(a.profile.nodes()[n].energy_mah, b.profile.nodes()[n].energy_mah);
      }
    } else {
      const PlanRequest request{i, 5.0 + 10.0 * (i % 5) + cycle};
      const PlanResponse a = service1.request_plan(request);
      const PlanResponse b = service8.request_plan(request);
      ASSERT_EQ(a.profile.nodes().size(), b.profile.nodes().size());
      EXPECT_EQ(a.cache_hit, b.cache_hit);
      for (std::size_t n = 0; n < a.profile.nodes().size(); ++n) {
        EXPECT_EQ(a.profile.nodes()[n].position_m, b.profile.nodes()[n].position_m);
        EXPECT_EQ(a.profile.nodes()[n].speed_ms, b.profile.nodes()[n].speed_ms);
        EXPECT_EQ(a.profile.nodes()[n].time_s, b.profile.nodes()[n].time_s);
        EXPECT_EQ(a.profile.nodes()[n].energy_mah, b.profile.nodes()[n].energy_mah);
      }
    }
  }

  const ServiceStats s1 = service1.stats();
  const ServiceStats s8 = service8.stats();
  EXPECT_EQ(s1.requests, s8.requests);
  EXPECT_EQ(s1.replans, s8.replans);
  EXPECT_EQ(s1.cache_hits, s8.cache_hits);
  EXPECT_EQ(s1.solver_runs, s8.solver_runs);
  EXPECT_EQ(s1.evictions, 0);
  EXPECT_EQ(s8.evictions, 0);
}

}  // namespace
}  // namespace evvo::cloud
