// Differential test: the deliberately naive reference DP (src/check) against
// the production solver. Both replicate the same float-rounding contract, so
// on any generated scenario the best cost must match to the last bit, the
// full state-table checksums must be equal, and the extracted profiles must
// be byte-identical. A divergence means one side's relaxation order, rounding,
// or backtracking changed -- exactly the class of bug the fuzz harness exists
// to catch.
#include "check/reference_dp.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "check/scenario.hpp"
#include "core/dp_solver.hpp"

namespace evvo::check {
namespace {

bool profiles_bit_identical(const core::PlannedProfile& a, const core::PlannedProfile& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    if (std::memcmp(&a.nodes()[i], &b.nodes()[i], sizeof(core::PlanNode)) != 0) return false;
  }
  return true;
}

class ReferenceAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceAgreement, MatchesProductionBitForBit) {
  const ScenarioSpec spec = generate_scenario(GetParam());
  const Scenario scenario(spec);
  core::DpProblem problem = scenario.problem();
  problem.dominance_pruning = false;
  problem.checksum_tables = true;

  const auto production = core::solve_dp(problem);
  const auto reference = solve_reference_dp(problem);
  ASSERT_EQ(production.has_value(), reference.has_value());
  if (!production) return;

  EXPECT_EQ(reference->best_cost_mah, production->stats.best_cost_mah);
  EXPECT_EQ(reference->table_checksum, production->stats.table_checksum);
  EXPECT_TRUE(profiles_bit_identical(reference->profile, production->profile));
}

TEST_P(ReferenceAgreement, IgnoresPruningAndThreadFlags) {
  // The reference solver must describe the *problem*, not the solver
  // configuration: flipping production-only knobs cannot change its answer.
  const ScenarioSpec spec = generate_scenario(GetParam());
  const Scenario scenario(spec);
  core::DpProblem problem = scenario.problem();
  problem.dominance_pruning = false;
  const auto plain = solve_reference_dp(problem);
  problem.dominance_pruning = true;
  problem.resolution.threads = 8;
  const auto flagged = solve_reference_dp(problem);
  ASSERT_EQ(plain.has_value(), flagged.has_value());
  if (!plain) return;
  EXPECT_EQ(plain->table_checksum, flagged->table_checksum);
  EXPECT_EQ(plain->best_cost_mah, flagged->best_cost_mah);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceAgreement, ::testing::Values(3u, 9u, 17u));

}  // namespace
}  // namespace evvo::check
