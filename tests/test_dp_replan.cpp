// Dirty-stripe frontier computation and replan classification
// (core/dp_replan.hpp): a window edit must dirty exactly the edited event's
// relaxation, no-op edits must yield an empty frontier, and edits reaching
// the first layer (or any fingerprint change) must degrade to a cold solve.
#include "core/dp_replan.hpp"

#include <gtest/gtest.h>

#include "core/dp_solver.hpp"
#include "ev/energy_model.hpp"
#include "road/route.hpp"

namespace evvo::core {
namespace {

constexpr std::size_t kLayers = 43;  // 42 hops, relaxations 0..41

LayerEvent signal(std::size_t layer, std::vector<road::TimeWindow> windows,
                  bool enforce = true) {
  LayerEvent e;
  e.type = LayerEvent::Type::kSignal;
  e.layer = layer;
  e.enforce_windows = enforce;
  e.windows = std::move(windows);
  return e;
}

LayerEvent stop_sign(std::size_t layer, double dwell_s = 2.0) {
  LayerEvent e;
  e.type = LayerEvent::Type::kStopSign;
  e.layer = layer;
  e.dwell_s = dwell_s;
  return e;
}

std::vector<LayerEvent> base_events() {
  return {stop_sign(5), signal(17, {{40.0, 70.0}, {100.0, 130.0}}),
          signal(30, {{20.0, 50.0}})};
}

TEST(DirtyFrontier, IdenticalEventsAreClean) {
  const auto events = base_events();
  EXPECT_FALSE(first_dirty_relax(events, events, kLayers, true, true).has_value());
  // Same values through a copy, different storage: compared by content.
  auto copy = events;
  copy[1].windows = {{40.0, 70.0}, {100.0, 130.0}};
  EXPECT_FALSE(first_dirty_relax(events, copy, kLayers, true, true).has_value());
}

TEST(DirtyFrontier, WindowEditDirtiesExactlyTheEventLayer) {
  const auto prev = base_events();
  auto next = prev;
  next[2].windows[0].end_s += 1.0;  // edit the layer-30 signal
  const auto dirty = first_dirty_relax(prev, next, kLayers, true, true);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 30u);

  auto earlier = prev;
  earlier[1].windows[1].start_s -= 2.0;  // layer-17 signal wins over layer 30
  earlier[2].windows[0].end_s += 1.0;
  const auto dirty2 = first_dirty_relax(prev, earlier, kLayers, true, true);
  ASSERT_TRUE(dirty2.has_value());
  EXPECT_EQ(*dirty2, 17u);
}

TEST(DirtyFrontier, UnenforcedWindowEditIsClean) {
  // The relaxation never reads windows of a non-enforcing signal; such an
  // event is canonically identical to no event at all.
  const std::vector<LayerEvent> prev{signal(12, {{10.0, 20.0}}, /*enforce=*/false)};
  std::vector<LayerEvent> next{signal(12, {{11.0, 25.0}}, /*enforce=*/false)};
  EXPECT_FALSE(first_dirty_relax(prev, next, kLayers, true, true).has_value());
  // Dropping the unenforced event entirely is equally invisible.
  EXPECT_FALSE(first_dirty_relax(prev, {}, kLayers, true, true).has_value());
}

TEST(DirtyFrontier, FinalLayerWindowEditIsClean) {
  // Relaxation i exists for i < n_layers - 1; an enforced signal parked on
  // the last layer is read by no relaxation, so its windows cannot matter.
  const std::vector<LayerEvent> prev{signal(kLayers - 1, {{10.0, 20.0}})};
  std::vector<LayerEvent> next{signal(kLayers - 1, {{12.0, 22.0}})};
  EXPECT_FALSE(first_dirty_relax(prev, next, kLayers, false, false).has_value());
}

TEST(DirtyFrontier, StopSignChangesReachBackOneLayer) {
  const auto prev = base_events();
  // Dwell change: read only while relaxing the sign's own layer.
  auto next = prev;
  next[0].dwell_s += 1.0;
  auto dirty = first_dirty_relax(prev, next, kLayers, true, true);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 5u);
  // Presence flip: relax_layer(4) reads "is layer 5 a stop sign" to force
  // v = 0 on arrival, so removing the sign dirties layer 4 as well.
  next = prev;
  next.erase(next.begin());
  dirty = first_dirty_relax(prev, next, kLayers, true, true);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 4u);
}

TEST(DirtyFrontier, PruningPredicateFlipDirtiesItsFirstLayer) {
  const auto events = base_events();  // last enforced window layer = 30
  const auto dirty = first_dirty_relax(events, events, kLayers, true, false);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 31u);  // predicate `pruning && i > 30` first differs at 31
  // With no enforced windows at all the predicate flips from relaxation 0 on.
  const std::vector<LayerEvent> bare{stop_sign(5)};
  const auto dirty0 = first_dirty_relax(bare, bare, kLayers, true, false);
  ASSERT_TRUE(dirty0.has_value());
  EXPECT_EQ(*dirty0, 0u);
}

road::Route replan_route() { return road::Route({{0.0, 420.0, 20.0, 0.0, 0.0}}); }

DpProblem replan_problem(const road::Route& route, const ev::EnergyModel& energy) {
  DpProblem p;
  p.route = &route;
  p.energy = &energy;
  p.resolution = DpResolution{10.0, 0.5, 1.0, 200.0};
  p.time_weight_mah_per_s = 2.0;
  p.events = base_events();
  return p;
}

TEST(ClassifyReplan, CleanResubmissionSplices) {
  const road::Route route = replan_route();
  const ev::EnergyModel energy;
  const DpProblem p = replan_problem(route, energy);
  const ReplanDelta d = classify_replan(DpProblemKey::of(p), p.events, p.dominance_pruning, p);
  EXPECT_EQ(d.path, ReplanDelta::Path::kSpliced);
}

TEST(ClassifyReplan, WindowEditTakesStripes) {
  const road::Route route = replan_route();
  const ev::EnergyModel energy;
  const DpProblem prev = replan_problem(route, energy);
  DpProblem next = prev;
  next.events[2].windows[0].start_s += 3.0;
  const ReplanDelta d =
      classify_replan(DpProblemKey::of(prev), prev.events, prev.dominance_pruning, next);
  EXPECT_EQ(d.path, ReplanDelta::Path::kStripes);
  EXPECT_EQ(d.first_relax, 30u);
}

TEST(ClassifyReplan, FingerprintChangesGoCold) {
  const road::Route route = replan_route();
  const ev::EnergyModel energy;
  const DpProblem prev = replan_problem(route, energy);
  const DpProblemKey key = DpProblemKey::of(prev);

  DpProblem next = prev;
  next.depart_time = Seconds(7.0);
  EXPECT_EQ(classify_replan(key, prev.events, true, next).path, ReplanDelta::Path::kCold);

  next = prev;
  next.initial_speed = MetersPerSecond(4.0);
  EXPECT_EQ(classify_replan(key, prev.events, true, next).path, ReplanDelta::Path::kCold);

  next = prev;
  next.resolution.horizon_s += 25.0;
  EXPECT_EQ(classify_replan(key, prev.events, true, next).path, ReplanDelta::Path::kCold);

  // Excluded from the fingerprint on purpose: any thread count or SIMD
  // setting is bit-identical, so neither invalidates a warm start.
  next = prev;
  next.resolution.threads = 8;
  next.resolution.simd = !next.resolution.simd;
  next.checksum_tables = !next.checksum_tables;
  EXPECT_EQ(classify_replan(key, prev.events, true, next).path, ReplanDelta::Path::kSpliced);
}

TEST(ClassifyReplan, EditReachingTheFirstLayerGoesCold) {
  // An edit whose frontier is relaxation 0 re-relaxes everything; that IS
  // the cold solve, and classify reports it as such.
  const road::Route route = replan_route();
  const ev::EnergyModel energy;
  DpProblem prev = replan_problem(route, energy);
  prev.events = {signal(1, {{40.0, 70.0}})};
  DpProblem next = prev;
  next.events[0].windows[0].end_s += 1.0;  // dirties relaxation 1
  EXPECT_EQ(classify_replan(DpProblemKey::of(prev), prev.events, true, next).path,
            ReplanDelta::Path::kStripes);
  next.events[0].type = LayerEvent::Type::kStopSign;  // presence change: dirties 0
  EXPECT_EQ(classify_replan(DpProblemKey::of(prev), prev.events, true, next).path,
            ReplanDelta::Path::kCold);
}

}  // namespace
}  // namespace evvo::core
